#!/usr/bin/env bash
# Hermetic-build verification: offline build + tests + dependency-policy guard.
#
# Usage: scripts/verify.sh
# Exits non-zero if the build fails, a test fails, or any manifest declares
# a dependency that is not an in-tree `path` crate (no registry, no git).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: every dependency must be an in-tree path crate =="
# Delegates to dprbg-lint's `hermetic` rule (see LINTS.md), which also
# catches `[dependencies.foo]` subsection tables the old awk guard missed.
if ! cargo run -p dprbg-lint --offline -q -- --manifests; then
    echo "dependency-policy guard FAILED: external crates are not allowed" >&2
    echo "(see 'Dependency policy' in DESIGN.md and LINTS.md)" >&2
    exit 1
fi
echo "ok: manifests declare only path/workspace dependencies"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --workspace --offline

echo "== lint (clippy, workspace, offline) =="
cargo clippy --workspace --offline -- -D warnings

echo "== lint (dprbg-lint invariants, zero transport suppressions) =="
lint_report="$(cargo run -p dprbg-lint --offline -q -- --workspace)"
printf '%s\n' "$lint_report"
if ! grep -q "0 transport suppressions (required: 0)" <<<"$lint_report"; then
    echo "transport guard FAILED: allow(transport) pins exist in the workspace" >&2
    echo "(the blocking transport is retired; port the code instead — see LINTS.md)" >&2
    exit 1
fi
if ! grep -q "0 stale suppressions" <<<"$lint_report"; then
    echo "stale-allow guard FAILED: dead allow pins exist in the workspace" >&2
    echo "(a pin that suppresses nothing is a hole; delete it — see LINTS.md)" >&2
    exit 1
fi

echo "== lint (structural: flow rules, JSON report, baseline diff, <5s budget) =="
# The release build above already produced the binary; invoking it
# directly keeps the wall-clock measurement honest (no cargo overhead).
# Budget: the item-graph analysis of the whole workspace must stay
# interactive — under 5 seconds end to end.
lint_bin="target/release/dprbg-lint"
lint_t0="$(date +%s%N)"
lint_json="$("$lint_bin" --workspace --json --baseline scripts/lint-baseline.json)"
lint_t1="$(date +%s%N)"
lint_ms=$(( (lint_t1 - lint_t0) / 1000000 ))
printf '%s\n' "$lint_json" | tail -n 8
if ! grep -q '"stale_suppressions": 0' <<<"$lint_json"; then
    echo "structural lint FAILED: stale_suppressions != 0 in the JSON report" >&2
    exit 1
fi
echo "ok: structural lint clean vs baseline in ${lint_ms}ms"
if [ "$lint_ms" -ge 5000 ]; then
    echo "structural lint FAILED: ${lint_ms}ms exceeds the 5s budget" >&2
    echo "(the item-graph analysis must stay interactive; profile before growing it)" >&2
    exit 1
fi
# Belt-and-braces: no source or doc may name the retired blocking entry
# point outside the lint fixture corpus. (Pattern split so this script
# never matches itself.)
retired="run_net""work"
if grep -rn "$retired" crates/ --include='*.rs' | grep -v "crates/lint/tests/fixtures/"; then
    echo "transport guard FAILED: retired blocking entry point named above" >&2
    exit 1
fi

echo "== docs (no warnings, offline) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "== chaos campaign smoke (fixed seed, quick) =="
cargo run -p dprbg-bench --release --offline -q --bin report -- e12 --quick

echo "== backend & executor parity smoke (E8 + E13, fixed seed, quick) =="
# E8 checks the dispatched carry-less multiply against the portable
# reference ladder; E13 asserts ParRunner transcripts/traces are
# byte-identical to StepRunner and that its Chrome export round-trips.
parity_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- e8 e13 --quick)"
printf '%s\n' "$parity_report"
for needle in "backend parity OK" "executor parity OK" "par trace round-trip OK"; do
    if ! grep -q "$needle" <<<"$parity_report"; then
        echo "parity smoke FAILED: missing \"$needle\"" >&2
        exit 1
    fi
done

echo "== committee smoke (E14, fixed seed, quick) =="
# Committee-sampled Coin-Gen at n = 129, c = 31: `run` asserts
# StepRunner/ParRunner parity on trial 0 and that at least one chained
# election reaches the t_c + 1 quorum before rendering the table.
committee_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- e14 --quick)"
printf '%s\n' "$committee_report"
if ! grep -q "committee n=129" <<<"$committee_report"; then
    echo "committee smoke FAILED: E14 row for n=129 missing" >&2
    exit 1
fi

echo "== beacon soak smoke (E15, fixed seed, kill/restore determinism) =="
# Crash-recoverable beacon under a composite fault schedule: `run`
# asserts zero unsound epochs, and the kill/restore replay's final
# snapshot must be byte-identical to the uninterrupted soak's.
beacon_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- e15 --quick)"
printf '%s\n' "$beacon_report"
if ! grep -q "restore determinism OK" <<<"$beacon_report"; then
    echo "beacon smoke FAILED: kill/restore replay diverged from the base soak" >&2
    exit 1
fi

echo "== health-plane smoke (fixed-seed soak, exporters, flight recorder) =="
# The dprbg-metrics health plane over a short E15-style soak: JSON-lines
# export must round-trip losslessly, exports must be byte-identical
# across executors and thread counts, a kill/restore must preserve the
# flight recorder byte-identically, and the rollback fire-drill must
# come back with the forensic dump attached.
health_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- --health --quick)"
printf '%s\n' "$health_report"
for needle in \
    "health export round-trip OK" \
    "health export executor parity OK" \
    "flight recorder kill/restore OK" \
    "forensic dump OK"; do
    if ! grep -q "$needle" <<<"$health_report"; then
        echo "health smoke FAILED: missing \"$needle\"" >&2
        exit 1
    fi
done

echo "== traced E2 smoke (fixed seed, Chrome-trace round trip) =="
trace_out="$(mktemp -t dprbg-trace-XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
# (Captured rather than piped into `grep -q`: under pipefail an early
# grep exit would SIGPIPE the producer and fail a green run.)
trace_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- --quick --trace "$trace_out")"
printf '%s\n' "$trace_report"
if ! grep -q "trace round-trip OK" <<<"$trace_report"; then
    echo "traced E2 smoke FAILED: Chrome trace did not round-trip" >&2
    exit 1
fi

echo "verify.sh: all green"
