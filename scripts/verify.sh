#!/usr/bin/env bash
# Hermetic-build verification: offline build + tests + dependency-policy guard.
#
# Usage: scripts/verify.sh
# Exits non-zero if the build fails, a test fails, or any manifest declares
# a dependency that is not an in-tree `path` crate (no registry, no git).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: every dependency must be an in-tree path crate =="
bad=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
    # Inside any *dependencies section, each entry must be either
    # `name.workspace = true`, `name = { workspace = true }`, or a
    # `path = "..."` table. Registry (`version = ...`), `git = ...`, and
    # `registry = ...` sources are forbidden.
    if ! awk -v file="$manifest" '
        /^\[/ { indep = ($0 ~ /dependencies\]$/) }
        indep && /^[ \t]*[a-zA-Z0-9_-]+/ && !/^[ \t]*#/ {
            ok = ($0 ~ /\.workspace[ \t]*=[ \t]*true/) \
              || ($0 ~ /workspace[ \t]*=[ \t]*true/)   \
              || ($0 ~ /path[ \t]*=[ \t]*"/)
            banned = ($0 ~ /version[ \t]*=/) || ($0 ~ /git[ \t]*=/) \
                  || ($0 ~ /registry[ \t]*=/) || ($0 ~ /=[ \t]*"[^"]*"[ \t]*$/)
            if (!ok || banned) {
                printf "%s:%d: non-path dependency: %s\n", file, NR, $0
                status = 1
            }
        }
        END { exit status }
    ' "$manifest"; then
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "dependency-policy guard FAILED: external crates are not allowed" >&2
    echo "(see 'Dependency policy' in DESIGN.md)" >&2
    exit 1
fi
echo "ok: manifests declare only path/workspace dependencies"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --workspace --offline

echo "== lint (clippy, workspace, offline) =="
cargo clippy --workspace --offline -- -D warnings

echo "== docs (no warnings, offline) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "== chaos campaign smoke (fixed seed, quick) =="
cargo run -p dprbg-bench --release --offline -q --bin report -- e12 --quick

echo "verify.sh: all green"
