#!/usr/bin/env bash
# Hermetic-build verification: offline build + tests + dependency-policy guard.
#
# Usage: scripts/verify.sh
# Exits non-zero if the build fails, a test fails, or any manifest declares
# a dependency that is not an in-tree `path` crate (no registry, no git).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: every dependency must be an in-tree path crate =="
# Delegates to dprbg-lint's `hermetic` rule (see LINTS.md), which also
# catches `[dependencies.foo]` subsection tables the old awk guard missed.
if ! cargo run -p dprbg-lint --offline -q -- --manifests; then
    echo "dependency-policy guard FAILED: external crates are not allowed" >&2
    echo "(see 'Dependency policy' in DESIGN.md and LINTS.md)" >&2
    exit 1
fi
echo "ok: manifests declare only path/workspace dependencies"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== tests (workspace, offline) =="
cargo test -q --workspace --offline

echo "== lint (clippy, workspace, offline) =="
cargo clippy --workspace --offline -- -D warnings

echo "== lint (dprbg-lint invariants) =="
cargo run -p dprbg-lint --offline -q -- --workspace

echo "== docs (no warnings, offline) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline -q

echo "== chaos campaign smoke (fixed seed, quick) =="
cargo run -p dprbg-bench --release --offline -q --bin report -- e12 --quick

echo "== backend & executor parity smoke (E8 + E13, fixed seed, quick) =="
# E8 checks the dispatched carry-less multiply against the portable
# reference ladder; E13 asserts ParRunner transcripts/traces are
# byte-identical to StepRunner and that its Chrome export round-trips.
parity_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- e8 e13 --quick)"
printf '%s\n' "$parity_report"
for needle in "backend parity OK" "executor parity OK" "par trace round-trip OK"; do
    if ! grep -q "$needle" <<<"$parity_report"; then
        echo "parity smoke FAILED: missing \"$needle\"" >&2
        exit 1
    fi
done

echo "== traced E2 smoke (fixed seed, Chrome-trace round trip) =="
trace_out="$(mktemp -t dprbg-trace-XXXXXX.json)"
trap 'rm -f "$trace_out"' EXIT
# (Captured rather than piped into `grep -q`: under pipefail an early
# grep exit would SIGPIPE the producer and fail a green run.)
trace_report="$(cargo run -p dprbg-bench --release --offline -q --bin report -- --quick --trace "$trace_out")"
printf '%s\n' "$trace_report"
if ! grep -q "trace round-trip OK" <<<"$trace_report"; then
    echo "traced E2 smoke FAILED: Chrome trace did not round-trip" >&2
    exit 1
fi

echo "verify.sh: all green"
