#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dprbg — Distributed Pseudo-Random Bit Generators
//!
//! A complete Rust implementation of Bellare, Garay and Rabin,
//! *"Distributed Pseudo-Random Bit Generators — A New Way to Speed-Up
//! Shared Coin Tossing"* (PODC 1996): batch verifiable secret sharing,
//! the Coin-Gen protocol, and the bootstrapping coin reservoir, together
//! with the synchronous-network simulator, finite-field/polynomial
//! substrates, and the baseline protocols the paper compares against.
//!
//! This umbrella crate re-exports the whole workspace under one name;
//! the subsystems are:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `dprbg-core` | VSS, Batch-VSS, Bit-Gen, Coin-Gen, Coin-Expose, D-PRBG, bootstrapping |
//! | [`beacon`] | `dprbg-beacon` | crash-recoverable epoch-pipelined beacon service (reservoir, supervisor, snapshot/restore) |
//! | [`field`] | `dprbg-field` | GF(2^k), prime fields, the DFT field GF(q^l) |
//! | [`poly`] | `dprbg-poly` | polynomials, Lagrange, Berlekamp–Welch, Shamir |
//! | [`sim`] | `dprbg-sim` | sans-IO round machines, the deterministic executors, the adversary framework |
//! | [`protocols`] | `dprbg-protocols` | grade-cast, phase-king BA, clique approximation |
//! | [`baselines`] | `dprbg-baselines` | CCD cut-and-choose, Feldman VSS, from-scratch coin, Rabin dealer |
//! | [`metrics`] | `dprbg-metrics` | the paper's cost model (additions / messages / bits / rounds) |
//! | [`trace`] | `dprbg-trace` | deterministic span/event tracing + Chrome-trace export |
//!
//! # Example
//!
//! Seed seven parties once, then run the full Coin-Gen pipeline as a
//! fleet of sans-IO round machines on the deterministic stepped
//! executor (see `examples/` for full programs, including the
//! bootstrapped beacon):
//!
//! ```
//! use dprbg::core::{CoinGenConfig, CoinGenMachine, CoinGenMsg, Params, TrustedDealer};
//! use dprbg::field::Gf2k;
//! use dprbg::sim::{BoxedMachine, MachineExt, StepRunner};
//!
//! type F = Gf2k<32>;
//! type M = CoinGenMsg<F>;
//!
//! let params = Params::p2p_model(7, 1).unwrap();
//! let cfg = CoinGenConfig { params, batch_size: 8 };
//! let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, 42);
//! // One machine per party; the executor carries the messages.
//! let machines: Vec<BoxedMachine<M, usize>> = (0..7)
//!     .map(|_| {
//!         let m = CoinGenMachine::new(cfg, wallets.remove(0))
//!             .map(|(_wallet, res)| res.expect("no faults injected").shares.len());
//!         Box::new(m) as BoxedMachine<M, usize>
//!     })
//!     .collect();
//! let outs = StepRunner::new(7, 1).run(machines).unwrap_all();
//! assert!(outs.iter().all(|&sealed| sealed == 8), "every party sealed the batch");
//! ```

pub use dprbg_baselines as baselines;
pub use dprbg_beacon as beacon;
pub use dprbg_core as core;
pub use dprbg_field as field;
pub use dprbg_metrics as metrics;
pub use dprbg_poly as poly;
pub use dprbg_protocols as protocols;
pub use dprbg_sim as sim;
pub use dprbg_trace as trace;
