#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dprbg — Distributed Pseudo-Random Bit Generators
//!
//! A complete Rust implementation of Bellare, Garay and Rabin,
//! *"Distributed Pseudo-Random Bit Generators — A New Way to Speed-Up
//! Shared Coin Tossing"* (PODC 1996): batch verifiable secret sharing,
//! the Coin-Gen protocol, and the bootstrapping coin reservoir, together
//! with the synchronous-network simulator, finite-field/polynomial
//! substrates, and the baseline protocols the paper compares against.
//!
//! This umbrella crate re-exports the whole workspace under one name;
//! the subsystems are:
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `dprbg-core` | VSS, Batch-VSS, Bit-Gen, Coin-Gen, Coin-Expose, D-PRBG, bootstrapping |
//! | [`field`] | `dprbg-field` | GF(2^k), prime fields, the DFT field GF(q^l) |
//! | [`poly`] | `dprbg-poly` | polynomials, Lagrange, Berlekamp–Welch, Shamir |
//! | [`sim`] | `dprbg-sim` | the synchronous network + adversary framework |
//! | [`protocols`] | `dprbg-protocols` | grade-cast, phase-king BA, clique approximation |
//! | [`baselines`] | `dprbg-baselines` | CCD cut-and-choose, Feldman VSS, from-scratch coin, Rabin dealer |
//! | [`metrics`] | `dprbg-metrics` | the paper's cost model (additions / messages / bits / rounds) |
//! | [`trace`] | `dprbg-trace` | deterministic span/event tracing + Chrome-trace export |
//!
//! # Example
//!
//! Seed seven parties once, then let a bootstrapped beacon hand out
//! shared coins forever (see `examples/` for full programs):
//!
//! ```
//! use dprbg::core::{Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, Params, TrustedDealer};
//! use dprbg::field::Gf2k;
//! use dprbg::sim::{run_network, Behavior, PartyCtx};
//!
//! type F = Gf2k<32>;
//! type M = CoinGenMsg<F>;
//!
//! let params = Params::p2p_model(7, 1).unwrap();
//! let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: 8 });
//! let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, 42);
//! let behaviors: Vec<Behavior<M, Vec<F>>> = (0..7)
//!     .map(|_| {
//!         let mut beacon = Bootstrap::new(cfg, wallets.remove(0));
//!         Box::new(move |ctx: &mut PartyCtx<M>| {
//!             (0..10).map(|_| beacon.draw(ctx).unwrap()).collect::<Vec<F>>()
//!         }) as Behavior<M, Vec<F>>
//!     })
//!     .collect();
//! let outs = run_network(7, 1, behaviors).unwrap_all();
//! assert!(outs.iter().all(|o| o == &outs[0]), "coins are unanimous");
//! ```

pub use dprbg_baselines as baselines;
pub use dprbg_core as core;
pub use dprbg_field as field;
pub use dprbg_metrics as metrics;
pub use dprbg_poly as poly;
pub use dprbg_protocols as protocols;
pub use dprbg_sim as sim;
pub use dprbg_trace as trace;
