//! `dprbg` — command-line demonstrations of the shared-coin machinery.
//!
//! ```text
//! dprbg demo   [n] [t] [coins]     seal a batch of shared coins and reveal it
//! dprbg beacon [draws]             run the bootstrapped randomness beacon
//! dprbg ba     [n] [t]             common-coin randomized Byzantine agreement
//! dprbg anatomy                    per-round profile of one Coin-Gen run
//! ```
//!
//! Everything runs as sans-IO machine fleets on the built-in stepped
//! executor with a fresh deterministic seed per invocation (pass
//! `--seed <u64>` to fix it).

use dprbg::core::{
    common_coin_ba, BitGenMsg, Bootstrap, BootstrapConfig, CcbaVote, CliqueAnnounce,
    CoinGenConfig, CoinGenMachine, CoinGenMsg, ExposeMachine, ExposeMsg, ExposeVia, Params,
    SealedShare, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::metrics::WireSize;
use dprbg::protocols::{BaMsg, GcMsg};
use dprbg::sim::{
    looping, BoxedMachine, Embeds, LoopControl, MachineExt, RoundMachine, StepRunner,
};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

/// Wire type of the `ba` subcommand: generator traffic + votes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BaWire {
    Vote(CcbaVote),
    BitGen(BitGenMsg<F>),
    Expose(ExposeMsg<F>),
    Gc(GcMsg<CliqueAnnounce<F>>),
    Ba(BaMsg),
}

impl WireSize for BaWire {
    fn wire_bytes(&self) -> usize {
        match self {
            BaWire::Vote(m) => m.wire_bytes(),
            BaWire::BitGen(m) => m.wire_bytes(),
            BaWire::Expose(m) => m.wire_bytes(),
            BaWire::Gc(m) => m.wire_bytes(),
            BaWire::Ba(m) => m.wire_bytes(),
        }
    }
}

macro_rules! embed {
    ($inner:ty, $variant:ident) => {
        impl Embeds<$inner> for BaWire {
            fn wrap(inner: $inner) -> Self {
                BaWire::$variant(inner)
            }
            fn peek(&self) -> Option<&$inner> {
                match self {
                    BaWire::$variant(m) => Some(m),
                    _ => None,
                }
            }
        }
    };
}
embed!(CcbaVote, Vote);
embed!(BitGenMsg<F>, BitGen);
embed!(ExposeMsg<F>, Expose);
embed!(GcMsg<CliqueAnnounce<F>>, Gc);
embed!(BaMsg, Ba);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut seed: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(1);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            seed = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--seed needs a u64 value"));
        } else {
            positional.push(a);
        }
    }

    match positional.first().copied() {
        Some("demo") => demo(
            parse_or(positional.get(1), 7),
            parse_or(positional.get(2), 1),
            parse_or(positional.get(3), 8),
            seed,
        ),
        Some("beacon") => beacon(parse_or(positional.get(1), 24), seed),
        Some("ba") => ba(parse_or(positional.get(1), 7), parse_or(positional.get(2), 1), seed),
        Some("anatomy") => anatomy(seed),
        _ => {
            eprintln!(
                "usage: dprbg <demo [n] [t] [coins] | beacon [draws] | ba [n] [t] | anatomy> [--seed u64]"
            );
            std::process::exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dprbg: {msg}");
    std::process::exit(2);
}

fn parse_or(arg: Option<&&str>, default: usize) -> usize {
    arg.map(|v| v.parse().unwrap_or_else(|_| die("arguments must be integers")))
        .unwrap_or(default)
}

fn params_or_die(n: usize, t: usize) -> Params {
    Params::p2p_model(n, t).unwrap_or_else(|e| die(&format!("{e}")))
}

/// Expose every share of a batch in order, collecting the coin values.
fn expose_all(t: usize, mut shares: Vec<SealedShare<F>>) -> impl RoundMachine<M, Output = Vec<F>> {
    shares.reverse();
    looping(
        (shares, Vec::new()),
        move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
            Some(s) => LoopControl::Continue(Box::new(
                ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                    let mut vals = vals;
                    vals.push(res.expect("expose succeeds"));
                    (stack, vals)
                }),
            )),
            None => LoopControl::Break(vals),
        },
    )
}

fn demo(n: usize, t: usize, coins: usize, seed: u64) {
    let params = params_or_die(n, t);
    let cfg = CoinGenConfig { params, batch_size: coins };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4 + t, seed);
    println!("dprbg demo: n={n} t={t}, sealing {coins} coins (seed {seed})\n");
    let machines: Vec<BoxedMachine<M, Vec<F>>> = (1..=n)
        .map(|id| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0)).then(move |(_w, res)| {
                let batch = res.expect("generation succeeds");
                if id == 1 {
                    println!(
                        "agreed dealer set {:?} in {} attempt(s)",
                        batch.dealers, batch.attempts
                    );
                }
                expose_all(t, batch.shares)
            });
            Box::new(machine) as _
        })
        .collect();
    let outs = StepRunner::new(n, seed).run(machines).unwrap_all();
    assert!(outs.iter().all(|o| o == &outs[0]), "unanimity violated?!");
    for (h, v) in outs[0].iter().enumerate() {
        println!("coin {h:>3}: {v}");
    }
    println!("\nall {n} parties agree on all {coins} coins ✓");
}

fn beacon(draws: usize, seed: u64) {
    let n = 7;
    let t = 1;
    let params = params_or_die(n, t);
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: 16 });
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, seed);
    println!("dprbg beacon: {draws} draws from a 6-coin dealer seed (seed {seed})\n");
    let machines: Vec<BoxedMachine<M, (Vec<F>, usize)>> = (0..n)
        .map(|_| {
            let b = Bootstrap::new(cfg, wallets.remove(0));
            let machine = looping(
                (b, Vec::new()),
                move |(b, vals): (Bootstrap<F>, Vec<F>)| {
                    if vals.len() == draws {
                        let refills = b.stats().refills;
                        return LoopControl::Break((vals, refills));
                    }
                    LoopControl::Continue(Box::new(b.draw().map(move |(b, res)| {
                        let mut vals = vals;
                        vals.push(res.expect("draw succeeds"));
                        (b, vals)
                    })))
                },
            );
            Box::new(machine) as _
        })
        .collect();
    let outs = StepRunner::new(n, seed).run(machines).unwrap_all();
    for (i, v) in outs[0].0.iter().enumerate() {
        println!("draw {i:>3}: {v}  bit={}", v.to_u64() & 1);
    }
    println!("\n{} refills; all {n} parties saw the same stream ✓", outs[0].1);
}

fn ba(n: usize, t: usize, seed: u64) {
    let params = params_or_die(n, t);
    println!("dprbg ba: common-coin Byzantine agreement, n={n} t={t}, split inputs (seed {seed})\n");
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: 16 });
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, seed);
    let machines: Vec<BoxedMachine<BaWire, (bool, Option<usize>)>> = (1..=n)
        .map(|id| {
            let b = Bootstrap::new(cfg, wallets.remove(0));
            let input = id % 2 == 0;
            let machine = common_coin_ba::<BaWire, F>(input, t, b, 12).map(|(_b, res)| {
                let out = res.expect("beacon holds");
                (out.decision, out.decided_in_phase)
            });
            Box::new(machine) as _
        })
        .collect();
    let outs = StepRunner::new(n, seed).run(machines).unwrap_all();
    for (i, (d, p)) in outs.iter().enumerate() {
        println!(
            "party {:>2}: input {:>5} -> decided {:>5} in phase {:?}",
            i + 1,
            (i + 1) % 2 == 0,
            d,
            p
        );
    }
    assert!(outs.iter().all(|(d, _)| *d == outs[0].0));
    println!("\nagreement ✓");
}

fn anatomy(seed: u64) {
    let n = 7;
    let t = 1;
    let params = params_or_die(n, t);
    let cfg = CoinGenConfig { params, batch_size: 16 };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 5, seed);
    let machines: Vec<BoxedMachine<M, usize>> = (0..n)
        .map(|_| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0))
                .map(|(_w, res)| res.expect("generation succeeds").attempts);
            Box::new(machine) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    println!("dprbg anatomy: one Coin-Gen run, n={n} t={t} M=16 (seed {seed})\n");
    println!("{:>6}  {:>10}  {:>4}", "round", "deliveries", "live");
    for (r, p) in res.rounds.iter().enumerate() {
        println!("{:>6}  {:>10}  {:>4}", r + 1, p.deliveries, p.live_parties);
    }
}
