//! `dprbg` — command-line demonstrations of the shared-coin machinery.
//!
//! ```text
//! dprbg demo   [n] [t] [coins]     seal a batch of shared coins and reveal it
//! dprbg beacon [draws]             run the bootstrapped randomness beacon
//! dprbg ba     [n] [t]             common-coin randomized Byzantine agreement
//! dprbg anatomy                    per-round profile of one Coin-Gen run
//! ```
//!
//! Everything runs on the built-in synchronous simulator with a fresh
//! deterministic seed per invocation (pass `--seed <u64>` to fix it).

use dprbg::core::{
    coin_expose, coin_gen, common_coin_ba, BitGenMsg, Bootstrap, BootstrapConfig, CcbaVote,
    CliqueAnnounce, CoinGenConfig, CoinGenMsg, ExposeMsg, ExposeVia, Params, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::metrics::WireSize;
use dprbg::protocols::{BaMsg, GcMsg};
// lint: allow-file(transport) — the CLI demos drive the blocking behavior API, which runs on the threaded executor by design
use dprbg::sim::{run_network, Behavior, Embeds, PartyCtx};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

/// Wire type of the `ba` subcommand: generator traffic + votes.
#[derive(Debug, Clone, PartialEq, Eq)]
enum BaWire {
    Vote(CcbaVote),
    BitGen(BitGenMsg<F>),
    Expose(ExposeMsg<F>),
    Gc(GcMsg<CliqueAnnounce<F>>),
    Ba(BaMsg),
}

impl WireSize for BaWire {
    fn wire_bytes(&self) -> usize {
        match self {
            BaWire::Vote(m) => m.wire_bytes(),
            BaWire::BitGen(m) => m.wire_bytes(),
            BaWire::Expose(m) => m.wire_bytes(),
            BaWire::Gc(m) => m.wire_bytes(),
            BaWire::Ba(m) => m.wire_bytes(),
        }
    }
}

macro_rules! embed {
    ($inner:ty, $variant:ident) => {
        impl Embeds<$inner> for BaWire {
            fn wrap(inner: $inner) -> Self {
                BaWire::$variant(inner)
            }
            fn peek(&self) -> Option<&$inner> {
                match self {
                    BaWire::$variant(m) => Some(m),
                    _ => None,
                }
            }
        }
    };
}
embed!(CcbaVote, Vote);
embed!(BitGenMsg<F>, BitGen);
embed!(ExposeMsg<F>, Expose);
embed!(GcMsg<CliqueAnnounce<F>>, Gc);
embed!(BaMsg, Ba);

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<&str> = Vec::new();
    let mut seed: u64 = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(1);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            seed = it
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die("--seed needs a u64 value"));
        } else {
            positional.push(a);
        }
    }

    match positional.first().copied() {
        Some("demo") => demo(
            parse_or(positional.get(1), 7),
            parse_or(positional.get(2), 1),
            parse_or(positional.get(3), 8),
            seed,
        ),
        Some("beacon") => beacon(parse_or(positional.get(1), 24), seed),
        Some("ba") => ba(parse_or(positional.get(1), 7), parse_or(positional.get(2), 1), seed),
        Some("anatomy") => anatomy(seed),
        _ => {
            eprintln!(
                "usage: dprbg <demo [n] [t] [coins] | beacon [draws] | ba [n] [t] | anatomy> [--seed u64]"
            );
            std::process::exit(2);
        }
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dprbg: {msg}");
    std::process::exit(2);
}

fn parse_or(arg: Option<&&str>, default: usize) -> usize {
    arg.map(|v| v.parse().unwrap_or_else(|_| die("arguments must be integers")))
        .unwrap_or(default)
}

fn params_or_die(n: usize, t: usize) -> Params {
    Params::p2p_model(n, t).unwrap_or_else(|e| die(&format!("{e}")))
}

fn demo(n: usize, t: usize, coins: usize, seed: u64) {
    let params = params_or_die(n, t);
    let cfg = CoinGenConfig { params, batch_size: coins };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4 + t, seed);
    println!("dprbg demo: n={n} t={t}, sealing {coins} coins (seed {seed})\n");
    let behaviors: Vec<Behavior<M, Vec<F>>> = (0..n)
        .map(|_| {
            let mut w = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let batch = coin_gen(ctx, &cfg, &mut w).expect("generation succeeds");
                if ctx.id() == 1 {
                    println!(
                        "agreed dealer set {:?} in {} attempt(s)",
                        batch.dealers, batch.attempts
                    );
                }
                batch
                    .shares
                    .into_iter()
                    .map(|s| coin_expose(ctx, s, t, ExposeVia::PointToPoint).unwrap())
                    .collect()
            }) as Behavior<M, Vec<F>>
        })
        .collect();
    let outs = run_network(n, seed, behaviors).unwrap_all();
    assert!(outs.iter().all(|o| o == &outs[0]), "unanimity violated?!");
    for (h, v) in outs[0].iter().enumerate() {
        println!("coin {h:>3}: {v}");
    }
    println!("\nall {n} parties agree on all {coins} coins ✓");
}

fn beacon(draws: usize, seed: u64) {
    let n = 7;
    let t = 1;
    let params = params_or_die(n, t);
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: 16 });
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, seed);
    println!("dprbg beacon: {draws} draws from a 6-coin dealer seed (seed {seed})\n");
    let behaviors: Vec<Behavior<M, (Vec<F>, usize)>> = (0..n)
        .map(|_| {
            let mut b = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let vals: Vec<F> = (0..draws).map(|_| b.draw(ctx).unwrap()).collect();
                (vals, b.stats().refills)
            }) as Behavior<M, _>
        })
        .collect();
    let outs = run_network(n, seed, behaviors).unwrap_all();
    for (i, v) in outs[0].0.iter().enumerate() {
        println!("draw {i:>3}: {v}  bit={}", v.to_u64() & 1);
    }
    println!("\n{} refills; all {n} parties saw the same stream ✓", outs[0].1);
}

fn ba(n: usize, t: usize, seed: u64) {
    let params = params_or_die(n, t);
    println!("dprbg ba: common-coin Byzantine agreement, n={n} t={t}, split inputs (seed {seed})\n");
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: 16 });
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, seed);
    let behaviors: Vec<Behavior<BaWire, (bool, Option<usize>)>> = (1..=n)
        .map(|id| {
            let mut b = Bootstrap::new(cfg, wallets.remove(0));
            let input = id % 2 == 0;
            Box::new(move |ctx: &mut PartyCtx<BaWire>| {
                let out = common_coin_ba(ctx, input, t, &mut b, 12).expect("beacon holds");
                (out.decision, out.decided_in_phase)
            }) as Behavior<BaWire, _>
        })
        .collect();
    let outs = run_network(n, seed, behaviors).unwrap_all();
    for (i, (d, p)) in outs.iter().enumerate() {
        println!(
            "party {:>2}: input {:>5} -> decided {:>5} in phase {:?}",
            i + 1,
            (i + 1) % 2 == 0,
            d,
            p
        );
    }
    assert!(outs.iter().all(|(d, _)| *d == outs[0].0));
    println!("\nagreement ✓");
}

fn anatomy(seed: u64) {
    let n = 7;
    let t = 1;
    let params = params_or_die(n, t);
    let cfg = CoinGenConfig { params, batch_size: 16 };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 5, seed);
    let behaviors: Vec<Behavior<M, usize>> = (0..n)
        .map(|_| {
            let mut w = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<M>| {
                coin_gen(ctx, &cfg, &mut w).expect("generation succeeds").attempts
            }) as Behavior<M, usize>
        })
        .collect();
    let res = run_network(n, seed, behaviors);
    println!("dprbg anatomy: one Coin-Gen run, n={n} t={t} M=16 (seed {seed})\n");
    println!("{:>6}  {:>10}  {:>4}", "round", "deliveries", "live");
    for (r, p) in res.rounds.iter().enumerate() {
        println!("{:>6}  {:>10}  {:>4}", r + 1, p.deliveries, p.live_parties);
    }
}
