//! Randomized Byzantine agreement powered by the D-PRBG — the paper's
//! headline application ("shared coins are needed, amongst other things,
//! for Byzantine agreement and broadcast").
//!
//! Uses the library's [`dprbg::core::common_coin_ba`]: each phase the
//! parties exchange votes and draw **the same** shared coin from the
//! bootstrapped reservoir, so the expected number of phases is constant.
//! The example also demonstrates composing application traffic with the
//! generator's: the wire enum [`AppMsg`] multiplexes votes alongside every
//! Coin-Gen sub-protocol via the `Embeds` mechanism.
//!
//! Run with: `cargo run --example randomized_ba`

use dprbg::core::{
    common_coin_ba, BitGenMsg, Bootstrap, BootstrapConfig, CcbaOutcome, CcbaVote,
    CliqueAnnounce, CoinGenConfig, ExposeMsg, Params, TrustedDealer,
};
use dprbg::field::Gf2k;
use dprbg::metrics::WireSize;
use dprbg::protocols::{BaMsg, GcMsg};
use dprbg::sim::{BoxedMachine, Embeds, MachineExt, StepRunner};

type F = Gf2k<32>;

/// The application's wire type: votes + every Coin-Gen sub-protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
enum AppMsg {
    Vote(CcbaVote),
    BitGen(BitGenMsg<F>),
    Expose(ExposeMsg<F>),
    Gc(GcMsg<CliqueAnnounce<F>>),
    Ba(BaMsg),
}

impl WireSize for AppMsg {
    fn wire_bytes(&self) -> usize {
        match self {
            AppMsg::Vote(m) => m.wire_bytes(),
            AppMsg::BitGen(m) => m.wire_bytes(),
            AppMsg::Expose(m) => m.wire_bytes(),
            AppMsg::Gc(m) => m.wire_bytes(),
            AppMsg::Ba(m) => m.wire_bytes(),
        }
    }
}

macro_rules! embed {
    ($inner:ty, $variant:ident) => {
        impl Embeds<$inner> for AppMsg {
            fn wrap(inner: $inner) -> Self {
                AppMsg::$variant(inner)
            }
            fn peek(&self) -> Option<&$inner> {
                match self {
                    AppMsg::$variant(m) => Some(m),
                    _ => None,
                }
            }
        }
    };
}
embed!(CcbaVote, Vote);
embed!(BitGenMsg<F>, BitGen);
embed!(ExposeMsg<F>, Expose);
embed!(GcMsg<CliqueAnnounce<F>>, Gc);
embed!(BaMsg, Ba);

fn main() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 16,
    });
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 6, 7);

    // Adversarially split inputs: the case where deterministic protocols
    // burn t+1 rounds; the shared coin converges in expected O(1) phases.
    let inputs = [true, false, true, false, true, false, true];

    // One agreement machine per party, all sharing the bootstrapped
    // reservoir protocol; the executor carries the multiplexed traffic.
    let machines: Vec<BoxedMachine<AppMsg, CcbaOutcome>> = (1..=n)
        .map(|id| {
            let beacon = Bootstrap::new(cfg, wallets.remove(0));
            let input = inputs[id - 1];
            let machine = common_coin_ba::<AppMsg, F>(input, t, beacon, 12)
                .map(|(_beacon, res)| res.expect("beacon never dries up"));
            Box::new(machine) as BoxedMachine<AppMsg, CcbaOutcome>
        })
        .collect();

    let outs = StepRunner::new(n, 11).run(machines).unwrap_all();
    for (i, out) in outs.iter().enumerate() {
        println!(
            "party {}: input {:>5} -> decided {:>5} in phase {:?}",
            i + 1,
            inputs[i],
            out.decision,
            out.decided_in_phase
        );
    }
    let first = outs[0].decision;
    assert!(outs.iter().all(|o| o.decision == first), "agreement violated");
    println!("\nagreement reached on `{first}` by all {n} parties ✓");
}
