//! Quickstart: seal a batch of shared coins and reveal them.
//!
//! Seven simulated parties (tolerating one Byzantine fault) receive a
//! small trusted-dealer seed, run one Coin-Gen (the paper's Fig. 5) to
//! stretch it into a batch of fresh sealed coins, and then expose each
//! coin — demonstrating unanimity: every party reconstructs the same
//! random values.
//!
//! Run with: `cargo run --example quickstart`

use dprbg::core::{
    CoinGenConfig, CoinGenMachine, CoinGenMsg, ExposeMachine, ExposeVia, Params, SealedShare,
    TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

/// Reveal the batch one coin at a time (each expose is a single round).
fn expose_all(t: usize, mut shares: Vec<SealedShare<F>>) -> impl RoundMachine<M, Output = Vec<F>> {
    shares.reverse();
    looping(
        (shares, Vec::new()),
        move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
            Some(share) => LoopControl::Continue(Box::new(
                ExposeMachine::new(share, t, ExposeVia::PointToPoint).map(move |res| {
                    let mut vals = vals;
                    vals.push(res.expect("expose succeeds"));
                    (stack, vals)
                }),
            )),
            None => LoopControl::Break(vals),
        },
    )
}

fn main() {
    let n = 7;
    let t = 1;
    let batch = 8;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = CoinGenConfig { params, batch_size: batch };

    // One-time setup: the trusted dealer seeds each party with a few
    // sealed coins (used only to challenge-and-select inside Coin-Gen).
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4, 2026);

    // One sans-IO machine per party: stretch the seed with Coin-Gen,
    // then reveal every sealed coin. The executor carries the messages.
    let machines: Vec<BoxedMachine<M, Vec<F>>> = (1..=n)
        .map(|id| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0)).then(move |(_w, res)| {
                let coins = res.expect("coin generation succeeds");
                if id == 1 {
                    println!(
                        "party 1: sealed {} coins from dealer set {:?} in {} attempt(s)",
                        coins.shares.len(),
                        coins.dealers,
                        coins.attempts
                    );
                }
                expose_all(t, coins.shares)
            });
            Box::new(machine) as BoxedMachine<M, Vec<F>>
        })
        .collect();

    let outputs = StepRunner::new(n, 7).run(machines).unwrap_all();

    println!("\ncoin values as seen by party 1:");
    for (h, v) in outputs[0].iter().enumerate() {
        println!("  coin {h}: {v}   (low bit: {})", v.to_u64() & 1);
    }
    assert!(
        outputs.iter().all(|o| o == &outputs[0]),
        "unanimity: every party must see identical coins"
    );
    println!("\nall {n} parties agree on all {batch} coins ✓");
}
