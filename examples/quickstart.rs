//! Quickstart: seal a batch of shared coins and reveal them.
//!
//! Seven simulated parties (tolerating one Byzantine fault) receive a
//! small trusted-dealer seed, run one Coin-Gen (the paper's Fig. 5) to
//! stretch it into a batch of fresh sealed coins, and then expose each
//! coin — demonstrating unanimity: every party reconstructs the same
//! random values.
//!
//! Run with: `cargo run --example quickstart`

use dprbg::core::{
    coin_expose, coin_gen, CoinGenConfig, CoinGenMsg, ExposeVia, Params, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{run_network, Behavior, PartyCtx};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

fn main() {
    let n = 7;
    let t = 1;
    let batch = 8;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = CoinGenConfig { params, batch_size: batch };

    // One-time setup: the trusted dealer seeds each party with a few
    // sealed coins (used only to challenge-and-select inside Coin-Gen).
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4, 2026);

    let behaviors: Vec<Behavior<M, Vec<F>>> = (1..=n)
        .map(|_| {
            let mut wallet = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<M>| {
                // Stretch the seed: one protocol run seals `batch` coins.
                let coins = coin_gen(ctx, &cfg, &mut wallet).expect("coin generation succeeds");
                if ctx.id() == 1 {
                    println!(
                        "party 1: sealed {} coins from dealer set {:?} in {} attempt(s)",
                        coins.len(),
                        coins.dealers,
                        coins.attempts
                    );
                }
                // Reveal them one by one (each expose is a single round).
                coins
                    .shares
                    .into_iter()
                    .map(|share| {
                        coin_expose(ctx, share, t, ExposeVia::PointToPoint)
                            .expect("expose succeeds")
                    })
                    .collect()
            }) as Behavior<M, Vec<F>>
        })
        .collect();

    let outputs = run_network(n, 7, behaviors).unwrap_all();

    println!("\ncoin values as seen by party 1:");
    for (h, v) in outputs[0].iter().enumerate() {
        println!("  coin {h}: {v}   (low bit: {})", v.to_u64() & 1);
    }
    assert!(
        outputs.iter().all(|o| o == &outputs[0]),
        "unanimity: every party must see identical coins"
    );
    println!("\nall {n} parties agree on all {batch} coins ✓");
}
