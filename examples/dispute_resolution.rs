//! Dispute resolution: an honest dealer survives hostile verifiers.
//!
//! §3.1 of the paper notes that under a broadcast channel "two rounds of
//! broadcast" suffice to guarantee that *all n* players' shares satisfy
//! the polynomial — this example shows the library's implementation of
//! that remark ([`dprbg::core::VssDisputeMachine`]) in action.
//!
//! Scenario: an escrow dealer shares a secret among 7 parties. Two
//! Byzantine parties broadcast garbage verification values, which under
//! the literal Fig. 2 check would disqualify the innocent dealer. With
//! dispute resolution the lie is publicly pinpointed, the dealer
//! republishes exactly the two disputed positions, and every honest party
//! accepts — with the liars' shares now public (the price of provable
//! misbehavior).
//!
//! Run with: `cargo run --example dispute_resolution`

use dprbg::core::{
    DealtShares, DisputeVssMsg, ExposeMachine, ExposeVia, Params, SealedShare, VssDisputeMachine,
    VssVerdict,
};
use dprbg::field::{Field, Gf2k};
use dprbg::poly::{share_points, share_polynomial, Poly};
use dprbg::sim::{
    from_fn, BoxedMachine, FaultPlan, MachineExt, RoundView, Step, StepRunner,
};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

type F = Gf2k<32>;
type M = DisputeVssMsg<F>;
type Out = Option<(VssVerdict, Vec<usize>)>;

fn main() {
    let n = 7;
    let t = 2;
    let _params = Params::broadcast_model(n, t).expect("n >= 3t + 1");
    let mut rng = StdRng::seed_from_u64(2026);

    // The dealer's secret and polynomials (dealt out-of-band here).
    let secret = F::from_u64(0x5EC2E7);
    let f = share_polynomial(secret, t, &mut rng);
    let g = Poly::random(t, &mut rng);
    let shares: Vec<DealtShares<F>> = share_points(&f, n)
        .into_iter()
        .zip(share_points(&g, n))
        .map(|(a, b)| DealtShares { alpha: a.y, gamma: b.y })
        .collect();

    // One sealed challenge coin.
    let coin_poly = share_polynomial(F::random(&mut rng), t, &mut rng);
    let coins: Vec<SealedShare<F>> = share_points(&coin_poly, n)
        .into_iter()
        .map(|s| SealedShare::of(s.y))
        .collect();

    // Parties 4 and 6 are hostile verifiers trying to frame the dealer.
    let plan = FaultPlan::explicit(n, vec![4, 6]);
    let machines = plan.machines::<M, Out>(
        |id| {
            let coin = coins[id - 1];
            let my = shares[id - 1];
            let polys = (id == 1).then(|| (f.clone(), g.clone()));
            let machine = VssDisputeMachine::new(1, polys, t, my, coin)
                .map(|res| res.ok().map(|out| (out.verdict, out.opened)));
            Box::new(machine) as BoxedMachine<M, Out>
        },
        |id| {
            let coin = coins[id - 1];
            // The frame-up: play the challenge expose honestly (so the
            // coin decodes), then broadcast garbage instead of the real β
            // in the very round honest parties broadcast theirs.
            let machine = ExposeMachine::new(coin, t, ExposeVia::Broadcast).then(
                move |_coin| {
                    let mut round = 0usize;
                    from_fn(move |view: RoundView<'_, M>| {
                        round += 1;
                        if round == 1 {
                            let mut out = view.outbox();
                            out.broadcast(DisputeVssMsg::Beta(F::from_u64(id as u64 * 0xBAD)));
                            Step::Continue(out)
                        } else {
                            Step::Done(None)
                        }
                    })
                    .labelled("frame-up")
                },
            );
            Box::new(machine) as BoxedMachine<M, Out>
        },
    );

    let res = StepRunner::new(n, 2027).run(machines);
    for id in plan.honest() {
        let (verdict, opened) = res.outputs[id - 1]
            .as_ref()
            .expect("honest party runs to completion")
            .as_ref()
            .expect("challenge coin exposes");
        println!("party {id}: verdict {verdict:?}, positions publicly opened: {opened:?}");
        assert_eq!(*verdict, VssVerdict::Accept);
        assert_eq!(opened, &vec![4, 6]);
    }
    println!(
        "\nhonest dealer accepted by all {} honest parties despite 2 hostile verifiers ✓",
        n - 2
    );
    println!("(under the literal Fig. 2 check the same run would reject the dealer)");
}
