//! Mobile faults: the proactive-security setting the paper targets.
//!
//! "One of the motivations and applications of our work is pro-active
//! security, which deals with settings where intruders are allowed to
//! move over time. Our solution to multiple-coin generation can be
//! easily adapted to this scenario." (§1.2.) Crucially, unlike earlier
//! amortization attempts, the D-PRBG does *not* require "that the set of
//! faulty players remain (relatively) fixed": every Coin-Gen run
//! re-elects its dealer clique from scratch.
//!
//! This example runs several generation epochs where the corrupted party
//! *moves* each epoch (a different party is Byzantine every time) and
//! shows that every epoch still seals a full, unanimous batch.
//!
//! Run with: `cargo run --example proactive_refresh`

use dprbg::core::{
    coin_expose, coin_gen, BitGenMsg, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeVia, Params,
    TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{run_network, FaultPlan};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

const EPOCHS: usize = 5;

fn main() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = CoinGenConfig { params, batch_size: 6 };

    // Wallets persist across epochs (per honest party).
    let mut wallets: Vec<CoinWallet<F>> = TrustedDealer::deal_wallets::<F>(params, 30, 555);

    for epoch in 1..=EPOCHS {
        // The intruder moves: a different party is corrupted each epoch.
        let bad = (epoch % n) + 1;
        let plan = FaultPlan::explicit(n, vec![bad]);

        let epoch_wallets: Vec<CoinWallet<F>> = wallets.clone();
        let behaviors = plan.behaviors::<M, Option<(CoinWallet<F>, Vec<F>)>>(
            |id| {
                let mut w = epoch_wallets[id - 1].clone();
                Box::new(move |ctx| {
                    let batch = coin_gen(ctx, &cfg, &mut w).ok()?;
                    // Expose the whole batch so we can display the coins.
                    let vals: Vec<F> = batch
                        .shares
                        .iter()
                        .map(|&s| {
                            coin_expose(ctx, s, 1, ExposeVia::PointToPoint)
                                .expect("expose succeeds")
                        })
                        .collect();
                    Some((w, vals))
                })
            },
            |id| {
                let mut w = epoch_wallets[id - 1].clone();
                Box::new(move |ctx| {
                    // This epoch's intruder: garbage dealing, corrupted
                    // expose shares, then silence.
                    let n = ctx.n();
                    for i in 1..=n {
                        ctx.send(
                            i,
                            CoinGenMsg::BitGen(BitGenMsg::Deal {
                                alphas: vec![F::from_u64(0xBAD); 6],
                                gamma: F::zero(),
                            }),
                        );
                    }
                    let _ = ctx.next_round();
                    let _ = w.pop();
                    ctx.send_to_all(CoinGenMsg::Expose(dprbg::core::ExposeMsg(F::from_u64(
                        13,
                    ))));
                    let _ = ctx.next_round();
                    None
                })
            },
        );
        let res = run_network(n, 9_000 + epoch as u64, behaviors);

        // Collect the honest parties' outputs; update persistent wallets.
        let mut coins_seen: Option<Vec<F>> = None;
        let mut honest_consumed = 0usize;
        for id in plan.honest() {
            let (w, vals) = res.outputs[id - 1]
                .as_ref()
                .unwrap()
                .as_ref()
                .expect("honest party seals the batch")
                .clone();
            match &coins_seen {
                None => coins_seen = Some(vals),
                Some(prev) => assert_eq!(prev, &vals, "unanimity in epoch {epoch}"),
            }
            honest_consumed = epoch_wallets[id - 1].len() - w.len();
            wallets[id - 1] = w;
        }
        // The recovered party rejoins next epoch: resynchronize its
        // reservoir with the honest parties' actual seed consumption
        // (its own sealed shares for this epoch's batch are simply
        // absent — the others carry the expose).
        for id in plan.faulty() {
            for _ in 0..honest_consumed {
                let _ = wallets[id - 1].pop();
            }
        }
        let vals = coins_seen.unwrap();
        println!(
            "epoch {epoch}: intruder at P{bad} -> sealed {} coins, first = {:#x}",
            vals.len(),
            vals[0].to_u64()
        );
    }
    println!("\nall {EPOCHS} epochs produced unanimous batches under a mobile intruder ✓");
}
