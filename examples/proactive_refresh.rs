//! Mobile faults: the proactive-security setting the paper targets.
//!
//! "One of the motivations and applications of our work is pro-active
//! security, which deals with settings where intruders are allowed to
//! move over time. Our solution to multiple-coin generation can be
//! easily adapted to this scenario." (§1.2.) Crucially, unlike earlier
//! amortization attempts, the D-PRBG does *not* require "that the set of
//! faulty players remain (relatively) fixed": every Coin-Gen run
//! re-elects its dealer clique from scratch.
//!
//! This example runs several generation epochs where the corrupted party
//! *moves* each epoch (a different party is Byzantine every time) and
//! shows that every epoch still seals a full, unanimous batch.
//!
//! Run with: `cargo run --example proactive_refresh`

use dprbg::core::{
    BitGenMsg, CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, ExposeMachine, ExposeMsg,
    ExposeVia, Params, SealedShare, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{
    from_fn, looping, BoxedMachine, FaultPlan, LoopControl, MachineExt, RoundMachine, RoundView,
    Step, StepRunner,
};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;
type Out = Option<(CoinWallet<F>, Vec<F>)>;

const EPOCHS: usize = 5;

/// Expose the whole batch, one coin per round, so we can display it.
fn expose_all(t: usize, mut shares: Vec<SealedShare<F>>) -> impl RoundMachine<M, Output = Vec<F>> {
    shares.reverse();
    looping(
        (shares, Vec::new()),
        move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
            Some(s) => LoopControl::Continue(Box::new(
                ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                    let mut vals = vals;
                    vals.push(res.expect("expose succeeds"));
                    (stack, vals)
                }),
            )),
            None => LoopControl::Break(vals),
        },
    )
}

/// This epoch's intruder: garbage dealing, a corrupted expose share,
/// then silence.
fn intruder() -> impl RoundMachine<M, Output = Out> {
    let mut round = 0usize;
    from_fn(move |view: RoundView<'_, M>| {
        round += 1;
        match round {
            1 => {
                let mut out = view.outbox();
                for i in 1..=view.n {
                    out.send(
                        i,
                        CoinGenMsg::BitGen(BitGenMsg::Deal {
                            alphas: vec![F::from_u64(0xBAD); 6],
                            gamma: F::zero(),
                        }),
                    );
                }
                Step::Continue(out)
            }
            2 => {
                let mut out = view.outbox();
                out.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(13))));
                Step::Continue(out)
            }
            _ => Step::Done(None),
        }
    })
    .labelled("intruder")
}

fn main() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = CoinGenConfig { params, batch_size: 6 };

    // Wallets persist across epochs (per honest party).
    let mut wallets: Vec<CoinWallet<F>> = TrustedDealer::deal_wallets::<F>(params, 30, 555);

    for epoch in 1..=EPOCHS {
        // The intruder moves: a different party is corrupted each epoch.
        let bad = (epoch % n) + 1;
        let plan = FaultPlan::explicit(n, vec![bad]);

        let epoch_wallets: Vec<CoinWallet<F>> = wallets.clone();
        let machines = plan.machines::<M, Out>(
            |id| {
                let w = epoch_wallets[id - 1].clone();
                let machine = CoinGenMachine::new(cfg, w).then(
                    move |(w, res)| -> BoxedMachine<M, Out> {
                        match res {
                            Ok(batch) => Box::new(
                                expose_all(t, batch.shares).map(move |vals| Some((w, vals))),
                            ),
                            Err(_) => Box::new(from_fn(|_| Step::Done(None))),
                        }
                    },
                );
                Box::new(machine) as BoxedMachine<M, Out>
            },
            |_id| Box::new(intruder()) as BoxedMachine<M, Out>,
        );
        let res = StepRunner::new(n, 9_000 + epoch as u64).run(machines);

        // Collect the honest parties' outputs; update persistent wallets.
        let mut coins_seen: Option<Vec<F>> = None;
        let mut honest_consumed = 0usize;
        for id in plan.honest() {
            let (w, vals) = res.outputs[id - 1]
                .clone()
                .expect("honest party runs to completion")
                .expect("honest party seals the batch");
            match &coins_seen {
                None => coins_seen = Some(vals),
                Some(prev) => assert_eq!(prev, &vals, "unanimity in epoch {epoch}"),
            }
            honest_consumed = epoch_wallets[id - 1].len() - w.len();
            wallets[id - 1] = w;
        }
        // The recovered party rejoins next epoch: resynchronize its
        // reservoir with the honest parties' actual seed consumption
        // (its own sealed shares for this epoch's batch are simply
        // absent — the others carry the expose).
        for id in plan.faulty() {
            for _ in 0..honest_consumed {
                let _ = wallets[id - 1].pop();
            }
        }
        let vals = coins_seen.unwrap();
        println!(
            "epoch {epoch}: intruder at P{bad} -> sealed {} coins, first = {:#x}",
            vals.len(),
            vals[0].to_u64()
        );
    }
    println!("\nall {EPOCHS} epochs produced unanimous batches under a mobile intruder ✓");
}
