//! A long-lived randomness beacon via bootstrapping (the paper's Fig. 1).
//!
//! The motivating deployment of §1.2: an application executed "not once,
//! but regularly, at intervals" draws shared coins from a reservoir that
//! refills itself — each D-PRBG run produces both the coins the current
//! epoch needs *and* the seed for the next run, so the trusted dealer is
//! used exactly once, for a handful of coins, at the very beginning.
//!
//! This example runs 30 application epochs of 6 draws each (180 coins
//! from a 6-coin initial seed) and prints the reservoir trace: draws,
//! refills, seed consumption, and the net self-sufficiency balance.
//!
//! Run with: `cargo run --example coin_beacon`

use dprbg::core::{Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, Params, TrustedDealer};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

const EPOCHS: usize = 30;
const DRAWS_PER_EPOCH: usize = 6;
const INITIAL_SEED: usize = 6;

/// The beacon as a machine: draw epoch after epoch, threading the
/// reservoir through the loop and journaling its level at party 1.
///
/// Epoch bookkeeping happens in the loop *transitions* (which cost no
/// rounds); only the draws themselves exchange messages.
fn beacon_machine(
    beacon: Bootstrap<F>,
    id: usize,
) -> impl RoundMachine<M, Output = (Vec<u64>, String)> {
    looping(
        (beacon, Vec::new(), String::new(), INITIAL_SEED),
        move |(b, values, mut trace, level_before): (Bootstrap<F>, Vec<u64>, String, usize)| {
            let drawn = values.len();
            // An epoch boundary: journal the reservoir movement.
            if drawn > 0 && drawn % DRAWS_PER_EPOCH == 0 && id == 1 {
                trace.push_str(&format!(
                    "epoch {:>3}: reservoir {level_before:>2} -> {:>2}   refills so far: {}\n",
                    drawn / DRAWS_PER_EPOCH,
                    b.level(),
                    b.stats().refills
                ));
            }
            if drawn == EPOCHS * DRAWS_PER_EPOCH {
                let s = b.stats();
                if id == 1 {
                    trace.push_str(&format!(
                        "\ntotal: {} draws | {} refills | {} seeds consumed | {} coins produced\n",
                        s.draws, s.refills, s.seeds_consumed, s.coins_produced
                    ));
                    trace.push_str(&format!(
                        "self-sufficiency: produced − consumed = {:+} coins (initial dealer seed: {INITIAL_SEED})\n",
                        s.coins_produced as isize - s.seeds_consumed as isize
                    ));
                }
                return LoopControl::Break((values, trace));
            }
            let level_before =
                if drawn % DRAWS_PER_EPOCH == 0 { b.level() } else { level_before };
            LoopControl::Continue(Box::new(b.draw().map(move |(b, res)| {
                let mut values = values;
                values.push(res.expect("beacon never runs dry").to_u64());
                (b, values, trace, level_before)
            })))
        },
    )
}

fn main() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 24,
    });

    let mut wallets = TrustedDealer::deal_wallets::<F>(params, INITIAL_SEED, 99);

    let machines: Vec<BoxedMachine<M, (Vec<u64>, String)>> = (1..=n)
        .map(|id| {
            let beacon = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(beacon_machine(beacon, id)) as BoxedMachine<M, (Vec<u64>, String)>
        })
        .collect();

    let outputs = StepRunner::new(n, 4).run(machines).unwrap_all();
    print!("{}", outputs[0].1);

    // Every party observed the identical 180-coin beacon stream.
    assert!(outputs.iter().all(|(v, _)| v == &outputs[0].0));
    println!(
        "\nbeacon produced {} unanimous coins across {n} parties ✓",
        outputs[0].0.len()
    );
}
