//! A long-lived randomness beacon via bootstrapping (the paper's Fig. 1).
//!
//! The motivating deployment of §1.2: an application executed "not once,
//! but regularly, at intervals" draws shared coins from a reservoir that
//! refills itself — each D-PRBG run produces both the coins the current
//! epoch needs *and* the seed for the next run, so the trusted dealer is
//! used exactly once, for a handful of coins, at the very beginning.
//!
//! This example runs 30 application epochs of 6 draws each (180 coins
//! from a 6-coin initial seed) and prints the reservoir trace: draws,
//! refills, seed consumption, and the net self-sufficiency balance.
//!
//! Run with: `cargo run --example coin_beacon`

use dprbg::core::{Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, Params, TrustedDealer};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{run_network, Behavior, PartyCtx};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

const EPOCHS: usize = 30;
const DRAWS_PER_EPOCH: usize = 6;
const INITIAL_SEED: usize = 6;

fn main() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).expect("n >= 6t + 1");
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 24,
    });

    let mut wallets = TrustedDealer::deal_wallets::<F>(params, INITIAL_SEED, 99);

    let behaviors: Vec<Behavior<M, (Vec<u64>, String)>> = (1..=n)
        .map(|_| {
            let mut beacon = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let mut trace = String::new();
                let mut values = Vec::new();
                for epoch in 1..=EPOCHS {
                    let level_before = beacon.level();
                    for _ in 0..DRAWS_PER_EPOCH {
                        let coin = beacon.draw(ctx).expect("beacon never runs dry");
                        values.push(coin.to_u64());
                    }
                    if ctx.id() == 1 {
                        trace.push_str(&format!(
                            "epoch {epoch:>3}: reservoir {level_before:>2} -> {:>2}   refills so far: {}\n",
                            beacon.level(),
                            beacon.stats().refills
                        ));
                    }
                }
                let s = beacon.stats();
                if ctx.id() == 1 {
                    trace.push_str(&format!(
                        "\ntotal: {} draws | {} refills | {} seeds consumed | {} coins produced\n",
                        s.draws, s.refills, s.seeds_consumed, s.coins_produced
                    ));
                    trace.push_str(&format!(
                        "self-sufficiency: produced − consumed = {:+} coins (initial dealer seed: {INITIAL_SEED})\n",
                        s.coins_produced as isize - s.seeds_consumed as isize
                    ));
                }
                (values, trace)
            }) as Behavior<M, (Vec<u64>, String)>
        })
        .collect();

    let outputs = run_network(n, 4, behaviors).unwrap_all();
    print!("{}", outputs[0].1);

    // Every party observed the identical 180-coin beacon stream.
    assert!(outputs.iter().all(|(v, _)| v == &outputs[0].0));
    println!(
        "\nbeacon produced {} unanimous coins across {n} parties ✓",
        outputs[0].0.len()
    );
}
