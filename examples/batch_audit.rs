//! Batch-VSS audit: verify a thousand sharings for the price of one.
//!
//! The paper's §3 scenario (broadcast-channel model, n ≥ 3t + 1): an
//! escrow dealer has distributed Shamir shares of M = 1024 secrets; the
//! players want assurance that *every* sharing is a valid degree-≤t
//! polynomial — without opening any of them. Naively that is M
//! verifications; Protocol Batch-VSS (Fig. 3) does it with **one random
//! challenge, one broadcast per player, and one interpolation** —
//! Corollary 1's "amortized communication O(1)" per secret.
//!
//! The example audits an honest dealer, then re-runs the audit against a
//! dealer that corrupted a single polynomial out of the 1024 — and shows
//! the whole batch being rejected, with the measured cost identical.
//!
//! Run with: `cargo run --example batch_audit`

use dprbg::core::batch_vss::{cheating_batch_deal, BatchOpts};
use dprbg::core::{
    BatchVssDealMachine, BatchVssMsg, BatchVssVerifyMachine, CoinError, Params, SealedShare,
    VssVerdict,
};
use dprbg::field::{Field, Gf2k};
use dprbg::metrics::CostSnapshot;
use dprbg::poly::{share_points, share_polynomial};
use dprbg::sim::{BoxedMachine, MachineExt, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

type F = Gf2k<32>;
type M = BatchVssMsg<F>;
type Out = Result<VssVerdict, CoinError>;

const BATCH: usize = 1024;

/// Deal one challenge coin out-of-band (in a deployment this comes from
/// the bootstrapped reservoir).
fn challenge_coins(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let poly = share_polynomial(F::random(&mut rng), t, &mut rng);
    share_points(&poly, n)
        .into_iter()
        .map(|s| SealedShare::of(s.y))
        .collect()
}

fn audit(n: usize, t: usize, corrupt_one: bool, seed: u64) -> (VssVerdict, CostSnapshot) {
    let params = Params::broadcast_model(n, t).expect("n >= 3t + 1");
    let coins = challenge_coins(n, t, seed + 1);
    let opts = BatchOpts::default();

    // A cheating dealer prepares its (single-corruption) batch offline.
    let mut rng = StdRng::seed_from_u64(seed + 2);
    let bad = corrupt_one.then(|| cheating_batch_deal::<F, _>(n, t, BATCH, 1, &mut rng));

    let machines: Vec<BoxedMachine<M, Out>> = (1..=n)
        .map(|id| {
            let coin = coins[id - 1];
            match &bad {
                // The cheater dealt out-of-band; go straight to the audit.
                Some(b) => {
                    let shares = b[id - 1].clone();
                    Box::new(BatchVssVerifyMachine::new(params.t, shares, BATCH, coin, opts))
                        as BoxedMachine<M, Out>
                }
                None => {
                    let secrets: Option<Vec<F>> =
                        (id == 1).then(|| (0..BATCH as u64).map(F::from_u64).collect());
                    let machine = BatchVssDealMachine::new(1, secrets, params.t, opts).then(
                        move |(shares, _polys)| {
                            BatchVssVerifyMachine::new(params.t, shares, BATCH, coin, opts)
                        },
                    );
                    Box::new(machine) as BoxedMachine<M, Out>
                }
            }
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let verdict = res.outputs[1]
        .as_ref()
        .expect("party 2 runs to completion")
        .as_ref()
        .copied()
        .expect("challenge coin exposes");
    // Verification-phase cost of one (non-dealer) player.
    let cost = res.report.per_party[1].cost;
    (verdict, cost)
}

fn main() {
    let n = 7;
    let t = 2;

    let (v_ok, cost_ok) = audit(n, t, false, 1000);
    println!("honest dealer, M = {BATCH}: verdict = {v_ok:?}");
    println!(
        "  player cost: {} interpolations, {} muls, {} adds",
        cost_ok.interpolations, cost_ok.field_muls, cost_ok.field_adds
    );

    let (v_bad, cost_bad) = audit(n, t, true, 2000);
    println!("\ndealer corrupting 1 of {BATCH} sharings: verdict = {v_bad:?}");
    println!(
        "  player cost: {} interpolations, {} muls, {} adds",
        cost_bad.interpolations, cost_bad.field_muls, cost_bad.field_adds
    );

    assert_eq!(v_ok, VssVerdict::Accept);
    assert_eq!(v_bad, VssVerdict::Reject);
    println!(
        "\nbatch of {BATCH} audited with {} interpolations per player ✓ \
         (naive per-secret auditing: {BATCH})",
        cost_ok.interpolations
    );
}
