//! Field-genericity: every protocol runs unchanged over a prime field.
//!
//! The paper works over "a finite field whose size will be denoted by p
//! (which is not necessarily a prime)" (§2) — but nothing in the
//! protocols depends on characteristic 2. This test instantiates the
//! whole Coin-Gen pipeline over the Sophie Germain prime field
//! `Z_q` (≈ 2^61) instead of GF(2^32).

use dprbg::core::{
    CoinGenConfig, CoinGenMachine, CoinGenMsg, ExposeMachine, ExposeVia, Params, SealedShare,
    TrustedDealer,
};
use dprbg::field::{Field, Fp, SAFE_PRIME_Q};
use dprbg::sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

type F = Fp<SAFE_PRIME_Q>;
type M = CoinGenMsg<F>;

/// Expose every share of a batch in order, collecting the coin values.
fn expose_all(t: usize, mut shares: Vec<SealedShare<F>>) -> impl RoundMachine<M, Output = Vec<F>> {
    shares.reverse();
    looping(
        (shares, Vec::new()),
        move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
            Some(s) => LoopControl::Continue(Box::new(
                ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                    let mut vals = vals;
                    vals.push(res.expect("expose succeeds over Z_q"));
                    (stack, vals)
                }),
            )),
            None => LoopControl::Break(vals),
        },
    )
}

#[test]
fn coin_gen_over_a_prime_field() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: 4 };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4, 61);
    let machines: Vec<BoxedMachine<M, Vec<F>>> = (0..n)
        .map(|_| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0))
                .then(move |(_w, res)| expose_all(t, res.expect("works over Z_q").shares));
            Box::new(machine) as BoxedMachine<M, Vec<F>>
        })
        .collect();
    let outs = StepRunner::new(n, 62).run(machines).unwrap_all();
    assert_eq!(outs[0].len(), 4);
    assert!(outs.iter().all(|o| o == &outs[0]), "unanimity over Z_q");
    // Values live in the right field.
    assert!(outs[0].iter().all(|v| (v.to_u64() as u128) < F::order()));
}

#[test]
fn vss_over_a_prime_field() {
    use dprbg::core::{vss_machine, VssMode, VssMsg, VssVerdict};
    use dprbg::poly::{share_points, share_polynomial};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    let n = 7;
    let t = 2;
    let mut rng = StdRng::seed_from_u64(63);
    let coin_poly = share_polynomial(F::random(&mut rng), t, &mut rng);
    let coins: Vec<SealedShare<F>> = share_points(&coin_poly, n)
        .into_iter()
        .map(|s| SealedShare::of(s.y))
        .collect();
    let machines: Vec<BoxedMachine<VssMsg<F>, Option<VssVerdict>>> = (1..=n)
        .map(|id| {
            let coin = coins[id - 1];
            let secret = (id == 1).then(|| F::from_u64(0x5EC));
            let machine = vss_machine(1, secret, t, coin, VssMode::Strict)
                .map(|res| res.ok().map(|(v, _)| v));
            Box::new(machine) as BoxedMachine<VssMsg<F>, Option<VssVerdict>>
        })
        .collect();
    for out in StepRunner::new(n, 64).run(machines).unwrap_all() {
        assert_eq!(out, Some(VssVerdict::Accept));
    }
}
