//! Field-genericity: every protocol runs unchanged over a prime field.
//!
//! The paper works over "a finite field whose size will be denoted by p
//! (which is not necessarily a prime)" (§2) — but nothing in the
//! protocols depends on characteristic 2. This test instantiates the
//! whole Coin-Gen pipeline over the Sophie Germain prime field
//! `Z_q` (≈ 2^61) instead of GF(2^32).

use dprbg::core::{
    coin_expose, coin_gen, CoinGenConfig, CoinGenMsg, ExposeVia, Params, TrustedDealer,
};
use dprbg::field::{Field, Fp, SAFE_PRIME_Q};
use dprbg::sim::{run_network, Behavior, PartyCtx};

type F = Fp<SAFE_PRIME_Q>;
type M = CoinGenMsg<F>;

#[test]
fn coin_gen_over_a_prime_field() {
    let n = 7;
    let t = 1;
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: 4 };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4, 61);
    let behaviors: Vec<Behavior<M, Vec<F>>> = (0..n)
        .map(|_| {
            let mut w = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let batch = coin_gen(ctx, &cfg, &mut w).expect("works over Z_q");
                batch
                    .shares
                    .into_iter()
                    .map(|s| coin_expose(ctx, s, t, ExposeVia::PointToPoint).unwrap())
                    .collect()
            }) as Behavior<M, Vec<F>>
        })
        .collect();
    let outs = run_network(n, 62, behaviors).unwrap_all();
    assert_eq!(outs[0].len(), 4);
    assert!(outs.iter().all(|o| o == &outs[0]), "unanimity over Z_q");
    // Values live in the right field.
    assert!(outs[0].iter().all(|v| (v.to_u64() as u128) < F::order()));
}

#[test]
fn vss_over_a_prime_field() {
    use dprbg::core::{vss, SealedShare, VssMode, VssMsg, VssVerdict};
    use dprbg::poly::{share_points, share_polynomial};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    let n = 7;
    let t = 2;
    let mut rng = StdRng::seed_from_u64(63);
    let coin_poly = share_polynomial(F::random(&mut rng), t, &mut rng);
    let coins: Vec<SealedShare<F>> = share_points(&coin_poly, n)
        .into_iter()
        .map(|s| SealedShare::of(s.y))
        .collect();
    let behaviors: Vec<Behavior<VssMsg<F>, Option<VssVerdict>>> = (1..=n)
        .map(|id| {
            let coin = coins[id - 1];
            Box::new(move |ctx: &mut PartyCtx<VssMsg<F>>| {
                let secret = (id == 1).then(|| F::from_u64(0x5EC));
                vss(ctx, 1, secret, t, coin, VssMode::Strict)
                    .ok()
                    .map(|(v, _)| v)
            }) as Behavior<_, _>
        })
        .collect();
    for out in run_network(n, 64, behaviors).unwrap_all() {
        assert_eq!(out, Some(VssVerdict::Accept));
    }
}
