//! End-to-end Coin-Gen (Fig. 5) across parameter settings: the full
//! pipeline from trusted-dealer seed through sealed batch to exposed,
//! unanimous coin values — as machine fleets on the stepped executor.

use dprbg::core::{
    CoinGenConfig, CoinGenMachine, CoinGenMsg, ExposeMachine, ExposeVia, Params, SealedShare,
    TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

/// Expose every share of a batch in order, collecting the coin values.
fn expose_all(t: usize, mut shares: Vec<SealedShare<F>>) -> impl RoundMachine<M, Output = Vec<F>> {
    shares.reverse();
    looping(
        (shares, Vec::new()),
        move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
            Some(s) => LoopControl::Continue(Box::new(
                ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                    let mut vals = vals;
                    vals.push(res.expect("expose succeeds"));
                    (stack, vals)
                }),
            )),
            None => LoopControl::Break(vals),
        },
    )
}

/// Run the full pipeline; return each party's exposed coin values.
fn generate_and_expose(n: usize, t: usize, m: usize, seed: u64) -> Vec<Vec<F>> {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4 + t, seed);
    let machines: Vec<BoxedMachine<M, Vec<F>>> = (0..n)
        .map(|_| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0)).then(move |(_w, res)| {
                expose_all(t, res.expect("generation succeeds").shares)
            });
            Box::new(machine) as BoxedMachine<M, Vec<F>>
        })
        .collect();
    StepRunner::new(n, seed).run(machines).unwrap_all()
}

#[test]
fn minimal_system_n7_t1() {
    let outs = generate_and_expose(7, 1, 4, 1);
    assert_eq!(outs[0].len(), 4);
    assert!(outs.iter().all(|o| o == &outs[0]), "unanimity");
}

#[test]
fn larger_system_n13_t2() {
    let outs = generate_and_expose(13, 2, 4, 2);
    assert_eq!(outs[0].len(), 4);
    assert!(outs.iter().all(|o| o == &outs[0]), "unanimity");
}

#[test]
fn zero_fault_bound_n4() {
    // The paper's n >= 4 baseline with t = 0.
    let outs = generate_and_expose(4, 0, 3, 3);
    assert!(outs.iter().all(|o| o == &outs[0]));
}

#[test]
fn coins_look_random() {
    // Coins within one batch differ from each other and across seeds
    // (probability of collision ~ 2^-32 per pair).
    let a = generate_and_expose(7, 1, 6, 4);
    let b = generate_and_expose(7, 1, 6, 5);
    let batch = &a[0];
    for i in 0..batch.len() {
        for j in i + 1..batch.len() {
            assert_ne!(batch[i], batch[j], "coins {i} and {j} collide");
        }
    }
    assert_ne!(a[0], b[0], "independent runs must give different coins");
    // Bits are balanced-ish: among 12 coins expect both parities.
    let all: Vec<u64> = a[0].iter().chain(b[0].iter()).map(|v| v.to_u64() & 1).collect();
    assert!(all.contains(&0) && all.contains(&1));
}

#[test]
fn determinism_from_master_seed() {
    let a = generate_and_expose(7, 1, 4, 42);
    let b = generate_and_expose(7, 1, 4, 42);
    assert_eq!(a, b, "the whole simulation is reproducible from the seed");
}

#[test]
fn large_batch_amortizes() {
    // A big batch from the same 5-coin seed: the generator's whole point.
    let outs = generate_and_expose(7, 1, 64, 6);
    assert_eq!(outs[0].len(), 64);
    assert!(outs.iter().all(|o| o == &outs[0]));
}
