//! End-to-end bootstrapping (Fig. 1): long-horizon self-sufficiency of
//! the coin reservoir, reproducibility, and reservoir invariants.

use dprbg::core::{
    Bootstrap, BootstrapConfig, BootstrapStats, CoinGenConfig, CoinGenMsg, Params, TrustedDealer,
};
use dprbg::field::Gf2k;
use dprbg::sim::{looping, BoxedMachine, LoopControl, MachineExt, StepRunner};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

fn beacon_run(
    n: usize,
    t: usize,
    batch: usize,
    initial: usize,
    draws: usize,
    seed: u64,
) -> Vec<(Vec<F>, BootstrapStats)> {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: batch });
    let mut wallets = TrustedDealer::deal_wallets::<F>(params, initial, seed);
    let machines: Vec<BoxedMachine<M, (Vec<F>, BootstrapStats)>> = (0..n)
        .map(|_| {
            let b = Bootstrap::new(cfg, wallets.remove(0));
            let machine = looping(
                (b, Vec::new()),
                move |(b, vals): (Bootstrap<F>, Vec<F>)| {
                    if vals.len() == draws {
                        let stats = b.stats();
                        return LoopControl::Break((vals, stats));
                    }
                    LoopControl::Continue(Box::new(b.draw().map(move |(b, res)| {
                        let mut vals = vals;
                        vals.push(res.expect("draw succeeds"));
                        (b, vals)
                    })))
                },
            );
            Box::new(machine) as BoxedMachine<M, (Vec<F>, BootstrapStats)>
        })
        .collect();
    StepRunner::new(n, seed).run(machines).unwrap_all()
}

#[test]
fn hundred_draws_from_six_seed_coins() {
    let outs = beacon_run(7, 1, 16, 6, 100, 1);
    let (vals, stats) = &outs[0];
    assert_eq!(vals.len(), 100);
    assert!(outs.iter().all(|(v, _)| v == vals), "beacon is unanimous");
    // Self-sufficiency: the generator produced more than it consumed.
    assert!(stats.coins_produced > stats.seeds_consumed + 100 - 6);
    assert!(stats.refills >= 6, "100 draws at M=16 need several refills");
}

#[test]
fn per_refill_seed_cost_is_constant() {
    // Lemma 8: expected O(1) BA iterations per generation run, so seeds
    // consumed per refill should be a small constant (2 with no faults).
    let outs = beacon_run(7, 1, 12, 6, 60, 2);
    let (_, stats) = &outs[0];
    assert!(stats.refills > 0);
    let per_refill = stats.seeds_consumed as f64 / stats.refills as f64;
    assert!(
        (2.0..3.0).contains(&per_refill),
        "seeds per refill = {per_refill}, expected ≈ 2 without faults"
    );
    assert_eq!(stats.attempts, stats.refills, "one leader attempt per run");
}

#[test]
fn beacon_stream_is_deterministic() {
    let a = beacon_run(7, 1, 8, 6, 30, 77);
    let b = beacon_run(7, 1, 8, 6, 30, 77);
    assert_eq!(a[0].0, b[0].0);
}

#[test]
fn different_seeds_different_streams() {
    let a = beacon_run(7, 1, 8, 6, 10, 100);
    let b = beacon_run(7, 1, 8, 6, 10, 101);
    assert_ne!(a[0].0, b[0].0);
}

#[test]
fn larger_system_sustains_too() {
    let outs = beacon_run(13, 2, 16, 8, 40, 3);
    assert_eq!(outs[0].0.len(), 40);
    assert!(outs.iter().all(|(v, _)| v == &outs[0].0));
}

#[test]
fn bits_are_roughly_balanced() {
    // 100 k-ary coins → low bits should not be constant (p < 2^-99) and
    // should be within a loose binomial window.
    let outs = beacon_run(7, 1, 16, 6, 100, 4);
    let ones: usize = outs[0]
        .0
        .iter()
        .filter(|v| dprbg::field::Field::to_u64(*v) & 1 == 1)
        .count();
    assert!(
        (20..=80).contains(&ones),
        "low-bit count {ones}/100 is wildly unbalanced"
    );
}
