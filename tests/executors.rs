//! Cross-executor equivalence of the sans-IO round engine.
//!
//! The same `RoundMachine` fleet must behave identically under the
//! scoped-thread runner ([`run_machines`]), the deterministic
//! single-threaded [`StepRunner`], and the work-stealing `ParRunner`:
//! byte-identical transcripts, identical [`CostReport`]s, identical
//! per-round delivery profiles, identical logical traces. The blocking
//! `PartyCtx` pipeline (the pre-refactor API, now a shim over the same
//! machines) must agree with all of them. A large-n smoke test then
//! exercises the scale the single-threaded and parallel executors exist
//! for: full Coin-Gen at n = 61, t = 10 — beyond what the
//! thread-per-party runner is asked to do anywhere else in the suite.

use std::collections::VecDeque;

use dprbg::core::{
    coin_expose, coin_gen, CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, ExposeMachine,
    ExposeVia, Params, SealedShare, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::metrics::CostReport;
use dprbg::sim::{
    run_machines, run_network, Behavior, BoxedMachine, PartyCtx, RoundMachine, RoundProfile,
    RoundView, RunResult, Step,
};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

const N: usize = 7;
const T: usize = 1;
const BATCH: usize = 8;

/// One party's observable outcome: agreed dealers, leader-election
/// attempts, and every coin in the batch exposed to a value.
type PartyTranscript = (Vec<usize>, usize, Vec<F>);

/// Coin-Gen followed by Coin-Expose of every sealed coin, as a single
/// composed round machine (the machine-level twin of the blocking
/// `coin_gen` + `coin_expose` pipeline in `tests/determinism.rs`).
struct PartyMachine<G: Field> {
    t: usize,
    stage: Stage<G>,
}

enum Stage<G: Field> {
    Coin(CoinGenMachine<CoinGenMsg<G>, G>),
    Expose {
        expose: ExposeMachine<CoinGenMsg<G>, G>,
        queue: VecDeque<SealedShare<G>>,
        dealers: Vec<usize>,
        attempts: usize,
        values: Vec<G>,
    },
    Finished,
}

impl<G: Field> PartyMachine<G> {
    fn new(cfg: CoinGenConfig, wallet: CoinWallet<G>) -> Self {
        PartyMachine {
            t: cfg.params.t,
            stage: Stage::Coin(CoinGenMachine::new(cfg, wallet)),
        }
    }
}

impl<G: Field> RoundMachine<CoinGenMsg<G>> for PartyMachine<G> {
    type Output = (Vec<usize>, usize, Vec<G>);

    fn round(&mut self, mut view: RoundView<'_, CoinGenMsg<G>>) -> Step<CoinGenMsg<G>, Self::Output> {
        match std::mem::replace(&mut self.stage, Stage::Finished) {
            Stage::Coin(mut cg) => match cg.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = Stage::Coin(cg);
                    Step::Continue(out)
                }
                Step::Done((_, res)) => {
                    let batch = res.expect("coin generation succeeds");
                    let mut queue: VecDeque<SealedShare<G>> = batch.shares.into_iter().collect();
                    let first = queue.pop_front().expect("batch is non-empty");
                    let mut expose = ExposeMachine::new(first, self.t, ExposeVia::PointToPoint);
                    let Step::Continue(out) = expose.round(view.reborrow()) else {
                        unreachable!("coin expose sends before it can decode");
                    };
                    self.stage = Stage::Expose {
                        expose,
                        queue,
                        dealers: batch.dealers,
                        attempts: batch.attempts,
                        values: Vec::new(),
                    };
                    Step::Continue(out)
                }
            },
            Stage::Expose { mut expose, mut queue, dealers, attempts, mut values } => {
                match expose.round(view.reborrow()) {
                    Step::Continue(out) => {
                        self.stage = Stage::Expose { expose, queue, dealers, attempts, values };
                        Step::Continue(out)
                    }
                    Step::Done(res) => {
                        values.push(res.expect("expose succeeds"));
                        match queue.pop_front() {
                            Some(share) => {
                                let mut next =
                                    ExposeMachine::new(share, self.t, ExposeVia::PointToPoint);
                                let Step::Continue(out) = next.round(view.reborrow()) else {
                                    unreachable!("coin expose sends before it can decode");
                                };
                                self.stage =
                                    Stage::Expose { expose: next, queue, dealers, attempts, values };
                                Step::Continue(out)
                            }
                            None => Step::Done((dealers, attempts, values)),
                        }
                    }
                }
            }
            Stage::Finished => panic!("PartyMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            Stage::Coin(cg) => cg.phase_name(),
            Stage::Expose { expose, .. } => expose.phase_name(),
            Stage::Finished => "finished",
        }
    }
}

fn machine_fleet(seed: u64) -> Vec<BoxedMachine<M, PartyTranscript>> {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: BATCH };
    let mut wallets: Vec<CoinWallet<F>> =
        TrustedDealer::deal_wallets::<F>(params, 4 + T, seed ^ 0xA11CE);
    (1..=N)
        .map(|_| {
            Box::new(PartyMachine::new(cfg, wallets.remove(0))) as BoxedMachine<M, PartyTranscript>
        })
        .collect()
}

/// Canonical transcript bytes, same encoding as `tests/determinism.rs`.
fn transcript_bytes(outputs: Vec<PartyTranscript>) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (dealers, attempts, values) in outputs {
        bytes.push(dealers.len() as u8);
        bytes.extend(dealers.iter().map(|&d| d as u8));
        bytes.extend((attempts as u32).to_le_bytes());
        for v in &values {
            bytes.extend(&v.to_u64().to_le_bytes()[..F::wire_bytes_static()]);
        }
    }
    bytes
}

fn summarize(res: RunResult<PartyTranscript>) -> (Vec<u8>, CostReport, Vec<RoundProfile>) {
    let report = res.report.clone();
    let rounds = res.rounds.clone();
    (transcript_bytes(res.unwrap_all()), report, rounds)
}

/// The blocking (pre-refactor) pipeline over the same seed, via the
/// `PartyCtx` shims.
fn blocking_pipeline(seed: u64) -> (Vec<u8>, CostReport) {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: BATCH };
    let mut wallets: Vec<CoinWallet<F>> =
        TrustedDealer::deal_wallets::<F>(params, 4 + T, seed ^ 0xA11CE);
    let behaviors: Vec<Behavior<M, PartyTranscript>> = (1..=N)
        .map(|_| {
            let mut w = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let batch = coin_gen(ctx, &cfg, &mut w).expect("coin generation succeeds");
                let values: Vec<F> = batch
                    .shares
                    .iter()
                    .map(|s| {
                        coin_expose(ctx, s.clone(), T, ExposeVia::PointToPoint)
                            .expect("expose succeeds")
                    })
                    .collect();
                (batch.dealers, batch.attempts, values)
            }) as Behavior<M, PartyTranscript>
        })
        .collect();
    let res = run_network(N, seed, behaviors);
    let report = res.report.clone();
    (transcript_bytes(res.unwrap_all()), report)
}

#[test]
fn executors_agree_on_full_coin_gen() {
    for seed in [3u64, 42, 1996] {
        let threaded = summarize(run_machines(N, seed, machine_fleet(seed)));
        let stepped = summarize(dprbg::sim::StepRunner::new(N, seed).run(machine_fleet(seed)));
        let parallel = summarize(dprbg::sim::ParRunner::new(N, seed).run(machine_fleet(seed)));
        assert_eq!(threaded.0, stepped.0, "transcripts diverged for seed {seed}");
        assert!(!threaded.0.is_empty(), "pipeline produced an empty transcript");
        assert_eq!(threaded.1, stepped.1, "cost reports diverged for seed {seed}");
        assert_eq!(threaded.2, stepped.2, "round profiles diverged for seed {seed}");
        assert_eq!(stepped.0, parallel.0, "ParRunner transcript diverged for seed {seed}");
        assert_eq!(stepped.1, parallel.1, "ParRunner cost report diverged for seed {seed}");
        assert_eq!(stepped.2, parallel.2, "ParRunner round profile diverged for seed {seed}");
    }
}

#[test]
fn par_runner_is_thread_count_invariant_on_full_coin_gen() {
    // The pool width is pure mechanism: 1, 2, or 8 workers must yield the
    // same bytes the single-threaded executor produces.
    let seed = 42u64;
    let stepped = summarize(dprbg::sim::StepRunner::new(N, seed).run(machine_fleet(seed)));
    for threads in [1usize, 2, 8] {
        let parallel = summarize(
            dprbg::sim::ParRunner::new(N, seed).with_threads(threads).run(machine_fleet(seed)),
        );
        assert_eq!(stepped, parallel, "{threads}-thread pool diverged from StepRunner");
    }
}

#[test]
fn machines_agree_with_blocking_shims() {
    let seed = 42u64;
    let (machine_bytes, machine_report, _) =
        summarize(dprbg::sim::StepRunner::new(N, seed).run(machine_fleet(seed)));
    let (blocking_bytes, blocking_report) = blocking_pipeline(seed);
    assert_eq!(machine_bytes, blocking_bytes, "machine vs blocking transcript");
    assert_eq!(machine_report, blocking_report, "machine vs blocking cost report");
}

#[test]
fn step_runner_runs_coin_gen_at_n61() {
    // The scale target the single-threaded executor exists for (ISSUE 2 /
    // ROADMAP "Scenario breadth"): full Coin-Gen plus expose-every-coin at
    // n = 61, t = 10, on one thread. GF(2^8) keeps the n² Berlekamp–Welch
    // decodes cheap while still holding 61 distinct evaluation points.
    type G = Gf2k<8>;
    const BIG_N: usize = 61;
    const BIG_T: usize = 10;
    let params = Params::p2p_model(BIG_N, BIG_T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: 2 };
    let mut wallets: Vec<CoinWallet<G>> = TrustedDealer::deal_wallets::<G>(params, 4, 61);
    let machines: Vec<BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>> = (1..=BIG_N)
        .map(|_| {
            Box::new(PartyMachine::new(cfg, wallets.remove(0)))
                as BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>
        })
        .collect();
    let res = dprbg::sim::StepRunner::new(BIG_N, 1996).run(machines);

    // The work-stealing pool must reproduce the n = 61 run byte for byte —
    // this is the scale it exists for.
    let mut wallets: Vec<CoinWallet<G>> = TrustedDealer::deal_wallets::<G>(params, 4, 61);
    let machines: Vec<BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>> = (1..=BIG_N)
        .map(|_| {
            Box::new(PartyMachine::new(cfg, wallets.remove(0)))
                as BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>
        })
        .collect();
    let par = dprbg::sim::ParRunner::new(BIG_N, 1996).run(machines);
    assert_eq!(res.report, par.report, "ParRunner cost report diverged at n = 61");
    assert_eq!(res.rounds, par.rounds, "ParRunner round profile diverged at n = 61");
    assert_eq!(res.outputs, par.outputs, "ParRunner outputs diverged at n = 61");

    let rounds = res.report.comm.rounds;
    let outputs = res.unwrap_all();
    assert_eq!(outputs.len(), BIG_N);
    let (dealers, attempts, values) = outputs[0].clone();
    assert!(dealers.len() >= BIG_N - 2 * BIG_T, "agreed clique too small");
    assert!(attempts >= 1);
    assert_eq!(values.len(), 2, "every coin in the batch must expose");
    for (id, out) in outputs.iter().enumerate() {
        assert_eq!(
            out,
            &(dealers.clone(), attempts, values.clone()),
            "party {} disagrees with party 1",
            id + 1
        );
    }
    // One thread, n parties: the whole run is just a round count.
    assert!(rounds > 0);
}

#[test]
fn executors_record_identical_logical_traces() {
    // ISSUE 5: a fixed-seed Coin-Gen run traced under both executors must
    // produce byte-identical logical traces — same spans, same phase names,
    // same per-(party, round, phase) cost deltas, same flush stats.
    let cfg = dprbg::sim::TraceConfig::full();
    for seed in [42u64, 1996] {
        let threaded = dprbg::sim::run_machines_traced(N, seed, machine_fleet(seed), cfg);
        let stepped =
            dprbg::sim::StepRunner::new(N, seed).with_trace(cfg).run(machine_fleet(seed));
        let parallel =
            dprbg::sim::ParRunner::new(N, seed).with_trace(cfg).run(machine_fleet(seed));
        let a = threaded.trace.clone().expect("traced threaded run records a trace");
        let b = stepped.trace.clone().expect("traced step run records a trace");
        let c = parallel.trace.clone().expect("traced parallel run records a trace");
        assert!(!a.events.is_empty(), "trace captured no events for seed {seed}");
        assert_eq!(a, b, "logical traces diverged for seed {seed}");
        assert_eq!(b, c, "ParRunner trace diverged from StepRunner for seed {seed}");

        // Byte-identical through the Chrome exporter too, and the export
        // survives a parse → re-emit round trip.
        let ja = dprbg::trace::to_chrome_json(&a);
        let jb = dprbg::trace::to_chrome_json(&b);
        let jc = dprbg::trace::to_chrome_json(&c);
        assert_eq!(ja, jb, "chrome exports diverged for seed {seed}");
        assert_eq!(jb, jc, "ParRunner chrome export diverged for seed {seed}");
        dprbg::trace::validate_chrome_json(&ja).expect("chrome export validates");

        // Trace cost attribution must reconcile exactly with the run's
        // CostReport ledger: span deltas sum to each party's total.
        for res in [&threaded, &stepped, &parallel] {
            let trace = res.trace.as_ref().unwrap();
            let per = trace.per_party_cost(N);
            assert_eq!(per.len(), res.report.per_party.len());
            for (traced, ledger) in per.iter().zip(res.report.per_party.iter()) {
                assert_eq!(
                    traced, &ledger.cost,
                    "trace cost for party {} disagrees with CostReport (seed {seed})",
                    ledger.party
                );
            }
        }

        // Tracing must not perturb the run itself.
        let untraced = summarize(run_machines(N, seed, machine_fleet(seed)));
        let traced = summarize(threaded);
        assert_eq!(untraced.0, traced.0, "tracing changed the transcript");
        assert_eq!(untraced.1, traced.1, "tracing changed the cost report");
    }
}
