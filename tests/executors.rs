//! Cross-executor equivalence of the sans-IO round engine.
//!
//! The same `RoundMachine` fleet must behave identically under the
//! deterministic single-threaded [`StepRunner`] and the work-stealing
//! `ParRunner`: byte-identical transcripts, identical [`CostReport`]s,
//! identical per-round delivery profiles, identical logical traces.
//! A large-n smoke test then exercises the scale the executors exist
//! for: full Coin-Gen at n = 61, t = 10. Committee-sampled Coin-Gen
//! and the ported baseline protocols get the same parity treatment,
//! and the committee election itself is pinned as deterministic and
//! unbiased.

use std::collections::VecDeque;

use dprbg::core::{
    committee_threshold, elect_committee, CoinGenConfig, CoinGenMachine, CoinGenMsg,
    CoinWallet, CommitteeCoin, CommitteeError, CommitteeMsg, ExposeMachine, ExposeVia, Params,
    SealedShare, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::metrics::CostReport;
use dprbg::sim::{
    BoxedMachine, ParRunner, RoundMachine, RoundProfile, RoundView, RunResult, Step, StepRunner,
};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

const N: usize = 7;
const T: usize = 1;
const BATCH: usize = 8;

/// One party's observable outcome: agreed dealers, leader-election
/// attempts, and every coin in the batch exposed to a value.
type PartyTranscript = (Vec<usize>, usize, Vec<F>);

/// Coin-Gen followed by Coin-Expose of every sealed coin, as a single
/// composed round machine.
struct PartyMachine<G: Field> {
    t: usize,
    stage: Stage<G>,
}

enum Stage<G: Field> {
    Coin(CoinGenMachine<CoinGenMsg<G>, G>),
    Expose {
        expose: ExposeMachine<CoinGenMsg<G>, G>,
        queue: VecDeque<SealedShare<G>>,
        dealers: Vec<usize>,
        attempts: usize,
        values: Vec<G>,
    },
    Finished,
}

impl<G: Field> PartyMachine<G> {
    fn new(cfg: CoinGenConfig, wallet: CoinWallet<G>) -> Self {
        PartyMachine {
            t: cfg.params.t,
            stage: Stage::Coin(CoinGenMachine::new(cfg, wallet)),
        }
    }
}

impl<G: Field> RoundMachine<CoinGenMsg<G>> for PartyMachine<G> {
    type Output = (Vec<usize>, usize, Vec<G>);

    fn round(&mut self, mut view: RoundView<'_, CoinGenMsg<G>>) -> Step<CoinGenMsg<G>, Self::Output> {
        match std::mem::replace(&mut self.stage, Stage::Finished) {
            Stage::Coin(mut cg) => match cg.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = Stage::Coin(cg);
                    Step::Continue(out)
                }
                Step::Done((_, res)) => {
                    let batch = res.expect("coin generation succeeds");
                    let mut queue: VecDeque<SealedShare<G>> = batch.shares.into_iter().collect();
                    let first = queue.pop_front().expect("batch is non-empty");
                    let mut expose = ExposeMachine::new(first, self.t, ExposeVia::PointToPoint);
                    let Step::Continue(out) = expose.round(view.reborrow()) else {
                        unreachable!("coin expose sends before it can decode");
                    };
                    self.stage = Stage::Expose {
                        expose,
                        queue,
                        dealers: batch.dealers,
                        attempts: batch.attempts,
                        values: Vec::new(),
                    };
                    Step::Continue(out)
                }
            },
            Stage::Expose { mut expose, mut queue, dealers, attempts, mut values } => {
                match expose.round(view.reborrow()) {
                    Step::Continue(out) => {
                        self.stage = Stage::Expose { expose, queue, dealers, attempts, values };
                        Step::Continue(out)
                    }
                    Step::Done(res) => {
                        values.push(res.expect("expose succeeds"));
                        match queue.pop_front() {
                            Some(share) => {
                                let mut next =
                                    ExposeMachine::new(share, self.t, ExposeVia::PointToPoint);
                                let Step::Continue(out) = next.round(view.reborrow()) else {
                                    unreachable!("coin expose sends before it can decode");
                                };
                                self.stage =
                                    Stage::Expose { expose: next, queue, dealers, attempts, values };
                                Step::Continue(out)
                            }
                            None => Step::Done((dealers, attempts, values)),
                        }
                    }
                }
            }
            Stage::Finished => panic!("PartyMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            Stage::Coin(cg) => cg.phase_name(),
            Stage::Expose { expose, .. } => expose.phase_name(),
            Stage::Finished => "finished",
        }
    }
}

fn machine_fleet(seed: u64) -> Vec<BoxedMachine<M, PartyTranscript>> {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: BATCH };
    let mut wallets: Vec<CoinWallet<F>> =
        TrustedDealer::deal_wallets::<F>(params, 4 + T, seed ^ 0xA11CE);
    (1..=N)
        .map(|_| {
            Box::new(PartyMachine::new(cfg, wallets.remove(0))) as BoxedMachine<M, PartyTranscript>
        })
        .collect()
}

/// Canonical transcript bytes, same encoding as `tests/determinism.rs`.
fn transcript_bytes(outputs: Vec<PartyTranscript>) -> Vec<u8> {
    let mut bytes = Vec::new();
    for (dealers, attempts, values) in outputs {
        bytes.push(dealers.len() as u8);
        bytes.extend(dealers.iter().map(|&d| d as u8));
        bytes.extend((attempts as u32).to_le_bytes());
        for v in &values {
            bytes.extend(&v.to_u64().to_le_bytes()[..F::wire_bytes_static()]);
        }
    }
    bytes
}

fn summarize(res: RunResult<PartyTranscript>) -> (Vec<u8>, CostReport, Vec<RoundProfile>) {
    let report = res.report.clone();
    let rounds = res.rounds.clone();
    (transcript_bytes(res.unwrap_all()), report, rounds)
}

#[test]
fn executors_agree_on_full_coin_gen() {
    for seed in [3u64, 42, 1996] {
        let stepped = summarize(StepRunner::new(N, seed).run(machine_fleet(seed)));
        let parallel = summarize(ParRunner::new(N, seed).run(machine_fleet(seed)));
        assert!(!stepped.0.is_empty(), "pipeline produced an empty transcript");
        assert_eq!(stepped.0, parallel.0, "ParRunner transcript diverged for seed {seed}");
        assert_eq!(stepped.1, parallel.1, "ParRunner cost report diverged for seed {seed}");
        assert_eq!(stepped.2, parallel.2, "ParRunner round profile diverged for seed {seed}");
    }
}

#[test]
fn par_runner_is_thread_count_invariant_on_full_coin_gen() {
    // The pool width is pure mechanism: 1, 2, or 8 workers must yield the
    // same bytes the single-threaded executor produces.
    let seed = 42u64;
    let stepped = summarize(StepRunner::new(N, seed).run(machine_fleet(seed)));
    for threads in [1usize, 2, 8] {
        let parallel =
            summarize(ParRunner::new(N, seed).with_threads(threads).run(machine_fleet(seed)));
        assert_eq!(stepped, parallel, "{threads}-thread pool diverged from StepRunner");
    }
}

#[test]
fn step_runner_runs_coin_gen_at_n61() {
    // The scale target the single-threaded executor exists for (ROADMAP
    // "Scenario breadth"): full Coin-Gen plus expose-every-coin at
    // n = 61, t = 10, on one thread. GF(2^8) keeps the n² Berlekamp–Welch
    // decodes cheap while still holding 61 distinct evaluation points.
    type G = Gf2k<8>;
    const BIG_N: usize = 61;
    const BIG_T: usize = 10;
    let params = Params::p2p_model(BIG_N, BIG_T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: 2 };
    let mut wallets: Vec<CoinWallet<G>> = TrustedDealer::deal_wallets::<G>(params, 4, 61);
    let machines: Vec<BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>> = (1..=BIG_N)
        .map(|_| {
            Box::new(PartyMachine::new(cfg, wallets.remove(0)))
                as BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>
        })
        .collect();
    let res = StepRunner::new(BIG_N, 1996).run(machines);

    // The work-stealing pool must reproduce the n = 61 run byte for byte —
    // this is the scale it exists for.
    let mut wallets: Vec<CoinWallet<G>> = TrustedDealer::deal_wallets::<G>(params, 4, 61);
    let machines: Vec<BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>> = (1..=BIG_N)
        .map(|_| {
            Box::new(PartyMachine::new(cfg, wallets.remove(0)))
                as BoxedMachine<CoinGenMsg<G>, (Vec<usize>, usize, Vec<G>)>
        })
        .collect();
    let par = ParRunner::new(BIG_N, 1996).run(machines);
    assert_eq!(res.report, par.report, "ParRunner cost report diverged at n = 61");
    assert_eq!(res.rounds, par.rounds, "ParRunner round profile diverged at n = 61");
    assert_eq!(res.outputs, par.outputs, "ParRunner outputs diverged at n = 61");

    let rounds = res.report.comm.rounds;
    let outputs = res.unwrap_all();
    assert_eq!(outputs.len(), BIG_N);
    let (dealers, attempts, values) = outputs[0].clone();
    assert!(dealers.len() >= BIG_N - 2 * BIG_T, "agreed clique too small");
    assert!(attempts >= 1);
    assert_eq!(values.len(), 2, "every coin in the batch must expose");
    for (id, out) in outputs.iter().enumerate() {
        assert_eq!(
            out,
            &(dealers.clone(), attempts, values.clone()),
            "party {} disagrees with party 1",
            id + 1
        );
    }
    // One thread, n parties: the whole run is just a round count.
    assert!(rounds > 0);
}

#[test]
fn executors_record_identical_logical_traces() {
    // A fixed-seed Coin-Gen run traced under both executors must produce
    // byte-identical logical traces — same spans, same phase names, same
    // per-(party, round, phase) cost deltas, same flush stats.
    let cfg = dprbg::sim::TraceConfig::full();
    for seed in [42u64, 1996] {
        let stepped = StepRunner::new(N, seed).with_trace(cfg).run(machine_fleet(seed));
        let parallel = ParRunner::new(N, seed).with_trace(cfg).run(machine_fleet(seed));
        let b = stepped.trace.clone().expect("traced step run records a trace");
        let c = parallel.trace.clone().expect("traced parallel run records a trace");
        assert!(!b.events.is_empty(), "trace captured no events for seed {seed}");
        assert_eq!(b, c, "ParRunner trace diverged from StepRunner for seed {seed}");

        // Byte-identical through the Chrome exporter too, and the export
        // survives a parse → re-emit round trip.
        let jb = dprbg::trace::to_chrome_json(&b);
        let jc = dprbg::trace::to_chrome_json(&c);
        assert_eq!(jb, jc, "ParRunner chrome export diverged for seed {seed}");
        dprbg::trace::validate_chrome_json(&jb).expect("chrome export validates");

        // Trace cost attribution must reconcile exactly with the run's
        // CostReport ledger: span deltas sum to each party's total.
        for res in [&stepped, &parallel] {
            let trace = res.trace.as_ref().unwrap();
            let per = trace.per_party_cost(N);
            assert_eq!(per.len(), res.report.per_party.len());
            for (traced, ledger) in per.iter().zip(res.report.per_party.iter()) {
                assert_eq!(
                    traced, &ledger.cost,
                    "trace cost for party {} disagrees with CostReport (seed {seed})",
                    ledger.party
                );
            }
        }

        // Tracing must not perturb the run itself.
        let untraced = summarize(StepRunner::new(N, seed).run(machine_fleet(seed)));
        let traced = summarize(stepped);
        assert_eq!(untraced.0, traced.0, "tracing changed the transcript");
        assert_eq!(untraced.1, traced.1, "tracing changed the cost report");
    }
}

/// A full committee-sampled Coin-Gen fleet: members with rank-dealt
/// wallets, outsiders collecting member reports.
fn committee_fleet(
    n: usize,
    c: usize,
    m: usize,
    election_seed: u64,
    wallet_seed: u64,
) -> Vec<BoxedMachine<CommitteeMsg<F>, Result<Vec<F>, CommitteeError>>> {
    let committee = elect_committee(election_seed, n, c);
    let t_c = committee_threshold(c);
    let params = Params::p2p_model(c, t_c).expect("c > 6 t_c by construction");
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F>> =
        TrustedDealer::deal_wallets::<F>(params, 4 + t_c, wallet_seed);
    (1..=n)
        .map(|id| {
            let wallet = committee
                .iter()
                .position(|&member| member == id)
                .map(|rank| std::mem::take(&mut wallets[rank]));
            Box::new(CommitteeCoin::new(committee.clone(), id, cfg, wallet, 200))
                as BoxedMachine<CommitteeMsg<F>, _>
        })
        .collect()
}

#[test]
fn committee_coin_gen_agrees_across_executors() {
    // Committee of 13 inside 31 parties: the stepped and the parallel
    // executor must agree on every party's delivered batch and on the
    // cost ledger, and the quorum must actually deliver.
    let (n, c, m) = (31, 13, 4);
    for seed in [5u64, 77] {
        let stepped = StepRunner::new(n, seed).run(committee_fleet(n, c, m, seed, seed + 1));
        let parallel =
            ParRunner::new(n, seed).with_threads(4).run(committee_fleet(n, c, m, seed, seed + 1));
        assert_eq!(stepped.outputs, parallel.outputs, "outputs diverged for seed {seed}");
        assert_eq!(stepped.report, parallel.report, "cost reports diverged for seed {seed}");

        let first = stepped.outputs[0]
            .as_ref()
            .expect("party 1 completes")
            .as_ref()
            .expect("committee reaches quorum")
            .clone();
        assert_eq!(first.len(), m);
        for (i, out) in stepped.outputs.iter().enumerate() {
            let batch = out.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(batch, &first, "party {} disagrees with party 1", i + 1);
        }
    }
}

#[test]
fn ported_baseline_fleets_run_on_the_step_runner() {
    use dprbg::baselines::feldman::{Exp, FeldmanVerdict};
    use dprbg::baselines::{
        from_scratch_coin, CcdMachine, CcdMsg, CcdOpts, FeldmanMachine, FeldmanMsg, FromScratchMsg,
    };
    use dprbg::core::VssVerdict;

    let n = 7;
    let t = 1;

    // CCD cut-and-choose VSS: honest dealer, everyone accepts.
    let opts = CcdOpts { rounds: 16, challenge_seed: 9 };
    let machines: Vec<BoxedMachine<CcdMsg<F>, (VssVerdict, F)>> = (1..=n)
        .map(|id| {
            let secret = (id == 1).then(|| F::from_u64(7));
            Box::new(CcdMachine::new(1, secret, t, opts)) as BoxedMachine<CcdMsg<F>, _>
        })
        .collect();
    let outs = StepRunner::new(n, 9).run(machines).unwrap_all();
    assert!(outs.iter().all(|(v, _)| *v == VssVerdict::Accept), "CCD fleet rejects");

    // Feldman VSS in the exponent: honest dealer, everyone accepts.
    let machines: Vec<BoxedMachine<FeldmanMsg, (FeldmanVerdict, Exp)>> = (1..=n)
        .map(|id| {
            let secret = (id == 1).then(|| Exp::from_u64(13));
            Box::new(FeldmanMachine::new(1, secret, t)) as BoxedMachine<FeldmanMsg, _>
        })
        .collect();
    let outs = StepRunner::new(n, 10).run(machines).unwrap_all();
    assert!(outs.iter().all(|(v, _)| *v == FeldmanVerdict::Accept), "Feldman fleet rejects");

    // From-scratch single coin: unanimous non-None value.
    let machines: Vec<BoxedMachine<FromScratchMsg<F>, Option<F>>> = (1..=n)
        .map(|id| {
            Box::new(from_scratch_coin::<F>(id, t, 16, 11)) as BoxedMachine<FromScratchMsg<F>, _>
        })
        .collect();
    let outs = StepRunner::new(n, 11).run(machines).unwrap_all();
    let coin = outs[0].expect("from-scratch coin decodes");
    assert!(outs.iter().all(|o| *o == Some(coin)), "from-scratch coin not unanimous");
}

#[test]
fn committee_election_is_deterministic_and_well_formed() {
    for seed in 0..50u64 {
        let a = elect_committee(seed, 129, 31);
        let b = elect_committee(seed, 129, 31);
        assert_eq!(a, b, "same seed must elect the same committee");
        assert_eq!(a.len(), 31);
        // Sorted, distinct, in range.
        assert!(a.windows(2).all(|w| w[0] < w[1]), "committee not sorted/distinct");
        assert!(a.iter().all(|&p| (1..=129).contains(&p)), "member out of range");
    }
    assert_ne!(
        elect_committee(1, 129, 31),
        elect_committee(2, 129, 31),
        "different beacon outputs should (overwhelmingly) elect different committees"
    );
}

#[test]
fn committee_election_shows_no_positional_bias() {
    // Every party should be sampled with frequency ≈ c/n across seeds.
    // 400 elections of 5-of-20 → expected 100 inclusions per party;
    // a ±40 window is > 4.5 binomial standard deviations.
    let (n, c, trials) = (20usize, 5usize, 400u64);
    let mut counts = vec![0usize; n + 1];
    for seed in 0..trials {
        for p in elect_committee(0xB1A5 + seed, n, c) {
            counts[p] += 1;
        }
    }
    let expected = trials as usize * c / n;
    for p in 1..=n {
        assert!(
            (counts[p] as i64 - expected as i64).unsigned_abs() as usize <= 40,
            "party {p} elected {} times, expected ≈ {expected}",
            counts[p]
        );
    }
}
