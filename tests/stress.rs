//! Long-horizon stress: the full system — bootstrapped beacon, refills,
//! proactive refreshes — running for many epochs under a persistent
//! Byzantine fault, in a single network execution.

use dprbg::core::{
    Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeMsg, Params,
    TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{run_network, FaultPlan, PartyCtx};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

#[test]
fn epochs_of_draws_refills_and_refreshes_under_a_fault() {
    let n = 7;
    let t = 1;
    let epochs = 6;
    let draws_per_epoch = 8;
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 16,
    });
    let mut wallets: Vec<CoinWallet<F>> = TrustedDealer::deal_wallets::<F>(params, 6, 77);
    let plan = FaultPlan::explicit(n, vec![4]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if !plan.is_faulty(id) {
            honest_wallets.push(w);
        }
    }

    let behaviors = plan.behaviors::<M, Option<Vec<u64>>>(
        |_| {
            let mut beacon = Bootstrap::new(cfg, honest_wallets.remove(0));
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let mut stream = Vec::new();
                for _epoch in 0..epochs {
                    for _ in 0..draws_per_epoch {
                        stream.push(beacon.draw(ctx).ok()?.to_u64());
                    }
                    // Epoch boundary: re-randomize every remaining share.
                    let report = beacon.refresh(ctx).ok()?;
                    assert!(report.coins_refreshed > 0);
                    assert!(!report.dealers.contains(&4), "silent fault never a dealer");
                }
                Some(stream)
            })
        },
        |_| {
            Box::new(|ctx| {
                // A persistent low-effort Byzantine: spams corrupt expose
                // shares for a while, then goes quiet.
                for i in 0..20u64 {
                    ctx.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(i * 1337))));
                    let _ = ctx.next_round();
                }
                None
            })
        },
    );
    let res = run_network(n, 999, behaviors);
    let mut streams = plan
        .honest()
        .map(|id| {
            res.outputs[id - 1]
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} panicked"))
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} aborted"))
        })
        .collect::<Vec<_>>();
    let first = streams.remove(0);
    assert_eq!(first.len(), epochs * draws_per_epoch);
    for s in streams {
        assert_eq!(s, first, "the beacon stream must be unanimous");
    }
    // Randomness sanity over the 48-coin stream.
    let ones = first.iter().filter(|v| *v & 1 == 1).count();
    assert!((8..=40).contains(&ones), "low-bit balance {ones}/48");
}

#[test]
fn refresh_interleaves_with_generation_thirteen_parties() {
    // n = 13, t = 2: draw → refresh → draw, all honest, checking that
    // refreshed shares keep exposing correctly after subsequent refills.
    let n = 13;
    let t = 2;
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 12,
    });
    let mut wallets: Vec<CoinWallet<F>> = TrustedDealer::deal_wallets::<F>(params, 8, 13);
    let behaviors: Vec<dprbg::sim::Behavior<M, Vec<u64>>> = (0..n)
        .map(|_| {
            let mut beacon = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(move |ctx: &mut PartyCtx<M>| {
                let mut out = Vec::new();
                for _ in 0..3 {
                    for _ in 0..5 {
                        out.push(beacon.draw(ctx).unwrap().to_u64());
                    }
                    beacon.refresh(ctx).unwrap();
                }
                out
            }) as dprbg::sim::Behavior<M, Vec<u64>>
        })
        .collect();
    let outs = run_network(n, 131, behaviors).unwrap_all();
    assert_eq!(outs[0].len(), 15);
    assert!(outs.iter().all(|o| o == &outs[0]));
}
