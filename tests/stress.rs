//! Long-horizon stress: the full system — bootstrapped beacon, refills,
//! proactive refreshes — running for many epochs under a persistent
//! Byzantine fault, in a single executor run.

use dprbg::core::{
    Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeMsg, Params,
    TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{
    from_fn, looping, BoxedMachine, FaultPlan, LoopControl, MachineExt, RoundMachine, RoundView,
    Step, StepRunner,
};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

/// Epoch loop: `draws_per_epoch` draws, then a proactive refresh, for
/// `epochs` epochs — all in the loop transitions, which cost no rounds.
fn epoch_machine(
    beacon: Bootstrap<F>,
    epochs: usize,
    draws_per_epoch: usize,
    banned_dealer: Option<usize>,
) -> impl RoundMachine<M, Output = Vec<u64>> {
    looping(
        (beacon, Vec::new(), 0usize),
        move |(b, stream, refreshed): (Bootstrap<F>, Vec<u64>, usize)| {
            if refreshed == epochs {
                return LoopControl::Break(stream);
            }
            if stream.len() == (refreshed + 1) * draws_per_epoch {
                // Epoch boundary: re-randomize every remaining share.
                LoopControl::Continue(Box::new(b.refresh().map(move |(b, res)| {
                    let report = res.expect("refresh succeeds");
                    assert!(report.coins_refreshed > 0);
                    if let Some(bad) = banned_dealer {
                        assert!(!report.dealers.contains(&bad), "silent fault never a dealer");
                    }
                    (b, stream, refreshed + 1)
                })))
            } else {
                LoopControl::Continue(Box::new(b.draw().map(move |(b, res)| {
                    let mut stream = stream;
                    stream.push(res.expect("draw succeeds").to_u64());
                    (b, stream, refreshed)
                })))
            }
        },
    )
}

#[test]
fn epochs_of_draws_refills_and_refreshes_under_a_fault() {
    let n = 7;
    let t = 1;
    let epochs = 6;
    let draws_per_epoch = 8;
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 16,
    });
    let mut wallets: Vec<CoinWallet<F>> = TrustedDealer::deal_wallets::<F>(params, 6, 77);
    let plan = FaultPlan::explicit(n, vec![4]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if !plan.is_faulty(id) {
            honest_wallets.push(w);
        }
    }

    let machines = plan.machines::<M, Option<Vec<u64>>>(
        |_| {
            let beacon = Bootstrap::new(cfg, honest_wallets.remove(0));
            Box::new(epoch_machine(beacon, epochs, draws_per_epoch, Some(4)).map(Some))
        },
        |_| {
            // A persistent low-effort Byzantine: spams corrupt expose
            // shares for a while, then goes quiet.
            let mut round = 0u64;
            Box::new(
                from_fn(move |view: RoundView<'_, M>| {
                    if round < 20 {
                        let mut out = view.outbox();
                        out.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(round * 1337))));
                        round += 1;
                        Step::Continue(out)
                    } else {
                        Step::Done(None)
                    }
                })
                .labelled("expose-spammer"),
            )
        },
    );
    let res = StepRunner::new(n, 999).run(machines);
    let mut streams = plan
        .honest()
        .map(|id| {
            res.outputs[id - 1]
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} panicked"))
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} aborted"))
        })
        .collect::<Vec<_>>();
    let first = streams.remove(0);
    assert_eq!(first.len(), epochs * draws_per_epoch);
    for s in streams {
        assert_eq!(s, first, "the beacon stream must be unanimous");
    }
    // Randomness sanity over the 48-coin stream.
    let ones = first.iter().filter(|v| *v & 1 == 1).count();
    assert!((8..=40).contains(&ones), "low-bit balance {ones}/48");
}

#[test]
fn refresh_interleaves_with_generation_thirteen_parties() {
    // n = 13, t = 2: draw → refresh → draw, all honest, checking that
    // refreshed shares keep exposing correctly after subsequent refills.
    let n = 13;
    let t = 2;
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 12,
    });
    let mut wallets: Vec<CoinWallet<F>> = TrustedDealer::deal_wallets::<F>(params, 8, 13);
    let machines: Vec<BoxedMachine<M, Vec<u64>>> = (0..n)
        .map(|_| {
            let beacon = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(epoch_machine(beacon, 3, 5, None)) as BoxedMachine<M, Vec<u64>>
        })
        .collect();
    let outs = StepRunner::new(n, 131).run(machines).unwrap_all();
    assert_eq!(outs[0].len(), 15);
    assert!(outs.iter().all(|o| o == &outs[0]));
}
