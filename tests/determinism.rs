//! Bit-reproducibility of the end-to-end coin-generation pipeline.
//!
//! The paper's claims are error probabilities and operation counts; both
//! are only auditable if a run can be replayed exactly. With the in-tree
//! ChaCha12 [`StdRng`](dprbg_rng::rngs::StdRng) every source of
//! randomness in the stack — dealing, per-party executor streams,
//! protocol coin draws — is a pure function of the seed, so two runs from
//! the same seed must produce **byte-identical coin transcripts** and
//! **identical cost counters**. These tests pin that contract for three
//! seeds (and check distinct seeds actually diverge).

use dprbg::core::{
    CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, ExposeMachine, ExposeVia, Params,
    SealedShare, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::metrics::CostReport;
use dprbg::sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

const N: usize = 7;
const T: usize = 1;
const BATCH: usize = 8;

/// One party's observable outcome of the E2E run.
type PartyTranscript = (Vec<usize>, usize, Vec<F>);

/// Expose every share of a batch in order, collecting the coin values.
fn expose_all(t: usize, mut shares: Vec<SealedShare<F>>) -> impl RoundMachine<M, Output = Vec<F>> {
    shares.reverse();
    looping(
        (shares, Vec::new()),
        move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
            Some(s) => LoopControl::Continue(Box::new(
                ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                    let mut vals = vals;
                    vals.push(res.expect("expose succeeds"));
                    (stack, vals)
                }),
            )),
            None => LoopControl::Break(vals),
        },
    )
}

/// Run dealing → Coin-Gen → expose-every-coin and serialize what each
/// party observed, plus the run's aggregated cost report.
fn coin_pipeline(seed: u64) -> (Vec<u8>, CostReport) {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: BATCH };
    let mut wallets: Vec<CoinWallet<F>> =
        TrustedDealer::deal_wallets::<F>(params, 4 + T, seed ^ 0xA11CE);
    let machines: Vec<BoxedMachine<M, PartyTranscript>> = (1..=N)
        .map(|_| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0)).then(move |(_w, res)| {
                let batch = res.expect("coin generation succeeds");
                let dealers = batch.dealers.clone();
                let attempts = batch.attempts;
                expose_all(T, batch.shares).map(move |values| (dealers, attempts, values))
            });
            Box::new(machine) as BoxedMachine<M, PartyTranscript>
        })
        .collect();
    let res = StepRunner::new(N, seed).run(machines);
    let report = res.report.clone();

    // Canonical transcript bytes: per party, the dealer set, the attempt
    // count, and every exposed coin in its wire encoding.
    let mut bytes = Vec::new();
    for (dealers, attempts, values) in res.unwrap_all() {
        bytes.push(dealers.len() as u8);
        bytes.extend(dealers.iter().map(|&d| d as u8));
        bytes.extend((attempts as u32).to_le_bytes());
        for v in &values {
            bytes.extend(&v.to_u64().to_le_bytes()[..F::wire_bytes_static()]);
        }
    }
    (bytes, report)
}

#[test]
fn same_seed_gives_identical_transcripts_and_costs() {
    for seed in [1u64, 42, 1996] {
        let (bytes_a, report_a) = coin_pipeline(seed);
        let (bytes_b, report_b) = coin_pipeline(seed);
        assert_eq!(bytes_a, bytes_b, "transcript diverged for seed {seed}");
        assert_eq!(report_a, report_b, "cost counters diverged for seed {seed}");
        assert!(!bytes_a.is_empty(), "pipeline produced an empty transcript");
    }
}

#[test]
fn different_seeds_give_different_transcripts() {
    let (a, _) = coin_pipeline(1);
    let (b, _) = coin_pipeline(2);
    assert_ne!(a, b, "independent seeds must not collide on full transcripts");
}

#[test]
fn transcript_has_all_parties_and_coins() {
    // Shape check so the byte-equality above cannot pass vacuously: the
    // transcript must contain N party sections of BATCH exposed coins.
    let (_, report) = coin_pipeline(7);
    assert_eq!(report.per_party.len(), N);
    let (bytes, _) = coin_pipeline(7);
    // Each party contributes ≥ 1 (dealer count) + 4 (attempts) +
    // BATCH·wire bytes.
    let min_len = N * (1 + 4 + BATCH * F::wire_bytes_static());
    assert!(
        bytes.len() >= min_len,
        "transcript too short: {} < {min_len}",
        bytes.len()
    );
}
