//! Adversarial integration tests: every protocol driven with explicit
//! Byzantine strategies at the model's fault bound.

use dprbg::core::{
    coin_expose, coin_gen, BitGenMsg, CoinBatch, CoinGenConfig, CoinGenMsg, CoinWallet,
    ExposeMsg, ExposeVia, Params, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::protocols::BaMsg;
use dprbg::sim::{run_network, Behavior, FaultPlan};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

fn setup(n: usize, t: usize, m: usize, coins: usize, seed: u64) -> (CoinGenConfig, Vec<CoinWallet<F>>) {
    let params = Params::p2p_model(n, t).unwrap();
    (
        CoinGenConfig { params, batch_size: m },
        TrustedDealer::deal_wallets::<F>(params, coins, seed),
    )
}

fn honest(
    cfg: CoinGenConfig,
    mut wallet: CoinWallet<F>,
) -> Behavior<M, Option<CoinBatch<F>>> {
    Box::new(move |ctx| coin_gen(ctx, &cfg, &mut wallet).ok())
}

/// All honest batches must agree on dealers and decode consistently.
fn assert_honest_agreement(
    res: &dprbg::sim::RunResult<Option<CoinBatch<F>>>,
    plan: &FaultPlan,
    t: usize,
    m: usize,
) {
    let batches: Vec<&CoinBatch<F>> = plan
        .honest()
        .map(|id| {
            res.outputs[id - 1]
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} panicked"))
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} failed to seal"))
        })
        .collect();
    let dealers = &batches[0].dealers;
    assert!(dealers.len() >= plan.n() - 2 * t);
    for b in &batches {
        assert_eq!(&b.dealers, dealers, "dealer-set agreement");
        assert_eq!(b.len(), m);
    }
    // Each coin decodes from the honest contributions.
    for h in 0..m {
        let pts: Vec<(F, F)> = plan
            .honest()
            .filter_map(|id| {
                res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap().shares[h]
                    .sigma
                    .map(|s| (F::element(id as u64), s))
            })
            .collect();
        assert!(pts.len() > 2 * t, "enough honest contributors");
        dprbg::core::decode_coin(&pts, t).expect("coin decodes");
    }
}

#[test]
fn equivocating_dealer_excluded_or_consistent() {
    // The faulty dealer sends *different* polynomial shares to different
    // parties (a classic split attack on the agreement graph).
    let n = 7;
    let t = 1;
    let m = 3;
    let (cfg, mut wallets) = setup(n, t, m, 6, 11);
    let plan = FaultPlan::explicit(n, vec![4]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if !plan.is_faulty(id) {
            honest_wallets.push(w);
        }
    }
    let behaviors = plan.behaviors::<M, Option<CoinBatch<F>>>(
        |_| honest(cfg, honest_wallets.remove(0)),
        |_| {
            Box::new(move |ctx| {
                let n = ctx.n();
                // Split dealing: parties 1..=3 get shares of one random
                // polynomial set, 4..=n of another.
                let mk = |rng: &mut dprbg_rng::rngs::StdRng| {
                    (0..3)
                        .map(|_| dprbg::poly::Poly::<F>::random(1, rng))
                        .collect::<Vec<_>>()
                };
                let set_a = mk(ctx.rng());
                let set_b = mk(ctx.rng());
                let blind = dprbg::poly::Poly::<F>::random(1, ctx.rng());
                for i in 1..=n {
                    let x = F::element(i as u64);
                    let polys = if i <= 3 { &set_a } else { &set_b };
                    ctx.send(
                        i,
                        CoinGenMsg::BitGen(BitGenMsg::Deal {
                            alphas: polys.iter().map(|f| f.eval(x)).collect(),
                            gamma: blind.eval(x),
                        }),
                    );
                }
                let _ = ctx.next_round();
                // Participate in expose honestly-ish, then go silent.
                let _ = ctx.next_round();
                None
            })
        },
    );
    let res = run_network(n, 12, behaviors);
    assert_honest_agreement(&res, &plan, t, m);
}

#[test]
fn byzantine_ba_voter_cannot_split_decision() {
    // The faulty party behaves through Bit-Gen, then lies in grade-cast
    // confidence and splits its BA votes.
    let n = 7;
    let t = 1;
    let m = 2;
    let (cfg, mut wallets) = setup(n, t, m, 6, 21);
    let plan = FaultPlan::explicit(n, vec![6]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    let mut faulty_wallet = CoinWallet::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if plan.is_faulty(id) {
            faulty_wallet = w;
        } else {
            honest_wallets.push(w);
        }
    }
    let behaviors = plan.behaviors::<M, Option<CoinBatch<F>>>(
        |_| honest(cfg, honest_wallets.remove(0)),
        |_| {
            let mut w = faulty_wallet.clone();
            Box::new(move |ctx| {
                // Honest Bit-Gen participation (rounds 1-3).
                let coin = w.pop().ok()?;
                let dealers: Vec<usize> = (1..=ctx.n()).collect();
                let _ =
                    dprbg::core::bit_gen_all::<M, F>(ctx, 1, 2, coin, &dealers).ok()?;
                // Skip grade-cast (3 rounds of silence).
                for _ in 0..3 {
                    let _ = ctx.next_round();
                }
                // Leader expose: send a corrupt share.
                let _ = w.pop();
                ctx.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(999))));
                let _ = ctx.next_round();
                // BA: split votes each round.
                for round in 0..4 {
                    for to in 1..=ctx.n() {
                        let bit = (to + round) % 2 == 0;
                        let msg = if round % 2 == 0 {
                            BaMsg::Suggest(bit)
                        } else {
                            BaMsg::King(bit)
                        };
                        ctx.send(to, CoinGenMsg::Ba(msg));
                    }
                    let _ = ctx.next_round();
                }
                None
            })
        },
    );
    let res = run_network(n, 22, behaviors);
    assert_honest_agreement(&res, &plan, t, m);
}

#[test]
fn faulty_leader_forces_reiteration_lemma8() {
    // Lemma 8: the BA loop repeats only when the selected leader P_l is
    // faulty; the expected number of iterations is constant. Scan seeds
    // until a run needs ≥ 2 attempts, and verify it still succeeds.
    let n = 7;
    let t = 1;
    let m = 2;
    let mut saw_retry = false;
    for seed in 0..40u64 {
        let (cfg, mut wallets) = setup(n, t, m, 8, 1000 + seed);
        let plan = FaultPlan::explicit(n, vec![3]);
        let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
        for id in 1..=n {
            let w = wallets.remove(0);
            if !plan.is_faulty(id) {
                honest_wallets.push(w);
            }
        }
        let behaviors = plan.behaviors::<M, Option<CoinBatch<F>>>(
            |_| honest(cfg, honest_wallets.remove(0)),
            // The faulty party is completely silent: if the leader coin
            // picks it, conf_l = 0 and the BA round fails → re-iterate.
            |_| Box::new(|_ctx| None),
        );
        let res = run_network(n, 2000 + seed, behaviors);
        assert_honest_agreement(&res, &plan, t, m);
        let attempts = res.outputs[0].as_ref().unwrap().as_ref().unwrap().attempts;
        if attempts >= 2 {
            saw_retry = true;
            break;
        }
    }
    assert!(
        saw_retry,
        "within 40 seeds some run must select the faulty leader first (p = 1/7 each)"
    );
}

#[test]
fn two_faults_in_thirteen_party_system() {
    let n = 13;
    let t = 2;
    let m = 3;
    let (cfg, mut wallets) = setup(n, t, m, 8, 31);
    let plan = FaultPlan::explicit(n, vec![2, 9]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if !plan.is_faulty(id) {
            honest_wallets.push(w);
        }
    }
    let behaviors = plan.behaviors::<M, Option<CoinBatch<F>>>(
        |_| honest(cfg, honest_wallets.remove(0)),
        |id| {
            Box::new(move |ctx| {
                // One fault crashes, the other deals garbage then crashes.
                if id == 9 {
                    let n = ctx.n();
                    for i in 1..=n {
                        ctx.send(
                            i,
                            CoinGenMsg::BitGen(BitGenMsg::Deal {
                                alphas: vec![F::from_u64(i as u64); 3],
                                gamma: F::one(),
                            }),
                        );
                    }
                    let _ = ctx.next_round();
                }
                None
            })
        },
    );
    let res = run_network(n, 32, behaviors);
    assert_honest_agreement(&res, &plan, t, m);
}

#[test]
fn exposed_coins_survive_corrupt_shares() {
    // After an honest generation, expose every coin with the adversary
    // contributing corrupted sums: values must still be unanimous.
    let n = 7;
    let t = 1;
    let m = 4;
    let (cfg, mut wallets) = setup(n, t, m, 6, 41);
    let plan = FaultPlan::explicit(n, vec![5]);
    let all_wallets: Vec<CoinWallet<F>> = (1..=n).map(|_| wallets.remove(0)).collect();
    let behaviors = plan.behaviors::<M, Option<Vec<F>>>(
        |id| {
            let mut w = all_wallets[id - 1].clone();
            Box::new(move |ctx| {
                let batch = coin_gen(ctx, &cfg, &mut w).ok()?;
                let vals: Vec<F> = batch
                    .shares
                    .into_iter()
                    .map(|s| coin_expose(ctx, s, 1, ExposeVia::PointToPoint).unwrap())
                    .collect();
                Some(vals)
            })
        },
        |id| {
            let mut w = all_wallets[id - 1].clone();
            Box::new(move |ctx| {
                // Run the generation honestly…
                let batch = coin_gen(ctx, &cfg, &mut w).ok()?;
                // …then corrupt every expose contribution.
                for _ in 0..batch.len() {
                    ctx.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(0xBAD))));
                    let _ = ctx.next_round();
                }
                None
            })
        },
    );
    let res = run_network(n, 42, behaviors);
    let honest_vals: Vec<&Vec<F>> = plan
        .honest()
        .map(|id| res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap())
        .collect();
    assert_eq!(honest_vals[0].len(), m);
    for v in &honest_vals {
        assert_eq!(*v, honest_vals[0], "unanimity under corrupted expose shares");
    }
}
