//! Adversarial integration tests: every protocol driven with explicit
//! Byzantine strategies at the model's fault bound.

use dprbg::core::{
    BitGenMachine, BitGenMode, BitGenMsg, CoinBatch, CoinGenConfig, CoinGenMachine, CoinGenMsg,
    CoinWallet, ExposeMachine, ExposeMsg, ExposeVia, Params, SealedShare, TrustedDealer,
};
use dprbg::field::{Field, Gf2k};
use dprbg::protocols::BaMsg;
use dprbg::sim::{
    from_fn, looping, BoxedMachine, FaultPlan, LoopControl, MachineExt, RoundMachine, RoundView,
    Step, StepRunner,
};

type F = Gf2k<32>;
type M = CoinGenMsg<F>;

fn setup(n: usize, t: usize, m: usize, coins: usize, seed: u64) -> (CoinGenConfig, Vec<CoinWallet<F>>) {
    let params = Params::p2p_model(n, t).unwrap();
    (
        CoinGenConfig { params, batch_size: m },
        TrustedDealer::deal_wallets::<F>(params, coins, seed),
    )
}

fn honest(cfg: CoinGenConfig, wallet: CoinWallet<F>) -> BoxedMachine<M, Option<CoinBatch<F>>> {
    Box::new(CoinGenMachine::new(cfg, wallet).map(|(_w, res)| res.ok()))
}

/// All honest batches must agree on dealers and decode consistently.
fn assert_honest_agreement(
    res: &dprbg::sim::RunResult<Option<CoinBatch<F>>>,
    plan: &FaultPlan,
    t: usize,
    m: usize,
) {
    let batches: Vec<&CoinBatch<F>> = plan
        .honest()
        .map(|id| {
            res.outputs[id - 1]
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} panicked"))
                .as_ref()
                .unwrap_or_else(|| panic!("party {id} failed to seal"))
        })
        .collect();
    let dealers = &batches[0].dealers;
    assert!(dealers.len() >= plan.n() - 2 * t);
    for b in &batches {
        assert_eq!(&b.dealers, dealers, "dealer-set agreement");
        assert_eq!(b.len(), m);
    }
    // Each coin decodes from the honest contributions.
    for h in 0..m {
        let pts: Vec<(F, F)> = plan
            .honest()
            .filter_map(|id| {
                res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap().shares[h]
                    .sigma
                    .map(|s| (F::element(id as u64), s))
            })
            .collect();
        assert!(pts.len() > 2 * t, "enough honest contributors");
        dprbg::core::decode_coin(&pts, t).expect("coin decodes");
    }
}

#[test]
fn equivocating_dealer_excluded_or_consistent() {
    // The faulty dealer sends *different* polynomial shares to different
    // parties (a classic split attack on the agreement graph).
    let n = 7;
    let t = 1;
    let m = 3;
    let (cfg, mut wallets) = setup(n, t, m, 6, 11);
    let plan = FaultPlan::explicit(n, vec![4]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if !plan.is_faulty(id) {
            honest_wallets.push(w);
        }
    }
    let machines = plan.machines::<M, Option<CoinBatch<F>>>(
        |_| honest(cfg, honest_wallets.remove(0)),
        |_| {
            let mut round = 0usize;
            Box::new(
                from_fn(move |view: RoundView<'_, M>| {
                    round += 1;
                    match round {
                        1 => {
                            // Split dealing: parties 1..=3 get shares of one
                            // random polynomial set, 4..=n of another.
                            let mk = |rng: &mut dprbg_rng::rngs::StdRng| {
                                (0..3)
                                    .map(|_| dprbg::poly::Poly::<F>::random(1, rng))
                                    .collect::<Vec<_>>()
                            };
                            let set_a = mk(view.rng);
                            let set_b = mk(view.rng);
                            let blind = dprbg::poly::Poly::<F>::random(1, view.rng);
                            let mut out = view.outbox();
                            for i in 1..=view.n {
                                let x = F::element(i as u64);
                                let polys = if i <= 3 { &set_a } else { &set_b };
                                out.send(
                                    i,
                                    CoinGenMsg::BitGen(BitGenMsg::Deal {
                                        alphas: polys.iter().map(|f| f.eval(x)).collect(),
                                        gamma: blind.eval(x),
                                    }),
                                );
                            }
                            Step::Continue(out)
                        }
                        // Linger silently through the expose, then go quiet.
                        2 => Step::Continue(view.outbox()),
                        _ => Step::Done(None),
                    }
                })
                .labelled("equivocating-dealer"),
            )
        },
    );
    let res = StepRunner::new(n, 12).run(machines);
    assert_honest_agreement(&res, &plan, t, m);
}

#[test]
fn byzantine_ba_voter_cannot_split_decision() {
    // The faulty party behaves through Bit-Gen, then lies in grade-cast
    // confidence and splits its BA votes.
    let n = 7;
    let t = 1;
    let m = 2;
    let (cfg, mut wallets) = setup(n, t, m, 6, 21);
    let plan = FaultPlan::explicit(n, vec![6]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    let mut faulty_wallet = CoinWallet::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if plan.is_faulty(id) {
            faulty_wallet = w;
        } else {
            honest_wallets.push(w);
        }
    }
    let machines = plan.machines::<M, Option<CoinBatch<F>>>(
        |_| honest(cfg, honest_wallets.remove(0)),
        |_| {
            // Honest Bit-Gen participation, then the vote-splitting script.
            let mut w = faulty_wallet.clone();
            let coin = w.pop().expect("faulty wallet seeded");
            let dealers: Vec<usize> = (1..=n).collect();
            let machine = BitGenMachine::new(t, m, coin, dealers, BitGenMode::RandomCoins).then(
                move |_res| {
                    let mut round = 0usize;
                    from_fn(move |view: RoundView<'_, M>| {
                        round += 1;
                        match round {
                            // Skip grade-cast (3 rounds of silence).
                            1..=3 => Step::Continue(view.outbox()),
                            // Leader expose: send a corrupt share.
                            4 => {
                                let mut out = view.outbox();
                                out.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(999))));
                                Step::Continue(out)
                            }
                            // BA: split votes each round.
                            5..=8 => {
                                let r = round - 5;
                                let mut out = view.outbox();
                                for to in 1..=view.n {
                                    let bit = (to + r) % 2 == 0;
                                    let msg = if r % 2 == 0 {
                                        BaMsg::Suggest(bit)
                                    } else {
                                        BaMsg::King(bit)
                                    };
                                    out.send(to, CoinGenMsg::Ba(msg));
                                }
                                Step::Continue(out)
                            }
                            _ => Step::Done(None),
                        }
                    })
                    .labelled("vote-splitter")
                },
            );
            Box::new(machine)
        },
    );
    let res = StepRunner::new(n, 22).run(machines);
    assert_honest_agreement(&res, &plan, t, m);
}

#[test]
fn faulty_leader_forces_reiteration_lemma8() {
    // Lemma 8: the BA loop repeats only when the selected leader P_l is
    // faulty; the expected number of iterations is constant. Scan seeds
    // until a run needs ≥ 2 attempts, and verify it still succeeds.
    let n = 7;
    let t = 1;
    let m = 2;
    let mut saw_retry = false;
    for seed in 0..40u64 {
        let (cfg, mut wallets) = setup(n, t, m, 8, 1000 + seed);
        let plan = FaultPlan::explicit(n, vec![3]);
        let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
        for id in 1..=n {
            let w = wallets.remove(0);
            if !plan.is_faulty(id) {
                honest_wallets.push(w);
            }
        }
        let machines = plan.machines::<M, Option<CoinBatch<F>>>(
            |_| honest(cfg, honest_wallets.remove(0)),
            // The faulty party is completely silent: if the leader coin
            // picks it, conf_l = 0 and the BA round fails → re-iterate.
            |_| Box::new(from_fn(|_view: RoundView<'_, M>| Step::Done(None)).labelled("crashed")),
        );
        let res = StepRunner::new(n, 2000 + seed).run(machines);
        assert_honest_agreement(&res, &plan, t, m);
        let attempts = res.outputs[0].as_ref().unwrap().as_ref().unwrap().attempts;
        if attempts >= 2 {
            saw_retry = true;
            break;
        }
    }
    assert!(
        saw_retry,
        "within 40 seeds some run must select the faulty leader first (p = 1/7 each)"
    );
}

#[test]
fn two_faults_in_thirteen_party_system() {
    let n = 13;
    let t = 2;
    let m = 3;
    let (cfg, mut wallets) = setup(n, t, m, 8, 31);
    let plan = FaultPlan::explicit(n, vec![2, 9]);
    let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
    for id in 1..=n {
        let w = wallets.remove(0);
        if !plan.is_faulty(id) {
            honest_wallets.push(w);
        }
    }
    let machines = plan.machines::<M, Option<CoinBatch<F>>>(
        |_| honest(cfg, honest_wallets.remove(0)),
        |id| {
            // One fault crashes, the other deals garbage then crashes.
            if id != 9 {
                return Box::new(
                    from_fn(|_view: RoundView<'_, M>| Step::Done(None)).labelled("crashed"),
                );
            }
            let mut sent = false;
            Box::new(
                from_fn(move |view: RoundView<'_, M>| {
                    if !sent {
                        sent = true;
                        let mut out = view.outbox();
                        for i in 1..=view.n {
                            out.send(
                                i,
                                CoinGenMsg::BitGen(BitGenMsg::Deal {
                                    alphas: vec![F::from_u64(i as u64); 3],
                                    gamma: F::one(),
                                }),
                            );
                        }
                        Step::Continue(out)
                    } else {
                        Step::Done(None)
                    }
                })
                .labelled("garbage-dealer"),
            )
        },
    );
    let res = StepRunner::new(n, 32).run(machines);
    assert_honest_agreement(&res, &plan, t, m);
}

#[test]
fn exposed_coins_survive_corrupt_shares() {
    // After an honest generation, expose every coin with the adversary
    // contributing corrupted sums: values must still be unanimous.
    let n = 7;
    let t = 1;
    let m = 4;
    let (cfg, mut wallets) = setup(n, t, m, 6, 41);
    let plan = FaultPlan::explicit(n, vec![5]);
    let all_wallets: Vec<CoinWallet<F>> = (1..=n).map(|_| wallets.remove(0)).collect();

    /// Reveal a batch one coin per round, collecting the values.
    fn expose_all(
        t: usize,
        mut shares: Vec<SealedShare<F>>,
    ) -> impl RoundMachine<M, Output = Vec<F>> {
        shares.reverse();
        looping(
            (shares, Vec::new()),
            move |(mut stack, vals): (Vec<SealedShare<F>>, Vec<F>)| match stack.pop() {
                Some(s) => LoopControl::Continue(Box::new(
                    ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                        let mut vals = vals;
                        vals.push(res.expect("expose succeeds"));
                        (stack, vals)
                    }),
                )),
                None => LoopControl::Break(vals),
            },
        )
    }

    let machines = plan.machines::<M, Option<Vec<F>>>(
        |id| {
            let w = all_wallets[id - 1].clone();
            let machine = CoinGenMachine::new(cfg, w).then(
                move |(_w, res)| -> BoxedMachine<M, Option<Vec<F>>> {
                    match res {
                        Ok(batch) => Box::new(expose_all(1, batch.shares).map(Some)),
                        Err(_) => Box::new(from_fn(|_| Step::Done(None))),
                    }
                },
            );
            Box::new(machine)
        },
        |id| {
            // Run the generation honestly… then corrupt every expose
            // contribution, one per round, matching the honest cadence.
            let w = all_wallets[id - 1].clone();
            let machine = CoinGenMachine::new(cfg, w).then(
                move |(_w, res)| -> BoxedMachine<M, Option<Vec<F>>> {
                    let left = res.map(|b| b.len()).unwrap_or(0);
                    let mut left = left;
                    Box::new(
                        from_fn(move |view: RoundView<'_, M>| {
                            if left > 0 {
                                left -= 1;
                                let mut out = view.outbox();
                                out.send_to_all(CoinGenMsg::Expose(ExposeMsg(F::from_u64(0xBAD))));
                                Step::Continue(out)
                            } else {
                                Step::Done(None)
                            }
                        })
                        .labelled("corrupt-exposer"),
                    )
                },
            );
            Box::new(machine)
        },
    );
    let res = StepRunner::new(n, 42).run(machines);
    let honest_vals: Vec<&Vec<F>> = plan
        .honest()
        .map(|id| res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap())
        .collect();
    assert_eq!(honest_vals[0].len(), m);
    for v in &honest_vals {
        assert_eq!(*v, honest_vals[0], "unanimity under corrupted expose shares");
    }
}
