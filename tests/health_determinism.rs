//! Property tests for the `dprbg-metrics` health registry and the
//! beacon health plane built on it.
//!
//! The registry's determinism story rests on three algebraic claims:
//! histogram merge is associative and commutative with the empty
//! histogram as identity, gauge writes join by `(logical time, value)`
//! so any replay or shard order converges, and therefore a whole
//! [`Registry`] merge is order-independent. The final test closes the
//! loop end to end: a fixed-seed beacon soak exports byte-identical
//! health under `StepRunner` and `ParRunner` at 1, 2 and 8 threads.

use dprbg::beacon::{BeaconConfig, BeaconService, ExecutorKind, ReservoirConfig};
use dprbg::core::{CoinGenConfig, Params, RetryPolicy};
use dprbg::field::Gf2k;
use dprbg::metrics::export::to_json_lines;
use dprbg::metrics::{Histogram, LogicalTime, Registry};

/// splitmix64: the in-tree deterministic stream for property inputs.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A histogram of `len` pseudo-random observations spanning all bucket
/// magnitudes (shift by 0..64 exercises every log2 bucket).
fn random_histogram(seed: u64, len: usize) -> Histogram {
    let mut state = seed;
    let mut h = Histogram::new();
    for _ in 0..len {
        let raw = splitmix(&mut state);
        h.observe(raw >> (raw % 64));
    }
    h
}

#[test]
fn histogram_merge_is_associative() {
    for seed in 0..32u64 {
        let (a, b, c) = (
            random_histogram(seed, 5),
            random_histogram(seed ^ 0xA5A5, 9),
            random_histogram(seed ^ 0x5A5A, 13),
        );
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        assert_eq!(left, right, "seed {seed}: (a ⊕ b) ⊕ c ≠ a ⊕ (b ⊕ c)");
    }
}

#[test]
fn histogram_merge_is_commutative_with_identity() {
    for seed in 0..32u64 {
        let (a, b) = (random_histogram(seed, 7), random_histogram(seed ^ 0xC3C3, 11));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba, "seed {seed}: a ⊕ b ≠ b ⊕ a");

        let mut with_identity = a;
        with_identity.merge(&Histogram::new());
        assert_eq!(with_identity, a, "seed {seed}: a ⊕ 0 ≠ a");
        let mut identity_with = Histogram::new();
        identity_with.merge(&a);
        assert_eq!(identity_with, a, "seed {seed}: 0 ⊕ a ≠ a");
    }
}

#[test]
fn gauge_writes_join_by_logical_time_in_any_order() {
    // The same set of gauge writes, applied in 16 different orders
    // (including interleaved shard merges), must converge on the same
    // registry bytes: the lattice join keeps only the max (at, value).
    let mut state = 0x6A06Eu64;
    let writes: Vec<(LogicalTime, u64)> = (0..24)
        .map(|_| {
            let at = LogicalTime::new(
                splitmix(&mut state) % 8,
                splitmix(&mut state) % 64,
                (splitmix(&mut state) % 8) as u32,
            );
            (at, splitmix(&mut state) % 1000)
        })
        .collect();

    let apply = |order: &[usize]| {
        let mut reg = Registry::new();
        for &i in order {
            let (at, value) = writes[i];
            reg.gauge_set("probe_level", &[], at, value);
        }
        reg.to_bytes()
    };

    let baseline = apply(&(0..writes.len()).collect::<Vec<_>>());
    for round in 0..16u64 {
        // A deterministic shuffle of the write order.
        let mut order: Vec<usize> = (0..writes.len()).collect();
        let mut s = round ^ 0xF00D;
        for i in (1..order.len()).rev() {
            order.swap(i, (splitmix(&mut s) % (i as u64 + 1)) as usize);
        }
        assert_eq!(apply(&order), baseline, "order {order:?} diverged");

        // Shard the shuffled writes across two registries and merge.
        let (left, right) = order.split_at(order.len() / 2);
        let mut shard_a = Registry::new();
        for &i in left {
            shard_a.gauge_set("probe_level", &[], writes[i].0, writes[i].1);
        }
        let mut shard_b = Registry::new();
        for &i in right {
            shard_b.gauge_set("probe_level", &[], writes[i].0, writes[i].1);
        }
        shard_a.merge(&shard_b);
        assert_eq!(shard_a.to_bytes(), baseline, "sharded merge diverged");
    }
}

#[test]
fn registry_merge_is_order_independent_across_kinds() {
    // Counters, gauges, and histograms together: merging shard A into B
    // must equal merging B into A, byte for byte.
    let shard = |seed: u64| {
        let mut state = seed;
        let mut reg = Registry::new();
        for _ in 0..40 {
            match splitmix(&mut state) % 3 {
                0 => reg.counter_add("events_total", &[("kind", "a")], splitmix(&mut state) % 9),
                1 => reg.gauge_set(
                    "level",
                    &[],
                    LogicalTime::at_epoch(splitmix(&mut state) % 16),
                    splitmix(&mut state) % 100,
                ),
                _ => reg.histogram_observe("latency", &[], splitmix(&mut state) % 4096),
            }
        }
        reg
    };
    for seed in 0..8u64 {
        let (a, b) = (shard(seed), shard(seed ^ 0xBEEF));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.to_bytes(), ba.to_bytes(), "seed {seed}: merge not commutative");
    }
}

/// The beacon working point for the cross-executor export check.
fn beacon_config() -> BeaconConfig {
    BeaconConfig {
        coin_gen: CoinGenConfig { params: Params::p2p_model(7, 1).unwrap(), batch_size: 8 },
        reservoir: ReservoirConfig { capacity: 16, low_water: 4 },
        wallet_low_water: 6,
        retry: RetryPolicy { max_attempts: 3, seed_budget: 12 },
        max_backoff_exp: 3,
        max_rounds_per_epoch: 4096,
    }
}

#[test]
fn beacon_health_exports_equal_across_executors() {
    // The end-to-end claim: a fixed-seed soak produces byte-identical
    // health exports no matter which executor (or thread count) drove
    // the fleet — the whole point of keying health on logical time.
    let soak = |executor| {
        let mut svc = BeaconService::<Gf2k<32>>::new(beacon_config(), 0x6EA17, 12);
        for e in 0..10u64 {
            svc.run_epoch(executor, &[(1, 1), (2, 1 + (e % 2) as u32)], None)
                .expect("a fault-free soak must commit every epoch");
        }
        (to_json_lines(svc.health()), svc.health().to_bytes())
    };
    let (json_step, bytes_step) = soak(ExecutorKind::Step);
    for threads in [1usize, 2, 8] {
        let (json_par, bytes_par) = soak(ExecutorKind::ParThreads(threads));
        assert_eq!(json_par, json_step, "{threads}-thread ParRunner JSON export diverged");
        assert_eq!(bytes_par, bytes_step, "{threads}-thread ParRunner registry bytes diverged");
    }
}
