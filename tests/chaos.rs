//! Chaos tests: the executor and the protocols under randomized hostile
//! schedules — random traffic, random crashes, random parameters.
#![allow(clippy::int_plus_one)] // thresholds written as the paper states them

use dprbg::core::{CoinBatch, CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, Params, TrustedDealer};
use dprbg::field::{Field, Gf2k};
use dprbg::sim::{from_fn, BoxedMachine, FaultPlan, MachineExt, RoundView, Step, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};

type F = Gf2k<32>;

#[test]
fn executor_survives_random_send_and_leave_patterns() {
    // Parties send random unicasts/broadcasts for a random number of
    // rounds, then leave at random times. The run must terminate (no
    // deadlock) with every output delivered.
    for seed in 0..20u64 {
        let n = 6;
        let machines: Vec<BoxedMachine<u32, u64>> = (1..=n)
            .map(|id| {
                let mut rng = StdRng::seed_from_u64(seed * 100 + id as u64);
                let rounds = rng.random_range(0..8);
                let mut done = 0usize;
                let mut received = 0u64;
                Box::new(from_fn(move |view: RoundView<'_, u32>| {
                    received += view.inbox.len() as u64;
                    if done == rounds {
                        return Step::Done(received);
                    }
                    done += 1;
                    let mut out = view.outbox();
                    for _ in 0..rng.random_range(0..4) {
                        let to = rng.random_range(1..=view.n);
                        out.send(to, rng.random::<u32>());
                    }
                    if rng.random_bool(0.3) {
                        out.broadcast(rng.random::<u32>());
                    }
                    Step::Continue(out)
                })) as BoxedMachine<u32, u64>
            })
            .collect();
        let res = StepRunner::new(n, seed).run(machines);
        assert_eq!(res.outputs.iter().filter(|o| o.is_some()).count(), n);
    }
}

#[test]
fn executor_is_deterministic_under_repetition() {
    // Same seed, many repetitions: repeated execution must never change
    // inbox contents or ordering (the determinism contract).
    let run_once = |seed: u64| -> Vec<Vec<u32>> {
        let n = 5;
        let machines: Vec<BoxedMachine<u32, Vec<u32>>> = (1..=n)
            .map(|id| {
                let mut round = 0u32;
                let mut log = Vec::new();
                Box::new(from_fn(move |view: RoundView<'_, u32>| {
                    for r in view.inbox.iter() {
                        log.push(r.from as u32 * 1000 + r.msg);
                    }
                    if round == 6 {
                        return Step::Done(std::mem::take(&mut log));
                    }
                    // Everyone sends round*id to a rotating target.
                    let mut out = view.outbox();
                    let to = ((id + round as usize) % view.n) + 1;
                    out.send(to, round * id as u32);
                    out.broadcast(round + id as u32);
                    round += 1;
                    Step::Continue(out)
                })) as BoxedMachine<u32, Vec<u32>>
            })
            .collect();
        StepRunner::new(n, seed).run(machines).unwrap_all()
    };
    let baseline = run_once(42);
    for _ in 0..5 {
        assert_eq!(run_once(42), baseline, "repetition must not leak into results");
    }
}

#[test]
fn coin_gen_parameter_sweep_with_random_crash_sets() {
    // Sweep (n, t, M) with random crash-fault subsets of size ≤ t: the
    // honest parties must always agree on dealers and seal full batches.
    let mut rng = StdRng::seed_from_u64(0xC0C0A);
    for trial in 0..10u64 {
        let (n, t) = *[(7usize, 1usize), (13, 2)]
            .get(rng.random_range(0..2usize))
            .unwrap();
        let m = rng.random_range(1..24);
        let f = rng.random_range(0..=t);
        let mut ids: Vec<usize> = (1..=n).collect();
        for i in 0..f {
            let j = rng.random_range(i..n);
            ids.swap(i, j);
        }
        let plan = FaultPlan::explicit(n, ids[..f].to_vec());
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = CoinGenConfig { params, batch_size: m };
        let mut wallets: Vec<CoinWallet<F>> =
            TrustedDealer::deal_wallets::<F>(params, 5 + t, 9000 + trial);
        let all: Vec<CoinWallet<F>> = (0..n).map(|_| wallets.remove(0)).collect();
        let machines = plan.machines::<CoinGenMsg<F>, Option<CoinBatch<F>>>(
            |id| {
                let w = all[id - 1].clone();
                Box::new(CoinGenMachine::new(cfg, w).map(|(_w, res)| res.ok()))
            },
            // Crash immediately.
            |_| Box::new(from_fn(|_view: RoundView<'_, CoinGenMsg<F>>| Step::Done(None))),
        );
        let res = StepRunner::new(n, 9100 + trial).run(machines);
        let batches: Vec<&CoinBatch<F>> = plan
            .honest()
            .map(|id| {
                res.outputs[id - 1]
                    .as_ref()
                    .unwrap_or_else(|| panic!("trial {trial}: party {id} panicked"))
                    .as_ref()
                    .unwrap_or_else(|| panic!("trial {trial}: party {id} failed"))
            })
            .collect();
        let dealers = &batches[0].dealers;
        assert!(
            dealers.len() >= n - 2 * t,
            "trial {trial}: clique too small ({})",
            dealers.len()
        );
        for b in &batches {
            assert_eq!(&b.dealers, dealers, "trial {trial}: dealer disagreement");
            assert_eq!(b.len(), m, "trial {trial}: short batch");
        }
        // Every coin decodes from the honest share sums.
        for h in 0..m {
            let pts: Vec<(F, F)> = plan
                .honest()
                .filter_map(|id| {
                    res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap().shares[h]
                        .sigma
                        .map(|s| (F::element(id as u64), s))
                })
                .collect();
            assert!(pts.len() >= 2 * t + 1, "trial {trial}: too few contributors");
            dprbg::core::decode_coin(&pts, t)
                .unwrap_or_else(|e| panic!("trial {trial}, coin {h}: {e}"));
        }
    }
}

/// A fully randomized Byzantine strategy: every round, send a burst of
/// random—but well-typed—protocol messages of every kind to random
/// recipients. The honest parties must reach agreement for *any* such
/// adversary (this is a fuzz harness over the space of type-correct
/// attacks, complementing the targeted attacks in `adversarial.rs`).
#[test]
fn coin_gen_withstands_randomized_byzantine_strategies() {
    use dprbg::core::{BitGenMsg, CliqueAnnounce, ExposeMsg};
    use dprbg::poly::Poly;
    use dprbg::protocols::{BaMsg, GcMsg};

    fn random_msg(rng: &mut StdRng, n: usize, m: usize) -> CoinGenMsg<F> {
        match rng.random_range(0..7u32) {
            0 => CoinGenMsg::Expose(ExposeMsg(F::random(rng))),
            1 => CoinGenMsg::BitGen(BitGenMsg::Deal {
                alphas: (0..rng.random_range(0..=m + 2)).map(|_| F::random(rng)).collect(),
                gamma: F::random(rng),
            }),
            2 => CoinGenMsg::BitGen(BitGenMsg::Betas(
                (0..rng.random_range(0..=n))
                    .map(|_| (rng.random_range(1..=n + 1), F::random(rng)))
                    .collect(),
            )),
            3 => {
                let announce = CliqueAnnounce {
                    pairs: (1..=rng.random_range(0..=n))
                        .map(|j| (j, Poly::random(rng.random_range(0..4), rng)))
                        .collect(),
                };
                CoinGenMsg::Gc(match rng.random_range(0..3u32) {
                    0 => GcMsg::Value(announce),
                    1 => GcMsg::Echo { instance: rng.random_range(1..=n), value: announce },
                    _ => GcMsg::Vote { instance: rng.random_range(1..=n), value: announce },
                })
            }
            4 => CoinGenMsg::Ba(BaMsg::Suggest(rng.random())),
            5 => CoinGenMsg::Ba(BaMsg::King(rng.random())),
            _ => CoinGenMsg::Expose(ExposeMsg(F::zero())),
        }
    }

    for trial in 0..12u64 {
        let n = 7;
        let t = 1;
        let m = 3;
        let mut meta = StdRng::seed_from_u64(7000 + trial);
        let bad = meta.random_range(1..=n);
        let plan = FaultPlan::explicit(n, vec![bad]);
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = CoinGenConfig { params, batch_size: m };
        let mut wallets: Vec<CoinWallet<F>> =
            TrustedDealer::deal_wallets::<F>(params, 6, 7100 + trial);
        let all: Vec<CoinWallet<F>> = (0..n).map(|_| wallets.remove(0)).collect();
        let machines = plan.machines::<CoinGenMsg<F>, Option<CoinBatch<F>>>(
            |id| {
                let w = all[id - 1].clone();
                Box::new(CoinGenMachine::new(cfg, w).map(|(_w, res)| res.ok()))
            },
            |_| {
                // Spray random traffic for a bounded number of rounds.
                let mut rng = StdRng::seed_from_u64(7200 + trial);
                let mut sprayed = 0usize;
                Box::new(
                    from_fn(move |view: RoundView<'_, CoinGenMsg<F>>| {
                        if sprayed == 40 {
                            return Step::Done(None);
                        }
                        sprayed += 1;
                        let mut out = view.outbox();
                        for _ in 0..rng.random_range(0..12) {
                            let to = rng.random_range(1..=view.n);
                            let msg = random_msg(&mut rng, view.n, 3);
                            out.send(to, msg);
                        }
                        Step::Continue(out)
                    })
                    .labelled("fuzz-sprayer"),
                )
            },
        );
        let res = StepRunner::new(n, 7300 + trial).run(machines);
        let batches: Vec<&CoinBatch<F>> = plan
            .honest()
            .map(|id| {
                res.outputs[id - 1]
                    .as_ref()
                    .unwrap_or_else(|| panic!("trial {trial}: party {id} panicked"))
                    .as_ref()
                    .unwrap_or_else(|| panic!("trial {trial}: party {id} failed to seal"))
            })
            .collect();
        let dealers = &batches[0].dealers;
        for b in &batches {
            assert_eq!(&b.dealers, dealers, "trial {trial}: dealer-set split");
            assert_eq!(b.len(), m);
        }
        for h in 0..m {
            let pts: Vec<(F, F)> = plan
                .honest()
                .filter_map(|id| {
                    res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap().shares[h]
                        .sigma
                        .map(|s| (F::element(id as u64), s))
                })
                .collect();
            assert!(pts.len() >= 2 * t + 1, "trial {trial}: contributors");
            dprbg::core::decode_coin(&pts, t)
                .unwrap_or_else(|e| panic!("trial {trial}, coin {h}: {e}"));
        }
    }
}
