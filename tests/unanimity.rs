//! The paper's unanimity property, tested across protocols: "All players
//! in the system view the same coin" — and, more broadly, all honest
//! players reach the same verdicts and values in every sub-protocol.

use dprbg::core::batch_vss::BatchOpts;
use dprbg::core::{
    vss_machine, BatchShares, BatchVssDealMachine, BatchVssMsg, BatchVssVerifyMachine, CoinError,
    DealtShares, ExposeMachine, ExposeMsg, ExposeVia, SealedShare, VssMode, VssMsg,
    VssVerdict, VssVerifyMachine,
};
use dprbg::field::{Field, Gf2k};
use dprbg::poly::{share_points, share_polynomial, Poly};
use dprbg::sim::{from_fn, BoxedMachine, FaultPlan, MachineExt, RoundView, Step, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};

type F = Gf2k<32>;

fn coin_shares(n: usize, t: usize, seed: u64) -> (F, Vec<SealedShare<F>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let value = F::random(&mut rng);
    let poly = share_polynomial(value, t, &mut rng);
    (
        value,
        share_points(&poly, n)
            .into_iter()
            .map(|s| SealedShare::of(s.y))
            .collect(),
    )
}

/// A one-shot corrupt expose script: garbage share to everyone, then out.
fn garbage_expose(share: F) -> BoxedMachine<ExposeMsg<F>, Option<F>> {
    let mut sent = false;
    Box::new(
        from_fn(move |view: RoundView<'_, ExposeMsg<F>>| {
            if !sent {
                sent = true;
                let mut out = view.outbox();
                out.send_to_all(ExposeMsg(share));
                Step::Continue(out)
            } else {
                Step::Done(None)
            }
        })
        .labelled("garbage-expose"),
    )
}

#[test]
fn expose_unanimity_under_every_single_corruption_pattern() {
    // For each possible corrupted party, the exposed value matches the
    // dealt value at every honest party.
    let n = 7;
    let t = 1;
    for bad in 1..=n {
        let (value, shares) = coin_shares(n, t, 100 + bad as u64);
        let plan = FaultPlan::explicit(n, vec![bad]);
        let machines = plan.machines::<ExposeMsg<F>, Option<F>>(
            |id| {
                let s = shares[id - 1];
                Box::new(
                    ExposeMachine::new(s, 1, ExposeVia::PointToPoint).map(|res| res.ok()),
                )
            },
            |_| {
                let mut rng = StdRng::seed_from_u64(7);
                garbage_expose(F::random(&mut rng))
            },
        );
        let res = StepRunner::new(n, 200 + bad as u64).run(machines);
        for id in plan.honest() {
            assert_eq!(
                res.outputs[id - 1],
                Some(Some(value)),
                "corrupted party {bad}, honest party {id}"
            );
        }
    }
}

#[test]
fn expose_with_t_corruptions_at_the_bound() {
    // n = 13, t = 2: exactly t corrupted shares plus one silent party.
    let n = 13;
    let t = 2;
    let (value, shares) = coin_shares(n, t, 55);
    let plan = FaultPlan::explicit(n, vec![1, 7]);
    let machines = plan.machines::<ExposeMsg<F>, Option<F>>(
        |id| {
            let s = if id == 13 { SealedShare::absent() } else { shares[id - 1] };
            Box::new(ExposeMachine::new(s, 2, ExposeVia::PointToPoint).map(|res| res.ok()))
        },
        |id| garbage_expose(F::from_u64(id as u64 * 31)),
    );
    let res = StepRunner::new(n, 56).run(machines);
    for id in plan.honest() {
        assert_eq!(res.outputs[id - 1], Some(Some(value)), "party {id}");
    }
}

#[test]
fn vss_verdicts_are_uniform_across_honest_parties() {
    // Sweep random dealers (honest and cheating): every honest party must
    // output the *same* verdict in every run.
    let n = 7;
    let t = 2;
    let mut rng = StdRng::seed_from_u64(9);
    for trial in 0..8u64 {
        let cheat = rng.random::<bool>();
        let (_, coins) = coin_shares(n, t, 300 + trial);
        let machines: Vec<BoxedMachine<VssMsg<F>, Option<VssVerdict>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                if id == 1 && cheat {
                    // Deal a wrong-degree polynomial manually, keep our own
                    // shares, then verify like everyone else.
                    let mut my: Option<DealtShares<F>> = None;
                    let deal = from_fn(move |view: RoundView<'_, VssMsg<F>>| {
                        if let Some(shares) = my.take() {
                            return Step::Done(shares);
                        }
                        let f = Poly::<F>::random(t + 1, view.rng);
                        let g = Poly::<F>::random(t, view.rng);
                        let mut out = view.outbox();
                        for i in 1..=view.n {
                            let x = F::element(i as u64);
                            out.send(i, VssMsg::Deal { alpha: f.eval(x), gamma: g.eval(x) });
                        }
                        let x1 = F::element(1);
                        my = Some(DealtShares { alpha: f.eval(x1), gamma: g.eval(x1) });
                        Step::Continue(out)
                    })
                    .labelled("cheating-dealer");
                    let machine = deal
                        .then(move |shares| VssVerifyMachine::new(t, shares, coin, VssMode::Strict))
                        .map(|res| res.ok());
                    Box::new(machine) as BoxedMachine<VssMsg<F>, Option<VssVerdict>>
                } else {
                    let secret = (id == 1).then(|| F::from_u64(1234));
                    let machine = vss_machine(1, secret, t, coin, VssMode::Strict)
                        .map(|res| res.ok().map(|(v, _)| v));
                    Box::new(machine) as BoxedMachine<VssMsg<F>, Option<VssVerdict>>
                }
            })
            .collect();
        let outs = StepRunner::new(n, 400 + trial).run(machines).unwrap_all();
        let expected = if cheat { VssVerdict::Reject } else { VssVerdict::Accept };
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o, &Some(expected), "trial {trial}, party {}", i + 1);
        }
    }
}

#[test]
fn batch_vss_verdict_uniform_with_partial_corruption() {
    // Dealer corrupts only the share vectors of two specific parties;
    // the broadcast check still yields one global verdict (Reject under
    // Strict — the corrupted parties' combinations break interpolation).
    let n = 7;
    let t = 2;
    let m = 8;
    let (_, coins) = coin_shares(n, t, 500);
    let machines: Vec<BoxedMachine<BatchVssMsg<F>, Option<VssVerdict>>> = (1..=n)
        .map(|id| {
            let coin = coins[id - 1];
            if id == 1 {
                // Dealer: correct polynomials, but parties 3 and 5 get
                // perturbed share vectors.
                let mut my: Option<BatchShares<F>> = None;
                let deal = from_fn(move |view: RoundView<'_, BatchVssMsg<F>>| {
                    if let Some(shares) = my.take() {
                        return Step::Done(shares);
                    }
                    let polys: Vec<Poly<F>> =
                        (0..m).map(|_| Poly::random(t, view.rng)).collect();
                    let blind = Poly::<F>::random(t, view.rng);
                    let mut out = view.outbox();
                    for i in 1..=view.n {
                        let x = F::element(i as u64);
                        let mut alphas: Vec<F> = polys.iter().map(|f| f.eval(x)).collect();
                        if i == 3 || i == 5 {
                            alphas[0] += F::one();
                        }
                        out.send(i, BatchVssMsg::Deal { alphas, gamma: blind.eval(x) });
                    }
                    let x1 = F::element(1);
                    my = Some(BatchShares {
                        alphas: polys.iter().map(|f| f.eval(x1)).collect(),
                        gamma: blind.eval(x1),
                    });
                    Step::Continue(out)
                })
                .labelled("perturbing-dealer");
                let machine = deal
                    .then(move |shares| {
                        BatchVssVerifyMachine::new(t, shares, m, coin, BatchOpts::default())
                    })
                    .map(|res| res.ok());
                Box::new(machine) as BoxedMachine<BatchVssMsg<F>, Option<VssVerdict>>
            } else {
                let machine = BatchVssDealMachine::new(1, None, t, BatchOpts::default())
                    .then(move |(shares, _)| {
                        BatchVssVerifyMachine::new(t, shares, m, coin, BatchOpts::default())
                    })
                    .map(|res| res.ok());
                Box::new(machine) as BoxedMachine<BatchVssMsg<F>, Option<VssVerdict>>
            }
        })
        .collect();
    let outs = StepRunner::new(n, 501).run(machines).unwrap_all();
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(o, &Some(VssVerdict::Reject), "party {}", i + 1);
    }
}

#[test]
fn expose_fails_loudly_not_wrongly() {
    // Beyond the fault bound (t+1 corruptions with minimal points), the
    // expose must error or still give the right value — never silently
    // return a different coin accepted by some parties only.
    let n = 7;
    let t = 2;
    let (value, shares) = coin_shares(n, t, 600);
    let plan = FaultPlan::explicit(n, vec![1, 2, 3]); // t+1 corruptions!
    let machines = plan.machines::<ExposeMsg<F>, Option<Result<F, CoinError>>>(
        |id| {
            let s = shares[id - 1];
            Box::new(ExposeMachine::new(s, 2, ExposeVia::PointToPoint).map(Some))
        },
        |id| {
            let mut sent = false;
            Box::new(from_fn(move |view: RoundView<'_, ExposeMsg<F>>| {
                if !sent {
                    sent = true;
                    let mut out = view.outbox();
                    out.send_to_all(ExposeMsg(F::from_u64(id as u64)));
                    Step::Continue(out)
                } else {
                    Step::Done(None)
                }
            }))
        },
    );
    let res = StepRunner::new(n, 601).run(machines);
    let mut answers = Vec::new();
    for id in plan.honest() {
        let out = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
        answers.push(*out);
    }
    // All honest agree with each other; any Ok value equals the truth.
    assert!(answers.windows(2).all(|w| w[0] == w[1]));
    if let Ok(v) = &answers[0] {
        assert_eq!(*v, value);
    }
}
