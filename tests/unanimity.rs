//! The paper's unanimity property, tested across protocols: "All players
//! in the system view the same coin" — and, more broadly, all honest
//! players reach the same verdicts and values in every sub-protocol.

use dprbg::core::{
    batch_vss_deal, batch_vss_verify, coin_expose, vss, BatchVssMsg, CoinError, ExposeMsg,
    ExposeVia, SealedShare, VssMode, VssVerdict,
};
use dprbg::core::batch_vss::BatchOpts;
use dprbg::field::{Field, Gf2k};
use dprbg::poly::{share_points, share_polynomial};
use dprbg::sim::{run_network, Behavior, FaultPlan, PartyCtx};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};

type F = Gf2k<32>;

fn coin_shares(n: usize, t: usize, seed: u64) -> (F, Vec<SealedShare<F>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let value = F::random(&mut rng);
    let poly = share_polynomial(value, t, &mut rng);
    (
        value,
        share_points(&poly, n)
            .into_iter()
            .map(|s| SealedShare::of(s.y))
            .collect(),
    )
}

#[test]
fn expose_unanimity_under_every_single_corruption_pattern() {
    // For each possible corrupted party, the exposed value matches the
    // dealt value at every honest party.
    let n = 7;
    let t = 1;
    for bad in 1..=n {
        let (value, shares) = coin_shares(n, t, 100 + bad as u64);
        let plan = FaultPlan::explicit(n, vec![bad]);
        let behaviors = plan.behaviors::<ExposeMsg<F>, Option<F>>(
            |id| {
                let s = shares[id - 1];
                Box::new(move |ctx| {
                    coin_expose(ctx, s, 1, ExposeVia::PointToPoint).ok()
                })
            },
            |_| {
                Box::new(move |ctx| {
                    let mut rng = StdRng::seed_from_u64(7);
                    ctx.send_to_all(ExposeMsg(F::random(&mut rng)));
                    let _ = ctx.next_round();
                    None
                })
            },
        );
        let res = run_network(n, 200 + bad as u64, behaviors);
        for id in plan.honest() {
            assert_eq!(
                res.outputs[id - 1],
                Some(Some(value)),
                "corrupted party {bad}, honest party {id}"
            );
        }
    }
}

#[test]
fn expose_with_t_corruptions_at_the_bound() {
    // n = 13, t = 2: exactly t corrupted shares plus one silent party.
    let n = 13;
    let t = 2;
    let (value, shares) = coin_shares(n, t, 55);
    let plan = FaultPlan::explicit(n, vec![1, 7]);
    let behaviors = plan.behaviors::<ExposeMsg<F>, Option<F>>(
        |id| {
            let s = if id == 13 { SealedShare::absent() } else { shares[id - 1] };
            Box::new(move |ctx| coin_expose(ctx, s, 2, ExposeVia::PointToPoint).ok())
        },
        |id| {
            Box::new(move |ctx| {
                ctx.send_to_all(ExposeMsg(F::from_u64(id as u64 * 31)));
                let _ = ctx.next_round();
                None
            })
        },
    );
    let res = run_network(n, 56, behaviors);
    for id in plan.honest() {
        assert_eq!(res.outputs[id - 1], Some(Some(value)), "party {id}");
    }
}

#[test]
fn vss_verdicts_are_uniform_across_honest_parties() {
    // Sweep random dealers (honest and cheating): every honest party must
    // output the *same* verdict in every run.
    let n = 7;
    let t = 2;
    let mut rng = StdRng::seed_from_u64(9);
    for trial in 0..8u64 {
        let cheat = rng.random::<bool>();
        let (_, coins) = coin_shares(n, t, 300 + trial);
        let behaviors: Vec<Behavior<dprbg::core::VssMsg<F>, Option<VssVerdict>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                Box::new(move |ctx: &mut PartyCtx<dprbg::core::VssMsg<F>>| {
                    if id == 1 && cheat {
                        // Deal a wrong-degree polynomial manually.
                        let n = ctx.n();
                        let f = dprbg::poly::Poly::<F>::random(t + 1, ctx.rng());
                        let g = dprbg::poly::Poly::<F>::random(t, ctx.rng());
                        for i in 1..=n {
                            let x = F::element(i as u64);
                            ctx.send(
                                i,
                                dprbg::core::VssMsg::Deal {
                                    alpha: f.eval(x),
                                    gamma: g.eval(x),
                                },
                            );
                        }
                        let (shares, _) =
                            dprbg::core::vss_deal::<dprbg::core::VssMsg<F>, F>(
                                ctx, 1, None, t,
                            );
                        return dprbg::core::vss_verify(
                            ctx,
                            t,
                            shares,
                            coin,
                            VssMode::Strict,
                        )
                        .ok();
                    }
                    let secret = (id == 1).then(|| F::from_u64(1234));
                    vss(ctx, 1, secret, t, coin, VssMode::Strict)
                        .ok()
                        .map(|(v, _)| v)
                }) as Behavior<_, _>
            })
            .collect();
        let outs = run_network(n, 400 + trial, behaviors).unwrap_all();
        let expected = if cheat { VssVerdict::Reject } else { VssVerdict::Accept };
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o, &Some(expected), "trial {trial}, party {}", i + 1);
        }
    }
}

#[test]
fn batch_vss_verdict_uniform_with_partial_corruption() {
    // Dealer corrupts only the share vectors of two specific parties;
    // the broadcast check still yields one global verdict (Reject under
    // Strict — the corrupted parties' combinations break interpolation).
    let n = 7;
    let t = 2;
    let m = 8;
    let (_, coins) = coin_shares(n, t, 500);
    let behaviors: Vec<Behavior<BatchVssMsg<F>, Option<VssVerdict>>> = (1..=n)
        .map(|id| {
            let coin = coins[id - 1];
            Box::new(move |ctx: &mut PartyCtx<BatchVssMsg<F>>| {
                if id == 1 {
                    // Dealer: correct polynomials, but parties 3 and 5 get
                    // perturbed share vectors.
                    let n = ctx.n();
                    let polys: Vec<dprbg::poly::Poly<F>> =
                        (0..m).map(|_| dprbg::poly::Poly::random(t, ctx.rng())).collect();
                    let blind = dprbg::poly::Poly::<F>::random(t, ctx.rng());
                    for i in 1..=n {
                        let x = F::element(i as u64);
                        let mut alphas: Vec<F> = polys.iter().map(|f| f.eval(x)).collect();
                        if i == 3 || i == 5 {
                            alphas[0] += F::one();
                        }
                        ctx.send(
                            i,
                            BatchVssMsg::Deal { alphas, gamma: blind.eval(x) },
                        );
                    }
                    let (shares, _) = batch_vss_deal::<BatchVssMsg<F>, F>(
                        ctx,
                        1,
                        None,
                        t,
                        BatchOpts::default(),
                    );
                    return batch_vss_verify(ctx, t, &shares, m, coin, BatchOpts::default())
                        .ok();
                }
                let (shares, _) = batch_vss_deal::<BatchVssMsg<F>, F>(
                    ctx,
                    1,
                    None,
                    t,
                    BatchOpts::default(),
                );
                batch_vss_verify(ctx, t, &shares, m, coin, BatchOpts::default()).ok()
            }) as Behavior<_, _>
        })
        .collect();
    let outs = run_network(n, 501, behaviors).unwrap_all();
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(o, &Some(VssVerdict::Reject), "party {}", i + 1);
    }
}

#[test]
fn expose_fails_loudly_not_wrongly() {
    // Beyond the fault bound (t+1 corruptions with minimal points), the
    // expose must error or still give the right value — never silently
    // return a different coin accepted by some parties only.
    let n = 7;
    let t = 2;
    let (value, shares) = coin_shares(n, t, 600);
    let plan = FaultPlan::explicit(n, vec![1, 2, 3]); // t+1 corruptions!
    let behaviors = plan.behaviors::<ExposeMsg<F>, Option<Result<F, CoinError>>>(
        |id| {
            let s = shares[id - 1];
            Box::new(move |ctx| Some(coin_expose(ctx, s, 2, ExposeVia::PointToPoint)))
        },
        |id| {
            Box::new(move |ctx| {
                ctx.send_to_all(ExposeMsg(F::from_u64(id as u64)));
                let _ = ctx.next_round();
                None
            })
        },
    );
    let res = run_network(n, 601, behaviors);
    let mut answers = Vec::new();
    for id in plan.honest() {
        let out = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
        answers.push(*out);
    }
    // All honest agree with each other; any Ok value equals the truth.
    assert!(answers.windows(2).all(|w| w[0] == w[1]));
    if let Ok(v) = &answers[0] {
        assert_eq!(*v, value);
    }
}
