//! The compact text timeline: one line per (party, round) span.
//!
//! Where the Chrome export targets a visual tool, this renderer targets a
//! terminal or a log: rounds as headers, each party's span with its phase
//! and cost delta, marks inlined. Deterministic output — same trace, same
//! bytes — so timelines can be diffed across runs and executors.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{EventKind, Trace};

/// Render a merged [`Trace`] as a per-round text timeline.
pub fn render_timeline(trace: &Trace) -> String {
    let mut out = String::new();
    let mut current_round: Option<u64> = None;
    // Open state per party: (phase, flushed messages/bytes this span).
    let mut open: BTreeMap<usize, (String, u64, u64)> = BTreeMap::new();
    for e in &trace.events {
        if current_round != Some(e.round) {
            if current_round.is_some() {
                out.push('\n');
            }
            let _ = writeln!(out, "round {}", e.round);
            current_round = Some(e.round);
        }
        match &e.kind {
            EventKind::Begin { phase } => {
                open.insert(e.party, (phase.clone(), 0, 0));
            }
            EventKind::Flush { messages, bytes } => {
                if let Some((_, m, b)) = open.get_mut(&e.party) {
                    *m += messages;
                    *b += bytes;
                }
            }
            EventKind::End { cost } => {
                let (phase, msgs, bytes) = open
                    .remove(&e.party)
                    .unwrap_or_else(|| ("round".to_string(), cost.messages, cost.bytes));
                let _ = writeln!(
                    out,
                    "  P{:<3} {:<24} adds={} muls={} invs={} interp={} msgs={} bytes={}",
                    e.party,
                    phase,
                    cost.field_adds,
                    cost.field_muls,
                    cost.field_invs,
                    cost.interpolations,
                    msgs,
                    bytes
                );
            }
            EventKind::Mark { label } => {
                let _ = writeln!(out, "  P{:<3} ! {label}", e.party);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartyTracer, TraceConfig};
    use dprbg_metrics::CostSnapshot;

    #[test]
    fn renders_rounds_phases_and_marks() {
        let trace = Trace::from_parties((1..=2).map(|p| {
            let mut t = PartyTracer::new(p, TraceConfig::full());
            t.begin(0, "expose/send");
            t.flush(0, 2, 16);
            t.end(
                0,
                CostSnapshot { field_adds: 5, messages: 2, bytes: 16, rounds: 1, ..Default::default() },
            );
            t.begin(1, "expose/decode");
            if p == 2 {
                t.mark(1, "tampered");
            }
            t.end(1, CostSnapshot { interpolations: 1, ..Default::default() });
            t.into_events()
        }));
        let text = render_timeline(&trace);
        assert!(text.contains("round 0"));
        assert!(text.contains("round 1"));
        assert!(text.contains("P1   expose/send"));
        assert!(text.contains("msgs=2 bytes=16"));
        assert!(text.contains("P2   ! tampered"));
        assert!(text.contains("interp=1"));
    }

    #[test]
    fn rendering_is_deterministic() {
        let mk = || {
            Trace::from_parties((1..=3).map(|p| {
                let mut t = PartyTracer::new(p, TraceConfig::full());
                t.begin(0, "p");
                t.end(0, CostSnapshot::default());
                t.into_events()
            }))
        };
        assert_eq!(render_timeline(&mk()), render_timeline(&mk()));
    }
}
