//! A minimal in-tree JSON reader.
//!
//! The hermetic-build policy (no external crates) means no `serde`; this
//! parser covers exactly the subset the Chrome exporter emits — objects,
//! arrays, strings with the standard escapes, unsigned integers, booleans
//! and null — which is all the round-trip validation needs. Object key
//! order is preserved (a `Vec`, not a map), so re-emission can be
//! byte-faithful.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the only number form the exporter emits).
    Num(u64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input, on trailing
/// content, or on number forms the exporter never emits (negative,
/// fractional, exponent).
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos:?}", pos = *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if matches!(bytes.get(*pos), Some(b'.') | Some(b'e') | Some(b'E') | Some(b'-') | Some(b'+')) {
        return Err(format!(
            "unsupported number form at byte {start} (the exporter emits unsigned integers only)"
        ));
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<u64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        let ch = char::from_u32(code)
                            .ok_or_else(|| format!("bad \\u code point {code:#x}"))?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

/// Escape a string for embedding in JSON output (the writer-side inverse
/// of [`parse_string`]'s unescaping, restricted to the escapes the
/// exporter needs).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2, {"b": "x", "c": true}], "d": null}"#;
        let v = parse_json(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0], Json::Num(1));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(),
            Some("x")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn preserves_key_order() {
        let v = parse_json(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        let Json::Obj(fields) = v else { panic!("not an object") };
        let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a", "m"]);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "a\"b\\c\nd\te\u{1}";
        let doc = format!("\"{}\"", escape_json(raw));
        assert_eq!(parse_json(&doc).unwrap().as_str(), Some(raw));
    }

    #[test]
    fn rejects_trailing_content_and_floats() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("1.5").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"open").is_err());
    }
}
