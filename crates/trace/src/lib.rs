#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! Deterministic span/event tracing for the round engine.
//!
//! The paper states its results as *per-protocol, per-round* complexity
//! bounds (Lemmas 1–8, Theorem 2); the counters in `dprbg-metrics` only
//! report end-to-end totals. This crate records *where* those totals come
//! from: each party's executor opens a span per round call, tags it with
//! the machine's [`phase name`](Event), attaches the outbox flush totals,
//! and closes it with the round's [`CostSnapshot`] delta — so field
//! adds/muls, messages, and bits are attributable per (party, round,
//! phase).
//!
//! **Logical time only.** Events are ordered by `(round, party, seq)` —
//! round index, party id, and a per-party step counter. No wall clocks:
//! the same seed produces byte-identical traces under both executors and
//! on any machine, so traces are comparable, diffable, and usable as
//! transcript evidence (the `trace-determinism` lint forbids clock reads
//! in this crate). Wall-clock enrichment, where wanted, happens in
//! `dprbg-bench` which owns real time anyway.
//!
//! Recording is per party: each executor drives one [`PartyTracer`]
//! per party (append-only, optionally a bounded [ring](TraceMode::Ring)
//! for always-on forensics), and the finished streams merge into a
//! [`Trace`] whose position index doubles as the logical timestamp.
//!
//! Exporters: [`to_chrome_json`] writes Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`; parseable back with the
//! in-tree [`parse_chrome_json`]), and [`render_timeline`] writes a
//! compact per-round text timeline.

mod chrome;
mod json;
mod timeline;

pub use chrome::{
    chrome_events, emit_chrome_json, parse_chrome_json, to_chrome_json, validate_chrome_json,
    ChromeEvent,
};
pub use json::{parse_json, Json};
pub use timeline::render_timeline;

use std::collections::VecDeque;

use dprbg_metrics::CostSnapshot;

/// One logical-time trace event, recorded by a [`PartyTracer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// The 1-based party id that recorded the event.
    pub party: usize,
    /// The party-local round index the event belongs to (identical to the
    /// global round for machines driven from round 0, under either
    /// executor).
    pub round: u64,
    /// Per-party step counter: strictly increasing in recording order,
    /// which makes `(round, party, seq)` a total order over a run.
    pub seq: u32,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A round span opened; `phase` is the machine's
    /// `RoundMachine::phase_name()` at entry.
    Begin {
        /// Phase label, e.g. `"bit-gen/deal"`.
        phase: String,
    },
    /// The round's outbox was flushed: totals as charged to the comm
    /// counters (one message per unicast copy, one per ideal broadcast).
    Flush {
        /// Messages charged by the flush.
        messages: u64,
        /// Payload bytes charged by the flush.
        bytes: u64,
    },
    /// The round span closed with the cost delta accumulated inside it
    /// (machine computation + flush communication + the round itself).
    End {
        /// Counter deltas for the span.
        cost: CostSnapshot,
    },
    /// An instant annotation (adversary fates, classifier verdicts, …).
    Mark {
        /// Free-form label.
        label: String,
    },
}

impl EventKind {
    /// The phase label if this is a span-open event.
    pub fn phase(&self) -> Option<&str> {
        match self {
            EventKind::Begin { phase } => Some(phase),
            _ => None,
        }
    }
}

/// How much a [`PartyTracer`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep every event (bounded by the run length).
    Full,
    /// Keep only the most recent `capacity` events per party — always-on
    /// forensics: negligible memory, and on an unsound episode the tail
    /// of the trace is exactly what you want to see.
    Ring(usize),
}

/// Collector configuration handed to an executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Retention policy per party.
    pub mode: TraceMode,
}

impl TraceConfig {
    /// Record everything.
    pub fn full() -> Self {
        TraceConfig { mode: TraceMode::Full }
    }

    /// Record a bounded ring of the most recent `capacity` events per
    /// party (capacities below 1 are treated as 1).
    pub fn ring(capacity: usize) -> Self {
        TraceConfig { mode: TraceMode::Ring(capacity.max(1)) }
    }
}

/// Per-party event recorder.
///
/// Executors call [`begin`](PartyTracer::begin) before each
/// `RoundMachine::round`, [`flush`](PartyTracer::flush) after expanding
/// the outbox, and [`end`](PartyTracer::end) with the round's cost delta;
/// [`into_events`](PartyTracer::into_events) yields the stream for
/// [`Trace::from_parties`]. The tracer never reads a clock or a counter
/// itself — it only records what the executor hands it, which is what
/// keeps recording identical across executors.
#[derive(Debug)]
pub struct PartyTracer {
    party: usize,
    mode: TraceMode,
    seq: u32,
    open: Option<u64>,
    events: VecDeque<Event>,
}

impl PartyTracer {
    /// A tracer for `party` (1-based) with the given retention.
    pub fn new(party: usize, cfg: TraceConfig) -> Self {
        PartyTracer { party, mode: cfg.mode, seq: 0, open: None, events: VecDeque::new() }
    }

    /// Open the span for `round`, labelled with the machine's phase.
    pub fn begin(&mut self, round: u64, phase: &str) {
        self.open = Some(round);
        self.push(round, EventKind::Begin { phase: phase.to_string() });
    }

    /// Record the round's outbox flush totals.
    pub fn flush(&mut self, round: u64, messages: u64, bytes: u64) {
        self.push(round, EventKind::Flush { messages, bytes });
    }

    /// Close the span for `round` with its cost delta.
    pub fn end(&mut self, round: u64, cost: CostSnapshot) {
        self.open = None;
        self.push(round, EventKind::End { cost });
    }

    /// Record an instant annotation inside `round`.
    pub fn mark(&mut self, round: u64, label: &str) {
        self.push(round, EventKind::Mark { label: label.to_string() });
    }

    fn push(&mut self, round: u64, kind: EventKind) {
        if let TraceMode::Ring(cap) = self.mode {
            while self.events.len() >= cap.max(1) {
                self.events.pop_front();
            }
        }
        let seq = self.seq;
        self.seq += 1;
        self.events.push_back(Event { party: self.party, round, seq, kind });
    }

    /// Finish recording and return the event stream.
    ///
    /// An open span (the party panicked mid-round, or a ring truncated
    /// the close) is closed with a zero cost delta, and a ring that was
    /// cut mid-span is trimmed forward to the next span open — so the
    /// returned stream always has balanced, alternating `Begin`/`End`
    /// pairs.
    pub fn into_events(mut self) -> Vec<Event> {
        if let Some(round) = self.open.take() {
            self.push(round, EventKind::End { cost: CostSnapshot::default() });
        }
        while matches!(
            self.events.front().map(|e| &e.kind),
            Some(EventKind::Flush { .. }) | Some(EventKind::End { .. })
        ) {
            self.events.pop_front();
        }
        self.events.into()
    }
}

/// A finished, merged trace: every party's events in the canonical
/// `(round, party, seq)` order. The position of an event in
/// [`events`](Trace::events) is its logical timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Merged events, sorted by `(round, party, seq)`.
    pub events: Vec<Event>,
}

impl Trace {
    /// Merge per-party event streams (from [`PartyTracer::into_events`])
    /// into canonical order.
    pub fn from_parties(parties: impl IntoIterator<Item = Vec<Event>>) -> Trace {
        let mut events: Vec<Event> = parties.into_iter().flatten().collect();
        events.sort_by_key(|a| (a.round, a.party, a.seq));
        Trace { events }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of every span's cost delta, per party id (1-based; parties
    /// beyond `n` are ignored). For a full (non-ring) trace of a run this
    /// equals the per-party ledger of the run's `CostReport` — the spans
    /// partition each party's counter activity.
    pub fn per_party_cost(&self, n: usize) -> Vec<CostSnapshot> {
        let mut per = vec![CostSnapshot::default(); n];
        for e in &self.events {
            if let EventKind::End { cost } = &e.kind {
                if (1..=n).contains(&e.party) {
                    per[e.party - 1] = per[e.party - 1].plus(cost);
                }
            }
        }
        per
    }

    /// Sum of every span's cost delta across all parties.
    pub fn total_cost(&self) -> CostSnapshot {
        self.events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::End { cost } => Some(cost),
                _ => None,
            })
            .fold(CostSnapshot::default(), |acc, c| acc.plus(c))
    }

    /// Per-(round, phase) aggregation: for each round in order, the
    /// distinct phase labels seen (in first-recorded order) with the
    /// summed span costs of the parties that ran them.
    pub fn round_phase_costs(&self) -> Vec<RoundPhaseCost> {
        let mut out: Vec<RoundPhaseCost> = Vec::new();
        // The open phase per party, carried from its Begin to its End.
        let mut open: Vec<(usize, String)> = Vec::new();
        for e in &self.events {
            match &e.kind {
                EventKind::Begin { phase } => open.push((e.party, phase.clone())),
                EventKind::End { cost } => {
                    let Some(pos) = open.iter().position(|(p, _)| *p == e.party) else {
                        continue;
                    };
                    let (_, phase) = open.remove(pos);
                    match out
                        .iter_mut()
                        .find(|r| r.round == e.round && r.phase == phase)
                    {
                        Some(row) => {
                            row.parties += 1;
                            row.cost = row.cost.plus(cost);
                        }
                        None => out.push(RoundPhaseCost {
                            round: e.round,
                            phase,
                            parties: 1,
                            cost: *cost,
                        }),
                    }
                }
                _ => {}
            }
        }
        out.sort_by_key(|a| a.round);
        out
    }
}

/// One row of [`Trace::round_phase_costs`]: what one phase of one round
/// cost, summed over the parties that executed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundPhaseCost {
    /// Round index.
    pub round: u64,
    /// Phase label.
    pub phase: String,
    /// How many parties ran this phase in this round.
    pub parties: usize,
    /// Summed span cost.
    pub cost: CostSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(adds: u64, msgs: u64) -> CostSnapshot {
        CostSnapshot { field_adds: adds, messages: msgs, ..Default::default() }
    }

    fn one_round(party: usize, round: u64, cfg: TraceConfig) -> Vec<Event> {
        let mut t = PartyTracer::new(party, cfg);
        t.begin(round, "phase");
        t.flush(round, 3, 24);
        t.end(round, snap(10, 3));
        t.into_events()
    }

    #[test]
    fn merge_orders_by_round_then_party_then_seq() {
        let a = one_round(2, 0, TraceConfig::full());
        let b = one_round(1, 0, TraceConfig::full());
        let t = Trace::from_parties([a, b]);
        let keys: Vec<(u64, usize, u32)> =
            t.events.iter().map(|e| (e.round, e.party, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(t.events[0].party, 1);
        assert_eq!(t.events[3].party, 2);
    }

    #[test]
    fn open_span_is_closed_on_finish() {
        let mut t = PartyTracer::new(1, TraceConfig::full());
        t.begin(0, "interrupted");
        let events = t.into_events();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[1].kind, EventKind::End { cost } if cost == CostSnapshot::default()));
    }

    #[test]
    fn ring_keeps_tail_and_rebalances() {
        let mut t = PartyTracer::new(1, TraceConfig::ring(4));
        for r in 0..10 {
            t.begin(r, "p");
            t.end(r, snap(1, 0));
        }
        let events = t.into_events();
        // Capacity 4 holds the last two (Begin, End) pairs; the stream
        // must still start on a Begin.
        assert_eq!(events.len(), 4);
        assert!(matches!(events[0].kind, EventKind::Begin { .. }));
        assert_eq!(events[0].round, 8);
        assert_eq!(events[3].round, 9);
    }

    #[test]
    fn per_party_cost_sums_span_deltas() {
        let t = Trace::from_parties([one_round(1, 0, TraceConfig::full()), {
            let mut pt = PartyTracer::new(2, TraceConfig::full());
            pt.begin(0, "p");
            pt.end(0, snap(5, 0));
            pt.begin(1, "q");
            pt.end(1, snap(7, 1));
            pt.into_events()
        }]);
        let per = t.per_party_cost(2);
        assert_eq!(per[0], snap(10, 3));
        assert_eq!(per[1], snap(12, 1));
        assert_eq!(t.total_cost(), snap(22, 4));
    }

    #[test]
    fn round_phase_costs_aggregates_parties() {
        let t = Trace::from_parties((1..=3).map(|p| one_round(p, 0, TraceConfig::full())));
        let rows = t.round_phase_costs();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].phase, "phase");
        assert_eq!(rows[0].parties, 3);
        assert_eq!(rows[0].cost, snap(30, 9));
    }
}
