//! Chrome trace-event JSON export (and the matching reader).
//!
//! The [trace-event format] is what Perfetto and `chrome://tracing` load:
//! a `traceEvents` array of `B`/`E` duration events and `i` instants,
//! keyed by process/thread ids. We map one run to `pid` 1, each party to
//! a `tid`, and use the merged trace's position index as the logical
//! `ts` — so the rendered timeline is the canonical `(round, party, seq)`
//! order, not wall time.
//!
//! The writer is canonical (fixed key order, minimal escapes), and
//! [`parse_chrome_json`] reads exactly what it writes, so
//! [`validate_chrome_json`] can check a byte-identical round trip plus
//! the structural invariants (monotone timestamps, balanced span
//! nesting) — the smoke check `scripts/verify.sh` runs.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{escape_json, parse_json};
use crate::{EventKind, Trace};

/// One event of the Chrome trace-event JSON, as emitted and re-parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Span or instant name (the phase label, `"flush"`, or a mark).
    pub name: String,
    /// Phase type: `B` (span open), `E` (span close), `i` (instant).
    pub ph: char,
    /// Process id (always 1 — one run is one process).
    pub pid: u64,
    /// Thread id (the 1-based party id).
    pub tid: u64,
    /// Logical timestamp: the event's position in the merged trace.
    pub ts: u64,
    /// Instant scope (`"t"` on `i` events, absent otherwise).
    pub scope: Option<String>,
    /// Argument payload, key order preserved.
    pub args: Vec<(String, u64)>,
}

/// Lower a merged [`Trace`] to Chrome events (the structured form of
/// [`to_chrome_json`]).
pub fn chrome_events(trace: &Trace) -> Vec<ChromeEvent> {
    // `E` events name the span they close; track the open phase per party.
    let mut open: BTreeMap<usize, String> = BTreeMap::new();
    trace
        .events
        .iter()
        .enumerate()
        .map(|(ts, e)| {
            let ts = ts as u64;
            let (name, ph, scope, args) = match &e.kind {
                EventKind::Begin { phase } => {
                    open.insert(e.party, phase.clone());
                    (phase.clone(), 'B', None, vec![("round".to_string(), e.round)])
                }
                EventKind::Flush { messages, bytes } => (
                    "flush".to_string(),
                    'i',
                    Some("t".to_string()),
                    vec![
                        ("round".to_string(), e.round),
                        ("messages".to_string(), *messages),
                        ("bytes".to_string(), *bytes),
                    ],
                ),
                EventKind::End { cost } => (
                    open.remove(&e.party).unwrap_or_else(|| "round".to_string()),
                    'E',
                    None,
                    vec![
                        ("round".to_string(), e.round),
                        ("field_adds".to_string(), cost.field_adds),
                        ("field_muls".to_string(), cost.field_muls),
                        ("field_invs".to_string(), cost.field_invs),
                        ("interpolations".to_string(), cost.interpolations),
                        ("messages".to_string(), cost.messages),
                        ("bytes".to_string(), cost.bytes),
                        ("rounds".to_string(), cost.rounds),
                    ],
                ),
                EventKind::Mark { label } => (
                    label.clone(),
                    'i',
                    Some("t".to_string()),
                    vec![("round".to_string(), e.round)],
                ),
            };
            ChromeEvent { name, ph, pid: 1, tid: e.party as u64, ts, scope, args }
        })
        .collect()
}

/// Serialize Chrome events with the canonical key order — the writer half
/// of the byte-identical round trip.
pub fn emit_chrome_json(events: &[ChromeEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":{},\"tid\":{},\"ts\":{}",
            escape_json(&e.name),
            e.ph,
            e.pid,
            e.tid,
            e.ts
        );
        if let Some(scope) = &e.scope {
            let _ = write!(out, ",\"s\":\"{}\"", escape_json(scope));
        }
        out.push_str(",\"args\":{");
        for (j, (k, v)) in e.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape_json(k), v);
        }
        out.push_str("}}");
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Export a merged [`Trace`] as Chrome trace-event JSON (Perfetto /
/// `chrome://tracing` loadable).
pub fn to_chrome_json(trace: &Trace) -> String {
    emit_chrome_json(&chrome_events(trace))
}

/// Parse a Chrome trace-event JSON document produced by
/// [`to_chrome_json`] back into its events.
///
/// # Errors
///
/// Returns a message if the document is not valid JSON or lacks the
/// fields the exporter writes.
pub fn parse_chrome_json(src: &str) -> Result<Vec<ChromeEvent>, String> {
    let doc = parse_json(src)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "missing `traceEvents` array".to_string())?;
    events
        .iter()
        .enumerate()
        .map(|(i, ev)| {
            let field = |key: &str| {
                ev.get(key)
                    .and_then(|v| v.as_u64())
                    .ok_or_else(|| format!("event {i}: missing numeric `{key}`"))
            };
            let name = ev
                .get("name")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("event {i}: missing `name`"))?
                .to_string();
            let ph_str = ev
                .get("ph")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("event {i}: missing `ph`"))?;
            let mut chars = ph_str.chars();
            let ph = match (chars.next(), chars.next()) {
                (Some(c), None) => c,
                _ => return Err(format!("event {i}: `ph` must be one character")),
            };
            let scope = ev.get("s").and_then(|v| v.as_str()).map(str::to_string);
            let args = match ev.get("args") {
                Some(crate::Json::Obj(fields)) => fields
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("event {i}: non-integer arg `{k}`"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                _ => return Err(format!("event {i}: missing `args` object")),
            };
            Ok(ChromeEvent {
                name,
                ph,
                pid: field("pid")?,
                tid: field("tid")?,
                ts: field("ts")?,
                scope,
                args,
            })
        })
        .collect()
}

/// Validate an exported document end to end: it must parse, re-emit
/// byte-identically, carry monotonically non-decreasing timestamps, and
/// every `tid`'s `B`/`E` events must alternate and balance (spans are
/// flat per party — one round span open at a time).
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_chrome_json(src: &str) -> Result<(), String> {
    let events = parse_chrome_json(src)?;
    let reemitted = emit_chrome_json(&events);
    if reemitted != src {
        return Err("round trip is not byte-identical".to_string());
    }
    let mut last_ts = 0u64;
    let mut open: BTreeMap<u64, String> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.ts < last_ts {
            return Err(format!("event {i}: ts {} regresses below {last_ts}", e.ts));
        }
        last_ts = e.ts;
        match e.ph {
            'B' => {
                if let Some(inside) = open.insert(e.tid, e.name.clone()) {
                    return Err(format!(
                        "event {i}: span `{}` opens on tid {} while `{inside}` is open",
                        e.name, e.tid
                    ));
                }
            }
            'E' => match open.remove(&e.tid) {
                Some(name) if name == e.name => {}
                Some(name) => {
                    return Err(format!(
                        "event {i}: span close `{}` does not match open `{name}`",
                        e.name
                    ));
                }
                None => {
                    return Err(format!("event {i}: span close with no open span on tid {}", e.tid));
                }
            },
            'i' => {}
            other => return Err(format!("event {i}: unknown phase type `{other}`")),
        }
    }
    if let Some((tid, name)) = open.into_iter().next() {
        return Err(format!("span `{name}` on tid {tid} never closes"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PartyTracer, TraceConfig};
    use dprbg_metrics::CostSnapshot;

    fn sample_trace() -> Trace {
        Trace::from_parties((1..=2).map(|p| {
            let mut t = PartyTracer::new(p, TraceConfig::full());
            t.begin(0, "bit-gen/deal");
            t.flush(0, 4, 64);
            t.end(0, CostSnapshot { field_adds: 12, messages: 4, bytes: 64, rounds: 1, ..Default::default() });
            t.begin(1, "bit-gen/record");
            t.mark(1, "tamper");
            t.end(1, CostSnapshot { field_muls: 3, rounds: 1, ..Default::default() });
            t.into_events()
        }))
    }

    #[test]
    fn export_is_valid_json_with_expected_shape() {
        let json = to_chrome_json(&sample_trace());
        let doc = parse_json(&json).expect("exporter must emit valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(events.len(), 12); // 2 parties × 2 spans of (B, i, E)
        assert_eq!(events[0].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("bit-gen/deal"));
    }

    #[test]
    fn timestamps_are_monotone_and_match_positions() {
        let events = chrome_events(&sample_trace());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ts, i as u64);
        }
    }

    #[test]
    fn span_close_carries_opening_name() {
        let events = chrome_events(&sample_trace());
        let closes: Vec<&ChromeEvent> = events.iter().filter(|e| e.ph == 'E').collect();
        assert_eq!(closes.len(), 4);
        assert!(closes.iter().any(|e| e.name == "bit-gen/deal"));
        assert!(closes.iter().any(|e| e.name == "bit-gen/record"));
    }

    #[test]
    fn round_trip_is_byte_identical_and_validates() {
        let json = to_chrome_json(&sample_trace());
        let parsed = parse_chrome_json(&json).unwrap();
        assert_eq!(emit_chrome_json(&parsed), json);
        validate_chrome_json(&json).unwrap();
    }

    #[test]
    fn validator_rejects_unbalanced_spans() {
        let mut events = chrome_events(&sample_trace());
        events.retain(|e| e.ph != 'E');
        // Re-number timestamps so only the balance check can fail.
        for (i, e) in events.iter_mut().enumerate() {
            e.ts = i as u64;
        }
        let doc = emit_chrome_json(&events);
        let err = validate_chrome_json(&doc).unwrap_err();
        assert!(err.contains("opens on tid"), "unexpected error: {err}");
    }

    #[test]
    fn validator_rejects_regressing_timestamps() {
        let mut events = chrome_events(&sample_trace());
        let last = events.len() - 1;
        events[last].ts = 0;
        let doc = emit_chrome_json(&events);
        let err = validate_chrome_json(&doc).unwrap_err();
        assert!(err.contains("regresses"), "unexpected error: {err}");
    }
}
