//! The [`Field`] abstraction shared by every protocol in the workspace.

use std::fmt::{Debug, Display};
use std::hash::Hash;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use dprbg_metrics::WireSize;
use dprbg_rng::Rng;

/// A finite field element.
///
/// All protocol code in the workspace is generic over this trait. Elements
/// are small `Copy` values; the field itself (modulus, degree) is carried in
/// the type, so there is no runtime context to thread through protocols.
///
/// Arithmetic must tick the [`dprbg_metrics::ops`] counters: exactly one
/// `add` per `+`/`-`, one `mul` per `*`, one `inv` per [`Field::inv`] — the
/// unit in which the paper states its computation bounds.
///
/// # Examples
///
/// ```
/// use dprbg_field::{Field, Gf2k};
/// let x = Gf2k::<8>::element(3);
/// assert_eq!(x - x, Gf2k::<8>::zero());
/// assert_eq!(x * Gf2k::<8>::one(), x);
/// ```
pub trait Field:
    Copy
    + Clone
    + Eq
    + PartialEq
    + Hash
    + Debug
    + Display
    + Default
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + Product
    + WireSize
{
    /// Human-readable field name (e.g. `"GF(2^32)"`), used in reports.
    const NAME: &'static str;

    /// The additive identity.
    fn zero() -> Self;

    /// The multiplicative identity.
    fn one() -> Self;

    /// Whether this element is the additive identity.
    fn is_zero(&self) -> bool;

    /// The multiplicative inverse, or `None` for zero.
    fn inv(&self) -> Option<Self>;

    /// Raise to the power `e` by square-and-multiply.
    ///
    /// Internal multiplications are charged to the cost counters, matching
    /// the paper's accounting of exponentiation as `log p` multiplications
    /// (its discussion of Feldman's protocol, §3.1).
    fn pow(&self, mut e: u128) -> Self {
        let mut base = *self;
        let mut acc = Self::one();
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            e >>= 1;
            if e > 0 {
                base = base * base;
            }
        }
        acc
    }

    /// The canonical field element for an integer, reduced into the field.
    ///
    /// For GF(2^k) this interprets `x` as a polynomial over GF(2) and
    /// reduces it modulo the field polynomial; for prime fields it reduces
    /// modulo `p`.
    fn from_u64(x: u64) -> Self;

    /// The canonical `u64` representative of this element.
    ///
    /// Inverse of [`Field::from_u64`] on the canonical range. For fields
    /// with more than 2^64 elements this is lossy only for elements outside
    /// `u64` range (none of our supported fields exceed 64 bits).
    fn to_u64(&self) -> u64;

    /// A uniformly random field element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;

    /// The size of the field in bits: `⌈log2 p⌉` (the paper's `k`).
    fn bits() -> u32;

    /// The number of field elements `p`.
    fn order() -> u128;

    /// The model cost of one multiplication, expressed in additions.
    ///
    /// The paper charges `O(k log k)` via the special field (§2); we charge
    /// `k·⌈log2 k⌉` so reports can convert multiplication counts into the
    /// paper's addition unit.
    fn mul_cost_in_adds() -> u64 {
        let k = Self::bits() as u64;
        k * (64 - k.leading_zeros() as u64).max(1)
    }

    /// Bytes one element occupies on the wire: `⌈k/8⌉`.
    fn wire_bytes_static() -> usize {
        (Self::bits() as usize).div_ceil(8)
    }

    /// The distinguished evaluation point of party `i` (or any small index).
    ///
    /// Party `P_i` in the paper holds the share `f(i)`; this maps the
    /// integer id to the field element written `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not less than the field order (there would be no
    /// injective embedding).
    fn element(i: u64) -> Self {
        assert!(
            (i as u128) < Self::order(),
            "index {i} does not embed into a field of order {}",
            Self::order()
        );
        Self::from_u64(i)
    }
}
