// `deny` rather than `forbid`: the one sanctioned exception is the single
// `PCLMULQDQ` intrinsic call in [`clmul`], which carries a scoped
// `#[allow(unsafe_code)]` plus a safety proof (runtime feature probe).
// Everything else in the crate still refuses `unsafe`.
#![deny(unsafe_code)]
#![deny(missing_docs)]

//! Finite-field arithmetic for the `dprbg` workspace.
//!
//! The PODC '96 paper (Section 2) works over a finite field of size
//! `p = Ω(2^k)` where `k` is the security parameter. It discusses two
//! concrete instantiations:
//!
//! 1. **GF(2^k)** with naive `O(k²)` multiplication — what the protocols
//!    "for simplicity" are stated over, and what the paper recommends in
//!    practice for small `k`. Implemented here as [`Gf2k`], a const-generic
//!    binary field with carry-less multiplication and table-verified
//!    low-weight irreducible moduli for `k ∈ {4, 8, 16, 24, 32, 40, 48, 56,
//!    64}`.
//! 2. **The "specially constructed" field GF(q^l)** with `q ≥ 2l + 1` prime
//!    and `q^l ≥ 2^k`, in which multiplication runs in `O(l log l)` `Z_q`
//!    operations via discrete Fourier transforms. Implemented as [`GfQl`]
//!    (with both the naive and the DFT multiplication, so experiment E8 can
//!    measure the crossover the paper predicts).
//!
//! Additionally [`Fp`] provides prime fields (used by the Feldman-VSS
//! baseline's discrete-log commitments and as the DFT coefficient ring), and
//! [`zq`] hosts the supporting number theory (primality, primitive roots,
//! modular arithmetic).
//!
//! All arithmetic on [`Field`] types feeds the [`dprbg_metrics`] cost
//! counters — one `add`/`mul`/`inv` tick per model-level field operation —
//! which is how the workspace reports costs in the paper's own unit.
//!
//! # Examples
//!
//! ```
//! use dprbg_field::{Field, Gf2k};
//!
//! type F = Gf2k<16>;
//! let a = F::from_u64(0x1234);
//! let b = F::from_u64(0x00FF);
//! let c = a * b;
//! let back = c * b.inv().expect("b is nonzero");
//! assert_eq!(back, a);
//! ```

pub mod clmul;
mod fp;
mod gf2k;
mod gfql;
mod traits;
pub mod zq;

pub use fp::{Fp, SAFE_PRIME_GEN, SAFE_PRIME_P, SAFE_PRIME_Q};
pub use gf2k::{reduction_poly, Gf2k, SUPPORTED_GF2K_DEGREES};
pub use gfql::{GfQl, GfQlError, GfQlParams};
pub use traits::Field;

/// The workspace's default protocol field: GF(2^32).
///
/// Big enough that soundness errors `M/p` are negligible for realistic batch
/// sizes, small enough that elements stay `Copy` in a machine word.
pub type DefaultField = Gf2k<32>;
