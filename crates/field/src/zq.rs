//! Supporting number theory over `Z_q` with runtime moduli.
//!
//! The special field GF(q^l) (§2 of the paper) performs its DFTs over a
//! small prime `Z_q`; these helpers provide the modular arithmetic, a
//! deterministic Miller–Rabin primality test for `u64`, and primitive-root
//! search used to derive DFT twiddle factors and the field modulus
//! `x^l − a`.

/// Modular addition in `Z_q`.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// Modular subtraction in `Z_q`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// Modular multiplication in `Z_q` (inputs must already be reduced).
#[inline]
pub fn mul_mod(a: u64, b: u64, q: u64) -> u64 {
    ((a as u128 * b as u128) % q as u128) as u64
}

/// Modular exponentiation `a^e mod q`.
pub fn pow_mod(mut a: u64, mut e: u64, q: u64) -> u64 {
    a %= q;
    let mut r = 1 % q;
    while e > 0 {
        if e & 1 == 1 {
            r = mul_mod(r, a, q);
        }
        a = mul_mod(a, a, q);
        e >>= 1;
    }
    r
}

/// Modular inverse in `Z_q` for prime `q`, `None` for zero.
pub fn inv_mod(a: u64, q: u64) -> Option<u64> {
    let a = a % q;
    if a == 0 {
        None
    } else {
        Some(pow_mod(a, q - 2, q))
    }
}

/// Deterministic Miller–Rabin primality test, exact for all `u64`.
///
/// Uses the standard 12-base witness set that is proven sufficient below
/// 2^64.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n.is_multiple_of(p) {
            return n == p;
        }
    }
    let mut d = n - 1;
    let mut s = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        s += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = mul_mod(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// The distinct prime factors of `n` (trial division; fine for the small
/// `q − 1` values this crate uses).
pub fn prime_factors(mut n: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            out.push(d);
            while n.is_multiple_of(d) {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// The smallest primitive root modulo the prime `q`, or `None` if `q` is
/// not prime or `q < 3`.
pub fn primitive_root(q: u64) -> Option<u64> {
    if q < 3 || !is_prime(q) {
        return None;
    }
    let factors = prime_factors(q - 1);
    (2..q).find(|&g| factors.iter().all(|&f| pow_mod(g, (q - 1) / f, q) != 1))
}

/// An element of multiplicative order exactly `m` in `Z_q^*`, or `None` if
/// `m` does not divide `q − 1` (or `q` is not prime).
pub fn root_of_unity(q: u64, m: u64) -> Option<u64> {
    if m == 0 || !is_prime(q) || !(q - 1).is_multiple_of(m) {
        return None;
    }
    let g = primitive_root(q)?;
    let w = pow_mod(g, (q - 1) / m, q);
    // Order is exactly m because g is primitive.
    Some(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_small_cases() {
        let primes = [2u64, 3, 5, 7, 11, 13, 97, 101, 193, 257, 769, 65537];
        for p in primes {
            assert!(is_prime(p), "{p} should be prime");
        }
        for c in [0u64, 1, 4, 9, 91, 561, 1105, 6601, 2u64.pow(32) - 1] {
            assert!(!is_prime(c), "{c} should be composite");
        }
    }

    #[test]
    fn primality_large_known() {
        assert!(is_prime(2u64.pow(61) - 1)); // Mersenne prime
        assert!(is_prime(crate::SAFE_PRIME_P));
        assert!(!is_prime(2u64.pow(61) + 1));
    }

    #[test]
    fn pow_and_inv() {
        assert_eq!(pow_mod(3, 16, 17), 1);
        assert_eq!(inv_mod(0, 17), None);
        for a in 1..17u64 {
            assert_eq!(mul_mod(a, inv_mod(a, 17).unwrap(), 17), 1);
        }
    }

    #[test]
    fn known_primitive_roots() {
        assert_eq!(primitive_root(17), Some(3));
        assert_eq!(primitive_root(97), Some(5));
        assert_eq!(primitive_root(193), Some(5));
        assert_eq!(primitive_root(4), None);
    }

    #[test]
    fn roots_of_unity_have_exact_order() {
        let q = 97;
        for m in [2u64, 4, 8, 16, 32] {
            let w = root_of_unity(q, m).unwrap();
            assert_eq!(pow_mod(w, m, q), 1);
            for f in prime_factors(m) {
                assert_ne!(pow_mod(w, m / f, q), 1, "order must be exactly {m}");
            }
        }
        assert_eq!(root_of_unity(97, 5), None); // 5 does not divide 96
    }

    #[test]
    fn prime_factor_sets() {
        assert_eq!(prime_factors(96), vec![2, 3]);
        assert_eq!(prime_factors(1), Vec::<u64>::new());
        assert_eq!(prime_factors(97), vec![97]);
    }
}
