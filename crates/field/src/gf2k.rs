//! GF(2^k): binary extension fields with carry-less arithmetic.
//!
//! This is the field the paper's protocols are stated over ("for simplicity
//! however the algorithms we provide below assume we work over GF(2^k)",
//! §2). Elements are polynomials over GF(2) of degree < k packed into a
//! `u64`; addition is XOR; multiplication is a carry-less (shift/XOR)
//! product followed by reduction modulo a fixed irreducible polynomial
//! `x^k + R(x)`.
//!
//! The moduli in [`reduction_poly`] are the lexicographically smallest
//! irreducible polynomials of each supported degree; the test suite
//! re-verifies irreducibility with Rabin's test.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use dprbg_metrics::{ops, WireSize};
use dprbg_rng::{Rng, RngExt};

use crate::clmul;
use crate::traits::Field;

/// The degrees `k` for which a verified irreducible modulus is built in.
pub const SUPPORTED_GF2K_DEGREES: &[usize] = &[4, 8, 16, 24, 32, 40, 48, 56, 64];

/// The low part `R` of the irreducible modulus `x^k + R(x)` for GF(2^k).
///
/// Returns the coefficients of `R` packed into a `u64` (bit `i` is the
/// coefficient of `x^i`).
///
/// # Panics
///
/// Panics if `k` is not one of [`SUPPORTED_GF2K_DEGREES`].
pub const fn reduction_poly(k: usize) -> u64 {
    match k {
        4 => 0x3,   // x^4 + x + 1
        8 => 0x1B,  // x^8 + x^4 + x^3 + x + 1
        16 => 0x2B, // x^16 + x^5 + x^3 + x + 1
        24 => 0x1B, // x^24 + x^4 + x^3 + x + 1
        32 => 0x8D, // x^32 + x^7 + x^3 + x^2 + 1
        40 => 0x39, // x^40 + x^5 + x^4 + x^3 + 1
        48 => 0x2D, // x^48 + x^5 + x^3 + x^2 + 1
        56 => 0x95, // x^56 + x^7 + x^4 + x^2 + 1
        64 => 0x1B, // x^64 + x^4 + x^3 + x + 1
        _ => panic!("unsupported GF(2^k) degree"),
    }
}

const fn mask(k: usize) -> u64 {
    if k == 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// An element of GF(2^k).
///
/// The value is the canonical representative: a polynomial of degree < `K`
/// over GF(2), packed bit `i` = coefficient of `x^i`.
///
/// # Examples
///
/// ```
/// use dprbg_field::{Field, Gf2k};
/// // In GF(2^8), x * x^7 = x^8 = R(x) = x^4 + x^3 + x + 1 = 0x1B.
/// let x = Gf2k::<8>::from_u64(0b10);
/// let x7 = Gf2k::<8>::from_u64(0x80);
/// assert_eq!((x * x7).to_u64(), 0x1B);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Gf2k<const K: usize>(u64);

impl<const K: usize> Gf2k<K> {
    /// Fold the coefficients at or above `x^K` down once:
    /// `v ≡ lo + clmul(hi, R)  (mod x^K + R)` where `v = hi·x^K + lo`.
    #[inline]
    fn fold(v: u128) -> u128 {
        (v & mask(K) as u128) ^ clmul::clmul((v >> K) as u64, reduction_poly(K))
    }

    /// Reduce a carry-less product modulo `x^K + R` in exactly two folds.
    ///
    /// Callers must keep the input degree ≤ 2K−2 — true of any product
    /// of two canonical elements, and of the `x^shift` terms (`shift ≤ K`)
    /// that [`Field::inv`] reduces. Under that contract two unconditional
    /// folds always clear everything at or above `x^K` for every supported
    /// modulus: fold one leaves degree ≤ K−2+deg R, fold two leaves
    /// ≤ 2·deg R − 2, and every built-in `R` has deg R ≤ 7 with
    /// 2·deg R − 2 < K (checked exhaustively by `two_folds_suffice`).
    /// Fixed work, no data-dependent trip count. Inputs already below
    /// `x^K` pass through both folds unchanged (`hi = 0` XORs nothing).
    /// Arbitrary-width inputs go through [`Self::reduce_full`] instead.
    #[inline]
    fn reduce(v: u128) -> u64 {
        debug_assert!(
            K == 64 || v >> (2 * K - 1) == 0,
            "reduce input exceeds the product-width contract"
        );
        let v = Self::fold(Self::fold(v));
        debug_assert_eq!(v >> K, 0, "two folds must fully reduce a product");
        v as u64
    }

    /// Reduce an arbitrary 128-bit polynomial modulo `x^K + R`.
    ///
    /// The general entry used by [`Field::from_u64`] conversions, whose
    /// input can have any degree up to 63 even when `K` is small. Not on
    /// the multiplication path — products use the fixed-fold
    /// [`Self::reduce`].
    #[inline]
    fn reduce_full(mut v: u128) -> u64 {
        while v >> K != 0 {
            v = Self::fold(v);
        }
        v as u64
    }

    /// Raw carry-less field multiplication without cost counting.
    ///
    /// Used internally by [`Field::inv`] so that an inversion is charged as
    /// one `inv` tick rather than as its constituent multiplications.
    #[inline]
    fn mul_raw(self, rhs: Self) -> Self {
        Gf2k(Self::reduce(clmul::clmul(self.0, rhs.0)))
    }

    /// Degree of the polynomial `v` over GF(2) (`v` must be nonzero).
    #[inline]
    fn degree(v: u128) -> i32 {
        127 - v.leading_zeros() as i32
    }

    /// The full modulus `x^K + R` as a 128-bit polynomial.
    #[inline]
    fn modulus() -> u128 {
        (1u128 << K) ^ reduction_poly(K) as u128
    }
}

impl<const K: usize> Add for Gf2k<K> {
    type Output = Self;
    // XOR *is* addition in characteristic 2.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn add(self, rhs: Self) -> Self {
        ops::count_add(1);
        Gf2k(self.0 ^ rhs.0)
    }
}

impl<const K: usize> Sub for Gf2k<K> {
    type Output = Self;
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction is addition.
        ops::count_add(1);
        Gf2k(self.0 ^ rhs.0)
    }
}

impl<const K: usize> Mul for Gf2k<K> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        ops::count_mul(1);
        self.mul_raw(rhs)
    }
}

impl<const K: usize> Div for Gf2k<K> {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    // Division in a field is multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv().expect("division by zero in GF(2^k)")
    }
}

impl<const K: usize> Neg for Gf2k<K> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        // Characteristic 2: every element is its own negation.
        self
    }
}

impl<const K: usize> AddAssign for Gf2k<K> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const K: usize> SubAssign for Gf2k<K> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const K: usize> MulAssign for Gf2k<K> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const K: usize> Sum for Gf2k<K> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(<Self as Field>::zero(), |a, b| a + b)
    }
}

impl<const K: usize> Product for Gf2k<K> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(<Self as Field>::one(), |a, b| a * b)
    }
}

impl<const K: usize> fmt::Debug for Gf2k<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2k<{K}>({:#x})", self.0)
    }
}

impl<const K: usize> fmt::Display for Gf2k<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl<const K: usize> WireSize for Gf2k<K> {
    fn wire_bytes(&self) -> usize {
        K.div_ceil(8)
    }
}

impl<const K: usize> From<u64> for Gf2k<K> {
    fn from(x: u64) -> Self {
        <Self as Field>::from_u64(x)
    }
}

impl<const K: usize> Field for Gf2k<K> {
    const NAME: &'static str = match K {
        4 => "GF(2^4)",
        8 => "GF(2^8)",
        16 => "GF(2^16)",
        24 => "GF(2^24)",
        32 => "GF(2^32)",
        40 => "GF(2^40)",
        48 => "GF(2^48)",
        56 => "GF(2^56)",
        64 => "GF(2^64)",
        _ => panic!("unsupported GF(2^k) degree"),
    };

    #[inline]
    fn zero() -> Self {
        Gf2k(0)
    }

    #[inline]
    fn one() -> Self {
        Gf2k(1)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    fn inv(&self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        ops::count_inv(1);
        // Extended Euclidean algorithm over GF(2)[x]:
        // maintain u·self ≡ a  and  v·self ≡ b  (mod x^K + R).
        let mut a: u128 = self.0 as u128;
        let mut b: u128 = Self::modulus();
        let mut u = Gf2k::<K>(1);
        let mut v = Gf2k::<K>(0);
        while a != 0 {
            let da = Self::degree(a);
            let db = Self::degree(b);
            if da < db {
                std::mem::swap(&mut a, &mut b);
                std::mem::swap(&mut u, &mut v);
                continue;
            }
            let shift = (da - db) as u32;
            a ^= b << shift;
            // u ← u + x^shift · v, reduced.
            let xs = Gf2k::<K>(Self::reduce(1u128 << shift));
            u = Gf2k(u.0 ^ xs.mul_raw(v).0);
        }
        debug_assert_eq!(b, 1, "gcd(self, modulus) must be 1 in a field");
        Some(v)
    }

    fn from_u64(x: u64) -> Self {
        Gf2k(Self::reduce_full(x as u128))
    }

    #[inline]
    fn to_u64(&self) -> u64 {
        self.0
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // The masked draw is already canonical (degree < K), so the
        // reduction inside `from_u64` is a no-op — but routing through it
        // means canonicality never rests on a debug-only assertion the
        // way the old `from_canonical` constructor did.
        Self::from_u64(rng.random::<u64>() & mask(K))
    }

    #[inline]
    fn bits() -> u32 {
        K as u32
    }

    #[inline]
    fn order() -> u128 {
        1u128 << K
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    /// Rabin's irreducibility test for `x^k + r` over GF(2).
    fn is_irreducible(k: usize, r: u64) -> bool {
        let m: u128 = (1u128 << k) ^ r as u128;
        fn deg(v: u128) -> i32 {
            127 - v.leading_zeros() as i32
        }
        fn pmod(mut a: u128, m: u128) -> u128 {
            let dm = deg(m);
            while a != 0 && deg(a) >= dm {
                a ^= m << (deg(a) - dm);
            }
            a
        }
        // Multiply two ≤64-bit polys mod m.
        fn pmulmod(a: u128, b: u128, m: u128) -> u128 {
            let mut r: u128 = 0;
            let mut b = b;
            let mut a = a;
            while b != 0 {
                if b & 1 == 1 {
                    r ^= a;
                }
                b >>= 1;
                a = pmod(a << 1, m);
            }
            pmod(r, m)
        }
        fn frobenius(e: usize, m: u128) -> u128 {
            // x^(2^e) mod m by repeated squaring.
            let mut r: u128 = 2;
            for _ in 0..e {
                r = pmulmod(r, r, m);
            }
            r
        }
        fn pgcd(mut a: u128, mut b: u128) -> u128 {
            while b != 0 {
                let t = pmod(a, b);
                a = b;
                b = t;
            }
            a
        }
        if frobenius(k, m) != 2 {
            return false;
        }
        let mut primes = vec![];
        let mut n = k;
        let mut d = 2;
        while d * d <= n {
            if n.is_multiple_of(d) {
                primes.push(d);
                while n.is_multiple_of(d) {
                    n /= d;
                }
            }
            d += 1;
        }
        if n > 1 {
            primes.push(n);
        }
        primes
            .into_iter()
            .all(|p| pgcd(m, frobenius(k / p, m) ^ 2) == 1)
    }

    #[test]
    fn all_moduli_are_irreducible() {
        for &k in SUPPORTED_GF2K_DEGREES {
            assert!(
                is_irreducible(k, reduction_poly(k)),
                "modulus for GF(2^{k}) is reducible"
            );
        }
    }

    #[test]
    fn basic_identities_gf256() {
        type F = Gf2k<8>;
        let a = F::from_u64(0x57);
        let b = F::from_u64(0x83);
        // Known AES-field product: 0x57 * 0x83 = 0xC1 under 0x11B.
        assert_eq!((a * b).to_u64(), 0xC1);
        assert_eq!(a + a, F::zero());
        assert_eq!(a * F::one(), a);
        assert_eq!(-a, a);
    }

    #[test]
    fn from_u64_reduces() {
        type F = Gf2k<4>;
        // x^4 ≡ x + 1, so 0b10000 reduces to 0b0011.
        assert_eq!(F::from_u64(0b10000).to_u64(), 0b0011);
    }

    #[test]
    fn inv_of_zero_is_none() {
        assert_eq!(Gf2k::<16>::zero().inv(), None);
    }

    #[test]
    fn division_matches_inverse() {
        type F = Gf2k<32>;
        let a = F::from_u64(0xDEADBEEF);
        let b = F::from_u64(0x1234567);
        assert_eq!(a / b, a * b.inv().unwrap());
        assert_eq!((a / b) * b, a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf2k::<8>::one() / Gf2k::<8>::zero();
    }

    #[test]
    fn pow_matches_repeated_mul() {
        type F = Gf2k<16>;
        let g = F::from_u64(0xAB);
        let mut acc = F::one();
        for e in 0..20u128 {
            assert_eq!(g.pow(e), acc);
            acc *= g;
        }
    }

    #[test]
    fn element_order_divides_group_order() {
        // Fermat: a^(2^k - 1) = 1 for nonzero a.
        type F = Gf2k<24>;
        let a = F::from_u64(0xBEEF01);
        assert_eq!(a.pow((1u128 << 24) - 1), F::one());
    }

    #[test]
    fn k64_full_width_roundtrip() {
        type F = Gf2k<64>;
        let a = F::from_u64(u64::MAX);
        assert_eq!(a.to_u64(), u64::MAX);
        assert_eq!((a * a.inv().unwrap()), F::one());
    }

    #[test]
    fn wire_bytes_is_k_over_8() {
        assert_eq!(Gf2k::<8>::zero().wire_bytes(), 1);
        assert_eq!(Gf2k::<32>::zero().wire_bytes(), 4);
        assert_eq!(Gf2k::<64>::zero().wire_bytes(), 8);
        assert_eq!(Gf2k::<4>::zero().wire_bytes(), 1);
        assert_eq!(Gf2k::<8>::wire_bytes_static(), 1);
    }

    #[test]
    fn random_elements_stay_canonical() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = Gf2k::<16>::random(&mut rng);
            assert!(v.to_u64() < (1 << 16));
        }
    }

    #[test]
    fn counts_ops() {
        use dprbg_metrics::CostSnapshot;
        type F = Gf2k<8>;
        let before = CostSnapshot::capture();
        let a = F::from_u64(3);
        let b = F::from_u64(5);
        let _ = a + b;
        let _ = a * b;
        let _ = a.inv();
        let d = CostSnapshot::capture().since(&before);
        assert_eq!(d.field_adds, 1);
        assert_eq!(d.field_muls, 1);
        assert_eq!(d.field_invs, 1);
    }

    #[test]
    fn display_and_debug_nonempty() {
        let a = Gf2k::<8>::from_u64(0);
        assert!(!format!("{a}").is_empty());
        assert!(format!("{a:?}").contains("Gf2k"));
    }

    #[test]
    fn element_panics_out_of_range() {
        let r = std::panic::catch_unwind(|| Gf2k::<4>::element(16));
        assert!(r.is_err());
    }

    fn axioms_hold<const K: usize>(a: u64, b: u64, c: u64) {
        let (a, b, c) = (
            Gf2k::<K>::from_u64(a),
            Gf2k::<K>::from_u64(b),
            Gf2k::<K>::from_u64(c),
        );
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!((a * b) * c, a * (b * c));
        assert_eq!(a * (b + c), a * b + a * c);
        assert_eq!(a + Gf2k::<K>::zero(), a);
        assert_eq!(a * Gf2k::<K>::one(), a);
        if !a.is_zero() {
            assert_eq!(a * a.inv().unwrap(), Gf2k::<K>::one());
        }
    }

    /// Exhaustive check of the fixed-fold contract: for every supported
    /// K, the worst-case post-fold degrees stay under K after two folds.
    #[test]
    fn two_folds_suffice() {
        fn deg(v: u128) -> i32 {
            127 - v.leading_zeros() as i32
        }
        for &k in SUPPORTED_GF2K_DEGREES {
            let dr = deg(reduction_poly(k) as u128);
            // Fold one of a degree ≤ 2K−2 input leaves ≤ max(K−1, K−2+dr);
            // fold two of that leaves ≤ max(K−1, 2·dr−2), which must be < K.
            assert!(2 * dr - 2 < k as i32, "GF(2^{k}): R too heavy for two folds");
        }
    }

    /// Product of the two highest-degree canonical elements reduces to a
    /// canonical value at every supported K (the widest input `reduce`
    /// ever sees: degree exactly 2K−2).
    #[test]
    fn max_degree_products_reduce_canonically() {
        fn check<const K: usize>() {
            let top = Gf2k::<K>::from_u64(mask(K));
            let p = top * top;
            assert!(p.to_u64() <= mask(K), "GF(2^{K}): product escaped canonical range");
            // And the product is consistent with square-via-pow.
            assert_eq!(p, top.pow(2));
        }
        check::<4>();
        check::<8>();
        check::<16>();
        check::<24>();
        check::<32>();
        check::<40>();
        check::<48>();
        check::<56>();
        check::<64>();
    }

    /// `from_u64` handles inputs far wider than K (many folds) — the case
    /// the fixed two-fold product reduction explicitly does not cover.
    #[test]
    fn from_u64_reduces_full_width_inputs_at_small_k() {
        for x in [u64::MAX, 1u64 << 63, 0xDEAD_BEEF_CAFE_F00D] {
            for &k in SUPPORTED_GF2K_DEGREES {
                let v = match k {
                    4 => Gf2k::<4>::from_u64(x).to_u64(),
                    8 => Gf2k::<8>::from_u64(x).to_u64(),
                    16 => Gf2k::<16>::from_u64(x).to_u64(),
                    24 => Gf2k::<24>::from_u64(x).to_u64(),
                    32 => Gf2k::<32>::from_u64(x).to_u64(),
                    40 => Gf2k::<40>::from_u64(x).to_u64(),
                    48 => Gf2k::<48>::from_u64(x).to_u64(),
                    56 => Gf2k::<56>::from_u64(x).to_u64(),
                    64 => Gf2k::<64>::from_u64(x).to_u64(),
                    _ => unreachable!(),
                };
                assert!(v <= mask(k), "GF(2^{k}): from_u64({x:#x}) not canonical");
            }
        }
    }

    /// One multiplication through the portable ladder and one through the
    /// dispatched backend (hardware CLMUL when available) must agree —
    /// per K, including the K=64 mask boundary, and with the top
    /// coefficient forced so the product runs the full `reduce` width.
    fn backends_agree<const K: usize>(a: u64, b: u64) {
        let x = Gf2k::<K>::from_u64(a);
        let y = Gf2k::<K>::from_u64(b);
        let via_dispatch = (x * y).to_u64();
        let via_portable = Gf2k::<K>::reduce(crate::clmul::clmul_portable(x.to_u64(), y.to_u64()));
        assert_eq!(via_dispatch, via_portable, "GF(2^{K}): backend mismatch");
        // Max-degree variant: force bit K−1 on both operands.
        let top = 1u64 << (K - 1);
        let (xm, ym) = (Gf2k::<K>(x.to_u64() | top), Gf2k::<K>(y.to_u64() | top));
        assert_eq!(
            (xm * ym).to_u64(),
            Gf2k::<K>::reduce(crate::clmul::clmul_portable(xm.to_u64(), ym.to_u64())),
            "GF(2^{K}): backend mismatch on max-degree product"
        );
    }

    proptest! {
        #[test]
        fn scalar_and_clmul_backends_agree_at_every_k(a: u64, b: u64) {
            backends_agree::<4>(a, b);
            backends_agree::<8>(a, b);
            backends_agree::<16>(a, b);
            backends_agree::<24>(a, b);
            backends_agree::<32>(a, b);
            backends_agree::<40>(a, b);
            backends_agree::<48>(a, b);
            backends_agree::<56>(a, b);
            backends_agree::<64>(a, b);
        }

        #[test]
        fn field_axioms_gf2_8(a: u64, b: u64, c: u64) {
            axioms_hold::<8>(a, b, c);
        }

        #[test]
        fn field_axioms_gf2_32(a: u64, b: u64, c: u64) {
            axioms_hold::<32>(a, b, c);
        }

        #[test]
        fn field_axioms_gf2_64(a: u64, b: u64, c: u64) {
            axioms_hold::<64>(a, b, c);
        }

        #[test]
        fn from_to_u64_roundtrip_canonical(a: u64) {
            let v = a & 0xFFFF;
            prop_assert_eq!(Gf2k::<16>::from_u64(v).to_u64(), v);
        }
    }
}
