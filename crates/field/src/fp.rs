//! Prime fields `F_p` with a compile-time modulus.
//!
//! Used by the Feldman-VSS baseline (discrete-log commitments modulo a safe
//! prime, §3.1's comparison) and available as an alternative protocol field.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use dprbg_metrics::{ops, WireSize};
use dprbg_rng::{Rng, RngExt};

use crate::traits::Field;

/// A 62-bit safe prime: `p = 2q + 1` with `q` prime.
///
/// The Feldman baseline commits in the order-`q` subgroup of `F_p^*`.
pub const SAFE_PRIME_P: u64 = 4_611_686_018_427_377_339;

/// The Sophie Germain prime `q = (p − 1) / 2` for [`SAFE_PRIME_P`].
pub const SAFE_PRIME_Q: u64 = (SAFE_PRIME_P - 1) / 2;

/// A generator of the order-`q` subgroup of `F_p^*` (a quadratic residue).
pub const SAFE_PRIME_GEN: u64 = 4;

/// An element of the prime field `F_P`.
///
/// `P` must be prime (inversion uses Fermat's little theorem; the library
/// asserts primality once per monomorphization in debug builds) and must be
/// below 2^63 so products fit comfortably in `u128`.
///
/// # Examples
///
/// ```
/// use dprbg_field::{Field, Fp};
/// type F = Fp<65537>;
/// let a = F::from_u64(65536);
/// assert_eq!(a + F::one(), F::zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fp<const P: u64>(u64);

impl<const P: u64> Fp<P> {
    #[inline]
    fn debug_check_modulus() {
        debug_assert!(P >= 2 && P < (1 << 63), "modulus out of range");
        debug_assert!(crate::zq::is_prime(P), "Fp modulus must be prime");
    }

    /// Raw modular multiplication without cost counting.
    #[inline]
    fn mul_raw(self, rhs: Self) -> Self {
        Fp(((self.0 as u128 * rhs.0 as u128) % P as u128) as u64)
    }
}

impl<const P: u64> Add for Fp<P> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        ops::count_add(1);
        let s = self.0 + rhs.0;
        Fp(if s >= P { s - P } else { s })
    }
}

impl<const P: u64> Sub for Fp<P> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        ops::count_add(1);
        Fp(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + P - rhs.0
        })
    }
}

impl<const P: u64> Mul for Fp<P> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        ops::count_mul(1);
        self.mul_raw(rhs)
    }
}

impl<const P: u64> Div for Fp<P> {
    type Output = Self;
    /// # Panics
    ///
    /// Panics on division by zero.
    // Division in a field is multiplication by the inverse.
    #[allow(clippy::suspicious_arithmetic_impl)]
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv().expect("division by zero in Fp")
    }
}

impl<const P: u64> Neg for Fp<P> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        if self.0 == 0 {
            self
        } else {
            Fp(P - self.0)
        }
    }
}

impl<const P: u64> AddAssign for Fp<P> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl<const P: u64> SubAssign for Fp<P> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl<const P: u64> MulAssign for Fp<P> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl<const P: u64> Sum for Fp<P> {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(<Self as Field>::zero(), |a, b| a + b)
    }
}

impl<const P: u64> Product for Fp<P> {
    fn product<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(<Self as Field>::one(), |a, b| a * b)
    }
}

impl<const P: u64> fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp<{P}>({})", self.0)
    }
}

impl<const P: u64> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<const P: u64> WireSize for Fp<P> {
    fn wire_bytes(&self) -> usize {
        <Self as Field>::wire_bytes_static()
    }
}

impl<const P: u64> From<u64> for Fp<P> {
    fn from(x: u64) -> Self {
        <Self as Field>::from_u64(x)
    }
}

impl<const P: u64> Field for Fp<P> {
    const NAME: &'static str = "F_p";

    #[inline]
    fn zero() -> Self {
        Fp(0)
    }

    #[inline]
    fn one() -> Self {
        Self::debug_check_modulus();
        Fp(1 % P)
    }

    #[inline]
    fn is_zero(&self) -> bool {
        self.0 == 0
    }

    fn inv(&self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        ops::count_inv(1);
        // Fermat: a^(p-2); raw multiplications so the inversion is charged
        // as a single `inv` tick.
        let mut e = P - 2;
        let mut base = *self;
        let mut acc = Fp(1 % P);
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul_raw(base);
            }
            e >>= 1;
            if e > 0 {
                base = base.mul_raw(base);
            }
        }
        Some(acc)
    }

    fn from_u64(x: u64) -> Self {
        Self::debug_check_modulus();
        Fp(x % P)
    }

    #[inline]
    fn to_u64(&self) -> u64 {
        self.0
    }

    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Fp(rng.random_range(0..P))
    }

    #[inline]
    fn bits() -> u32 {
        64 - P.leading_zeros()
    }

    #[inline]
    fn order() -> u128 {
        P as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Fp<SAFE_PRIME_P>;
    type Small = Fp<101>;

    #[test]
    fn safe_prime_structure() {
        assert!(crate::zq::is_prime(SAFE_PRIME_P));
        assert!(crate::zq::is_prime(SAFE_PRIME_Q));
        assert_eq!(SAFE_PRIME_P, 2 * SAFE_PRIME_Q + 1);
        // The generator has order q.
        let g = F::from_u64(SAFE_PRIME_GEN);
        assert_eq!(g.pow(SAFE_PRIME_Q as u128), F::one());
        assert_ne!(g, F::one());
    }

    #[test]
    fn arithmetic_identities() {
        let a = Small::from_u64(55);
        let b = Small::from_u64(77);
        assert_eq!((a + b).to_u64(), (55 + 77) % 101);
        assert_eq!((a - b).to_u64(), (55 + 101 - 77));
        assert_eq!((a * b).to_u64(), 55 * 77 % 101);
        assert_eq!((-a + a), Small::zero());
        assert_eq!(-Small::zero(), Small::zero());
    }

    #[test]
    fn inversion_and_division() {
        let a = Small::from_u64(13);
        assert_eq!(a * a.inv().unwrap(), Small::one());
        assert_eq!(Small::zero().inv(), None);
        let b = Small::from_u64(7);
        assert_eq!((a / b) * b, a);
    }

    #[test]
    fn fermat_exponent() {
        let a = F::from_u64(123_456_789);
        assert_eq!(a.pow((SAFE_PRIME_P - 1) as u128), F::one());
    }

    #[test]
    fn bits_and_order() {
        assert_eq!(Small::bits(), 7);
        assert_eq!(Small::order(), 101);
        assert_eq!(Small::wire_bytes_static(), 1);
        assert_eq!(F::bits(), 62);
    }

    #[test]
    fn random_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            assert!(Small::random(&mut rng).to_u64() < 101);
        }
    }

    proptest! {
        #[test]
        fn field_axioms(a: u64, b: u64, c: u64) {
            let (a, b, c) = (F::from_u64(a), F::from_u64(b), F::from_u64(c));
            prop_assert_eq!(a + b, b + a);
            prop_assert_eq!((a + b) + c, a + (b + c));
            prop_assert_eq!(a * (b + c), a * b + a * c);
            prop_assert_eq!(a - a, F::zero());
            if !a.is_zero() {
                prop_assert_eq!(a * a.inv().unwrap(), F::one());
            }
        }
    }
}
