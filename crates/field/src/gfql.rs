//! The paper's "specially constructed" field GF(q^l) (§2).
//!
//! > "Let q be a prime and l an integer such that q ≥ 2l + 1 and q^l ≥ 2^k.
//! > We work over GF(q^l). We view the field elements as degree-l
//! > polynomials over Z_q. Then we use discrete Fourier transforms to do
//! > the multiplication, modulo some irreducible polynomial, in O(l log l)
//! > operations over Z_q."
//!
//! Elements are degree `< l` polynomials over `Z_q`; the modulus is
//! `x^l − a` with `a` a primitive root of `Z_q` (irreducible by
//! Lidl–Niederreiter Thm. 3.75 when `l` is a power of two and
//! `q ≡ 1 (mod 4)`), which makes reduction a single fold. Multiplication is
//! provided both **naively** (`O(l²)` coefficient products) and via a
//! radix-2 **number-theoretic transform** of size `≥ 2l − 1` (`O(l log l)`),
//! so experiment E8 can measure the crossover the paper predicts ("in
//! practice, when k is small, working over GF(2^k) with the naive O(k²)
//! multiplication is faster … because of the sizes of the constants
//! involved").
//!
//! This type is a measurement substrate, not a protocol field: protocols
//! run over [`crate::Gf2k`] per the paper's own presentation.

use std::fmt;

use dprbg_rng::{Rng, RngExt};

use crate::zq;

/// Errors constructing [`GfQlParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GfQlError {
    /// `q` is not prime.
    NotPrime(u64),
    /// The paper's constraint `q ≥ 2l + 1` fails.
    QTooSmall {
        /// The offered prime.
        q: u64,
        /// The requested extension degree.
        l: usize,
    },
    /// `l` must be a power of two ≥ 2 (so `x^l − a` is irreducible and the
    /// radix-2 NTT applies).
    BadDegree(usize),
    /// `Z_q` has no root of unity of the required NTT order
    /// (`q ≢ 1 mod 2^s`).
    NoNttRoot {
        /// The offered prime.
        q: u64,
        /// The required transform size.
        ntt_size: usize,
    },
}

impl fmt::Display for GfQlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfQlError::NotPrime(q) => write!(f, "{q} is not prime"),
            GfQlError::QTooSmall { q, l } => {
                write!(f, "q = {q} violates q >= 2l+1 for l = {l}")
            }
            GfQlError::BadDegree(l) => {
                write!(f, "extension degree {l} is not a power of two >= 2")
            }
            GfQlError::NoNttRoot { q, ntt_size } => {
                write!(f, "Z_{q} has no root of unity of order {ntt_size}")
            }
        }
    }
}

impl std::error::Error for GfQlError {}

/// Parameters of a GF(q^l) instance: the prime `q`, degree `l`, modulus
/// `x^l − a`, and the NTT twiddle data.
///
/// # Examples
///
/// ```
/// use dprbg_field::GfQlParams;
/// # fn main() -> Result<(), dprbg_field::GfQlError> {
/// let f = GfQlParams::new(97, 16)?;
/// assert!(f.bits() >= 64);
/// let mut rng = dprbg_rng::rng();
/// let x = f.random(&mut rng);
/// let y = f.random(&mut rng);
/// assert_eq!(f.mul_naive(&x, &y), f.mul_fft(&x, &y));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfQlParams {
    q: u64,
    l: usize,
    a: u64,
    ntt_size: usize,
    omega: u64,
    omega_inv: u64,
    n_inv: u64,
}

/// An element of GF(q^l): coefficients of a degree `< l` polynomial over
/// `Z_q`, constant term first.
///
/// Plain data; all arithmetic goes through the owning [`GfQlParams`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GfQl {
    coeffs: Vec<u64>,
}

impl GfQl {
    /// The coefficient vector (length `l`, constant term first).
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }
}

impl GfQlParams {
    /// Build a GF(q^l) instance, validating the paper's constraints.
    ///
    /// # Errors
    ///
    /// See [`GfQlError`] for each constraint violation.
    pub fn new(q: u64, l: usize) -> Result<Self, GfQlError> {
        if !(l >= 2 && l.is_power_of_two()) {
            return Err(GfQlError::BadDegree(l));
        }
        if !zq::is_prime(q) {
            return Err(GfQlError::NotPrime(q));
        }
        if q < 2 * l as u64 + 1 {
            return Err(GfQlError::QTooSmall { q, l });
        }
        let ntt_size = (2 * l - 1).next_power_of_two();
        let omega = zq::root_of_unity(q, ntt_size as u64)
            .ok_or(GfQlError::NoNttRoot { q, ntt_size })?;
        // q ≡ 1 mod ntt_size (≥ 4 for l ≥ 2) implies q ≡ 1 mod 4, and a
        // primitive root `a` makes x^l − a irreducible for power-of-two l.
        let a = zq::primitive_root(q).expect("q is prime >= 3");
        Ok(GfQlParams {
            q,
            l,
            a,
            ntt_size,
            omega,
            omega_inv: zq::inv_mod(omega, q).expect("omega is nonzero"),
            n_inv: zq::inv_mod(ntt_size as u64, q).expect("ntt_size < q is nonzero"),
        })
    }

    /// A parameter set whose field has at least `k` bits (`q^l ≥ 2^k`),
    /// chosen from FFT-friendly primes.
    ///
    /// # Panics
    ///
    /// Panics if `k > 600` (no built-in parameter set is that large).
    pub fn for_bits(k: u32) -> Self {
        let (q, l) = match k {
            0..=16 => (17, 4),
            17..=32 => (17, 8),
            33..=100 => (97, 16),
            101..=230 => (193, 32),
            231..=600 => (769, 64),
            _ => panic!("no built-in GF(q^l) parameters for k = {k}"),
        };
        GfQlParams::new(q, l).expect("built-in parameters are valid")
    }

    /// The prime `q`.
    pub fn q(&self) -> u64 {
        self.q
    }

    /// The extension degree `l`.
    pub fn l(&self) -> usize {
        self.l
    }

    /// The constant `a` of the modulus `x^l − a`.
    pub fn modulus_constant(&self) -> u64 {
        self.a
    }

    /// Field size in bits: `⌊l · log2 q⌋`.
    pub fn bits(&self) -> u32 {
        (self.l as f64 * (self.q as f64).log2()).floor() as u32
    }

    /// The additive identity.
    pub fn zero(&self) -> GfQl {
        GfQl {
            coeffs: vec![0; self.l],
        }
    }

    /// The multiplicative identity.
    pub fn one(&self) -> GfQl {
        let mut c = vec![0; self.l];
        c[0] = 1;
        GfQl { coeffs: c }
    }

    /// Whether `x` is the additive identity.
    pub fn is_zero(&self, x: &GfQl) -> bool {
        x.coeffs.iter().all(|&c| c == 0)
    }

    /// Build an element from coefficients (short vectors are zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if more than `l` coefficients are supplied.
    pub fn from_coeffs(&self, coeffs: &[u64]) -> GfQl {
        assert!(coeffs.len() <= self.l, "too many coefficients");
        let mut c: Vec<u64> = coeffs.iter().map(|&v| v % self.q).collect();
        c.resize(self.l, 0);
        GfQl { coeffs: c }
    }

    /// A uniformly random element.
    pub fn random<R: Rng + ?Sized>(&self, rng: &mut R) -> GfQl {
        GfQl {
            coeffs: (0..self.l).map(|_| rng.random_range(0..self.q)).collect(),
        }
    }

    /// Addition: `O(l)` operations in `Z_q`.
    pub fn add(&self, x: &GfQl, y: &GfQl) -> GfQl {
        self.check(x);
        self.check(y);
        GfQl {
            coeffs: x
                .coeffs
                .iter()
                .zip(&y.coeffs)
                .map(|(&a, &b)| zq::add_mod(a, b, self.q))
                .collect(),
        }
    }

    /// Subtraction: `O(l)` operations in `Z_q`.
    pub fn sub(&self, x: &GfQl, y: &GfQl) -> GfQl {
        self.check(x);
        self.check(y);
        GfQl {
            coeffs: x
                .coeffs
                .iter()
                .zip(&y.coeffs)
                .map(|(&a, &b)| zq::sub_mod(a, b, self.q))
                .collect(),
        }
    }

    /// Schoolbook multiplication: `O(l²)` coefficient products, then the
    /// `x^l ≡ a` fold.
    pub fn mul_naive(&self, x: &GfQl, y: &GfQl) -> GfQl {
        self.check(x);
        self.check(y);
        let mut prod = vec![0u64; 2 * self.l - 1];
        for (i, &xi) in x.coeffs.iter().enumerate() {
            if xi == 0 {
                continue;
            }
            for (j, &yj) in y.coeffs.iter().enumerate() {
                prod[i + j] = zq::add_mod(prod[i + j], zq::mul_mod(xi, yj, self.q), self.q);
            }
        }
        self.fold(prod)
    }

    /// DFT-based multiplication: two forward NTTs, a pointwise product, one
    /// inverse NTT — `O(l log l)` operations in `Z_q` (the paper's §2
    /// construction).
    pub fn mul_fft(&self, x: &GfQl, y: &GfQl) -> GfQl {
        self.check(x);
        self.check(y);
        let n = self.ntt_size;
        let mut fx = vec![0u64; n];
        let mut fy = vec![0u64; n];
        fx[..self.l].copy_from_slice(&x.coeffs);
        fy[..self.l].copy_from_slice(&y.coeffs);
        self.ntt(&mut fx, self.omega);
        self.ntt(&mut fy, self.omega);
        for (a, b) in fx.iter_mut().zip(&fy) {
            *a = zq::mul_mod(*a, *b, self.q);
        }
        self.ntt(&mut fx, self.omega_inv);
        for v in fx.iter_mut() {
            *v = zq::mul_mod(*v, self.n_inv, self.q);
        }
        fx.truncate(2 * self.l - 1);
        self.fold(fx)
    }

    /// Multiplicative inverse by the extended Euclidean algorithm over
    /// `Z_q[x]`, or `None` for zero.
    pub fn inv(&self, x: &GfQl) -> Option<GfQl> {
        self.check(x);
        if self.is_zero(x) {
            return None;
        }
        // Work on raw coefficient vectors (not reduced mod x^l - a).
        // r0 = modulus = x^l - a, r1 = x; maintain t·x ≡ r (mod modulus).
        let q = self.q;
        let mut modulus = vec![0u64; self.l + 1];
        modulus[0] = zq::sub_mod(0, self.a, q);
        modulus[self.l] = 1;
        let mut r0 = modulus;
        let mut r1 = trim(x.coeffs.clone());
        let mut t0: Vec<u64> = vec![];
        let mut t1: Vec<u64> = vec![1];
        while !r1.is_empty() {
            let (quot, rem) = poly_divmod(&r0, &r1, q);
            let t2 = poly_sub(&t0, &poly_mul(&quot, &t1, q), q);
            r0 = r1;
            r1 = rem;
            t0 = t1;
            t1 = t2;
        }
        // r0 is the gcd; modulus irreducible → gcd is a nonzero constant.
        debug_assert_eq!(r0.len(), 1, "modulus must be irreducible");
        let c_inv = zq::inv_mod(r0[0], q).expect("gcd constant is nonzero");
        let mut out: Vec<u64> = t0.iter().map(|&c| zq::mul_mod(c, c_inv, q)).collect();
        debug_assert!(out.len() <= self.l, "Bezout coefficient exceeds degree bound");
        out.resize(self.l, 0);
        Some(GfQl { coeffs: out })
    }

    /// Exponentiation by square-and-multiply using [`GfQlParams::mul_fft`].
    pub fn pow(&self, x: &GfQl, mut e: u128) -> GfQl {
        let mut base = x.clone();
        let mut acc = self.one();
        while e > 0 {
            if e & 1 == 1 {
                acc = self.mul_fft(&acc, &base);
            }
            e >>= 1;
            if e > 0 {
                base = self.mul_fft(&base, &base);
            }
        }
        acc
    }

    /// Reduce a product of degree ≤ 2l−2 modulo `x^l − a`.
    #[allow(clippy::needless_range_loop)]
    fn fold(&self, prod: Vec<u64>) -> GfQl {
        let mut c = vec![0u64; self.l];
        for (i, &v) in prod.iter().enumerate() {
            if i < self.l {
                c[i] = zq::add_mod(c[i], v, self.q);
            } else {
                // x^(l+j) ≡ a · x^j
                c[i - self.l] =
                    zq::add_mod(c[i - self.l], zq::mul_mod(v, self.a, self.q), self.q);
            }
        }
        GfQl { coeffs: c }
    }

    /// In-place iterative radix-2 NTT with the given root (forward or
    /// inverse depending on the root passed).
    fn ntt(&self, v: &mut [u64], root: u64) {
        let n = v.len();
        debug_assert!(n.is_power_of_two());
        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                v.swap(i, j);
            }
        }
        let q = self.q;
        let mut len = 2;
        while len <= n {
            let w_len = zq::pow_mod(root, (self.ntt_size / len) as u64, q);
            let mut i = 0;
            while i < n {
                let mut w = 1u64;
                for k in 0..len / 2 {
                    let u = v[i + k];
                    let t = zq::mul_mod(v[i + k + len / 2], w, q);
                    v[i + k] = zq::add_mod(u, t, q);
                    v[i + k + len / 2] = zq::sub_mod(u, t, q);
                    w = zq::mul_mod(w, w_len, q);
                }
                i += len;
            }
            len <<= 1;
        }
    }

    fn check(&self, x: &GfQl) {
        assert_eq!(
            x.coeffs.len(),
            self.l,
            "element does not belong to this GF(q^l) instance"
        );
    }
}

/// Strip trailing zero coefficients.
fn trim(mut v: Vec<u64>) -> Vec<u64> {
    while v.last() == Some(&0) {
        v.pop();
    }
    v
}

/// Polynomial subtraction over `Z_q` on raw (trimmed) coefficient vectors.
fn poly_sub(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    let n = a.len().max(b.len());
    let out = (0..n)
        .map(|i| {
            let x = a.get(i).copied().unwrap_or(0);
            let y = b.get(i).copied().unwrap_or(0);
            zq::sub_mod(x, y, q)
        })
        .collect();
    trim(out)
}

/// Polynomial multiplication over `Z_q` on raw coefficient vectors.
fn poly_mul(a: &[u64], b: &[u64], q: u64) -> Vec<u64> {
    if a.is_empty() || b.is_empty() {
        return vec![];
    }
    let mut out = vec![0u64; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x == 0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] = zq::add_mod(out[i + j], zq::mul_mod(x, y, q), q);
        }
    }
    trim(out)
}

/// Polynomial division with remainder over `Z_q`: returns `(quot, rem)`
/// with `a = quot·b + rem`, `deg rem < deg b`.
///
/// # Panics
///
/// Panics if `b` is the zero polynomial.
fn poly_divmod(a: &[u64], b: &[u64], q: u64) -> (Vec<u64>, Vec<u64>) {
    assert!(!b.is_empty(), "polynomial division by zero");
    let mut rem = a.to_vec();
    if a.len() < b.len() {
        return (vec![], trim(rem));
    }
    let mut quot = vec![0u64; a.len() - b.len() + 1];
    let lead_inv = zq::inv_mod(*b.last().unwrap(), q).expect("leading coefficient nonzero");
    for i in (b.len() - 1..a.len()).rev() {
        let coef = zq::mul_mod(rem[i], lead_inv, q);
        if coef == 0 {
            continue;
        }
        let shift = i - (b.len() - 1);
        quot[shift] = coef;
        for (j, &bj) in b.iter().enumerate() {
            rem[shift + j] = zq::sub_mod(rem[shift + j], zq::mul_mod(coef, bj, q), q);
        }
    }
    (trim(quot), trim(rem))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    #[test]
    fn builtin_parameter_sets_are_valid() {
        for k in [8u32, 16, 32, 64, 128, 256] {
            let f = GfQlParams::for_bits(k);
            assert!(f.bits() >= k, "for_bits({k}) gave only {} bits", f.bits());
            assert!(f.q() > 2 * f.l() as u64, "paper constraint q >= 2l+1");
        }
    }

    #[test]
    fn constructor_validates() {
        assert_eq!(GfQlParams::new(15, 4), Err(GfQlError::NotPrime(15)));
        assert_eq!(
            GfQlParams::new(7, 4),
            Err(GfQlError::QTooSmall { q: 7, l: 4 })
        );
        assert_eq!(GfQlParams::new(97, 6), Err(GfQlError::BadDegree(6)));
        // 23 is prime and >= 2*8+1 = 17 but 23-1 = 22 has no 16th root.
        assert_eq!(
            GfQlParams::new(23, 8),
            Err(GfQlError::NoNttRoot { q: 23, ntt_size: 16 })
        );
    }

    #[test]
    fn one_is_multiplicative_identity() {
        let f = GfQlParams::new(97, 16).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let x = f.random(&mut rng);
        assert_eq!(f.mul_naive(&x, &f.one()), x);
        assert_eq!(f.mul_fft(&x, &f.one()), x);
    }

    #[test]
    fn naive_and_fft_agree() {
        let mut rng = StdRng::seed_from_u64(42);
        for (q, l) in [(17u64, 4usize), (17, 8), (97, 16), (193, 32), (769, 64)] {
            let f = GfQlParams::new(q, l).unwrap();
            for _ in 0..25 {
                let x = f.random(&mut rng);
                let y = f.random(&mut rng);
                assert_eq!(
                    f.mul_naive(&x, &y),
                    f.mul_fft(&x, &y),
                    "mismatch in GF({q}^{l})"
                );
            }
        }
    }

    #[test]
    fn inverses_multiply_to_one() {
        let mut rng = StdRng::seed_from_u64(11);
        let f = GfQlParams::new(97, 16).unwrap();
        for _ in 0..25 {
            let x = f.random(&mut rng);
            if f.is_zero(&x) {
                continue;
            }
            let xi = f.inv(&x).expect("nonzero element is invertible");
            assert_eq!(f.mul_naive(&x, &xi), f.one());
        }
        assert_eq!(f.inv(&f.zero()), None);
    }

    #[test]
    fn pow_small_cases() {
        let f = GfQlParams::new(17, 4).unwrap();
        let x = f.from_coeffs(&[0, 1]); // the element "x"
        assert_eq!(f.pow(&x, 0), f.one());
        assert_eq!(f.pow(&x, 1), x);
        assert_eq!(f.pow(&x, 2), f.mul_naive(&x, &x));
        // x^l = a (the modulus relation).
        let mut expect = f.zero();
        expect.coeffs[0] = f.modulus_constant();
        assert_eq!(f.pow(&x, f.l() as u128), expect);
    }

    #[test]
    fn fermat_in_small_instance() {
        // In GF(17^4), nonzero x satisfies x^(17^4 - 1) = 1.
        let f = GfQlParams::new(17, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let x = f.random(&mut rng);
        if !f.is_zero(&x) {
            let e = 17u128.pow(4) - 1;
            assert_eq!(f.pow(&x, e), f.one());
        }
    }

    #[test]
    fn divmod_reconstructs() {
        let q = 97;
        let a = [3u64, 0, 5, 7, 1];
        let b = [2u64, 1, 4];
        let (quot, rem) = poly_divmod(&a, &b, q);
        let back = poly_sub(&a, &poly_mul(&quot, &b, q), q);
        assert_eq!(back, rem);
        assert!(rem.len() < b.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_naive_eq_fft(seed: u64) {
            let f = GfQlParams::new(97, 16).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let x = f.random(&mut rng);
            let y = f.random(&mut rng);
            prop_assert_eq!(f.mul_naive(&x, &y), f.mul_fft(&x, &y));
        }

        #[test]
        fn prop_distributivity(seed: u64) {
            let f = GfQlParams::new(17, 8).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let (x, y, z) = (f.random(&mut rng), f.random(&mut rng), f.random(&mut rng));
            let lhs = f.mul_fft(&x, &f.add(&y, &z));
            let rhs = f.add(&f.mul_fft(&x, &y), &f.mul_fft(&x, &z));
            prop_assert_eq!(lhs, rhs);
        }
    }
}
