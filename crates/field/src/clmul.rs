//! Carry-less 64×64 → 128 multiplication backends.
//!
//! Two implementations of one function — the polynomial (XOR) product of
//! two degree-< 64 polynomials over GF(2):
//!
//! * [`clmul_portable`]: a fixed-iteration, branchless shift/mask ladder.
//!   Exactly 64 iterations regardless of operand values, so both the
//!   wall-clock and the instruction stream are data-independent (the old
//!   `while b != 0 { trailing_zeros() }` popcount walk was not — see the
//!   `field-ct` lint rule in LINTS.md).
//! * A hardware path using the x86-64 `PCLMULQDQ` instruction
//!   (`_mm_clmulepi64_si128`), selected at runtime by
//!   `is_x86_feature_detected!`. This is the only `unsafe` in the
//!   workspace, scoped to the single intrinsic call and guarded by the
//!   feature probe.
//!
//! [`clmul`] dispatches between them. The dispatch is a *speed* choice,
//! never a *value* choice: both backends compute the same function on all
//! inputs (property-tested in `gf2k.rs` across every supported field
//! degree, and re-checked at startup by experiment E8's parity row). No
//! transcript, cost counter, or trace may depend on which backend ran —
//! see "Backend dispatch & parallel determinism" in DESIGN.md.

/// Portable carry-less multiply: fixed 64-iteration branchless ladder.
///
/// Iteration `i` XORs `a << i` into the accumulator under a mask that is
/// all-ones when bit `i` of `b` is set and all-zeros otherwise — no
/// data-dependent branches or trip counts.
#[inline]
#[must_use]
pub fn clmul_portable(a: u64, b: u64) -> u128 {
    let a = a as u128;
    let mut r: u128 = 0;
    let mut i = 0;
    while i < 64 {
        // 0 − bit is 0x00…0 or 0xFF…F: a branchless select of `a << i`.
        let keep = 0u128.wrapping_sub(((b >> i) & 1) as u128);
        r ^= (a << i) & keep;
        i += 1;
    }
    r
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod hw {
    use std::arch::x86_64::{
        __m128i, _mm_clmulepi64_si128, _mm_cvtsi128_si64, _mm_set_epi64x, _mm_unpackhi_epi64,
    };

    /// Carry-less multiply via the `PCLMULQDQ` instruction.
    ///
    /// # Safety
    ///
    /// The caller must have verified that the CPU supports `pclmulqdq`
    /// (e.g. via `is_x86_feature_detected!`). Only `sse2`-baseline moves
    /// are used around the single widening multiply.
    #[target_feature(enable = "pclmulqdq")]
    pub unsafe fn clmul_pclmulqdq(a: u64, b: u64) -> u128 {
        // SAFETY: all intrinsics here are sse2-baseline except the
        // `pclmulqdq` multiply itself, which the caller has probed for.
        let va: __m128i = _mm_set_epi64x(0, a as i64);
        let vb: __m128i = _mm_set_epi64x(0, b as i64);
        let prod = _mm_clmulepi64_si128::<0>(va, vb);
        let lo = _mm_cvtsi128_si64(prod) as u64;
        let hi = _mm_cvtsi128_si64(_mm_unpackhi_epi64(prod, prod)) as u64;
        ((hi as u128) << 64) | lo as u128
    }
}

/// Carry-less multiply, dispatched to the best available backend.
///
/// Uses `PCLMULQDQ` when the CPU advertises it, the portable ladder
/// otherwise. The two are extensionally equal; the feature probe caches
/// after the first call.
#[inline]
#[must_use]
#[allow(unsafe_code)]
pub fn clmul(a: u64, b: u64) -> u128 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            // SAFETY: the feature probe above just confirmed pclmulqdq.
            return unsafe { hw::clmul_pclmulqdq(a, b) };
        }
    }
    clmul_portable(a, b)
}

/// The name of the backend [`clmul`] will dispatch to on this machine.
///
/// `"pclmulqdq"` or `"portable"` — reported by experiment E8/E13 so the
/// speedup tables say what they measured.
#[must_use]
pub fn backend_name() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("pclmulqdq") {
            return "pclmulqdq";
        }
    }
    "portable"
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};

    #[test]
    fn portable_matches_schoolbook_vectors() {
        // x · x = x^2, (x+1)·(x+1) = x^2+1 (cross terms cancel mod 2).
        assert_eq!(clmul_portable(0b10, 0b10), 0b100);
        assert_eq!(clmul_portable(0b11, 0b11), 0b101);
        // Degree-63 by degree-63 lands at bit 126.
        assert_eq!(clmul_portable(1 << 63, 1 << 63), 1u128 << 126);
        assert_eq!(clmul_portable(u64::MAX, 1), u64::MAX as u128);
        assert_eq!(clmul_portable(0, u64::MAX), 0);
    }

    #[test]
    fn dispatch_agrees_with_portable() {
        let mut rng = StdRng::seed_from_u64(0xC13);
        for _ in 0..2000 {
            let a: u64 = rng.random();
            let b: u64 = rng.random();
            assert_eq!(clmul(a, b), clmul_portable(a, b), "a={a:#x} b={b:#x}");
        }
        // Boundary operands.
        for &a in &[0u64, 1, u64::MAX, 1 << 63, 0x8000_0000_0000_0001] {
            for &b in &[0u64, 1, u64::MAX, 1 << 63, 0x8000_0000_0000_0001] {
                assert_eq!(clmul(a, b), clmul_portable(a, b), "a={a:#x} b={b:#x}");
            }
        }
    }

    #[test]
    fn backend_name_is_one_of_the_known_backends() {
        assert!(matches!(backend_name(), "pclmulqdq" | "portable"));
    }

    #[test]
    fn clmul_is_commutative_and_distributive() {
        let mut rng = StdRng::seed_from_u64(0xD15);
        for _ in 0..200 {
            let (a, b, c): (u64, u64, u64) = (rng.random(), rng.random(), rng.random());
            assert_eq!(clmul_portable(a, b), clmul_portable(b, a));
            assert_eq!(
                clmul_portable(a, b ^ c),
                clmul_portable(a, b) ^ clmul_portable(a, c)
            );
        }
    }
}
