//! The minimized-repro corpus: named abort-path regression tests.
//!
//! Each test pins one **confirmed non-`Agreed` episode** discovered by
//! the chaos campaign and minimized to its replay triple — `(protocol,
//! schedule, seed)`, plus the leg schedule for composite episodes. The
//! triple is the whole bug report: feeding it back to [`run_episode`]
//! (either executor) or [`run_episode_traced`] reproduces the failure
//! byte-identically, so these tests "teleport" straight to each failure
//! mode and pin its classification, corrupted set, and round count
//! against regression.
//!
//! Every entry also exercises the forensic path: the traced replay must
//! come back with a ring-bounded span dump (the debugging artifact a
//! real incident would start from).
//!
//! Catalog (all at the `n = 7, t = 1, M = 4` working point):
//!
//! | test | attack | f | verdict |
//! |---|---|---|---|
//! | crash starves clique        | crash@2          | 3 | GracefulAbort |
//! | dealer delay times out      | delay 1          | 3 | GracefulAbort |
//! | unhealed partition          | partition        | 3 | GracefulAbort |
//! | refresh under crash         | crash@1          | 3 | GracefulAbort |
//! | strict VSS broadcast break  | break-broadcast  | 1 | Unsound (beyond model) |
//! | bare Bit-Gen equivocation   | equivocate       | 3 | Unsound (beyond threshold) |
//! | escalating composite        | dormant→crash@2  | 3 | GracefulAbort |
//! | beacon rollback drill       | lost output (injected) | — | rolled back + forensic dump |

use dprbg_beacon::{BeaconConfig, BeaconService, ExecutorKind, ReservoirConfig};
use dprbg_bench::chaos::{
    run_composite_episode, run_composite_episode_traced, run_episode, run_episode_traced,
    Episode, Executor, Outcome, Protocol, Schedule,
};
use dprbg_core::{CoinGenConfig, Params, RetryPolicy, VssMode};
use dprbg_sim::{Attack, Trace};
use std::collections::BTreeSet;

/// Ring capacity for the forensic replays (events per party).
const RING: usize = 16;

/// Assert the invariants every corpus entry shares: the pinned verdict
/// and corrupted set, a non-empty ring-bounded forensic dump, and
/// executor-interchangeable replay.
fn check_entry(
    ep: &Episode,
    forensics: &Option<Trace>,
    want_outcome: Outcome,
    want_corrupted: &[usize],
    want_rounds: u64,
) {
    assert_eq!(ep.outcome, want_outcome);
    assert_eq!(ep.corrupted, BTreeSet::from_iter(want_corrupted.iter().copied()));
    assert_eq!(ep.rounds, want_rounds, "round count drifted — the repro is no longer minimal");
    let trace = forensics.as_ref().expect("non-Agreed episode must carry a forensic dump");
    assert!(!trace.events.is_empty());
    for id in 1..=ep.schedule.n {
        let per_party = trace.events.iter().filter(|e| e.party == id).count();
        assert!(per_party <= RING, "ring cap exceeded: {per_party} events for party {id}");
    }
}

#[test]
fn over_threshold_crash_starves_coin_gen_clique() {
    // Three crashes at round 2 against t = 1: Coin-Gen cannot form its
    // n − 2t clique and every honest party aborts explicitly.
    let s = Schedule::new(7, 1, 3, 4, Attack::CrashAtRound { round: 2 });
    let (ep, forensics) = run_episode_traced(Protocol::CoinGen, &s, 1, RING);
    check_entry(&ep, &forensics, Outcome::GracefulAbort, &[1, 2, 3], 36);
    // Teleport property: the triple replays identically on the pool.
    assert_eq!(ep, run_episode(Protocol::CoinGen, &s, 1, Executor::Parallel));
}

#[test]
fn dealer_delay_beyond_threshold_times_out_coin_gen() {
    // f = 3 dealers holding their dealings one round each: the pipeline
    // misses its deadlines and aborts without any honest disagreement.
    let s = Schedule::new(7, 1, 3, 4, Attack::DealerDelay { delay: 1 });
    let (ep, forensics) = run_episode_traced(Protocol::CoinGen, &s, 17, RING);
    check_entry(&ep, &forensics, Outcome::GracefulAbort, &[1, 2, 3], 36);
}

#[test]
fn unhealed_partition_aborts_coin_gen() {
    // A partition that outlives the run (heal round beyond the backstop)
    // with f = 3: the isolated side can never rejoin, the protocol
    // aborts gracefully. The corrupted set is traffic-adaptive here —
    // pinned to witness that the *choice* is deterministic too.
    let s = Schedule::new(7, 1, 3, 4, Attack::Partition { until_round: 4000 });
    let (ep, forensics) = run_episode_traced(Protocol::CoinGen, &s, 1, RING);
    check_entry(&ep, &forensics, Outcome::GracefulAbort, &[2, 5, 6], 36);
}

#[test]
fn over_threshold_crash_aborts_refresh() {
    // The §1.2 proactive refresh inherits Coin-Gen's failure discipline:
    // over-threshold crashes abort it explicitly, never silently.
    let s = Schedule::new(7, 1, 3, 4, Attack::CrashAtRound { round: 1 });
    let (ep, forensics) = run_episode_traced(Protocol::Refresh, &s, 1, RING);
    check_entry(&ep, &forensics, Outcome::GracefulAbort, &[1, 2, 3], 36);
}

#[test]
fn broken_broadcast_splits_strict_batch_vss_verdict() {
    // Beyond the §3 model: equivocating over the ideal broadcast splits
    // a strict-mode verdict even at f = 1 ≤ t. The harness must keep
    // reaching — and pinning — the Unsound verdict.
    let mut s = Schedule::new(7, 1, 1, 4, Attack::BreakBroadcast);
    s.vss_mode = VssMode::Strict;
    let (ep, forensics) = run_episode_traced(Protocol::BatchVss, &s, 7, RING);
    check_entry(&ep, &forensics, Outcome::Unsound, &[1], 2);
    assert_eq!(ep, run_episode(Protocol::BatchVss, &s, 7, Executor::Parallel));
}

#[test]
fn over_threshold_equivocation_splits_bare_bit_gen() {
    // Fig. 4 alone makes no agreement promise once f > t: two
    // equivocating dealers split the honest views. This entry documents
    // *why* Coin-Gen's clique/grade-cast/BA layer exists — the bare
    // primitive is expected to go unsound beyond its threshold.
    let s = Schedule::new(7, 1, 3, 4, Attack::Equivocate);
    let (ep, forensics) = run_episode_traced(Protocol::BitGen, &s, 1, RING);
    check_entry(&ep, &forensics, Outcome::Unsound, &[1, 2], 3);
}

#[test]
fn escalating_composite_schedule_aborts_coin_gen() {
    // The composite entry: a dormant first leg (crash scheduled beyond
    // the run) escalating at round 2 into an immediate over-threshold
    // crash. The first leg alone agrees; the schedule aborts.
    let legs: &[(u64, Attack)] = &[
        (0, Attack::CrashAtRound { round: 4000 }),
        (2, Attack::CrashAtRound { round: 2 }),
    ];
    let s = Schedule::new(7, 1, 3, 4, legs[0].1);
    let (ep, forensics) = run_composite_episode_traced(Protocol::CoinGen, &s, legs, 17, RING);
    check_entry(&ep, &forensics, Outcome::GracefulAbort, &[1, 2, 3], 36);
    assert_eq!(run_episode(Protocol::CoinGen, &s, 17, Executor::Stepped).outcome, Outcome::Agreed);
    assert_eq!(
        ep,
        run_composite_episode(Protocol::CoinGen, &s, legs, 17, Executor::Parallel),
        "composite repro must replay identically on the pool"
    );
}

#[test]
fn beacon_rollback_drill_reproduces_its_forensic_dump() {
    // The beacon-layer abort path. Every entry above shows in-model
    // pressure failing *symmetrically* — no episode can make the epoch
    // fleet diverge, so the beacon's transactional rollback is
    // defense-in-depth against states the theorems rule out. The
    // rollback fire-drill injects the one fault that reaches it (a
    // party's output lost after the fleet ran); this entry pins that the
    // drilled epoch rolls back, carries the flight-recorder dump, and
    // replays byte-identically on either executor — the repro triple is
    // just `(config, master seed, drill epoch)`.
    let cfg = BeaconConfig {
        coin_gen: CoinGenConfig { params: Params::p2p_model(7, 1).unwrap(), batch_size: 8 },
        reservoir: ReservoirConfig { capacity: 16, low_water: 4 },
        wallet_low_water: 6,
        retry: RetryPolicy { max_attempts: 3, seed_budget: 12 },
        max_backoff_exp: 3,
        max_rounds_per_epoch: 4096,
    };
    let run = |executor| {
        let mut svc = BeaconService::<dprbg_field::Gf2k<32>>::new(cfg, 0xD811, 12);
        for _ in 0..4 {
            svc.run_epoch(executor, &[(1, 1), (2, 1)], None).expect("clean epochs must commit");
        }
        let report = svc.rollback_drill(executor);
        (report, svc.snapshot())
    };

    let (report, snapshot) = run(ExecutorKind::Step);
    assert!(report.rolled_back);
    assert_eq!(report.epoch, 4, "the drill fires at the pinned epoch");
    let dump = report.forensics.as_ref().expect("the rollback must carry the forensic dump");
    assert!(dump.contains("beacon forensic dump"), "{dump}");
    assert!(dump.contains("rolled_back"), "the drilled epoch's record must be in the dump");
    assert!(dump.contains("supervisor: mode="), "{dump}");

    // Teleport property: the drill replays identically on the pool.
    let (report_par, snapshot_par) = run(ExecutorKind::ParThreads(2));
    assert_eq!(report.forensics, report_par.forensics, "dump must not depend on the executor");
    assert_eq!(snapshot, snapshot_par, "drilled service must stay snapshot-identical");
}
