//! The `--trace` report path: run a fixed-seed experiment under the
//! span-recording executor, break its cost down per (round, phase),
//! reconcile the trace against the executor's own cost ledger, and
//! export the Chrome trace-event JSON for Perfetto / `chrome://tracing`.
//!
//! Two experiments back the report:
//!
//! * **E2** (Batch-VSS verification, n = 7, t = 2) supplies the
//!   per-round cost-breakdown table — small enough to print whole, rich
//!   enough to show every protocol phase;
//! * **E11** (Coin-Gen at scale) supplies the overhead check — the same
//!   run timed with tracing off and on, demonstrating that the disabled
//!   path costs nothing and the enabled path stays cheap.
//!
//! Every check prints a greppable verdict line; `scripts/verify.sh`
//! pins the round-trip one.

use std::time::Instant;

use dprbg_core::{CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, Params};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, StepRunner, TraceConfig};
use dprbg_trace::{render_timeline, to_chrome_json, validate_chrome_json, Trace};

use crate::experiments::common::{seed_wallets, F32};
use crate::experiments::e2;

/// The fixed seed every traced report run uses: the trace is a protocol
/// artifact, so two runs of `report --trace` emit identical bytes.
pub const TRACE_SEED: u64 = 1996;

/// Everything the traced E2 run produces.
pub struct TracedRun {
    /// Per-(round, phase) cost-breakdown table.
    pub table: Table,
    /// The compact text timeline.
    pub timeline: String,
    /// The Chrome trace-event JSON export.
    pub chrome_json: String,
    /// The merged logical trace.
    pub trace: Trace,
}

/// Run the traced E2 smoke (Batch-VSS verification of `m` sharings at
/// n = 7, t = 2) and reconcile the trace against the cost ledger.
///
/// # Errors
///
/// Returns a description of the first reconciliation failure: a party
/// whose span deltas do not sum to its ledger entry, communication
/// totals that disagree, or a Chrome export that fails validation.
pub fn traced_e2(m: usize) -> Result<TracedRun, String> {
    let (n, t) = (7, 2);
    let res = StepRunner::new(n, TRACE_SEED)
        .with_trace(TraceConfig::full())
        .run(e2::fleet_over::<F32>(n, t, m, TRACE_SEED));
    let trace = res.trace.clone().ok_or("traced run recorded no trace")?;

    // The tentpole invariant: per-(party, round, phase) deltas sum back
    // to exactly the executor's cost ledger — all seven counters.
    let per_party = trace.per_party_cost(n);
    for (traced, ledger) in per_party.iter().zip(res.report.per_party.iter()) {
        if traced != &ledger.cost {
            return Err(format!(
                "party {} trace cost {traced:?} != ledger {:?}",
                ledger.party, ledger.cost
            ));
        }
    }
    let total = trace.total_cost();
    if total != res.report.total() {
        return Err(format!("trace total {total:?} != ledger total {:?}", res.report.total()));
    }
    if (total.messages, total.bytes) != (res.report.comm.messages, res.report.comm.bytes) {
        return Err("trace communication totals disagree with the comm ledger".into());
    }

    let mut table = Table::new(
        &format!("E2 traced: Batch-VSS of M={m}, n={n} t={t}, cost per (round, phase)"),
        &["parties", "adds", "muls", "interp", "msgs", "bytes"],
    );
    for rp in trace.round_phase_costs() {
        table.row(
            &format!("r{} {}", rp.round, rp.phase),
            &[
                rp.parties.to_string(),
                rp.cost.field_adds.to_string(),
                rp.cost.field_muls.to_string(),
                rp.cost.interpolations.to_string(),
                rp.cost.messages.to_string(),
                rp.cost.bytes.to_string(),
            ],
        );
    }

    let chrome_json = to_chrome_json(&trace);
    validate_chrome_json(&chrome_json)?;
    let timeline = render_timeline(&trace);
    Ok(TracedRun { table, timeline, chrome_json, trace })
}

/// Time one full Coin-Gen run (the E11 point) with tracing off or on.
fn timed_coin_gen(n: usize, t: usize, m: usize, trace: Option<TraceConfig>) -> f64 {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, TRACE_SEED);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, _>> = (0..n)
        .map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _)
        .collect();
    let mut runner = StepRunner::new(n, TRACE_SEED);
    if let Some(c) = trace {
        runner = runner.with_trace(c);
    }
    let t0 = Instant::now();
    let res = runner.run(machines);
    let dt = t0.elapsed().as_secs_f64();
    assert!(res.outputs.iter().all(Option::is_some), "coin generation must finish");
    dt
}

/// The E11 before/after overhead check: one Coin-Gen point timed with
/// tracing disabled and enabled. Returns `(untraced_s, traced_s)`.
pub fn e11_overhead(quick: bool) -> (f64, f64) {
    let (n, m) = if quick { (13, 4) } else { (31, 8) };
    let t = (n - 1) / 6;
    // Warm-up run so neither measurement pays first-touch costs.
    let _ = timed_coin_gen(n, t, m, None);
    let untraced = timed_coin_gen(n, t, m, None);
    let traced = timed_coin_gen(n, t, m, Some(TraceConfig::full()));
    (untraced, traced)
}

/// Drive the whole `--trace` report: print the per-round table and
/// timeline, write the Chrome JSON to `path`, and print one greppable
/// verdict line per check. Exits non-zero on any failure.
pub fn run_traced_report(path: &str, quick: bool) {
    let m = if quick { 16 } else { 64 };
    let run = traced_e2(m).unwrap_or_else(|e| {
        eprintln!("traced E2 failed: {e}");
        std::process::exit(1);
    });
    println!("{}", run.table.render());
    println!("{}", run.timeline);
    println!(
        "trace totals reconcile with the cost ledger ({} events, {} spans)",
        run.trace.len(),
        run.trace.round_phase_costs().iter().map(|rp| rp.parties).sum::<usize>()
    );
    if let Err(e) = std::fs::write(path, &run.chrome_json) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    }
    // Re-read what landed on disk: the round trip covers the filesystem.
    let reread = std::fs::read_to_string(path).unwrap_or_default();
    if reread != run.chrome_json {
        eprintln!("chrome JSON changed on disk round trip");
        std::process::exit(1);
    }
    if let Err(e) = validate_chrome_json(&reread) {
        eprintln!("chrome JSON failed validation after reread: {e}");
        std::process::exit(1);
    }
    println!("trace round-trip OK: {path} ({} bytes)", reread.len());
    let (untraced, traced) = e11_overhead(quick);
    println!(
        "E11 timing: untraced {untraced:.3}s, traced {traced:.3}s ({:+.1}% overhead)",
        (traced / untraced - 1.0) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_e2_reconciles_and_validates() {
        let run = traced_e2(8).expect("traced E2 must reconcile");
        assert!(!run.trace.events.is_empty());
        assert!(run.chrome_json.starts_with("{\"traceEvents\":["));
        assert!(run.timeline.contains("round 0"));
        // The table names at least the challenge and judge phases.
        let rendered = run.table.render();
        assert!(rendered.contains("batch-vss/challenge"), "{rendered}");
        assert!(rendered.contains("batch-vss/judge"), "{rendered}");
    }

    #[test]
    fn traced_e2_is_deterministic() {
        let a = traced_e2(8).unwrap();
        let b = traced_e2(8).unwrap();
        assert_eq!(a.chrome_json, b.chrome_json, "same seed, same bytes");
    }
}
