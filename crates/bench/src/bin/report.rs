//! The experiment report generator: regenerates every table of the
//! paper's evaluation in the paper's own cost units.
//!
//! ```text
//! cargo run -p dprbg-bench --release --bin report               # all, full sweeps
//! cargo run -p dprbg-bench --release --bin report -- --quick    # all, small sweeps
//! cargo run -p dprbg-bench --release --bin report -- e4 e5      # selected experiments
//! ```

use std::time::Instant;

use dprbg_bench::experiments::{self, ExperimentCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let ctx = ExperimentCtx::new(quick);

    println!("dprbg experiment report — Bellare–Garay–Rabin, PODC 1996");
    println!(
        "mode: {}  (cost units: field ops / interpolations / messages / bytes / rounds)\n",
        if quick { "quick" } else { "full" }
    );

    let t0 = Instant::now();
    if want("e1") {
        print_section(experiments::e1::run(&ctx).render());
    }
    if want("e2") {
        print_section(experiments::e2::run(&ctx).render());
        print_section(experiments::e2::run_k_sweep(&ctx).render());
    }
    if want("e3") {
        print_section(experiments::e3::run(&ctx).render());
    }
    if want("e4") {
        for table in experiments::e4::run(&ctx) {
            print_section(table.render());
        }
    }
    if want("e5") {
        print_section(experiments::e5::run(&ctx).render());
    }
    if want("e6") {
        for table in experiments::e6::run(&ctx) {
            print_section(table.render());
        }
    }
    if want("e7") {
        print_section(experiments::e7::run(&ctx).render());
    }
    if want("e8") {
        print_section(experiments::e8::run(&ctx).render());
    }
    if want("e9") {
        print_section(experiments::e9::run(&ctx).render());
    }
    if want("e10") {
        print_section(experiments::e10::run(&ctx).render());
    }
    println!("report generated in {:.1}s", t0.elapsed().as_secs_f64());
}

fn print_section(rendered: String) {
    println!("{rendered}");
}
