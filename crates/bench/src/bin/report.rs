//! The experiment report generator: regenerates every table of the
//! paper's evaluation in the paper's own cost units.
//!
//! ```text
//! cargo run -p dprbg-bench --release --bin report               # all, full sweeps
//! cargo run -p dprbg-bench --release --bin report -- --quick    # all, small sweeps
//! cargo run -p dprbg-bench --release --bin report -- e4 e5      # selected experiments
//! cargo run -p dprbg-bench --release --bin report -- --timing bench.json
//! ```
//!
//! `--timing <files...>` renders wall-clock tables from the JSON lines the
//! in-tree bench harness emits (`DPRBG_BENCH_JSON=bench.json cargo bench`).
//!
//! `--trace <path>` runs the fixed-seed traced E2 smoke, prints its
//! per-(round, phase) cost breakdown and text timeline, writes the
//! Chrome trace-event JSON to `<path>` (load it in Perfetto or
//! `chrome://tracing`), and reports the E11 tracing-overhead timing.
//! Combine with `--quick` for the small sweep.
//!
//! `--health` runs the health-plane smoke: a fixed-seed E15 short soak
//! rendered through the `dprbg-metrics` exporters (dashboard, JSON
//! lines, Prometheus), with cross-executor parity, kill/restore
//! byte-identity, and forced-rollback forensics asserted inline.
//! Combine with `--quick` for the short soak.

use std::time::Instant;

use dprbg_bench::experiments::{self, ExperimentCtx};
use dprbg_bench::harness::{parse_json_line, BenchRecord};
use dprbg_metrics::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(pos) = args.iter().position(|a| a == "--timing") {
        render_timing(&args[pos + 1..]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    if args.iter().any(|a| a == "--health") {
        dprbg_bench::health::run_health_report(quick);
        return;
    }
    if let Some(pos) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(pos + 1) else {
            eprintln!("--trace requires an output path for the Chrome trace JSON");
            std::process::exit(2);
        };
        dprbg_bench::traced::run_traced_report(path, quick);
        return;
    }
    let selected: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|a| a.to_lowercase())
        .collect();
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);
    let ctx = ExperimentCtx::new(quick);

    println!("dprbg experiment report — Bellare–Garay–Rabin, PODC 1996");
    println!(
        "mode: {}  (cost units: field ops / interpolations / messages / bytes / rounds)\n",
        if quick { "quick" } else { "full" }
    );

    let t0 = Instant::now();
    if want("e1") {
        print_section(experiments::e1::run(&ctx).render());
    }
    if want("e2") {
        print_section(experiments::e2::run(&ctx).render());
        print_section(experiments::e2::run_k_sweep(&ctx).render());
    }
    if want("e3") {
        print_section(experiments::e3::run(&ctx).render());
    }
    if want("e4") {
        for table in experiments::e4::run(&ctx) {
            print_section(table.render());
        }
    }
    if want("e5") {
        print_section(experiments::e5::run(&ctx).render());
    }
    if want("e6") {
        for table in experiments::e6::run(&ctx) {
            print_section(table.render());
        }
    }
    if want("e7") {
        print_section(experiments::e7::run(&ctx).render());
    }
    if want("e8") {
        print_section(experiments::e8::run(&ctx).render());
    }
    if want("e9") {
        print_section(experiments::e9::run(&ctx).render());
    }
    if want("e10") {
        print_section(experiments::e10::run(&ctx).render());
    }
    if want("e11") {
        print_section(experiments::e11::run(&ctx).render());
    }
    if want("e12") {
        for table in experiments::e12::run(&ctx) {
            print_section(table.render());
        }
    }
    if want("e13") {
        print_section(experiments::e13::run(&ctx).render());
    }
    if want("e14") {
        print_section(experiments::e14::run(&ctx).render());
    }
    if want("e15") {
        for table in experiments::e15::run(&ctx) {
            print_section(table.render());
        }
    }
    println!("report generated in {:.1}s", t0.elapsed().as_secs_f64());
}

fn print_section(rendered: String) {
    println!("{rendered}");
}

/// Render wall-clock tables (one per bench group) from harness JSON files.
fn render_timing(paths: &[String]) {
    if paths.is_empty() {
        eprintln!("--timing requires at least one JSON file (from DPRBG_BENCH_JSON)");
        std::process::exit(2);
    }
    let mut records: Vec<BenchRecord> = Vec::new();
    for path in paths {
        let contents = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        records.extend(contents.lines().filter_map(parse_json_line));
    }
    if records.is_empty() {
        eprintln!("no bench records found in {paths:?}");
        std::process::exit(2);
    }
    println!("dprbg wall-clock timing report ({} records)\n", records.len());
    let mut groups: Vec<String> = records.iter().map(|r| r.group.clone()).collect();
    groups.dedup();
    groups.sort();
    groups.dedup();
    for group in groups {
        let title = if group.is_empty() { "(ungrouped)" } else { &group };
        let mut table = Table::new(
            &format!("timing: {title}"),
            &["median", "mean", "min", "max", "samples", "rate"],
        );
        for r in records.iter().filter(|r| r.group == group) {
            table.row(
                &r.name,
                &[
                    format_ns(r.median_ns),
                    format_ns(r.mean_ns),
                    format_ns(r.min_ns),
                    format_ns(r.max_ns),
                    r.samples.to_string(),
                    r.rate_per_sec()
                        .map(|x| format!("{x:.0}/s"))
                        .unwrap_or_else(|| "-".into()),
                ],
            );
        }
        print_section(table.render());
    }
}

fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}
