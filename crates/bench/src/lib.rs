#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! The experiment harness: regenerates every quantitative claim of the
//! paper as a measured table.
//!
//! The paper is a protocol-design paper — its "evaluation" consists of
//! stated complexity bounds (Lemmas 1–8, Theorems 1–2, Corollaries 1–3)
//! and the §1.4 comparison against prior shared-coin and VSS protocols.
//! Each module here reproduces one of those artifacts by *running* the
//! protocols on the instrumented simulator and reporting in the paper's
//! own units: field additions/multiplications, polynomial interpolations,
//! messages, bits, rounds, and empirical error rates.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p dprbg-bench --release --bin report            # full sweeps
//! cargo run -p dprbg-bench --release --bin report -- --quick # smaller sweeps
//! cargo run -p dprbg-bench --release --bin report -- e4      # one experiment
//! ```
//!
//! Wall-clock benches (supplementary shape evidence; the model counts
//! above are the primary reproduction) live in `benches/` and run on the
//! in-tree [`harness`] — a hermetic, criterion-compatible warmup +
//! median-of-K timer that emits JSON consumable by
//! `bin/report.rs --timing`.
//!
//! | Experiment | Paper claim |
//! |---|---|
//! | [`experiments::e1`] | single VSS: 2 interpolations, 2 rounds, 2nk bits (Lemma 2) vs CCD's k interpolations and Feldman's t·log p multiplications (§3.1) |
//! | [`experiments::e2`] | Batch-VSS: M secrets, 2 interpolations total, O(1) amortized communication (Lemma 4, Corollary 1) |
//! | [`experiments::e3`] | Bit-Gen: 3 rounds, nMk + 2n²k bits, amortized ≈ n bits/bit (Lemma 6, Corollary 2) |
//! | [`experiments::e4`] | Coin-Gen: amortized O(n log k) ops and n²k + O(n⁴k)/M bits per coin (Theorem 2, Corollary 3) |
//! | [`experiments::e5`] | §1.4: D-PRBG vs from-scratch coin vs Rabin's dealer — who wins, by what factor |
//! | [`experiments::e6`] | soundness error ≤ 1/p, M/p (Lemmas 1, 3, 5); unanimity under t corruptions (Theorem 1) |
//! | [`experiments::e7`] | bootstrapping: steady-state cost ≈ amortized cost; the initial seed is "effectively neglected" (Fig. 1) |
//! | [`experiments::e8`] | §2: GF(q^l) O(k log k) multiplication vs naive GF(2^k) — the small-k crossover the paper predicts |
//! | [`experiments::e9`] | ablations of this implementation's choices: blinding, Strict vs Robust acceptance, refresh vs generation |
//! | [`experiments::e10`] | round anatomy of Coin-Gen: the n³ grade-cast delivery bulge behind Theorem 2's O(n⁴k) term |
//! | [`experiments::e11`] | Coin-Gen at beacon scale (n ≤ 61) on the single-threaded executor |
//! | [`experiments::e12`] | empirical soundness under adaptive adversaries: the [`chaos`] campaign, zero unsound outcomes at f ≤ t |
//!
//! `report --health` (the [`health`] module) is not a paper table but an
//! operational smoke: a fixed-seed E15 short soak rendered through the
//! `dprbg-metrics` health-plane exporters, with cross-executor parity,
//! kill/restore byte-identity, and forced-rollback forensics asserted
//! inline.

pub mod chaos;
pub mod experiments;
pub mod harness;
pub mod health;
pub mod traced;

pub use experiments::ExperimentCtx;
