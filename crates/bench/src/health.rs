//! `report --health`: the health-plane smoke.
//!
//! Drives a fixed-seed, E15-style short soak (n = 7, t = 1, M = 8 under
//! a composite crash/stampede/adversary schedule) and renders the
//! beacon's health plane through every exporter: the text dashboard, the
//! Prometheus-style exposition, and the JSON-lines form (round-tripped
//! through the parser and re-rendered to prove the format lossless).
//! Then it re-proves the plane's two determinism claims at smoke scale —
//! byte-identical exports across `StepRunner` and `ParRunner` at 1, 2
//! and 8 threads, and a kill/restore replay whose registry and flight
//! recorder match the uninterrupted run byte for byte — and finally
//! runs the beacon's rollback fire-drill
//! ([`BeaconService::rollback_drill`]) to show the forensic
//! flight-recorder dump travels on the
//! [`EpochReport`](dprbg_beacon::EpochReport) that needs it.
//!
//! `scripts/verify.sh` greps the output for the four verdict markers:
//! `health export round-trip OK`, `health export executor parity OK`,
//! `flight recorder kill/restore OK`, and `forensic dump OK`.

use dprbg_beacon::{BeaconConfig, BeaconService, ExecutorKind, ReservoirConfig};
use dprbg_core::{CoinGenConfig, Params, RetryPolicy};
use dprbg_metrics::export::{dashboard, from_json_lines, to_json_lines, to_prometheus};
use dprbg_sim::{EpochFault, SoakPlan};

use crate::experiments::common::F32;

/// The soak's fixed master seed: the whole smoke is a pure function of
/// this constant, so its verdict lines are reproducible by anyone.
const MASTER_SEED: u64 = 0x5EA17;

/// Sealed coins dealt to the wallets before epoch 0.
const INITIAL_COINS: usize = 12;

/// The E15 working point: n = 7, t = 1, batch M = 8.
fn config() -> BeaconConfig {
    BeaconConfig {
        coin_gen: CoinGenConfig {
            params: Params::p2p_model(7, 1).expect("7 > 6t for t = 1"),
            batch_size: 8,
        },
        reservoir: ReservoirConfig { capacity: 16, low_water: 4 },
        wallet_low_water: 6,
        retry: RetryPolicy { max_attempts: 3, seed_budget: 12 },
        max_backoff_exp: 3,
        max_rounds_per_epoch: 4096,
    }
}

/// The demand schedule: a pure function of the epoch number, so a
/// killed-and-restored run replays it exactly.
fn base_demands(epoch: u64) -> Vec<(u32, u32)> {
    vec![(1, 1), (2, 1 + (epoch % 2) as u32)]
}

/// Drive one beacon through `epochs` epochs of the fixed-seed soak under
/// `plan` on `executor`, returning the finished service (whose registry
/// and flight recorder the caller inspects). Scheduled crashes restore
/// from the epoch-boundary snapshot and record their recovery depth;
/// `kill_at` injects one *extra* unscheduled kill/restore (no downtime,
/// nothing recorded) for the determinism cross-check.
fn soak(
    executor: ExecutorKind,
    epochs: u64,
    plan: &SoakPlan,
    kill_at: Option<u64>,
) -> BeaconService<F32> {
    let cfg = config();
    let mut svc = BeaconService::<F32>::new(cfg, MASTER_SEED, INITIAL_COINS);
    for e in 0..epochs {
        let boundary = svc.snapshot();
        let fault = plan.fault_at(e);
        if let Some(EpochFault::Crash { down_epochs }) = fault {
            drop(svc);
            svc = BeaconService::<F32>::restore(cfg, &boundary)
                .expect("own boundary snapshot must restore");
            svc.note_recovery(down_epochs);
        }
        if kill_at == Some(e) {
            let snap = svc.snapshot();
            drop(svc);
            svc = BeaconService::<F32>::restore(cfg, &snap).expect("own snapshot must restore");
        }
        let mut demands = base_demands(e);
        let mut adversary = None;
        match fault {
            Some(EpochFault::Stampede { demand }) => demands.push((9, demand)),
            Some(EpochFault::Adversary { attack, f }) => adversary = Some((attack, f)),
            _ => {}
        }
        svc.run_epoch(executor, &demands, adversary)
            .expect("a within-model fault schedule must stay sound");
    }
    svc
}

/// Force a transactional rollback and return the forensic dump its
/// [`EpochReport`](dprbg_beacon::EpochReport) carries, via the beacon's
/// rollback fire-drill. No in-model adversary can reach the rollback
/// path through `run_epoch` — within `f ≤ t` failures are symmetric and
/// commit as failed epochs (E12's zero-unsound evidence) — so the drill
/// injects the one fault the theorems rule out (a party's output lost
/// after the fleet ran) and lets the real audit, rollback, and forensic
/// plumbing fire. A few clean epochs run first so the dump has history.
pub fn forced_rollback_forensics() -> String {
    let mut svc = BeaconService::<F32>::new(config(), MASTER_SEED, INITIAL_COINS);
    for e in 0..6 {
        svc.run_epoch(ExecutorKind::Step, &base_demands(e), None)
            .expect("the clean warmup epochs must commit");
    }
    let report = svc.rollback_drill(ExecutorKind::Step);
    assert!(report.rolled_back, "the drill must roll its epoch back");
    report.forensics.expect("the rollback path must attach the forensic dump")
}

/// Run the health-plane smoke and print its dashboards and verdicts.
///
/// # Panics
///
/// If any determinism check fails: export round-trip, cross-executor
/// parity, or kill/restore byte-identity.
pub fn run_health_report(quick: bool) {
    let epochs: u64 = if quick { 24 } else { 96 };
    let plan = SoakPlan::composite(MASTER_SEED, epochs, 5);
    let (crashes, stampedes, adversarial) = plan.census();
    println!(
        "health-plane smoke: fixed-seed E15 soak, {epochs} epochs, \
         faults: {crashes} crashes / {stampedes} stampedes / {adversarial} adversary epochs\n"
    );

    // -- the soak, plus every exporter over its registry ----------------
    let svc = soak(ExecutorKind::Step, epochs, &plan, None);
    println!("{}", dashboard(svc.health(), "beacon health (soak, StepRunner)").render());

    let json = to_json_lines(svc.health());
    let parsed = from_json_lines(&json).expect("own JSON lines must parse");
    assert_eq!(to_json_lines(&parsed), json, "JSON round-trip must be lossless");
    assert_eq!(&parsed, svc.health(), "parsed registry must equal the original");
    println!("health export round-trip OK ({} JSON lines)\n", json.lines().count());

    let prom = to_prometheus(svc.health());
    let type_lines: Vec<&str> =
        prom.lines().filter(|l| l.starts_with("# TYPE")).collect();
    println!("prometheus exposition: {} lines, families:", prom.lines().count());
    for l in &type_lines {
        println!("  {l}");
    }
    println!();

    // -- cross-executor parity ------------------------------------------
    for threads in [1usize, 2, 8] {
        let par = soak(ExecutorKind::ParThreads(threads), epochs, &plan, None);
        assert_eq!(
            to_json_lines(par.health()),
            json,
            "ParRunner({threads} threads) health export diverged from StepRunner"
        );
    }
    println!("health export executor parity OK (StepRunner vs ParRunner x 1/2/8 threads)\n");

    // -- kill/restore byte-identity -------------------------------------
    let twin = soak(ExecutorKind::Step, epochs, &plan, Some(epochs / 2));
    assert_eq!(
        to_json_lines(twin.health()),
        json,
        "kill/restore replay's registry diverged from the uninterrupted soak"
    );
    assert_eq!(
        twin.snapshot(),
        svc.snapshot(),
        "kill/restore replay's snapshot (registry + flight recorder included) diverged"
    );
    println!(
        "flight recorder kill/restore OK (kill at epoch {}, {} records, {} total)\n",
        epochs / 2,
        twin.flight_recorder().len(),
        twin.flight_recorder().total()
    );

    // -- forced rollback → forensic dump --------------------------------
    let forensics = forced_rollback_forensics();
    println!("{forensics}");
    assert!(forensics.contains("beacon forensic dump"), "dump must carry its banner");
    println!("forensic dump OK (rollback report carried the flight-recorder dump)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_rollback_yields_a_forensic_dump() {
        let dump = forced_rollback_forensics();
        assert!(dump.contains("beacon forensic dump"), "{dump}");
        assert!(dump.contains("rolled_back"), "the drilled epoch's record must be in the dump");
        assert!(dump.contains("supervisor: mode="), "{dump}");
    }

    #[test]
    fn quick_soak_health_is_executor_independent() {
        let plan = SoakPlan::composite(MASTER_SEED, 12, 5);
        let step = soak(ExecutorKind::Step, 12, &plan, None);
        let par = soak(ExecutorKind::ParThreads(2), 12, &plan, None);
        assert_eq!(to_json_lines(step.health()), to_json_lines(par.health()));
    }
}
