//! The in-tree wall-clock timing harness: a criterion-compatible surface
//! over a warmup + median-of-K measurement loop.
//!
//! The workspace's primary reproduction evidence is the *model-cost*
//! experiment suite (`experiments::*`, counted in the paper's own units);
//! the `benches/` targets supply supplementary wall-clock shape evidence.
//! For that, a dependency-free harness is enough — and unlike criterion it
//! is hermetic (no registry access) and emits line-oriented JSON that
//! `bin/report.rs --timing` renders back into the workspace's table format.
//!
//! Measurement protocol, per benchmark:
//!
//! 1. **Calibrate**: run the closure until it has consumed ~1 ms to pick an
//!    iteration count putting each sample in the target window.
//! 2. **Warm up** for a fixed budget (caches, branch predictors, allocator).
//! 3. **Sample** K batches (default 20, `sample_size(n)` to override), each
//!    timing `iters` closure runs; the per-iteration nanosecond figure of a
//!    batch is `elapsed / iters`.
//! 4. **Report** the median across batches (robust to scheduler noise),
//!    plus mean/min/max and optional [`Throughput`]-derived rates.
//!
//! `DPRBG_BENCH_QUICK=1` shrinks every budget (CI smoke runs);
//! `DPRBG_BENCH_JSON=<path>` appends each record as a JSON line.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Declared work per iteration, for rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Iterations process this many logical elements (coins, shares, …).
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier, optionally parameterized (`name/param`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId { name: format!("{name}/{param}") }
    }

    /// An id that is just the parameter (criterion's group-local form).
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { name: param.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { name: s.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// One measured benchmark, as serialized to the JSON report.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Owning group name (`""` for ungrouped `bench_function` calls).
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Median per-iteration time across samples.
    pub median_ns: u128,
    /// Mean per-iteration time across samples.
    pub mean_ns: u128,
    /// Fastest sample's per-iteration time.
    pub min_ns: u128,
    /// Slowest sample's per-iteration time.
    pub max_ns: u128,
    /// Number of timed samples.
    pub samples: usize,
    /// Closure invocations per sample.
    pub iters_per_sample: u64,
    /// Declared per-iteration work, if any.
    pub throughput: Option<Throughput>,
}

impl BenchRecord {
    /// Elements (or bytes) processed per second at the median, if a
    /// throughput was declared.
    pub fn rate_per_sec(&self) -> Option<f64> {
        let units = match self.throughput? {
            Throughput::Elements(n) | Throughput::Bytes(n) => n,
        };
        if self.median_ns == 0 {
            return None;
        }
        Some(units as f64 * 1e9 / self.median_ns as f64)
    }

    /// Serialize as one JSON object on one line.
    pub fn to_json_line(&self) -> String {
        let (te, tb) = match self.throughput {
            Some(Throughput::Elements(n)) => (n.to_string(), "null".into()),
            Some(Throughput::Bytes(n)) => ("null".into(), n.to_string()),
            None => ("null".into(), "null".to_string()),
        };
        format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{},\"mean_ns\":{},\
             \"min_ns\":{},\"max_ns\":{},\"samples\":{},\"iters_per_sample\":{},\
             \"throughput_elems\":{},\"throughput_bytes\":{}}}",
            escape_json(&self.group),
            escape_json(&self.name),
            self.median_ns,
            self.mean_ns,
            self.min_ns,
            self.max_ns,
            self.samples,
            self.iters_per_sample,
            te,
            tb,
        )
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Measurement budgets, scaled down under `DPRBG_BENCH_QUICK`.
#[derive(Debug, Clone, Copy)]
struct Budget {
    warmup: Duration,
    sample_target: Duration,
    samples: usize,
}

impl Budget {
    fn new(quick: bool) -> Self {
        if quick {
            Budget {
                warmup: Duration::from_millis(5),
                sample_target: Duration::from_micros(500),
                samples: 10,
            }
        } else {
            Budget {
                warmup: Duration::from_millis(60),
                sample_target: Duration::from_millis(4),
                samples: 20,
            }
        }
    }
}

/// The per-benchmark measurement driver passed to `b.iter(..)` closures.
pub struct Bencher {
    budget: Budget,
    /// Filled by [`Bencher::iter`]: (median, mean, min, max, iters).
    result: Option<(u128, u128, u128, u128, u64)>,
}

impl Bencher {
    /// Time `f`, storing median-of-samples statistics in the bencher.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: how many iterations fit the per-sample target?
        let calib_start = Instant::now();
        let mut calib_iters: u64 = 0;
        while calib_start.elapsed() < Duration::from_millis(1) {
            std::hint::black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos() / calib_iters.max(1) as u128;
        let iters = (self.budget.sample_target.as_nanos() / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        // Warm up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.budget.warmup {
            std::hint::black_box(f());
        }

        // Sample.
        let mut per_iter_ns: Vec<u128> = Vec::with_capacity(self.budget.samples);
        for _ in 0..self.budget.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() / iters as u128);
        }
        per_iter_ns.sort_unstable();
        let median = per_iter_ns[per_iter_ns.len() / 2];
        // The mean is computed after IQR outlier rejection: a single
        // scheduler hiccup in one sample should not move the reported
        // center. Median/min/max stay raw (the spread is information).
        let kept = iqr_filter(&per_iter_ns);
        let mean = kept.iter().sum::<u128>() / kept.len() as u128;
        let (min, max) = (per_iter_ns[0], per_iter_ns[per_iter_ns.len() - 1]);
        self.result = Some((median, mean, min, max, iters));
    }
}

/// Tukey-fence outlier rejection: keep samples within
/// `[Q1 − 1.5·IQR, Q3 + 1.5·IQR]`. Returns all samples when fewer than 4
/// exist (quartiles are meaningless) or when the IQR is zero.
///
/// The input need not be sorted; the kept samples are returned in sorted
/// order. Never returns an empty vector for non-empty input (the
/// quartiles themselves always survive their own fences).
pub fn iqr_filter(samples: &[u128]) -> Vec<u128> {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    if sorted.len() < 4 {
        return sorted;
    }
    let q1 = sorted[sorted.len() / 4];
    let q3 = sorted[(3 * sorted.len()) / 4];
    let iqr = q3 - q1;
    // Chain the saturations: `iqr + iqr / 2` itself overflows u128 when
    // the spread is extreme, panicking before `saturating_sub/add` can
    // clamp anything.
    let lo = q1.saturating_sub(iqr).saturating_sub(iqr / 2);
    let hi = q3.saturating_add(iqr).saturating_add(iqr / 2);
    sorted.retain(|&s| (lo..=hi).contains(&s));
    sorted
}

/// The mean of the middle `1 − 2·trim_frac` of the samples (e.g.
/// `trim_frac = 0.1` discards the fastest and slowest 10%). An
/// alternative robust center to [`iqr_filter`]-then-mean; `trim_frac`
/// is clamped so at least one sample always remains.
pub fn trimmed_mean(samples: &[u128], trim_frac: f64) -> u128 {
    assert!(!samples.is_empty(), "trimmed mean of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let cut = ((sorted.len() as f64 * trim_frac.clamp(0.0, 0.5)) as usize)
        .min((sorted.len() - 1) / 2);
    let mid = &sorted[cut..sorted.len() - cut];
    mid.iter().sum::<u128>() / mid.len() as u128
}

/// The Wilson score interval: a `(lo, hi)` confidence interval for a
/// binomial proportion after observing `successes` out of `trials`, at
/// critical value `z` (1.96 ≈ 95%, 2.58 ≈ 99%).
///
/// Unlike the naive normal interval, Wilson stays inside `[0, 1]` and
/// gives a non-degenerate bound at 0 observed successes — exactly the
/// regime E12's soundness-error rates live in (the interesting claim is
/// the *upper* bound on an empirically-zero failure rate). `(0.0, 1.0)`
/// when `trials` is zero.
pub fn wilson_interval(successes: usize, trials: usize, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    assert!(successes <= trials, "more successes than trials");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// The top-level harness handle (mirrors `criterion::Criterion`).
pub struct Criterion {
    label: String,
    quick: bool,
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// A harness for one bench binary; `label` names the
    /// `criterion_group!` it runs (used only in progress output).
    pub fn new(label: &str) -> Self {
        let quick = std::env::var("DPRBG_BENCH_QUICK").is_ok_and(|v| v != "0");
        eprintln!("# dprbg bench harness: group `{label}`{}", if quick { " (quick)" } else { "" });
        Criterion { label: label.to_string(), quick, records: Vec::new() }
    }

    /// Benchmark `f` directly under the harness root.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run_one(String::new(), id.name, None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    fn run_one<F>(&mut self, group: String, name: String, cfg: Option<(Option<Throughput>, Option<usize>)>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (throughput, sample_size) = cfg.unwrap_or((None, None));
        let mut budget = Budget::new(self.quick);
        if let Some(k) = sample_size {
            budget.samples = k.max(2);
        }
        let mut bencher = Bencher { budget, result: None };
        f(&mut bencher);
        let Some((median_ns, mean_ns, min_ns, max_ns, iters_per_sample)) = bencher.result else {
            eprintln!("warning: benchmark `{name}` never called Bencher::iter");
            return;
        };
        let record = BenchRecord {
            group,
            name,
            median_ns,
            mean_ns,
            min_ns,
            max_ns,
            samples: budget.samples,
            iters_per_sample,
            throughput,
        };
        let path = if record.group.is_empty() {
            record.name.clone()
        } else {
            format!("{}/{}", record.group, record.name)
        };
        let rate = record
            .rate_per_sec()
            .map(|r| format!("  ({r:.0}/s)"))
            .unwrap_or_default();
        println!("{path:<44} median {}{}", format_ns(record.median_ns), rate);
        println!("{}", record.to_json_line());
        self.records.push(record);
    }

    /// Flush the JSON report (called by `criterion_main!`).
    pub fn finalize(&self) {
        let Ok(path) = std::env::var("DPRBG_BENCH_JSON") else {
            return;
        };
        let mut file = match std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("warning: cannot open DPRBG_BENCH_JSON={path}: {e}");
                return;
            }
        };
        for r in &self.records {
            let _ = writeln!(file, "{}", r.to_json_line());
        }
        eprintln!("# group `{}`: {} records appended to {path}", self.label, self.records.len());
    }
}

/// Human-readable nanoseconds.
fn format_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Declare per-iteration work for subsequent benchmarks in the group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark `f` under this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.criterion.run_one(
            self.name.clone(),
            id.name,
            Some((self.throughput, self.sample_size)),
            f,
        );
        self
    }

    /// Benchmark `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.criterion.run_one(
            self.name.clone(),
            id.name,
            Some((self.throughput, self.sample_size)),
            |b| f(b, input),
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Parse one [`BenchRecord::to_json_line`] back into a record.
///
/// Only the flat schema emitted by this harness is understood; returns
/// `None` for anything else (blank lines, human-readable output).
pub fn parse_json_line(line: &str) -> Option<BenchRecord> {
    let line = line.trim();
    if !line.starts_with('{') || !line.contains("\"median_ns\"") {
        return None;
    }
    let field_str = |key: &str| -> Option<String> {
        let pat = format!("\"{key}\":\"");
        let start = line.find(&pat)? + pat.len();
        let end = start + line[start..].find('"')?;
        Some(line[start..end].to_string())
    };
    let field_num = |key: &str| -> Option<u128> {
        let pat = format!("\"{key}\":");
        let start = line.find(&pat)? + pat.len();
        let digits: String = line[start..].chars().take_while(|c| c.is_ascii_digit()).collect();
        digits.parse().ok()
    };
    let throughput = if let Some(n) = field_num("throughput_elems") {
        Some(Throughput::Elements(n as u64))
    } else {
        field_num("throughput_bytes").map(|n| Throughput::Bytes(n as u64))
    };
    Some(BenchRecord {
        group: field_str("group")?,
        name: field_str("bench")?,
        median_ns: field_num("median_ns")?,
        mean_ns: field_num("mean_ns")?,
        min_ns: field_num("min_ns")?,
        max_ns: field_num("max_ns")?,
        samples: field_num("samples")? as usize,
        iters_per_sample: field_num("iters_per_sample")? as u64,
        throughput,
    })
}

/// Define a bench-group function runnable by
/// [`criterion_main!`](crate::criterion_main).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::harness::Criterion::new(stringify!($group));
            $( $target(&mut criterion); )+
            criterion.finalize();
        }
    };
}

/// Define `main()` for a bench binary from its [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let rec = BenchRecord {
            group: "vss_single_n7_t2".into(),
            name: "ours".into(),
            median_ns: 123_456,
            mean_ns: 130_000,
            min_ns: 120_000,
            max_ns: 150_000,
            samples: 20,
            iters_per_sample: 40,
            throughput: Some(Throughput::Elements(64)),
        };
        let line = rec.to_json_line();
        let back = parse_json_line(&line).expect("parses");
        assert_eq!(back.group, rec.group);
        assert_eq!(back.name, rec.name);
        assert_eq!(back.median_ns, rec.median_ns);
        assert_eq!(back.samples, rec.samples);
        assert_eq!(back.throughput, rec.throughput);
    }

    #[test]
    fn json_roundtrip_no_throughput() {
        let rec = BenchRecord {
            group: String::new(),
            name: "gf2k_mul/k=32".into(),
            median_ns: 17,
            mean_ns: 18,
            min_ns: 15,
            max_ns: 30,
            samples: 10,
            iters_per_sample: 100_000,
            throughput: None,
        };
        let back = parse_json_line(&rec.to_json_line()).expect("parses");
        assert_eq!(back.throughput, None);
        assert_eq!(back.name, rec.name);
    }

    #[test]
    fn parse_rejects_non_records() {
        assert!(parse_json_line("").is_none());
        assert!(parse_json_line("vss/ours   median 1.2 ms").is_none());
        assert!(parse_json_line("{\"unrelated\":1}").is_none());
    }

    #[test]
    fn rate_uses_median() {
        let rec = BenchRecord {
            group: "g".into(),
            name: "b".into(),
            median_ns: 1_000,
            mean_ns: 1_000,
            min_ns: 1_000,
            max_ns: 1_000,
            samples: 2,
            iters_per_sample: 1,
            throughput: Some(Throughput::Elements(5)),
        };
        assert_eq!(rec.rate_per_sec(), Some(5e6));
    }

    #[test]
    fn bencher_measures_something() {
        std::env::set_var("DPRBG_BENCH_QUICK", "1");
        let mut c = Criterion::new("harness_selftest");
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>())
        });
        assert_eq!(c.records.len(), 1);
        assert!(c.records[0].median_ns > 0 || c.records[0].iters_per_sample > 0);
    }

    #[test]
    fn quick_escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }

    #[test]
    fn iqr_filter_rejects_the_scheduler_hiccup() {
        // 19 well-behaved samples and one 100× outlier.
        let mut samples: Vec<u128> = (100..119).collect();
        samples.push(10_000);
        let kept = iqr_filter(&samples);
        assert_eq!(kept.len(), 19);
        assert!(!kept.contains(&10_000));
        // Tiny inputs come back whole.
        assert_eq!(iqr_filter(&[5, 1_000_000]), vec![5, 1_000_000]);
        // Uniform inputs survive intact (zero IQR keeps the value itself).
        assert_eq!(iqr_filter(&[7; 8]), vec![7; 8]);
    }

    #[test]
    fn iqr_filter_survives_extreme_spread() {
        // Regression: `q1.saturating_sub(iqr + iqr / 2)` computed the
        // fence offset *before* saturating, so a near-u128::MAX spread
        // overflowed in the addition and panicked in debug builds.
        let samples = [0u128, 1, u128::MAX - 1, u128::MAX];
        let kept = iqr_filter(&samples);
        assert!(!kept.is_empty());
        assert!(kept.iter().all(|s| samples.contains(s)));
        // Empty input comes back empty rather than panicking.
        assert_eq!(iqr_filter(&[]), Vec::<u128>::new());
    }

    #[test]
    fn trimmed_mean_is_robust() {
        let mut samples: Vec<u128> = vec![10; 18];
        samples.push(1);
        samples.push(1_000_000);
        let tm = trimmed_mean(&samples, 0.1);
        assert_eq!(tm, 10);
        // Zero trim is the plain mean.
        assert_eq!(trimmed_mean(&[1, 2, 3], 0.0), 2);
        // A single sample survives any trim fraction.
        assert_eq!(trimmed_mean(&[42], 0.5), 42);
    }

    #[test]
    fn wilson_interval_brackets_sensibly() {
        // 0 failures in 200 trials at 95%: lower bound 0, upper ≈ 1.9%.
        let (lo, hi) = wilson_interval(0, 200, 1.96);
        assert_eq!(lo, 0.0);
        assert!(hi > 0.015 && hi < 0.025, "upper bound {hi}");
        // Symmetric case contains the point estimate.
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(lo > 0.39 && hi < 0.61);
        // All successes at high confidence still below 1.
        let (_, hi) = wilson_interval(100, 100, 2.58);
        assert!(hi <= 1.0);
        // Degenerate trials.
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn bencher_mean_survives_iqr_rejection() {
        // The mean stored by iter() is computed over IQR-kept samples, so
        // it stays within the raw min/max envelope.
        std::env::set_var("DPRBG_BENCH_QUICK", "1");
        let mut c = Criterion::new("harness_stats_selftest");
        c.bench_function("sum1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let r = &c.records[0];
        assert!(r.min_ns <= r.mean_ns && r.mean_ns <= r.max_ns);
    }
}
