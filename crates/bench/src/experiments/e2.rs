//! E2 — Batch-VSS amortization (Lemma 4 / Corollary 1).
//!
//! Paper claims: verifying `M` secrets takes "2Mk log k additions and 2
//! polynomial interpolations per player. There are two rounds of
//! communication, each with n messages … for a total of 2nk bits" —
//! i.e. **the communication does not grow with M at all**, and the
//! amortized computation per secret is `2k log k` additions with `O(1)`
//! communication (Corollary 1).
//!
//! The measured table shows, for growing `M`: constant interpolations
//! (2), constant bytes (2nk), and per-secret multiplications converging
//! to the Horner combination's single multiply.

use dprbg_core::batch_vss::{cheating_batch_deal, BatchOpts};
use dprbg_core::{BatchVssMsg, BatchVssVerifyMachine, CoinError, VssVerdict};
use dprbg_field::{Field, Gf2k};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

use super::common::{challenge_coins, fmt_f, ExperimentCtx, PlayerCost, F32};

/// The machine fleet E2 measures: `n` verifiers of one honest batch of
/// `m` sharings, dealt out-of-band (the "Given"). Shared with the
/// traced report path (`--trace`), which drives the same fleet under a
/// span-recording executor.
pub fn fleet_over<F: Field>(
    n: usize,
    t: usize,
    m: usize,
    seed: u64,
) -> Vec<BoxedMachine<BatchVssMsg<F>, Result<VssVerdict, CoinError>>> {
    let coins = challenge_coins::<F>(n, t, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    // bad_count = 0 → an honest batch.
    let all = cheating_batch_deal::<F, _>(n, t, m, 0, &mut rng);
    (1..=n)
        .map(|id| {
            Box::new(BatchVssVerifyMachine::new(
                t,
                all[id - 1].clone(),
                m,
                coins[id - 1],
                BatchOpts::default(),
            )) as _
        })
        .collect()
}

/// Measure one Batch-VSS verification of `m` (honest) sharings over any
/// field (the k-sweep table runs this across GF(2^k) sizes), on the
/// single-threaded executor.
pub fn measure_over<F: Field>(n: usize, t: usize, m: usize, seed: u64) -> PlayerCost {
    let res = StepRunner::new(n, seed).run(fleet_over::<F>(n, t, m, seed));
    let report = res.report.clone();
    for v in res.unwrap_all() {
        assert_eq!(v.unwrap(), VssVerdict::Accept);
    }
    PlayerCost::from_report(&report)
}

/// Measure one Batch-VSS verification of `m` (honest) sharings (k = 32).
pub fn measure(n: usize, t: usize, m: usize, seed: u64) -> PlayerCost {
    measure_over::<F32>(n, t, m, seed)
}

/// The k-sweep companion: the same verification across field sizes —
/// Lemma 4's `2Mk log k` additions scale with k only through the
/// *bit-cost* of each field operation (the operation **count** is flat),
/// while communication scales exactly linearly in k (`2nk` bits).
pub fn run_k_sweep(ctx: &ExperimentCtx) -> Table {
    let n = 7;
    let t = 2;
    let m = if ctx.quick { 16 } else { 64 };
    let mut table = Table::new(
        &format!("E2b: Batch-VSS of M={m} across field sizes k (Lemma 4's k-dependence)"),
        &["muls", "adds", "bytes", "2nk/8 pred", "adds-equiv (k log k/mul)"],
    );
    let rows: [(&str, PlayerCost, u32); 4] = [
        ("k=8", measure_over::<Gf2k<8>>(n, t, m, ctx.seed + 8), 8),
        ("k=16", measure_over::<Gf2k<16>>(n, t, m, ctx.seed + 16), 16),
        ("k=32", measure_over::<Gf2k<32>>(n, t, m, ctx.seed + 32), 32),
        ("k=64", measure_over::<Gf2k<64>>(n, t, m, ctx.seed + 64), 64),
    ];
    for (label, c, k) in rows {
        table.row(
            label,
            &[
                c.muls.to_string(),
                c.adds.to_string(),
                c.bytes.to_string(),
                (2 * n * (k as usize) / 8).to_string(),
                c.total_adds(k).to_string(),
            ],
        );
    }
    table
}

/// Run E2 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let n = 7;
    let t = 2;
    let ms = ctx.sweep(&[1usize, 4, 16, 64, 256, 1024], &[1, 16, 256]);
    let mut table = Table::new(
        "E2: Batch-VSS of M secrets, n=7 t=2 k=32 (Lemma 4 / Corollary 1)",
        &[
            "interp", "muls", "adds", "bytes", "rounds", "muls/secret", "bytes/secret",
        ],
    );
    for &m in ms {
        let c = measure(n, t, m, ctx.seed + m as u64);
        table.row(
            &format!("M={m}"),
            &[
                c.interps.to_string(),
                c.muls.to_string(),
                c.adds.to_string(),
                c.bytes.to_string(),
                c.rounds.to_string(),
                fmt_f(c.muls as f64 / m as f64),
                fmt_f(c.bytes as f64 / m as f64),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_shapes_hold() {
        let n = 7;
        let t = 2;
        let small = measure(n, t, 1, 1);
        let large = measure(n, t, 256, 2);
        // Corollary 1: communication independent of M.
        assert_eq!(small.bytes, large.bytes);
        assert_eq!(small.messages, large.messages);
        assert_eq!(large.interps, 2, "two interpolations regardless of M");
        // Computation grows ~linearly in M (one Horner multiplication per
        // secret) plus a fixed interpolation overhead, so the per-secret
        // multiplications converge toward 1 from above.
        let per_secret_large = large.muls as f64 / 256.0;
        let per_secret_small = small.muls as f64;
        assert!(
            per_secret_large < per_secret_small / 20.0,
            "amortization: {per_secret_large} vs {per_secret_small}"
        );
        assert!(per_secret_large < 8.0, "muls/secret = {per_secret_large}");
        // But total muls did grow with M (the Horner term is real).
        assert!(large.muls > small.muls + 200);
    }

    #[test]
    fn e2b_op_counts_flat_in_k_bytes_linear() {
        let a = measure_over::<Gf2k<8>>(7, 2, 32, 1);
        let b = measure_over::<Gf2k<64>>(7, 2, 32, 1);
        // Same operation counts at every k…
        assert_eq!(a.muls, b.muls);
        assert_eq!(a.adds, b.adds);
        assert_eq!(a.interps, b.interps);
        // …while the bit volume scales exactly linearly in k.
        assert_eq!(b.bytes, a.bytes * 8);
    }

    #[test]
    fn e2b_renders() {
        let s = run_k_sweep(&ExperimentCtx::new(true)).render();
        assert!(s.contains("k=64"));
    }

    #[test]
    fn e2_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("M=256"));
    }
}
