//! E5 — The §1.4 comparison: D-PRBG vs from-scratch coins vs Rabin's
//! dealer.
//!
//! Paper claims: "Our main result is the construction of a D-PRBG in
//! which this amortized cost (computation and communication) is
//! significantly lower than the cost of any 'from-scratch' shared coin
//! generation protocol", while Rabin's trusted dealer is cheap but
//! "requires the dealer to continuously provide" coins (a standing trust
//! assumption rather than a protocol cost).
//!
//! Measured here, per delivered coin (generation + expose):
//! - **D-PRBG**: one Coin-Gen batch of M coins plus M exposes, divided
//!   by M;
//! - **from-scratch**: one [`dprbg_baselines::from_scratch_coin`] run
//!   (t + 1 cut-and-choose VSSs at matched soundness + expose);
//! - **Rabin dealer**: the expose only (the dealing is the trusted
//!   party's burden — reported as "trusted-dealer deals/coin = 1").

use dprbg_baselines::{from_scratch_coin, FromScratchMsg};
use dprbg_core::{
    CoinError, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeMachine, ExposeMsg, ExposeVia, Params,
    SealedShare,
};
use dprbg_core::CoinGenMachine;
use dprbg_field::Field;
use dprbg_metrics::{Table, WireSize};
use dprbg_sim::{BoxedMachine, Embeds, MachineExt, RoundMachine, RoundView, Step, StepRunner};

use super::common::{challenge_coins, fmt_f, seed_wallets, ExperimentCtx, PlayerCost, F32};

/// Expose every share in a batch, one Coin-Expose after another — each
/// expose's send goes out in the same round the previous decode lands.
struct ExposeAllMachine<M, F: Field> {
    t: usize,
    /// Remaining shares, last-to-expose first.
    stack: Vec<SealedShare<F>>,
    cur: Option<ExposeMachine<M, F>>,
}

impl<M, F: Field> ExposeAllMachine<M, F> {
    fn new(t: usize, mut shares: Vec<SealedShare<F>>) -> Self {
        shares.reverse();
        ExposeAllMachine { t, stack: shares, cur: None }
    }
}

impl<M, F> RoundMachine<M> for ExposeAllMachine<M, F>
where
    M: Clone + WireSize + Embeds<ExposeMsg<F>>,
    F: Field,
{
    type Output = Result<(), CoinError>;

    fn phase_name(&self) -> &'static str {
        "expose-all"
    }

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        loop {
            let mut m = match self.cur.take() {
                Some(m) => m,
                None => match self.stack.pop() {
                    Some(s) => ExposeMachine::new(s, self.t, ExposeVia::PointToPoint),
                    None => return Step::Done(Ok(())),
                },
            };
            match m.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.cur = Some(m);
                    return Step::Continue(out);
                }
                // Next expose starts in the round the previous decode landed.
                Step::Done(Ok(_)) => continue,
                Step::Done(Err(e)) => return Step::Done(Err(e)),
            }
        }
    }
}

/// D-PRBG cost per delivered coin: generate a batch of `m`, expose all —
/// on the single-threaded executor.
fn dprbg_per_coin(n: usize, t: usize, m: usize, seed: u64) -> PlayerCost {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, seed);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, Result<(), CoinError>>> = (0..n)
        .map(|_| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0)).then(
                move |(_wallet, res): (CoinWallet<F32>, _)| {
                    let batch = res.expect("generation succeeds");
                    ExposeAllMachine::new(t, batch.shares)
                },
            );
            Box::new(machine) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    for out in &res.outputs {
        assert_eq!(out.as_ref().expect("machine ran"), &Ok(()));
    }
    let mut c = PlayerCost::from_report(&res.report);
    // Per-coin figures.
    c.adds /= m as u64;
    c.muls /= m as u64;
    c.invs /= m as u64;
    c.interps /= m as u64;
    c.messages /= m as u64;
    c.bytes /= m as u64;
    c.rounds /= m as u64;
    c
}

/// From-scratch cost per coin at matched soundness (32 challenge rounds).
fn from_scratch_per_coin(n: usize, t: usize, seed: u64) -> PlayerCost {
    let machines: Vec<BoxedMachine<FromScratchMsg<F32>, Option<F32>>> = (1..=n)
        .map(|id| Box::new(from_scratch_coin::<F32>(id, t, 32, seed)) as _)
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    assert!(res.unwrap_all()[0].is_some());
    PlayerCost::from_report(&report)
}

/// Rabin-dealer cost per coin: the parties only expose (the dealing is
/// the trusted party's) — on the single-threaded executor.
fn rabin_per_coin(n: usize, t: usize, seed: u64) -> PlayerCost {
    let coins = challenge_coins::<F32>(n, t, seed);
    let machines: Vec<BoxedMachine<ExposeMsg<F32>, Result<F32, CoinError>>> = (1..=n)
        .map(|id| {
            Box::new(ExposeMachine::new(coins[id - 1], t, ExposeVia::PointToPoint)) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    for out in res.unwrap_all() {
        out.expect("expose succeeds");
    }
    PlayerCost::from_report(&report)
}

/// Run E5 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let m = if ctx.quick { 64 } else { 256 };
    let mut table = Table::new(
        &format!("E5: cost per delivered coin, k=32, D-PRBG batch M={m} (§1.4 comparison)"),
        &[
            "interp/coin", "muls/coin", "adds/coin", "bytes/coin", "trust",
        ],
    );
    for &(n, t) in ctx.sweep(&[(7usize, 1usize), (13, 2)], &[(7, 1)]) {
        let d = dprbg_per_coin(n, t, m, ctx.seed + n as u64);
        table.row(
            &format!("D-PRBG        n={n:<2}"),
            &[
                d.interps.to_string(),
                d.muls.to_string(),
                d.adds.to_string(),
                d.bytes.to_string(),
                "one-shot dealer".into(),
            ],
        );
        let f = from_scratch_per_coin(n, t, ctx.seed + 50 + n as u64);
        table.row(
            &format!("from-scratch  n={n:<2}"),
            &[
                f.interps.to_string(),
                f.muls.to_string(),
                f.adds.to_string(),
                f.bytes.to_string(),
                "none".into(),
            ],
        );
        let r = rabin_per_coin(n, t, ctx.seed + 90 + n as u64);
        table.row(
            &format!("Rabin[17]     n={n:<2}"),
            &[
                r.interps.to_string(),
                r.muls.to_string(),
                r.adds.to_string(),
                r.bytes.to_string(),
                "continuous dealer".into(),
            ],
        );
        let factor = f.bytes as f64 / d.bytes.max(1) as f64;
        table.row(
            &format!("  => factor   n={n:<2}"),
            &[
                format!("{}x", f.interps / d.interps.max(1)),
                fmt_f(f.muls as f64 / d.muls.max(1) as f64),
                fmt_f(f.adds as f64 / d.adds.max(1) as f64),
                fmt_f(factor),
                "-".into(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_dprbg_beats_from_scratch() {
        let n = 7;
        let t = 1;
        let d = dprbg_per_coin(n, t, 64, 1);
        let f = from_scratch_per_coin(n, t, 2);
        // Who wins: the D-PRBG, on every axis the paper claims.
        assert!(d.interps < f.interps, "interpolations {} vs {}", d.interps, f.interps);
        assert!(d.bytes < f.bytes, "bytes {} vs {}", d.bytes, f.bytes);
        // By roughly what factor: interpolations by ~k·(t+1)/2 (paper:
        // one interpolation amortized vs k per VSS), at least 5x here.
        assert!(f.interps >= d.interps * 5);
    }

    #[test]
    fn e5_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("D-PRBG"));
        assert!(s.contains("from-scratch"));
        assert!(s.contains("Rabin"));
    }
}
