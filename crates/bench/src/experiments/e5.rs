//! E5 — The §1.4 comparison: D-PRBG vs from-scratch coins vs Rabin's
//! dealer.
//!
//! Paper claims: "Our main result is the construction of a D-PRBG in
//! which this amortized cost (computation and communication) is
//! significantly lower than the cost of any 'from-scratch' shared coin
//! generation protocol", while Rabin's trusted dealer is cheap but
//! "requires the dealer to continuously provide" coins (a standing trust
//! assumption rather than a protocol cost).
//!
//! Measured here, per delivered coin (generation + expose):
//! - **D-PRBG**: one Coin-Gen batch of M coins plus M exposes, divided
//!   by M;
//! - **from-scratch**: one [`dprbg_baselines::from_scratch_coin`] run
//!   (t + 1 cut-and-choose VSSs at matched soundness + expose);
//! - **Rabin dealer**: the expose only (the dealing is the trusted
//!   party's burden — reported as "trusted-dealer deals/coin = 1").

use dprbg_baselines::{from_scratch_coin, FromScratchMsg};
use dprbg_core::{
    coin_expose, coin_gen, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeMsg, ExposeVia, Params,
};
use dprbg_metrics::Table;
use dprbg_sim::{run_network, Behavior, PartyCtx};

use super::common::{challenge_coins, fmt_f, seed_wallets, ExperimentCtx, PlayerCost, F32};

/// D-PRBG cost per delivered coin: generate a batch of `m`, expose all.
fn dprbg_per_coin(n: usize, t: usize, m: usize, seed: u64) -> PlayerCost {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, seed);
    let behaviors: Vec<Behavior<CoinGenMsg<F32>, ()>> = (0..n)
        .map(|_| {
            let mut w = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<CoinGenMsg<F32>>| {
                let batch = coin_gen(ctx, &cfg, &mut w).expect("generation succeeds");
                for s in batch.shares {
                    let _ = coin_expose(ctx, s, t, ExposeVia::PointToPoint).unwrap();
                }
            }) as Behavior<_, _>
        })
        .collect();
    let res = run_network(n, seed, behaviors);
    let mut c = PlayerCost::from_report(&res.report);
    // Per-coin figures.
    c.adds /= m as u64;
    c.muls /= m as u64;
    c.invs /= m as u64;
    c.interps /= m as u64;
    c.messages /= m as u64;
    c.bytes /= m as u64;
    c.rounds /= m as u64;
    c
}

/// From-scratch cost per coin at matched soundness (32 challenge rounds).
fn from_scratch_per_coin(n: usize, t: usize, seed: u64) -> PlayerCost {
    let behaviors: Vec<Behavior<FromScratchMsg<F32>, Option<F32>>> = (0..n)
        .map(|_| {
            Box::new(move |ctx: &mut PartyCtx<FromScratchMsg<F32>>| {
                from_scratch_coin(ctx, t, 32, seed)
            }) as Behavior<_, _>
        })
        .collect();
    let res = run_network(n, seed, behaviors);
    let report = res.report.clone();
    assert!(res.unwrap_all()[0].is_some());
    PlayerCost::from_report(&report)
}

/// Rabin-dealer cost per coin: the parties only expose (the dealing is
/// the trusted party's).
fn rabin_per_coin(n: usize, t: usize, seed: u64) -> PlayerCost {
    let coins = challenge_coins::<F32>(n, t, seed);
    let behaviors: Vec<Behavior<ExposeMsg<F32>, F32>> = (1..=n)
        .map(|id| {
            let share = coins[id - 1];
            Box::new(move |ctx: &mut PartyCtx<ExposeMsg<F32>>| {
                coin_expose(ctx, share, t, ExposeVia::PointToPoint).unwrap()
            }) as Behavior<_, _>
        })
        .collect();
    let res = run_network(n, seed, behaviors);
    PlayerCost::from_report(&res.report)
}

/// Run E5 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let m = if ctx.quick { 64 } else { 256 };
    let mut table = Table::new(
        &format!("E5: cost per delivered coin, k=32, D-PRBG batch M={m} (§1.4 comparison)"),
        &[
            "interp/coin", "muls/coin", "adds/coin", "bytes/coin", "trust",
        ],
    );
    for &(n, t) in ctx.sweep(&[(7usize, 1usize), (13, 2)], &[(7, 1)]) {
        let d = dprbg_per_coin(n, t, m, ctx.seed + n as u64);
        table.row(
            &format!("D-PRBG        n={n:<2}"),
            &[
                d.interps.to_string(),
                d.muls.to_string(),
                d.adds.to_string(),
                d.bytes.to_string(),
                "one-shot dealer".into(),
            ],
        );
        let f = from_scratch_per_coin(n, t, ctx.seed + 50 + n as u64);
        table.row(
            &format!("from-scratch  n={n:<2}"),
            &[
                f.interps.to_string(),
                f.muls.to_string(),
                f.adds.to_string(),
                f.bytes.to_string(),
                "none".into(),
            ],
        );
        let r = rabin_per_coin(n, t, ctx.seed + 90 + n as u64);
        table.row(
            &format!("Rabin[17]     n={n:<2}"),
            &[
                r.interps.to_string(),
                r.muls.to_string(),
                r.adds.to_string(),
                r.bytes.to_string(),
                "continuous dealer".into(),
            ],
        );
        let factor = f.bytes as f64 / d.bytes.max(1) as f64;
        table.row(
            &format!("  => factor   n={n:<2}"),
            &[
                format!("{}x", f.interps / d.interps.max(1)),
                fmt_f(f.muls as f64 / d.muls.max(1) as f64),
                fmt_f(f.adds as f64 / d.adds.max(1) as f64),
                fmt_f(factor),
                "-".into(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_dprbg_beats_from_scratch() {
        let n = 7;
        let t = 1;
        let d = dprbg_per_coin(n, t, 64, 1);
        let f = from_scratch_per_coin(n, t, 2);
        // Who wins: the D-PRBG, on every axis the paper claims.
        assert!(d.interps < f.interps, "interpolations {} vs {}", d.interps, f.interps);
        assert!(d.bytes < f.bytes, "bytes {} vs {}", d.bytes, f.bytes);
        // By roughly what factor: interpolations by ~k·(t+1)/2 (paper:
        // one interpolation amortized vs k per VSS), at least 5x here.
        assert!(f.interps >= d.interps * 5);
    }

    #[test]
    fn e5_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("D-PRBG"));
        assert!(s.contains("from-scratch"));
        assert!(s.contains("Rabin"));
    }
}
