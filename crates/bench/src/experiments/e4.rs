//! E4 — Coin-Gen amortization: the paper's main result (Theorem 2 /
//! Corollary 3).
//!
//! Paper claims: the n parallel Bit-Gens cost `Mn²k log k + 2Mnk log k`
//! additions and `n + 1` interpolations per player, plus a clique
//! computation and "an expected constant number of interpolations and
//! BAs"; communication totals `Mn²k + O(n⁴k)` bits. Amortized per
//! produced coin the computation is `O(n log k)` operations **per bit**
//! (i.e. `O(nk log k)` per k-ary coin ≈ `O(n)` multiplications) and the
//! communication per coin is `n²k + O(n⁴k)/M` bits — so the `O(n⁴k)`
//! agreement overhead (grade-cast of cliques + leader election + BA)
//! vanishes as the batch grows. This experiment measures the whole
//! protocol and locates that crossover.

use dprbg_core::{CoinBatch, CoinGenConfig, CoinGenError, CoinGenMachine, CoinGenMsg, CoinWallet, Params};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, StepRunner};

use super::common::{fmt_f, seed_wallets, ExperimentCtx, PlayerCost, F32};

/// Measure one full Coin-Gen run on the single-threaded executor;
/// returns (cost, attempts).
pub fn measure(n: usize, t: usize, m: usize, seed: u64) -> (PlayerCost, usize) {
    type Out = (CoinWallet<F32>, Result<CoinBatch<F32>, CoinGenError>);
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, seed);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, Out>> = (0..n)
        .map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _)
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    let attempts = res.unwrap_all()[0].1.as_ref().expect("generation succeeds").attempts;
    (PlayerCost::from_report(&report), attempts)
}

/// Run E4 and render its tables.
pub fn run(ctx: &ExperimentCtx) -> Vec<Table> {
    let mut tables = Vec::new();
    let ns: &[usize] = ctx.sweep(&[7, 13, 19, 25], &[7, 13]);
    for &n in ns {
        let t = Params::max_t_p2p(n);
        let ms: &[usize] = if ctx.quick {
            &[1, 16, 128]
        } else {
            &[1, 4, 16, 64, 256, 1024]
        };
        let mut table = Table::new(
            &format!(
                "E4: Coin-Gen amortization, n={n} t={t} k=32 (Theorem 2 / Corollary 3)"
            ),
            &[
                "attempts", "interp", "muls", "bytes", "muls/coin", "bytes/coin", "n^2*k/8",
            ],
        );
        for &m in ms {
            let (c, attempts) = measure(n, t, m, ctx.seed + (n * 10_000 + m) as u64);
            table.row(
                &format!("M={m}"),
                &[
                    attempts.to_string(),
                    c.interps.to_string(),
                    c.muls.to_string(),
                    c.bytes.to_string(),
                    fmt_f(c.muls as f64 / m as f64),
                    fmt_f(c.bytes as f64 / m as f64),
                    (n * n * 4).to_string(),
                ],
            );
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_amortization_shape() {
        let n = 7;
        let t = 1;
        let (small, _) = measure(n, t, 1, 1);
        let (large, attempts) = measure(n, t, 128, 2);
        assert_eq!(attempts, 1, "no faults → one leader attempt (Lemma 8)");
        // Headline: per-coin bytes collapse as M grows; the fixed O(n^4 k)
        // agreement overhead is amortized away.
        let pc_small = small.bytes as f64;
        let pc_large = large.bytes as f64 / 128.0;
        assert!(
            pc_large < pc_small / 20.0,
            "per-coin bytes {pc_large} vs single-coin run {pc_small}"
        );
        // And converge toward the n²k dealing floor (within ~3×: betas,
        // expose and blinding ride along).
        assert!(pc_large < (n * n * 4) as f64 * 3.0, "per-coin bytes {pc_large}");
        // Per-coin multiplications are O(n) — small constant times n.
        let muls_per_coin = large.muls as f64 / 128.0;
        assert!(
            muls_per_coin < (8 * n) as f64,
            "muls/coin = {muls_per_coin} should be O(n)"
        );
    }

    #[test]
    fn e4_interp_per_player_is_n_plus_constant() {
        // Theorem 2: n + 1 interpolations for the Bit-Gens, plus an
        // expected-constant number for the leader expose(s).
        let n = 7;
        let (c, attempts) = measure(n, 1, 16, 3);
        let expected_min = (n + 1) as u64; // n dealer decodes + challenge
        let expected_max = expected_min + 2 * attempts as u64 + 1;
        assert!(
            (expected_min..=expected_max).contains(&c.interps),
            "interpolations {} outside [{expected_min}, {expected_max}]",
            c.interps
        );
    }

    #[test]
    fn e4_renders() {
        let tables = run(&ExperimentCtx::new(true));
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("M=128"));
    }
}
