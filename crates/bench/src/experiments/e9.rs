//! E9 — Ablations of the implementation's design choices (DESIGN.md).
//!
//! Not a paper table: these measure the cost of the places where this
//! implementation chooses or extends beyond the paper's literal text,
//! demonstrating each choice is either free or buys robustness cheaply.
//!
//! 1. **Batch blinding** (DESIGN.md deviation #2): the extra masking
//!    polynomial per batch costs one share per player and one Horner
//!    step — `O(1/M)` amortized.
//! 2. **Strict vs. Robust VSS acceptance**: Fig. 2's literal rule cannot
//!    distinguish a cheating dealer from a cheating *verifier*; the
//!    Berlekamp–Welch rule (Bit-Gen's, §4) tolerates ≤ t bad verifiers at
//!    a modest computation premium.
//! 3. **Proactive refresh** (§1.2 extension): re-randomizing a wallet of
//!    W coins costs the same machinery as generating W coins — the
//!    refresh rides Corollary 3's amortization.

use dprbg_core::batch_vss::{cheating_batch_deal, BatchOpts};
use dprbg_core::{
    BatchVssMsg, BatchVssVerifyMachine, CoinBatch, CoinError, CoinGenConfig, CoinGenError,
    CoinGenMachine, CoinGenMsg, CoinWallet, Params, RefreshMachine, RefreshReport, VssMode,
    VssVerdict,
};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

use super::common::{challenge_coins, fmt_f, seed_wallets, ExperimentCtx, PlayerCost, F32};

/// Batch-VSS verification cost with blinding toggled.
fn batch_cost(n: usize, t: usize, m: usize, blinding: bool, seed: u64) -> PlayerCost {
    let coins = challenge_coins::<F32>(n, t, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let all = cheating_batch_deal::<F32, _>(n, t, m, 0, &mut rng);
    let opts = BatchOpts { blinding, mode: VssMode::Strict };
    let machines: Vec<BoxedMachine<BatchVssMsg<F32>, Result<VssVerdict, CoinError>>> = (1..=n)
        .map(|id| {
            Box::new(BatchVssVerifyMachine::new(t, all[id - 1].clone(), m, coins[id - 1], opts))
                as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    for v in res.unwrap_all() {
        assert_eq!(v.unwrap(), VssVerdict::Accept);
    }
    PlayerCost::from_report(&report)
}

/// Batch-VSS verification cost under the given acceptance mode.
fn mode_cost(n: usize, t: usize, mode: VssMode, seed: u64) -> PlayerCost {
    let coins = challenge_coins::<F32>(n, t, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let all = cheating_batch_deal::<F32, _>(n, t, 16, 0, &mut rng);
    let opts = BatchOpts { blinding: true, mode };
    let machines: Vec<BoxedMachine<BatchVssMsg<F32>, Result<VssVerdict, CoinError>>> = (1..=n)
        .map(|id| {
            Box::new(BatchVssVerifyMachine::new(t, all[id - 1].clone(), 16, coins[id - 1], opts))
                as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    PlayerCost::from_report(&res.report)
}

/// Generation vs. refresh cost for the same coin count.
fn gen_vs_refresh(n: usize, t: usize, w: usize, seed: u64) -> (PlayerCost, PlayerCost) {
    let params = Params::p2p_model(n, t).unwrap();
    // Generate W coins.
    let cfg = CoinGenConfig { params, batch_size: w };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4, seed);
    type CgOut = (CoinWallet<F32>, Result<CoinBatch<F32>, CoinGenError>);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, CgOut>> = (0..n)
        .map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _)
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    for (_, r) in res.unwrap_all() {
        r.unwrap();
    }
    let gen = PlayerCost::from_report(&report);

    // Refresh a wallet of W (+2 for the protocol's own seeds).
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, w + 2, seed + 1);
    let cfg = CoinGenConfig { params, batch_size: 0 };
    type RfOut = (CoinWallet<F32>, Result<RefreshReport, CoinGenError>);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, RfOut>> = (0..n)
        .map(|_| Box::new(RefreshMachine::new(cfg, wallets.remove(0))) as _)
        .collect();
    let res = StepRunner::new(n, seed + 2).run(machines);
    let report = res.report.clone();
    for (_, r) in res.unwrap_all() {
        assert_eq!(r.unwrap().coins_refreshed, w);
    }
    let refresh = PlayerCost::from_report(&report);
    (gen, refresh)
}

/// Run E9 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let n = 7;
    let t = 2;
    let mut table = Table::new(
        "E9: ablations of implementation choices (DESIGN.md)",
        &["muls", "adds", "bytes", "note"],
    );
    for &m in ctx.sweep(&[16usize, 256], &[16]) {
        let on = batch_cost(n, t, m, true, ctx.seed + m as u64);
        let off = batch_cost(n, t, m, false, ctx.seed + m as u64);
        table.row(
            &format!("batch M={m}, blinding ON"),
            &[
                on.muls.to_string(),
                on.adds.to_string(),
                on.bytes.to_string(),
                "leaks nothing; +1 dealt poly (nk bits)".into(),
            ],
        );
        table.row(
            &format!("batch M={m}, blinding OFF"),
            &[
                off.muls.to_string(),
                off.adds.to_string(),
                off.bytes.to_string(),
                "Fig. 3 verbatim; leaks Σ r^j·s_j".into(),
            ],
        );
    }
    let strict = mode_cost(7, 2, VssMode::Strict, ctx.seed + 31);
    let robust = mode_cost(7, 2, VssMode::Robust, ctx.seed + 31);
    table.row(
        "verdict Strict (Fig. 2/3)",
        &[
            strict.muls.to_string(),
            strict.adds.to_string(),
            strict.bytes.to_string(),
            "rejects on ANY bad broadcast".into(),
        ],
    );
    table.row(
        "verdict Robust (BW, §4 style)",
        &[
            robust.muls.to_string(),
            robust.adds.to_string(),
            robust.bytes.to_string(),
            "tolerates ≤ t bad verifiers".into(),
        ],
    );
    let w = if ctx.quick { 8 } else { 32 };
    let (gen, refresh) = gen_vs_refresh(7, 1, w, ctx.seed + 77);
    table.row(
        &format!("Coin-Gen,  {w} coins"),
        &[
            gen.muls.to_string(),
            gen.adds.to_string(),
            gen.bytes.to_string(),
            "produce W fresh coins".into(),
        ],
    );
    table.row(
        &format!("Refresh,   {w} coins"),
        &[
            refresh.muls.to_string(),
            refresh.adds.to_string(),
            refresh.bytes.to_string(),
            "re-randomize W existing coins".into(),
        ],
    );
    table.row(
        "  => refresh/gen ratio",
        &[
            fmt_f(refresh.muls as f64 / gen.muls as f64),
            fmt_f(refresh.adds as f64 / gen.adds as f64),
            fmt_f(refresh.bytes as f64 / gen.bytes as f64),
            "≈ 1: refresh rides the batch".into(),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_blinding_is_cheap() {
        let m = 64;
        let on = batch_cost(7, 2, m, true, 1);
        let off = batch_cost(7, 2, m, false, 1);
        // One extra Horner step and no extra broadcast traffic.
        assert!(on.muls <= off.muls + 4, "{} vs {}", on.muls, off.muls);
        assert_eq!(on.bytes, off.bytes);
    }

    #[test]
    fn e9_refresh_costs_like_generation() {
        let (gen, refresh) = gen_vs_refresh(7, 1, 8, 2);
        let ratio = refresh.bytes as f64 / gen.bytes as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "refresh/gen byte ratio {ratio} should be ≈ 1"
        );
    }

    #[test]
    fn e9_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("blinding"));
        assert!(s.contains("Refresh"));
    }
}
