//! Shared plumbing for the experiments: the standard field, challenge-coin
//! dealing, and cost-shaping helpers.

use dprbg_core::{CoinWallet, SealedShare};
use dprbg_field::{Field, Gf2k};
use dprbg_metrics::{CostReport, CostSnapshot};
use dprbg_poly::{share_points, share_polynomial};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

/// The standard experiment field (the paper's `k = 32` working point).
pub type F32 = Gf2k<32>;

/// Experiment configuration shared by every module.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentCtx {
    /// Reduced sweeps / trial counts for fast runs.
    pub quick: bool,
    /// Master seed (all experiments are deterministic given it).
    pub seed: u64,
}

impl ExperimentCtx {
    /// The default context.
    pub fn new(quick: bool) -> Self {
        ExperimentCtx { quick, seed: 0xD12B6 }
    }

    /// Pick between the full and the quick variant of a sweep.
    pub fn sweep<'a, T: Copy>(&self, full: &'a [T], quick: &'a [T]) -> &'a [T] {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Deal one sealed challenge coin out-of-band (the dealing itself is not
/// part of any measured protocol, matching the paper's accounting where
/// the k-ary coin is a "Given").
pub fn challenge_coins<F: Field>(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let poly = share_polynomial(F::random(&mut rng), t, &mut rng);
    share_points(&poly, n)
        .into_iter()
        .map(|s| SealedShare::of(s.y))
        .collect()
}

/// Deal per-party seed wallets out-of-band.
pub fn seed_wallets<F: Field>(n: usize, t: usize, count: usize, seed: u64) -> Vec<CoinWallet<F>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wallets: Vec<CoinWallet<F>> = (0..n).map(|_| CoinWallet::new()).collect();
    for _ in 0..count {
        let poly = share_polynomial(F::random(&mut rng), t, &mut rng);
        for (i, w) in wallets.iter_mut().enumerate() {
            w.push(SealedShare::of(poly.eval(F::element(i as u64 + 1))));
        }
    }
    wallets
}

/// The paper reports **per-player** costs: the maximum over players of
/// each computation counter, paired with whole-run communication.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlayerCost {
    /// Field additions (worst player).
    pub adds: u64,
    /// Field multiplications (worst player).
    pub muls: u64,
    /// Field inversions (worst player).
    pub invs: u64,
    /// Polynomial interpolations (worst player).
    pub interps: u64,
    /// Total messages across the run.
    pub messages: u64,
    /// Total payload bytes across the run.
    pub bytes: u64,
    /// Synchronous rounds.
    pub rounds: u64,
}

impl PlayerCost {
    /// Extract the per-player shape from a run's [`CostReport`].
    pub fn from_report(report: &CostReport) -> Self {
        let mut worst = CostSnapshot::default();
        for p in &report.per_party {
            if p.cost.field_adds + p.cost.field_muls > worst.field_adds + worst.field_muls {
                worst = p.cost;
            }
        }
        PlayerCost {
            adds: worst.field_adds,
            muls: worst.field_muls,
            invs: worst.field_invs,
            interps: worst.interpolations,
            messages: report.comm.messages,
            bytes: report.comm.bytes,
            rounds: report.comm.rounds,
        }
    }

    /// Computation in the paper's "additions" unit, charging `k·log k`
    /// additions per multiplication/inversion for field bit-size `k`.
    pub fn total_adds(&self, k: u32) -> u64 {
        let mul_cost = (k as u64) * (32 - k.leading_zeros()) as u64;
        self.adds + (self.muls + self.invs) * mul_cost
    }
}

/// Format a float compactly for table cells.
pub fn fmt_f(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}
