//! E10 — Round anatomy of Coin-Gen (a figure the paper describes in
//! prose).
//!
//! Fig. 5's execution has a rigid round structure: three Bit-Gen rounds
//! (deal / challenge expose / combination exchange), three Grade-Cast
//! rounds (value / echo / vote), then per leader attempt one expose round
//! plus `2(t + 1)` phase-king rounds. This experiment runs the protocol
//! and prints the measured per-round delivery profile with those labels —
//! making the `Mn²k` vs `O(n⁴k)` split of Theorem 2 *visible*: the deal
//! round carries the payload, the grade-cast echo rounds carry the `n³`
//! clique traffic, and everything else is slim.
//!
//! Also serves as a regression anchor for the simulator's round
//! accounting: the labels are derived analytically and must line up with
//! the recorded profile.

use dprbg_core::{CoinBatch, CoinGenConfig, CoinGenError, CoinGenMachine, CoinGenMsg, CoinWallet, Params};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, RoundProfile, StepRunner};

use super::common::{seed_wallets, ExperimentCtx, F32};

/// Run one Coin-Gen and return (per-round profile, attempts).
pub fn profile(n: usize, t: usize, m: usize, seed: u64) -> (Vec<RoundProfile>, usize) {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, seed);
    type CgOut = (CoinWallet<F32>, Result<CoinBatch<F32>, CoinGenError>);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, CgOut>> = (0..n)
        .map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _)
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let rounds = res.rounds.clone();
    let attempts = res
        .unwrap_all()
        .into_iter()
        .next()
        .map(|(_, batch)| batch.expect("generation succeeds").attempts)
        .expect("party 1 produced an output");
    (rounds, attempts)
}

/// The analytic label of round `r` (0-based) for `attempts` BA attempts.
pub fn round_label(r: usize, t: usize, attempts: usize) -> String {
    match r {
        0 => "bit-gen: deal".into(),
        1 => "bit-gen: expose challenge r".into(),
        2 => "bit-gen: combinations β".into(),
        3 => "grade-cast: values".into(),
        4 => "grade-cast: echoes".into(),
        5 => "grade-cast: votes".into(),
        _ => {
            let per_attempt = 1 + 2 * (t + 1);
            let idx = r - 6;
            let attempt = idx / per_attempt + 1;
            if attempt > attempts {
                return "(post-protocol)".into();
            }
            match idx % per_attempt {
                0 => format!("attempt {attempt}: expose leader coin"),
                k if k % 2 == 1 => format!("attempt {attempt}: BA suggest"),
                _ => format!("attempt {attempt}: BA king"),
            }
        }
    }
}

/// Run E10 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let n = 7;
    let t = 1;
    let m = if ctx.quick { 16 } else { 64 };
    let (rounds, attempts) = profile(n, t, m, ctx.seed);
    let mut table = Table::new(
        &format!("E10: round anatomy of Coin-Gen, n={n} t={t} M={m} ({attempts} attempt(s))"),
        &["deliveries", "live", "phase"],
    );
    for (r, p) in rounds.iter().enumerate() {
        table.row(
            &format!("round {:>2}", r + 1),
            &[
                p.deliveries.to_string(),
                p.live_parties.to_string(),
                round_label(r, t, attempts),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_round_structure_matches_fig5() {
        let n = 7;
        let t = 1;
        let (rounds, attempts) = profile(n, t, 8, 1);
        assert_eq!(attempts, 1);
        // 3 bit-gen + 3 grade-cast + (1 expose + 2(t+1) BA) per attempt.
        assert_eq!(rounds.len(), 6 + attempts * (1 + 2 * (t + 1)));
        // The deal round delivers n² messages; the grade-cast echo round
        // is the n³-flavored bulge (n instances echoed by n parties to n).
        assert_eq!(rounds[0].deliveries, n * n);
        assert!(
            rounds[4].deliveries > rounds[3].deliveries,
            "echo round must out-deliver the value round"
        );
        assert!(rounds.iter().all(|p| p.live_parties == n));
    }

    #[test]
    fn e10_labels_cover_all_rounds() {
        let (rounds, attempts) = profile(7, 1, 4, 2);
        for r in 0..rounds.len() {
            let label = round_label(r, 1, attempts);
            assert!(!label.contains("post-protocol"), "round {r}: {label}");
        }
    }

    #[test]
    fn e10_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("bit-gen: deal"));
        assert!(s.contains("grade-cast: echoes"));
        assert!(s.contains("BA suggest"));
    }
}
