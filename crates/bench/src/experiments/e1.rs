//! E1 — Single-secret VSS: the paper's protocol vs its comparators.
//!
//! Paper claims (Lemma 2 and §3.1):
//! - **This paper's VSS**: "2 polynomial interpolations per player … 2
//!   rounds of communication … the number of messages in each round is n,
//!   each of size k, for a total of 2nk bits", soundness error ≤ 1/p.
//! - **CCD cut-and-choose**: "k polynomial interpolations are computed in
//!   order to achieve a probability of error less than ½^k".
//! - **Feldman**: "both the dealer and the players have to carry out t
//!   exponentiations (i.e., t·log p multiplications)".
//!
//! All three run at matched soundness (error ≈ 2⁻³²: our field is
//! GF(2³²), CCD gets 32 challenge rounds, Feldman's is computational).
//! The dealing round is excluded from our VSS's numbers exactly as in
//! Lemma 2 (shares are a "Given"); CCD and Feldman verify *during*
//! dealing, so their dealing traffic is included — noted in
//! EXPERIMENTS.md.

use dprbg_baselines::feldman::{Exp, FeldmanVerdict};
use dprbg_baselines::{CcdMachine, CcdMsg, CcdOpts, FeldmanMachine, FeldmanMsg};
use dprbg_core::{CoinError, DealtShares, Params, VssMode, VssMsg, VssVerdict, VssVerifyMachine};
use dprbg_field::Field;
use dprbg_metrics::Table;
use dprbg_poly::Poly;
use dprbg_sim::{BoxedMachine, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

use super::common::{challenge_coins, ExperimentCtx, PlayerCost, F32};

/// Measure this paper's VSS verification for one `(n, t)`. All three
/// protocols here — ours and both comparators — are sans-IO machine
/// fleets on the same single-threaded executor, so every column comes
/// out of one cost-accounting pipeline.
fn ours(n: usize, t: usize, seed: u64) -> PlayerCost {
    let coins = challenge_coins::<F32>(n, t, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let f = Poly::<F32>::random(t, &mut rng);
    let g = Poly::<F32>::random(t, &mut rng);
    let machines: Vec<BoxedMachine<VssMsg<F32>, Result<VssVerdict, CoinError>>> = (1..=n)
        .map(|id| {
            let shares = DealtShares {
                alpha: f.eval(F32::element(id as u64)),
                gamma: g.eval(F32::element(id as u64)),
            };
            Box::new(VssVerifyMachine::new(t, shares, coins[id - 1], VssMode::Strict)) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    assert!(res
        .unwrap_all()
        .iter()
        .all(|v| matches!(v, Ok(VssVerdict::Accept))));
    PlayerCost::from_report(&report)
}

/// Measure CCD cut-and-choose at `k_sec` challenge rounds.
fn ccd(n: usize, t: usize, k_sec: usize, seed: u64) -> PlayerCost {
    let opts = CcdOpts { rounds: k_sec, challenge_seed: seed };
    let machines: Vec<BoxedMachine<CcdMsg<F32>, (VssVerdict, F32)>> = (1..=n)
        .map(|id| {
            let secret = (id == 1).then(|| F32::from_u64(7));
            Box::new(CcdMachine::new(1, secret, t, opts)) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    PlayerCost::from_report(&res.report)
}

/// Measure Feldman VSS (t + 1 exponentiations per player).
fn feldman(n: usize, t: usize, seed: u64) -> PlayerCost {
    let machines: Vec<BoxedMachine<FeldmanMsg, (FeldmanVerdict, Exp)>> = (1..=n)
        .map(|id| {
            let secret = (id == 1).then(|| Exp::from_u64(5));
            Box::new(FeldmanMachine::new(1, secret, t)) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    PlayerCost::from_report(&res.report)
}

/// Run E1 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let ns = ctx.sweep(&[4usize, 7, 10, 16, 31], &[4, 7]);
    let k_sec = 32; // matched soundness: 1/2^32 everywhere
    let mut table = Table::new(
        "E1: single VSS at matched soundness 2^-32 (per-player worst case; Lemma 2 vs §3.1)",
        &[
            "interp", "muls", "adds", "msgs", "bytes", "rounds",
        ],
    );
    for &n in ns {
        let t = Params::max_t_broadcast(n);
        let o = ours(n, t, ctx.seed + n as u64);
        table.row(
            &format!("ours      n={n:<2} t={t}"),
            &[
                o.interps.to_string(),
                o.muls.to_string(),
                o.adds.to_string(),
                o.messages.to_string(),
                o.bytes.to_string(),
                o.rounds.to_string(),
            ],
        );
        let c = ccd(n, t, k_sec, ctx.seed + 100 + n as u64);
        table.row(
            &format!("CCD[9]    n={n:<2} t={t}"),
            &[
                c.interps.to_string(),
                c.muls.to_string(),
                c.adds.to_string(),
                c.messages.to_string(),
                c.bytes.to_string(),
                c.rounds.to_string(),
            ],
        );
        let f = feldman(n, t, ctx.seed + 200 + n as u64);
        table.row(
            &format!("Feldman[12] n={n:<2} t={t}"),
            &[
                f.interps.to_string(),
                f.muls.to_string(),
                f.adds.to_string(),
                f.messages.to_string(),
                f.bytes.to_string(),
                f.rounds.to_string(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shapes_hold() {
        let ctx = ExperimentCtx::new(true);
        let n = 7;
        let t = 2;
        let o = ours(n, t, 1);
        assert_eq!(o.interps, 2, "Lemma 2: two interpolations");
        assert_eq!(o.rounds, 2, "Lemma 2: two rounds");
        assert_eq!(o.messages as usize, 2 * n, "Lemma 2: 2n messages");
        assert_eq!(o.bytes as usize, 2 * n * 4, "Lemma 2: 2nk bits");
        let c = ccd(n, t, 32, 2);
        assert_eq!(c.interps, 32, "CCD: k interpolations");
        assert!(c.bytes > o.bytes * 10, "CCD moves much more data");
        let f = feldman(n, t, 3);
        // Feldman needs no interpolation but pays (t+1)·log p
        // multiplications in exponentiations; our multiplication total is
        // dominated by the two interpolations' internals (which the paper
        // counts as unit steps).
        assert_eq!(f.interps, 0);
        assert!(
            f.muls > (t as u64 + 1) * 62,
            "Feldman muls {} must reflect (t+1)·log p",
            f.muls
        );
        let _ = ctx;
    }

    #[test]
    fn e1_renders() {
        let table = run(&ExperimentCtx::new(true));
        let s = table.render();
        assert!(s.contains("ours"));
        assert!(s.contains("CCD"));
        assert!(s.contains("Feldman"));
    }
}
