//! E3 — Bit-Gen cost (Lemma 6 / Corollary 2).
//!
//! Paper claims for generating `M` sealed secrets (one dealer): "3 rounds
//! of communication. In the first round there are n messages each of size
//! Mk, in the second and third rounds n² messages of size k, for a total
//! of nMk + 2n²k bits"; amortized per generated bit "the communication is
//! n + O(1)" (Corollary 2 — the `nMk` dealing term dominates for large
//! M, leaving `n` field-bits of traffic per field-bit generated).
//!
//! We run the single-dealer instance the lemma describes (the `n`
//! parallel instances of Coin-Gen are measured in E4) and report
//! total and per-coin costs as `M` grows.

use dprbg_core::{BitGenMachine, BitGenMode, BitGenMsg, BitGenRun, CoinError, Params};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, PartyId, StepRunner};

use super::common::{challenge_coins, fmt_f, ExperimentCtx, PlayerCost, F32};

/// Measure Bit-Gen with the given dealer set and batch size `m`, on the
/// single-threaded executor.
pub fn measure(n: usize, t: usize, m: usize, dealers: &[PartyId], seed: u64) -> PlayerCost {
    type Out = Result<BitGenRun<F32>, CoinError>;
    let coins = challenge_coins::<F32>(n, t, seed);
    let machines: Vec<BoxedMachine<BitGenMsg<F32>, Out>> = (1..=n)
        .map(|id| {
            Box::new(BitGenMachine::new(
                t,
                m,
                coins[id - 1],
                dealers.to_vec(),
                BitGenMode::RandomCoins,
            )) as _
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let report = res.report.clone();
    for out in res.unwrap_all() {
        let run = out.expect("bit-gen runs");
        assert!(
            dealers.iter().all(|&d| run.views[d - 1].check_poly.is_some()),
            "all instances validate"
        );
    }
    PlayerCost::from_report(&report)
}

/// Run E3 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "E3: Bit-Gen, single dealer of M sealed secrets, k=32 (Lemma 6 / Corollary 2)",
        &[
            "rounds", "msgs", "bytes", "bytes(pred)", "interp", "bytes/coin", "n*k/8",
        ],
    );
    for &n in ctx.sweep(&[7usize, 13], &[7]) {
        let t = Params::max_t_p2p(n);
        for &m in ctx.sweep(&[1usize, 16, 64, 256], &[1, 64]) {
            let c = measure(n, t, m, &[1], ctx.seed + (n * 1000 + m) as u64);
            // Lemma 6 prediction in bytes (k = 32 bits = 4 bytes), for a
            // single dealer: deal n·(M+1)·4, expose n²·4, betas n·(4+1)
            // (only the dealer instance has combinations to send).
            let k_bytes = 4usize;
            let predicted = n * (m + 1) * k_bytes + n * n * k_bytes + n * n * (k_bytes + 1);
            table.row(
                &format!("n={n:<2} M={m}"),
                &[
                    c.rounds.to_string(),
                    c.messages.to_string(),
                    c.bytes.to_string(),
                    predicted.to_string(),
                    c.interps.to_string(),
                    fmt_f(c.bytes as f64 / m as f64),
                    (n * k_bytes).to_string(),
                ],
            );
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_shapes_hold() {
        let n = 7;
        let t = 1;
        let small = measure(n, t, 1, &[1], 1);
        let large = measure(n, t, 256, &[1], 2);
        assert_eq!(small.rounds, 3, "Lemma 6: three rounds");
        assert_eq!(large.rounds, 3);
        assert_eq!(large.interps, 2, "Lemma 6: two interpolations");
        // Per-coin bytes fall toward the dealing term n·k as M grows.
        let per_coin_small = small.bytes as f64;
        let per_coin_large = large.bytes as f64 / 256.0;
        assert!(
            per_coin_large < per_coin_small / 5.0,
            "amortization: {per_coin_large} vs {per_coin_small}"
        );
        // And approach the Corollary-2 floor of ~n·k bits (n·4 bytes,
        // within ~2× for the beta/expose remnants).
        assert!(per_coin_large < (n * 4) as f64 * 3.0);
    }

    #[test]
    fn e3_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("M=64"));
    }
}
