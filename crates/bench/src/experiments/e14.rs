//! E14 — committee-sampled Coin-Gen at `n` in the low hundreds.
//!
//! The full Fig. 5 pipeline is all-to-all: at `n` in the hundreds its
//! message complexity (and the clique/grade-cast/BA layers) make direct
//! execution impractical. Here a committee of size `c ≪ n` — elected
//! from a prior beacon output, self-referential exactly like the §5
//! bootstrap — runs Coin-Gen among themselves and broadcasts the coin
//! batch outward; outsiders accept once `t_c + 1` distinct members
//! report the identical batch ([`CommitteeCoin`]).
//!
//! Soundness becomes statistical in the election: the committee is a
//! hypergeometric sample of the `n` parties, and the committee's own
//! `t_c = ⌊(c−1)/6⌋` tolerance is exceeded only if more than `t_c` of
//! the `c` seats land on corrupted parties. The table reports that tail
//! probability ([`committee_soundness_error`], at the global p2p-model
//! budget `f = ⌊(n−1)/6⌋`) next to the empirical quorum success rate
//! with its Wilson 95% CI, plus the usual per-player cost columns.
//!
//! Elections chain: each trial's committee is seeded from the previous
//! trial's first delivered coin, mirroring how a deployed beacon would
//! re-elect from its own output stream.
//!
//! Before any numbers are recorded, trial 0 of every row is run on both
//! executors ([`StepRunner`] and [`ParRunner`]) and asserted identical —
//! outputs and cost report.

use std::mem;

use dprbg_core::{
    committee_soundness_error, committee_threshold, elect_committee, CoinGenConfig,
    CommitteeCoin, CommitteeError, CommitteeMsg, Params,
};
use dprbg_field::Field;
use dprbg_metrics::{CostReport, Table};
use dprbg_sim::{BoxedMachine, ParRunner, PartyId, StepRunner};

use super::common::{seed_wallets, ExperimentCtx, PlayerCost, F32};
use crate::harness::wilson_interval;

type Out = Result<Vec<F32>, CommitteeError>;

/// Round backstop for the outsiders' collect stage (a healthy committee
/// finishes far earlier).
const DEADLINE: u64 = 400;

/// A full fleet for one committee run: members with rank-dealt wallets,
/// outsiders idle-collecting.
fn fleet(
    n: usize,
    committee: &[PartyId],
    cfg: CoinGenConfig,
    wallet_seed: u64,
) -> Vec<BoxedMachine<CommitteeMsg<F32>, Out>> {
    let c = committee.len();
    let t_c = committee_threshold(c);
    let mut wallets = seed_wallets::<F32>(c, t_c, 4 + t_c, wallet_seed);
    (1..=n)
        .map(|id| {
            let wallet = committee
                .iter()
                .position(|&m| m == id)
                .map(|rank| mem::take(&mut wallets[rank]));
            Box::new(CommitteeCoin::new(committee.to_vec(), id, cfg, wallet, DEADLINE))
                as BoxedMachine<CommitteeMsg<F32>, _>
        })
        .collect()
}

/// One committee-sampled Coin-Gen trial at `(n, c)`, on the chosen
/// executor.
fn run_trial(
    n: usize,
    c: usize,
    m: usize,
    election_seed: u64,
    run_seed: u64,
    parallel: bool,
) -> (Vec<Option<Out>>, CostReport) {
    let committee = elect_committee(election_seed, n, c);
    let cfg = CoinGenConfig {
        params: Params::p2p_model(c, committee_threshold(c)).expect("c > 6 t_c by construction"),
        batch_size: m,
    };
    let machines = fleet(n, &committee, cfg, run_seed ^ 0xA11E7);
    let res = if parallel {
        ParRunner::new(n, run_seed).with_threads(4).run(machines)
    } else {
        StepRunner::new(n, run_seed).run(machines)
    };
    (res.outputs, res.report)
}

/// Did every party (member and outsider alike) deliver the same batch?
fn unanimous(outs: &[Option<Out>]) -> Option<Vec<F32>> {
    let first = outs.first()?.as_ref()?.as_ref().ok()?.clone();
    outs.iter()
        .all(|o| matches!(o, Some(Ok(v)) if *v == first))
        .then_some(first)
}

/// Run E14 and render its table.
///
/// # Panics
///
/// If trial 0 of any row diverges between the stepped and the parallel
/// executor, or if no trial at all reaches quorum (the empirical column
/// would be meaningless).
pub fn run(ctx: &ExperimentCtx) -> Table {
    let m = if ctx.quick { 4 } else { 8 };
    let trials = if ctx.quick { 3 } else { 8 };
    let mut table = Table::new(
        &format!(
            "E14: committee-sampled Coin-Gen, batch M={m}, {trials} chained elections/row \
             (sampling soundness vs Wilson CI)"
        ),
        &["c", "t_c", "f", "sample err", "quorum", "95% CI", "msgs", "bytes", "rounds"],
    );
    for &(n, c) in ctx.sweep(&[(129usize, 31usize), (201, 31)], &[(129, 31)]) {
        let t_c = committee_threshold(c);
        let f = (n - 1) / 6;
        let eps = committee_soundness_error(n, f, c, t_c);

        // Executor parity on trial 0, before anything is recorded.
        let seed0 = ctx.seed ^ 0xE14 ^ n as u64;
        let (outs_s, report_s) = run_trial(n, c, m, seed0, seed0 + 1, false);
        let (outs_p, report_p) = run_trial(n, c, m, seed0, seed0 + 1, true);
        assert_eq!(outs_s, outs_p, "n={n}: ParRunner outputs diverged from StepRunner");
        assert_eq!(report_s, report_p, "n={n}: cost reports diverged between executors");

        let mut successes = 0;
        let mut election_seed = seed0;
        let mut cost: Option<PlayerCost> = None;
        for trial in 0..trials {
            let (outs, report) =
                run_trial(n, c, m, election_seed, seed0 + 1 + trial as u64, false);
            if let Some(batch) = unanimous(&outs) {
                successes += 1;
                // Self-referential re-election: next committee from this
                // trial's first delivered coin.
                election_seed = batch[0].to_u64() ^ (election_seed.rotate_left(17));
            } else {
                election_seed = election_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
            }
            if cost.is_none() {
                cost = Some(PlayerCost::from_report(&report));
            }
        }
        assert!(successes > 0, "n={n}: no trial reached quorum");
        let (lo, hi) = wilson_interval(successes, trials, 1.96);
        let cost = cost.expect("at least one trial ran");
        table.row(
            &format!("committee n={n:<3}"),
            &[
                c.to_string(),
                t_c.to_string(),
                f.to_string(),
                format!("{eps:.2e}"),
                format!("{successes}/{trials}"),
                format!("[{lo:.3}, {hi:.3}]"),
                cost.messages.to_string(),
                cost.bytes.to_string(),
                cost.rounds.to_string(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_renders_with_parity_and_quorum() {
        // `run` itself asserts executor parity and quorum success.
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("committee n=129"));
        assert!(s.contains("E14"));
    }

    #[test]
    fn sampling_error_shrinks_as_committee_grows() {
        // When the corruption ratio f/n sits strictly below the
        // committee's own tolerance ratio t_c/c, a larger committee is a
        // safer sample: the tail probability must shrink with c. (At a
        // matched ratio the sample mean rides the threshold and no such
        // concentration exists — that regime is what the table's
        // side-by-side ε column is for.)
        let n = 129;
        let f = n / 10;
        let small = committee_soundness_error(n, f, 7, committee_threshold(7));
        let large = committee_soundness_error(n, f, 31, committee_threshold(31));
        assert!(large < small, "c=31 gave {large}, c=7 gave {small}");
    }
}
