//! E12 — empirical soundness-error rates under adaptive adversaries.
//!
//! Theorem 1 and Lemmas 1/3/5 promise that as long as at most `t`
//! parties are corrupted and the §2/§3 model holds, honest parties never
//! *disagree* — runs end in unanimous success or (under crash pressure)
//! explicit, unanimous failure. This experiment measures that promise
//! empirically: a seeded chaos campaign sweeps every attack strategy of
//! [`dprbg_sim::AdaptiveAdversary`] over Bit-Gen, Coin-Gen, Batch-VSS
//! and the proactive refresh, classifying each episode as agreed /
//! gracefully-aborted / unsound and reporting Wilson-score confidence
//! intervals on the unsound rate.
//!
//! Two legs:
//!
//! * **within model, `f ≤ t`** — every strategy the model admits. The
//!   table must show zero unsound episodes; the CI column is the
//!   statistical strength of that zero.
//! * **beyond threshold** — `f > t` crash/eclipse/chaos pressure, plus
//!   the deliberately model-breaking [`Attack::BreakBroadcast`] against
//!   a strict-mode Batch-VSS. At least one of these rows must show
//!   non-agreed outcomes: the harness can *reach* the failure verdicts,
//!   so the zeroes above are evidence, not vacuity.
//!
//! Every episode is replayable from `(master seed, strategy, schedule)`
//! alone, on either executor — the campaign spot-checks a work-stealing
//! ([`dprbg_sim::ParRunner`]) replay per strategy.

use dprbg_core::VssMode;
use dprbg_metrics::Table;
use dprbg_sim::Attack;

use super::common::ExperimentCtx;
use crate::chaos::{
    episode_seed, run_campaign, run_episode, CampaignStats, Executor, Protocol, Schedule,
};

const N: usize = 7;
const T: usize = 1;
const M: usize = 4;

/// Every strategy the §2/§3 model admits (compare
/// [`Attack::within_model`]).
const WITHIN_MODEL: [Attack; 6] = [
    Attack::LeaderEclipse,
    Attack::DealerDelay { delay: 2 },
    Attack::Equivocate,
    Attack::CrashAtRound { round: 3 },
    Attack::RandomChaos { drop_pct: 20, delay_pct: 20, max_delay: 2 },
    Attack::Partition { until_round: 2 },
];

fn fmt_ci((lo, hi): (f64, f64)) -> String {
    format!("[{lo:.3}, {hi:.3}]")
}

fn stats_row(table: &mut Table, label: &str, f: usize, stats: &CampaignStats) {
    table.row(
        label,
        &[
            f.to_string(),
            stats.episodes.to_string(),
            stats.agreed.to_string(),
            stats.aborted.to_string(),
            stats.unsound.to_string(),
            fmt_ci(stats.unsound_ci(1.96)),
        ],
    );
}

/// Run the campaign and render both legs.
///
/// # Panics
///
/// If a within-model strategy at `f ≤ t` produces an unsound episode, if
/// every beyond-threshold strategy still fully agrees, or if an episode
/// fails to replay identically on the parallel executor — each of these
/// is a soundness regression somewhere in the stack.
pub fn run(ctx: &ExperimentCtx) -> Vec<Table> {
    let per_cell = if ctx.quick { 2 } else { 9 };
    let mut tables = Vec::new();

    // Leg 1: within the model, f ≤ t.
    let mut within = Table::new(
        &format!(
            "E12 — soundness under adaptive adversaries, within model \
             (n={N}, t={T}, f=1, {} episodes/cell)",
            per_cell
        ),
        &["f", "episodes", "agreed", "aborted", "unsound", "unsound 95% CI"],
    );
    let mut totals = CampaignStats::default();
    for attack in WITHIN_MODEL {
        for protocol in Protocol::ALL {
            let s = Schedule::new(N, T, 1, M, attack);
            let master = ctx.seed ^ 0xE12;
            let stats = run_campaign(protocol, &s, per_cell, master, Executor::Stepped);
            totals.episodes += stats.episodes;
            totals.agreed += stats.agreed;
            totals.aborted += stats.aborted;
            totals.unsound += stats.unsound;
            stats_row(
                &mut within,
                &format!("{}/{}", protocol.name(), attack.name()),
                s.f,
                &stats,
            );
            // Replay spot-check: episode 0 must be identical under the
            // work-stealing executor.
            let seed0 = episode_seed(master, 0);
            assert_eq!(
                run_episode(protocol, &s, seed0, Executor::Stepped),
                run_episode(protocol, &s, seed0, Executor::Parallel),
                "{}/{} episode 0 diverged between executors",
                protocol.name(),
                attack.name()
            );
        }
    }
    assert_eq!(
        totals.unsound, 0,
        "within-model adversary at f <= t produced an unsound episode"
    );
    stats_row(&mut within, "TOTAL (all strategies)", 1, &totals);
    tables.push(within);

    // Leg 2: beyond the threshold / beyond the model.
    let mut beyond = Table::new(
        &format!("E12 — beyond-threshold and beyond-model legs (n={N}, t={T})"),
        &["f", "episodes", "agreed", "aborted", "unsound", "unsound 95% CI"],
    );
    let mut non_agreed = 0;
    let overload: [(Protocol, Schedule); 4] = [
        (Protocol::CoinGen, Schedule::new(N, T, 3, M, Attack::CrashAtRound { round: 2 })),
        (Protocol::CoinGen, Schedule::new(N, T, 3, M, Attack::LeaderEclipse)),
        (
            Protocol::CoinGen,
            Schedule::new(
                N,
                T,
                3,
                M,
                Attack::RandomChaos { drop_pct: 35, delay_pct: 25, max_delay: 2 },
            ),
        ),
        (Protocol::BatchVss, {
            let mut s = Schedule::new(N, T, 1, M, Attack::BreakBroadcast);
            s.vss_mode = VssMode::Strict;
            s
        }),
    ];
    for (protocol, s) in overload {
        let stats = run_campaign(protocol, &s, per_cell, ctx.seed ^ 0xBAD, Executor::Stepped);
        non_agreed += stats.aborted + stats.unsound;
        let label = if s.attack.within_model() {
            format!("{}/{}", protocol.name(), s.attack.name())
        } else {
            format!("{}/{} (beyond model)", protocol.name(), s.attack.name())
        };
        stats_row(&mut beyond, &label, s.f, &stats);
    }
    assert!(
        non_agreed > 0,
        "beyond-threshold adversaries produced no failures — the harness detects nothing"
    );
    tables.push(beyond);
    tables
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::Outcome;

    #[test]
    fn e12_quick_runs_and_holds_its_invariants() {
        // `run` itself asserts the zero-unsound and failure-reachable
        // invariants; rendering exercises the table plumbing.
        let tables = run(&ExperimentCtx::new(true));
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert!(t.render().contains("E12"));
        }
    }

    #[test]
    fn break_broadcast_leg_is_unsound_every_time() {
        let mut s = Schedule::new(N, T, 1, M, Attack::BreakBroadcast);
        s.vss_mode = VssMode::Strict;
        for i in 0..3u64 {
            let ep = run_episode(
                Protocol::BatchVss,
                &s,
                episode_seed(0xB0B, i),
                Executor::Stepped,
            );
            assert_eq!(ep.outcome, Outcome::Unsound);
        }
    }
}
