//! E7 — Bootstrapping: steady-state cost and self-sufficiency (Fig. 1,
//! §1.2).
//!
//! Paper claims: with bootstrapping, "the cost of the initial seed can
//! now effectively be neglected" — the long-run cost per delivered coin
//! converges to the generator's amortized cost, and the source is
//! self-sufficient ("our method is self-sufficient once it gets kicked
//! off"), with coins "generated in batches, according to need" under a
//! constant low-water trigger.
//!
//! The experiment drives a beacon for many epochs as a [`RoundMachine`]
//! on the single-threaded [`StepRunner`], recording per-window
//! cost/coin (computation in multiplications and communication in
//! bytes, including the refills that fall in the window) and reservoir
//! levels: the early windows pay generation spikes, the running average
//! settles, and the reservoir never dries up. Window costs come from
//! the executor's deterministic trace — each window is a span of
//! synchronous rounds, and the party-1 per-round cost deltas recorded
//! by `dprbg-trace` sum to exactly the window's share of the ledger.

use dprbg_core::{
    BootstrapConfig, CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, ExposeMachine,
    ExposeVia, Params,
};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, RoundMachine, RoundView, Step, StepRunner, TraceConfig};
use dprbg_trace::EventKind;

use super::common::{fmt_f, seed_wallets, ExperimentCtx, F32};

/// Per-window measurements of the beacon at party 1.
#[derive(Debug, Clone)]
pub struct WindowTrace {
    /// Draws in this window.
    pub draws: usize,
    /// Party-1 multiplications during the window.
    pub muls: u64,
    /// Party-1 payload bytes sent during the window.
    pub bytes: u64,
    /// Refills that ran during the window.
    pub refills: usize,
    /// Reservoir level at the window's end.
    pub level: usize,
}

/// What the beacon machine itself observes per window; costs are filled
/// in afterwards from the executor's trace via the round span.
#[derive(Debug, Clone)]
struct WindowRecord {
    draws: usize,
    refills: usize,
    level: usize,
    /// First synchronous round attributed to this window (inclusive).
    start_round: u64,
    /// Last synchronous round attributed to this window (inclusive).
    end_round: u64,
}

/// The Fig. 1 reservoir as a round machine: draw coins one expose at a
/// time, running a full Coin-Gen refill whenever a draw would leave the
/// reservoir at or below the low-water mark — the machine-level twin of
/// `Bootstrap::draw` driven in a loop.
struct BeaconMachine {
    cfg: BootstrapConfig,
    windows: usize,
    per: usize,
    window: usize,
    draws_in_window: usize,
    refills_in_window: usize,
    round_idx: u64,
    window_start: u64,
    records: Vec<WindowRecord>,
    stage: Stage,
}

enum Stage {
    Idle(CoinWallet<F32>),
    Refill(CoinGenMachine<CoinGenMsg<F32>, F32>),
    Expose { expose: ExposeMachine<CoinGenMsg<F32>, F32>, wallet: CoinWallet<F32> },
    Finished,
}

impl BeaconMachine {
    fn new(cfg: BootstrapConfig, wallet: CoinWallet<F32>, windows: usize, per: usize) -> Self {
        BeaconMachine {
            cfg,
            windows,
            per,
            window: 0,
            draws_in_window: 0,
            refills_in_window: 0,
            round_idx: 0,
            window_start: 0,
            records: Vec::new(),
            stage: Stage::Idle(wallet),
        }
    }

    /// Start the next draw: refill first if the reservoir is at or below
    /// low water (Fig. 1's adaptive trigger), else expose the next coin.
    fn begin_draw(
        &mut self,
        wallet: CoinWallet<F32>,
        view: &mut RoundView<'_, CoinGenMsg<F32>>,
    ) -> Step<CoinGenMsg<F32>, Vec<WindowRecord>> {
        if wallet.len() <= self.cfg.low_water {
            let mut cg = CoinGenMachine::new(self.cfg.coin_gen, wallet);
            let Step::Continue(out) = cg.round(view.reborrow()) else {
                unreachable!("coin generation cannot finish before it sends");
            };
            self.stage = Stage::Refill(cg);
            Step::Continue(out)
        } else {
            self.expose_next(wallet, view)
        }
    }

    fn expose_next(
        &mut self,
        mut wallet: CoinWallet<F32>,
        view: &mut RoundView<'_, CoinGenMsg<F32>>,
    ) -> Step<CoinGenMsg<F32>, Vec<WindowRecord>> {
        let share = wallet.pop().expect("reservoir refilled above low water");
        let t = self.cfg.coin_gen.params.t;
        let mut expose = ExposeMachine::new(share, t, ExposeVia::PointToPoint);
        let Step::Continue(out) = expose.round(view.reborrow()) else {
            unreachable!("coin expose sends before it can decode");
        };
        self.stage = Stage::Expose { expose, wallet };
        Step::Continue(out)
    }

    /// One coin fully exposed: close the window when it is full, finish
    /// after the last window, otherwise start the next draw immediately.
    fn draw_done(
        &mut self,
        wallet: CoinWallet<F32>,
        view: &mut RoundView<'_, CoinGenMsg<F32>>,
    ) -> Step<CoinGenMsg<F32>, Vec<WindowRecord>> {
        self.draws_in_window += 1;
        if self.draws_in_window == self.per {
            self.records.push(WindowRecord {
                draws: self.per,
                refills: self.refills_in_window,
                level: wallet.len(),
                start_round: self.window_start,
                end_round: self.round_idx,
            });
            self.window += 1;
            self.draws_in_window = 0;
            self.refills_in_window = 0;
            self.window_start = self.round_idx + 1;
            if self.window == self.windows {
                return Step::Done(std::mem::take(&mut self.records));
            }
        }
        self.begin_draw(wallet, view)
    }
}

impl RoundMachine<CoinGenMsg<F32>> for BeaconMachine {
    type Output = Vec<WindowRecord>;

    fn round(
        &mut self,
        mut view: RoundView<'_, CoinGenMsg<F32>>,
    ) -> Step<CoinGenMsg<F32>, Self::Output> {
        let step = match std::mem::replace(&mut self.stage, Stage::Finished) {
            Stage::Idle(wallet) => self.begin_draw(wallet, &mut view),
            Stage::Refill(mut cg) => match cg.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = Stage::Refill(cg);
                    Step::Continue(out)
                }
                Step::Done((mut wallet, res)) => {
                    let batch = res.expect("refill coin generation succeeds");
                    self.refills_in_window += 1;
                    wallet.extend(batch.shares);
                    self.expose_next(wallet, &mut view)
                }
            },
            Stage::Expose { mut expose, wallet } => match expose.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = Stage::Expose { expose, wallet };
                    Step::Continue(out)
                }
                Step::Done(res) => {
                    res.expect("coin expose succeeds");
                    self.draw_done(wallet, &mut view)
                }
            },
            Stage::Finished => panic!("BeaconMachine driven past completion"),
        };
        self.round_idx += 1;
        step
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            Stage::Idle(_) => "beacon/draw",
            Stage::Refill(cg) => cg.phase_name(),
            Stage::Expose { expose, .. } => expose.phase_name(),
            Stage::Finished => "beacon/finished",
        }
    }
}

/// Run the beacon for `windows × draws_per_window` draws; returns the
/// per-window trace (identical at every honest party), with window
/// costs attributed from the executor's party-1 round spans.
pub fn trace(
    n: usize,
    t: usize,
    batch: usize,
    windows: usize,
    draws_per_window: usize,
    seed: u64,
) -> Vec<WindowTrace> {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: batch });
    let mut wallets = seed_wallets::<F32>(n, t, 6, seed);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, Vec<WindowRecord>>> = (0..n)
        .map(|_| {
            Box::new(BeaconMachine::new(cfg, wallets.remove(0), windows, draws_per_window))
                as BoxedMachine<CoinGenMsg<F32>, Vec<WindowRecord>>
        })
        .collect();
    let mut res = StepRunner::new(n, seed).with_trace(TraceConfig::full()).run(machines);
    let events = res.trace.take().expect("traced run records a trace").events;
    let records = res.unwrap_all().remove(0);
    records
        .into_iter()
        .map(|rec| {
            let (mut muls, mut bytes) = (0u64, 0u64);
            for ev in &events {
                if ev.party == 1 && ev.round >= rec.start_round && ev.round <= rec.end_round {
                    if let EventKind::End { cost } = &ev.kind {
                        muls += cost.field_muls;
                        bytes += cost.bytes;
                    }
                }
            }
            WindowTrace { draws: rec.draws, muls, bytes, refills: rec.refills, level: rec.level }
        })
        .collect()
}

/// Run E7 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let n = 7;
    let t = 1;
    let batch = 24;
    let (windows, per) = if ctx.quick { (6, 20) } else { (12, 50) };
    let tr = trace(n, t, batch, windows, per, ctx.seed);
    let mut table = Table::new(
        &format!(
            "E7: bootstrapped beacon, n={n} t={t} M={batch}, {per} draws/window (Fig. 1) — party-1 view"
        ),
        &["draws", "refills", "muls/coin", "bytes/coin", "reservoir"],
    );
    let mut cum_muls = 0u64;
    let mut cum_bytes = 0u64;
    let mut cum_draws = 0usize;
    for (i, w) in tr.iter().enumerate() {
        cum_muls += w.muls;
        cum_bytes += w.bytes;
        cum_draws += w.draws;
        table.row(
            &format!("window {:>2}", i + 1),
            &[
                w.draws.to_string(),
                w.refills.to_string(),
                fmt_f(w.muls as f64 / w.draws as f64),
                fmt_f(w.bytes as f64 / w.draws as f64),
                w.level.to_string(),
            ],
        );
    }
    table.row(
        "running avg",
        &[
            cum_draws.to_string(),
            "-".into(),
            fmt_f(cum_muls as f64 / cum_draws as f64),
            fmt_f(cum_bytes as f64 / cum_draws as f64),
            "-".into(),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_self_sufficiency_and_steady_state() {
        let tr = trace(7, 1, 24, 8, 25, 1);
        // Never dries up.
        assert!(tr.iter().all(|w| w.level > 0), "reservoir must never empty");
        // Refills happen (the seed was only 6 coins for 200 draws).
        let total_refills: usize = tr.iter().map(|w| w.refills).sum();
        assert!(total_refills >= 5);
        // Steady state: the last windows' per-coin cost stays within a
        // small factor of the overall average (no runaway growth).
        let avg = |w: &WindowTrace| w.bytes as f64 / w.draws as f64;
        let overall: f64 = tr.iter().map(avg).sum::<f64>() / tr.len() as f64;
        let last = avg(tr.last().unwrap());
        assert!(
            last < overall * 3.0 + 1.0,
            "late-window cost {last} vs average {overall}"
        );
    }

    #[test]
    fn e7_window_costs_cover_the_whole_run() {
        // The window spans partition the rounds, so window costs must be
        // positive wherever work happened and every window pays at least
        // the expose traffic of its own draws.
        let tr = trace(7, 1, 24, 4, 25, 2);
        assert!(tr.iter().all(|w| w.bytes > 0), "every window sends expose traffic");
        assert!(tr.iter().any(|w| w.refills > 0 && w.muls > 0), "refill windows pay generation");
    }

    #[test]
    fn e7_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("running avg"));
    }
}
