//! E7 — Bootstrapping: steady-state cost and self-sufficiency (Fig. 1,
//! §1.2).
//!
//! Paper claims: with bootstrapping, "the cost of the initial seed can
//! now effectively be neglected" — the long-run cost per delivered coin
//! converges to the generator's amortized cost, and the source is
//! self-sufficient ("our method is self-sufficient once it gets kicked
//! off"), with coins "generated in batches, according to need" under a
//! constant low-water trigger.
//!
//! The experiment drives a beacon for many epochs, recording per-window
//! cost/coin (computation in multiplications and communication in bytes,
//! including the refills that fall in the window) and reservoir levels:
//! the early windows pay generation spikes, the running average settles,
//! and the reservoir never dries up.

use dprbg_core::{Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, Params};
use dprbg_metrics::{CostSnapshot, Table};
// lint: allow-file(transport) — E7 still runs on the threaded shim; StepRunner port is tracked in ROADMAP ("StepRunner-first E-series")
use dprbg_sim::{run_network, Behavior, PartyCtx};

use super::common::{fmt_f, seed_wallets, ExperimentCtx, F32};

/// Per-window measurements of the beacon at party 1.
#[derive(Debug, Clone)]
pub struct WindowTrace {
    /// Draws in this window.
    pub draws: usize,
    /// Whole-network multiplications during the window.
    pub muls: u64,
    /// Whole-network bytes during the window.
    pub bytes: u64,
    /// Refills that ran during the window.
    pub refills: usize,
    /// Reservoir level at the window's end.
    pub level: usize,
}

/// Run the beacon for `windows × draws_per_window` draws; returns the
/// per-window trace (identical at every honest party).
pub fn trace(
    n: usize,
    t: usize,
    batch: usize,
    windows: usize,
    draws_per_window: usize,
    seed: u64,
) -> Vec<WindowTrace> {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig { params, batch_size: batch });
    let mut wallets = seed_wallets::<F32>(n, t, 6, seed);
    let behaviors: Vec<Behavior<CoinGenMsg<F32>, Vec<WindowTrace>>> = (0..n)
        .map(|_| {
            let mut beacon = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(move |ctx: &mut PartyCtx<CoinGenMsg<F32>>| {
                let mut out = Vec::new();
                let mut prev_refills = 0usize;
                for _ in 0..windows {
                    let before = CostSnapshot::capture();
                    for _ in 0..draws_per_window {
                        beacon.draw(ctx).expect("beacon never dries up");
                    }
                    let cost = CostSnapshot::capture().since(&before);
                    let s = beacon.stats();
                    out.push(WindowTrace {
                        draws: draws_per_window,
                        muls: cost.field_muls,
                        bytes: cost.bytes,
                        refills: s.refills - prev_refills,
                        level: beacon.level(),
                    });
                    prev_refills = s.refills;
                }
                out
            }) as Behavior<_, _>
        })
        .collect();
    // The per-window cost snapshot above is party-local; aggregate the
    // *party-1* trace (costs are symmetric across honest parties).
    run_network(n, seed, behaviors).unwrap_all().remove(0)
}

/// Run E7 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let n = 7;
    let t = 1;
    let batch = 24;
    let (windows, per) = if ctx.quick { (6, 20) } else { (12, 50) };
    let tr = trace(n, t, batch, windows, per, ctx.seed);
    let mut table = Table::new(
        &format!(
            "E7: bootstrapped beacon, n={n} t={t} M={batch}, {per} draws/window (Fig. 1) — party-1 view"
        ),
        &["draws", "refills", "muls/coin", "bytes/coin", "reservoir"],
    );
    let mut cum_muls = 0u64;
    let mut cum_bytes = 0u64;
    let mut cum_draws = 0usize;
    for (i, w) in tr.iter().enumerate() {
        cum_muls += w.muls;
        cum_bytes += w.bytes;
        cum_draws += w.draws;
        table.row(
            &format!("window {:>2}", i + 1),
            &[
                w.draws.to_string(),
                w.refills.to_string(),
                fmt_f(w.muls as f64 / w.draws as f64),
                fmt_f(w.bytes as f64 / w.draws as f64),
                w.level.to_string(),
            ],
        );
    }
    table.row(
        "running avg",
        &[
            cum_draws.to_string(),
            "-".into(),
            fmt_f(cum_muls as f64 / cum_draws as f64),
            fmt_f(cum_bytes as f64 / cum_draws as f64),
            "-".into(),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_self_sufficiency_and_steady_state() {
        let tr = trace(7, 1, 24, 8, 25, 1);
        // Never dries up.
        assert!(tr.iter().all(|w| w.level > 0), "reservoir must never empty");
        // Refills happen (the seed was only 6 coins for 200 draws).
        let total_refills: usize = tr.iter().map(|w| w.refills).sum();
        assert!(total_refills >= 5);
        // Steady state: the last windows' per-coin cost stays within a
        // small factor of the overall average (no runaway growth).
        let avg = |w: &WindowTrace| w.bytes as f64 / w.draws as f64;
        let overall: f64 = tr.iter().map(avg).sum::<f64>() / tr.len() as f64;
        let last = avg(tr.last().unwrap());
        assert!(
            last < overall * 3.0 + 1.0,
            "late-window cost {last} vs average {overall}"
        );
    }

    #[test]
    fn e7_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("running avg"));
    }
}
