//! E8 — The field-arithmetic crossover (§2).
//!
//! Paper claims: the specially constructed GF(q^l) supports `O(k log k)`
//! multiplication via DFTs, but "in practice, when k is small, working
//! over GF(2^k) with the naive O(k²) multiplication is faster than
//! working over our special field with the O(k log k) multiplication,
//! because of the sizes of the constants involved. So an implementation
//! should be careful about which method it uses."
//!
//! This experiment times all three multiplications at matched field
//! sizes — naive GF(2^k), schoolbook GF(q^l), and DFT GF(q^l) — and
//! reports ns/multiplication, locating (a) the GF(2^k)-vs-GF(q^l)
//! crossover the paper warns about and (b) the naive-vs-DFT crossover
//! inside GF(q^l) itself.

use std::time::Instant;

use dprbg_field::{clmul, Field, Gf2k, GfQlParams};
use dprbg_metrics::Table;
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};

use super::common::{fmt_f, ExperimentCtx};

/// Time `iters` dependent GF(2^k) multiplications; returns ns/mul.
fn time_gf2k<const K: usize>(iters: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Gf2k::<K>::random(&mut rng);
    let y = {
        // Avoid a zero multiplier collapsing the chain.
        let v = Gf2k::<K>::random(&mut rng);
        if v.is_zero() {
            Gf2k::<K>::one()
        } else {
            v
        }
    };
    let start = Instant::now();
    for _ in 0..iters {
        x *= y;
    }
    let elapsed = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(x);
    elapsed
}

/// Time `iters` dependent GF(q^l) multiplications; returns ns/mul for
/// `(naive, fft)`.
fn time_gfql(f: &GfQlParams, iters: usize, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let y = f.random(&mut rng);
    let mut x = f.random(&mut rng);
    let start = Instant::now();
    for _ in 0..iters {
        x = f.mul_naive(&x, &y);
    }
    let naive = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(&x);
    let mut x = f.random(&mut rng);
    let start = Instant::now();
    for _ in 0..iters {
        x = f.mul_fft(&x, &y);
    }
    let fft = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(&x);
    (naive, fft)
}

/// Run E8 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let iters = if ctx.quick { 20_000 } else { 200_000 };
    let mut table = Table::new(
        &format!("E8: multiplication cost, ns/mul over {iters} dependent muls (§2 crossover)"),
        &["~bits", "GF(2^k) naive", "GF(q^l) naive", "GF(q^l) DFT", "DFT wins?"],
    );
    // Matched-size pairs: (GF(2^k) timer, GF(q^l) params, label).
    let rows: Vec<(&str, f64, GfQlParams)> = vec![
        ("k=16", time_gf2k::<16>(iters, ctx.seed), GfQlParams::new(17, 4).unwrap()),
        ("k=32", time_gf2k::<32>(iters, ctx.seed + 1), GfQlParams::new(17, 8).unwrap()),
        ("k=64", time_gf2k::<64>(iters, ctx.seed + 2), GfQlParams::new(97, 16).unwrap()),
    ];
    for (label, gf2k_ns, params) in rows {
        let (naive, fft) = time_gfql(&params, iters / 4, ctx.seed + 7);
        table.row(
            &format!("{label} | GF({}^{})", params.q(), params.l()),
            &[
                params.bits().to_string(),
                fmt_f(gf2k_ns),
                fmt_f(naive),
                fmt_f(fft),
                (fft < naive).to_string(),
            ],
        );
    }
    // Large extension degrees: the asymptotic regime where the DFT pays.
    for (q, l) in [(193u64, 32usize), (769, 64)] {
        let params = GfQlParams::new(q, l).unwrap();
        let (naive, fft) = time_gfql(&params, iters / 8, ctx.seed + 9);
        table.row(
            &format!("      GF({q}^{l})"),
            &[
                params.bits().to_string(),
                "-".into(),
                fmt_f(naive),
                fmt_f(fft),
                (fft < naive).to_string(),
            ],
        );
    }
    // The GF(2^k) column above goes through the runtime-dispatched
    // carry-less multiply; record which backend ran and check it against
    // the portable reference ladder so the crossover numbers are never
    // silently measuring a broken accelerator.
    let mut rng = StdRng::seed_from_u64(ctx.seed + 11);
    let parity = (0..4096).all(|_| {
        let (a, b) = (rng.random(), rng.random());
        clmul::clmul(a, b) == clmul::clmul_portable(a, b)
    });
    table.row(
        &format!("clmul backend: {}", clmul::backend_name()),
        &[
            "-".into(),
            if parity { "backend parity OK".into() } else { "BACKEND MISMATCH".into() },
            "-".into(),
            "-".into(),
            "-".into(),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_small_k_prefers_gf2k() {
        // The paper's practical remark: naive GF(2^k) beats the special
        // field at small k by a wide margin.
        let gf2k = time_gf2k::<32>(50_000, 1);
        let f = GfQlParams::new(17, 8).unwrap();
        let (naive, fft) = time_gfql(&f, 10_000, 2);
        assert!(
            gf2k < naive && gf2k < fft,
            "GF(2^32): {gf2k:.1} ns vs GF(17^8) naive {naive:.1} / fft {fft:.1}"
        );
    }

    #[test]
    fn e8_large_l_prefers_dft() {
        // The asymptotic side: at l = 64 the O(l log l) DFT beats the
        // O(l^2) schoolbook inside GF(q^l).
        let f = GfQlParams::new(769, 64).unwrap();
        let (naive, fft) = time_gfql(&f, 4_000, 3);
        assert!(
            fft < naive,
            "GF(769^64): fft {fft:.1} ns should beat naive {naive:.1} ns"
        );
    }

    #[test]
    fn e8_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("GF(2^k)"));
        assert!(s.contains("backend parity OK"), "{s}");
    }
}
