//! E6 — Soundness and unanimity error rates (Lemmas 1, 3, 5; Theorem 1).
//!
//! Paper claims:
//! - Lemma 1: a cheating single-VSS dealer survives with probability
//!   ≤ `1/p`;
//! - Lemma 3: a cheating batch dealer (any number of bad polynomials)
//!   survives with probability ≤ `M/p`;
//! - Lemma 5: the same bound for Bit-Gen's point-to-point acceptance;
//! - Theorem 1 / unanimity: with ≤ t corrupted shares the exposed coin is
//!   reconstructed identically by everyone, "unanimous except for a
//!   probability of error less than Mn2^-k".
//!
//! The bounds are only *visible* over a small field, so the soundness
//! trials run over GF(2^8) (`p = 256`) where `M/p` is percent-scale,
//! using the pure verification judgment (no network) for speed; the
//! unanimity trials drive a full [`ExposeMachine`] fleet — one machine
//! per party, corrupted and abstaining parties included — under the
//! single-threaded [`StepRunner`], and a trial fails unless **every**
//! party (Theorem 1 is a statement about all honest players, and a
//! corrupted *share* does not make its holder's decoder dishonest)
//! reconstructs the dealt value.

use dprbg_core::batch_vss::{cheating_batch_deal, judge_batch};
use dprbg_core::{
    CoinError, ExposeMachine, ExposeMsg, ExposeVia, SealedShare, VssMode, VssVerdict,
};
use dprbg_field::{Field, Gf2k};
use dprbg_metrics::Table;
use dprbg_poly::{share_points, share_polynomial, Poly};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;
use dprbg_sim::{BoxedMachine, StepRunner};

use super::common::{fmt_f, ExperimentCtx};

type F8 = Gf2k<8>;

/// Empirical acceptance rate of a cheating batch dealer over GF(2^8).
///
/// `bad_count` of the `m` polynomials have degree t+1; the challenge `r`
/// is drawn after the shares are fixed, exactly the Lemma 1/3 game.
pub fn batch_cheat_rate(n: usize, t: usize, m: usize, bad: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepts = 0usize;
    for _ in 0..trials {
        let shares = cheating_batch_deal::<F8, _>(n, t, m, bad, &mut rng);
        let r = F8::random(&mut rng);
        let pts: Vec<(F8, F8)> = shares
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    F8::element(i as u64 + 1),
                    dprbg_core::horner_combine(&s.alphas, s.gamma, r),
                )
            })
            .collect();
        if judge_batch(&pts, n, t, VssMode::Strict) == VssVerdict::Accept {
            accepts += 1;
        }
    }
    accepts as f64 / trials as f64
}

/// Empirical unanimity-failure rate of Coin-Expose under `corrupt`
/// corrupted and `absent` abstaining parties (expected: zero within the
/// model).
///
/// Each trial runs the full Fig. 6 protocol as an [`ExposeMachine`] per
/// party under the single-threaded [`StepRunner`]: the first `corrupt`
/// parties hold (and send) a random wrong share, the last `absent`
/// parties abstain, and the trial counts as a failure unless every party
/// decodes the dealt value.
pub fn expose_failure_rate(
    n: usize,
    t: usize,
    corrupt: usize,
    absent: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    type Out = Result<F8, CoinError>;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut failures = 0usize;
    for trial in 0..trials {
        let value = F8::random(&mut rng);
        let poly = share_polynomial(value, t, &mut rng);
        let mut shares: Vec<SealedShare<F8>> = share_points(&poly, n)
            .into_iter()
            .map(|s| SealedShare::of(s.y))
            .collect();
        // The first `corrupt` parties hold random wrong shares; the last
        // `absent` parties cannot vouch and send nothing.
        for s in shares.iter_mut().take(corrupt) {
            *s = SealedShare::of(F8::random(&mut rng));
        }
        for s in shares.iter_mut().skip(n - absent) {
            *s = SealedShare::absent();
        }
        let machines: Vec<BoxedMachine<ExposeMsg<F8>, Out>> = shares
            .into_iter()
            .map(|s| {
                Box::new(ExposeMachine::new(s, t, ExposeVia::PointToPoint))
                    as BoxedMachine<ExposeMsg<F8>, Out>
            })
            .collect();
        let res = StepRunner::new(n, seed.wrapping_add(trial as u64)).run(machines);
        if !res.unwrap_all().into_iter().all(|out| out == Ok(value)) {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

/// A cheating single-VSS dealer over GF(2^8) with an adversarially chosen
/// masking polynomial (the literal Lemma-1 game: f and g fixed, then r).
pub fn single_vss_cheat_rate(n: usize, t: usize, trials: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut accepts = 0usize;
    for _ in 0..trials {
        let f = Poly::<F8>::random(t + 1, &mut rng);
        let g = Poly::<F8>::random(t, &mut rng);
        let r = F8::random(&mut rng);
        let pts: Vec<(F8, F8)> = (1..=n as u64)
            .map(|i| {
                let x = F8::element(i);
                (x, f.eval(x) + r * g.eval(x))
            })
            .collect();
        let verdict = match dprbg_poly::interpolate(&pts) {
            Ok(p) if p.degree().is_none_or(|d| d <= t) => VssVerdict::Accept,
            _ => VssVerdict::Reject,
        };
        if verdict == VssVerdict::Accept {
            accepts += 1;
        }
    }
    accepts as f64 / trials as f64
}

/// Run E6 and render its tables.
pub fn run(ctx: &ExperimentCtx) -> Vec<Table> {
    let trials = if ctx.quick { 4_000 } else { 40_000 };
    let n = 4;
    let t = 1;
    let p = 256.0;

    let mut sound = Table::new(
        &format!("E6a: cheating-dealer acceptance over GF(2^8), {trials} trials (Lemmas 1, 3, 5)"),
        &["measured", "paper bound", "within bound"],
    );
    let r1 = single_vss_cheat_rate(n, t, trials, ctx.seed);
    // The degree-(t+1) cheat has a 1/p chance of a zero leading
    // coefficient (not a cheat at all) plus ≤1/p cancellation: bound 2/p.
    sound.row(
        "single VSS (deg t+1)",
        &[
            fmt_f(r1),
            fmt_f(2.0 / p),
            (r1 <= 2.5 / p).to_string(),
        ],
    );
    for &m in ctx.sweep(&[4usize, 16, 64], &[4, 16]) {
        let r = batch_cheat_rate(n, t, m, m, trials, ctx.seed + m as u64);
        // Bad polys sampled with degree ≤ t+1: each has 1/p chance of
        // being accidentally valid; the combination bound is (M+1)/p.
        let bound = (m as f64 + 1.0) / p;
        sound.row(
            &format!("batch M={m} (all bad)"),
            &[fmt_f(r), fmt_f(bound), (r <= bound * 1.6).to_string()],
        );
        let r_one = batch_cheat_rate(n, t, m, 1, trials, ctx.seed + 500 + m as u64);
        sound.row(
            &format!("batch M={m} (1 bad)"),
            &[fmt_f(r_one), fmt_f(2.0 / p), (r_one <= 3.0 / p).to_string()],
        );
    }

    let mut unan = Table::new(
        &format!("E6b: Coin-Expose unanimity failures, {trials} trials (Theorem 1)"),
        &["failure rate", "expected"],
    );
    for &(n2, t2, c, a) in &[(7usize, 1usize, 1usize, 0usize), (7, 1, 1, 1), (13, 2, 2, 2)] {
        let r = expose_failure_rate(n2, t2, c, a, trials / 4, ctx.seed + (n2 + c) as u64);
        unan.row(
            &format!("n={n2:<2} t={t2} corrupt={c} absent={a}"),
            &[fmt_f(r), "0".into()],
        );
    }
    // Beyond the model: t+1 corruptions — decode should now fail or err
    // visibly (never silently wrong), reported for context.
    let r_over = expose_failure_rate(7, 1, 2, 0, trials / 4, ctx.seed + 999);
    unan.row(
        "n=7  t=1 corrupt=2 (beyond bound)",
        &[fmt_f(r_over), "> 0 (out of model)".into()],
    );

    vec![sound, unan]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_soundness_within_bounds() {
        let trials = 3_000;
        let r1 = single_vss_cheat_rate(4, 1, trials, 1);
        assert!(r1 <= 3.0 / 256.0, "single VSS cheat rate {r1}");
        let r16 = batch_cheat_rate(4, 1, 16, 16, trials, 2);
        assert!(r16 <= 1.7 * 17.0 / 256.0, "batch cheat rate {r16}");
        // And the rates are not trivially zero: over GF(2^8) cheats do
        // sometimes survive — that's why the paper keeps k large.
        let r64 = batch_cheat_rate(4, 1, 64, 64, trials, 3);
        assert!(r64 > 0.0, "with M=64, p=256 some cheats must land");
    }

    #[test]
    fn e6_unanimity_perfect_within_model() {
        assert_eq!(expose_failure_rate(7, 1, 1, 0, 2_000, 4), 0.0);
        assert_eq!(expose_failure_rate(13, 2, 2, 2, 1_000, 5), 0.0);
    }

    #[test]
    fn e6_renders() {
        let tables = run(&ExperimentCtx::new(true));
        assert_eq!(tables.len(), 2);
        assert!(tables[0].render().contains("single VSS"));
    }
}
