//! E11 — big-n Coin-Gen under the single-threaded `StepRunner`.
//!
//! The thread-per-party simulator caps the E-series at n ≈ 40 (one OS
//! stack per player); the sans-IO round engine removes that wall by
//! interleaving all n machines on the calling thread. This sweep runs
//! full Coin-Gen at the scales production randomness beacons are
//! evaluated at and reports the Theorem 2 cost shape directly from the
//! executor's ledgers: message and byte totals grow ~n², the round count
//! stays flat in n (it depends only on t's phase-king schedule and the
//! number of leader attempts), and the per-round delivery peak shows the
//! grade-cast bulge.
//!
//! Also the regression anchor for the executor itself: every sweep point
//! is a full protocol run, so `StepRunner` silently breaking agreement at
//! scale would fail the table's unanimity check before any experiment
//! rendered.

use dprbg_core::{CoinBatch, CoinGenConfig, CoinGenError, CoinGenMachine, CoinGenMsg, CoinWallet, Params};
use dprbg_metrics::Table;
use dprbg_sim::{BoxedMachine, StepRunner};

use super::common::{seed_wallets, ExperimentCtx, F32};

/// One sweep point's observable outcome.
pub struct SweepPoint {
    /// Parties.
    pub n: usize,
    /// Corruption bound used (`⌊(n − 1) / 6⌋`, the point-to-point model's
    /// `n ≥ 6t + 1` limit).
    pub t: usize,
    /// Synchronous rounds to termination.
    pub rounds: u64,
    /// Leader-election attempts (unanimous across parties).
    pub attempts: usize,
    /// Total messages across the run.
    pub messages: u64,
    /// Total payload bytes across the run.
    pub bytes: u64,
    /// Largest single-round delivery count (the grade-cast bulge).
    pub peak_deliveries: usize,
}

/// Run one full Coin-Gen at `(n, t)` under the single-threaded executor
/// and check every party produced the same dealer set and attempt count.
pub fn run_point(n: usize, t: usize, m: usize, seed: u64) -> SweepPoint {
    type Out = (CoinWallet<F32>, Result<CoinBatch<F32>, CoinGenError>);
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, seed);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, Out>> = (0..n)
        .map(|_| {
            Box::new(CoinGenMachine::new(cfg, wallets.remove(0)))
                as BoxedMachine<CoinGenMsg<F32>, Out>
        })
        .collect();
    let res = StepRunner::new(n, seed).run(machines);
    let rounds = res.report.comm.rounds;
    let messages = res.report.comm.messages;
    let bytes = res.report.comm.bytes;
    let peak_deliveries = res.rounds.iter().map(|p| p.deliveries).max().unwrap_or(0);
    let batches: Vec<CoinBatch<F32>> = res
        .unwrap_all()
        .into_iter()
        .map(|(_, r)| r.expect("coin generation succeeds"))
        .collect();
    let first = &batches[0];
    assert!(
        batches.iter().all(|b| b.dealers == first.dealers && b.attempts == first.attempts),
        "parties disagree at n = {n}"
    );
    SweepPoint {
        n,
        t,
        rounds,
        attempts: first.attempts,
        messages,
        bytes,
        peak_deliveries,
    }
}

/// Run E11 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let ns: &[usize] = ctx.sweep(&[7, 13, 31, 61], &[7, 13]);
    let m = if ctx.quick { 4 } else { 16 };
    let mut table = Table::new(
        &format!("E11: Coin-Gen at beacon scale under StepRunner (single thread), M={m}"),
        &["t", "rounds", "attempts", "messages", "bytes", "peak msgs/round"],
    );
    for &n in ns {
        let t = (n - 1) / 6;
        let p = run_point(n, t, m, ctx.seed + n as u64);
        table.row(
            &format!("n={n:>3}"),
            &[
                p.t.to_string(),
                p.rounds.to_string(),
                p.attempts.to_string(),
                p.messages.to_string(),
                p.bytes.to_string(),
                p.peak_deliveries.to_string(),
            ],
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_point_runs_and_agrees() {
        let p = run_point(7, 1, 4, 3);
        assert!(p.rounds >= 6 + 1 + 2 * 2, "too few rounds for fig. 5");
        assert!(p.attempts >= 1);
        assert!(p.peak_deliveries > 0 && p.messages > 0);
    }

    #[test]
    fn e11_messages_grow_quadratically() {
        // Theorem 2's shape: doubling n should roughly quadruple traffic
        // (within a factor left for attempt-count noise).
        let small = run_point(7, 1, 4, 5);
        let big = run_point(13, 2, 4, 5);
        assert!(
            big.messages > 2 * small.messages,
            "messages must grow superlinearly: {} vs {}",
            big.messages,
            small.messages
        );
    }

    #[test]
    fn e11_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("E11"));
        assert!(s.contains("n=  7"));
    }
}
