//! E15 — beacon soak: a crash-recoverable, epoch-pipelined
//! [`BeaconService`] driven for many epochs under a composite fault
//! schedule ([`SoakPlan::composite`]): seeded crashes (kill the process,
//! restore from the latest snapshot), consumer stampedes (reservoir
//! backpressure), and in-model adversary epochs (the
//! [`Attack`](dprbg_sim::Attack) menu applied to the epoch's protocol
//! traffic).
//!
//! The table reports the service-level throughput — coins served per
//! wall-clock second, seeds spent per exposed coin, and PRG invocations
//! per exposed coin (the §1.4 comparison currency, read off the beacon's
//! merged cost ledger) — next to the resilience counters: backpressure
//! outcomes, refill failures, supervisor skips, transactional rollbacks,
//! crash-recovery latency, and the **unsound count, which must be zero**
//! (the run asserts it, mirroring the E12 campaign verdict).
//!
//! `seeds/coin` charges the gen plane's consumption (challenge +
//! leader-election seeds across retries) to the coins the epochs
//! exposed; the serve plane's one-wallet-share-per-coin is definitional
//! and excluded, so the column isolates the *overhead* seed bill.
//!
//! Crash-recovery determinism is re-proved at experiment scale: the
//! first row's soak is replayed with an extra kill/restore at its
//! midpoint boundary, and the final snapshots must be byte-identical —
//! the second table carries the greppable verdict (`verify.sh` checks
//! for "byte-identical").

use std::time::Instant;

use dprbg_beacon::{BeaconConfig, BeaconService, BeaconStats, ExecutorKind, ReservoirConfig};
use dprbg_core::{CoinGenConfig, Params, RetryPolicy};
use dprbg_metrics::Table;
use dprbg_sim::{EpochFault, SoakPlan};

use super::common::{fmt_f, ExperimentCtx, F32};

/// Sealed coins dealt to the wallets before epoch 0 (the out-of-band
/// "Given", as in every other experiment).
const INITIAL_COINS: usize = 12;

/// The soak's beacon working point: n = 7, t = 1, batch M = 8.
fn config() -> BeaconConfig {
    BeaconConfig {
        coin_gen: CoinGenConfig {
            params: Params::p2p_model(7, 1).expect("7 > 6t for t = 1"),
            batch_size: 8,
        },
        reservoir: ReservoirConfig { capacity: 16, low_water: 4 },
        wallet_low_water: 6,
        retry: RetryPolicy { max_attempts: 3, seed_budget: 12 },
        max_backoff_exp: 3,
        max_rounds_per_epoch: 4096,
    }
}

/// The base demand schedule: a pure function of the epoch number (two
/// steady consumers), so a killed-and-restored run replays it exactly.
fn base_demands(epoch: u64) -> Vec<(u32, u32)> {
    vec![(1, 1), (2, 1 + (epoch % 2) as u32)]
}

/// What one soak run measured.
#[derive(Debug, Clone, PartialEq)]
struct SoakOutcome {
    /// Aggregated service counters at the end of the run.
    stats: BeaconStats,
    /// PRG invocations across the whole run (from the merged ledger).
    prg_invocations: u64,
    /// Crashes injected and recovered from.
    crashes: u64,
    /// Per-crash recovery latency in epochs (the scheduled downtime).
    recovery_latencies: Vec<u64>,
    /// Epochs the service spent down across all crashes.
    downtime_epochs: u64,
    /// [`dprbg_beacon::BeaconError::Unsound`] verdicts (must stay zero).
    unsound: u64,
    /// The final snapshot bytes (the determinism witness).
    snapshot: Vec<u8>,
}

/// Drive one beacon through `epochs` service epochs under `plan`.
///
/// Every epoch boundary takes a snapshot; a [`EpochFault::Crash`] kills
/// the service (drops it) and restores the boundary snapshot after the
/// scheduled downtime — exactly the deployment story the snapshot format
/// exists for. `kill_at` injects one *extra* unscheduled kill/restore at
/// that boundary (no downtime), for the determinism cross-check.
fn soak(master_seed: u64, epochs: u64, plan: &SoakPlan, kill_at: Option<u64>) -> SoakOutcome {
    let cfg = config();
    let mut svc = BeaconService::<F32>::new(cfg, master_seed, INITIAL_COINS);
    let mut out = SoakOutcome {
        stats: BeaconStats::default(),
        prg_invocations: 0,
        crashes: 0,
        recovery_latencies: Vec::new(),
        downtime_epochs: 0,
        unsound: 0,
        snapshot: Vec::new(),
    };
    for e in 0..epochs {
        // The boundary snapshot: the recovery point for any crash that
        // strikes this epoch.
        let boundary = svc.snapshot();
        let fault = plan.fault_at(e);
        if let Some(EpochFault::Crash { down_epochs }) = fault {
            // Kill the process; the scheduled downtime passes with no
            // service (consumers see an outage, not an error); restore
            // from the boundary snapshot and carry on at epoch `e`.
            drop(svc);
            out.crashes += 1;
            out.recovery_latencies.push(down_epochs);
            out.downtime_epochs += down_epochs;
            svc = BeaconService::<F32>::restore(cfg, &boundary)
                .expect("own boundary snapshot must restore");
            // Fold the outage into the health plane: recovery count and
            // depth are part of the replayed state, so the kill/restore
            // determinism check still covers them. (The unscheduled
            // `kill_at` below records nothing — it must be invisible.)
            svc.note_recovery(down_epochs);
        }
        if kill_at == Some(e) {
            // The unscheduled determinism kill: snapshot → drop →
            // restore, zero downtime. The run must not notice.
            let snap = svc.snapshot();
            drop(svc);
            svc = BeaconService::<F32>::restore(cfg, &snap)
                .expect("own snapshot must restore");
        }
        let mut demands = base_demands(e);
        let mut adversary = None;
        match fault {
            Some(EpochFault::Stampede { demand }) => demands.push((9, demand)),
            Some(EpochFault::Adversary { attack, f }) => adversary = Some((attack, f)),
            _ => {}
        }
        match svc.run_epoch(ExecutorKind::Step, &demands, adversary) {
            Ok(_) => {}
            Err(_) => {
                // An Unsound verdict: count it and stop — the run's
                // guarantee is already gone. (Asserted zero by `run`.)
                out.unsound += 1;
                break;
            }
        }
    }
    out.stats = svc.stats();
    out.prg_invocations = svc.ledger().total().prg_invocations;
    out.snapshot = svc.snapshot();
    out
}

/// Median of a small latency sample (0 when no crash struck).
fn median(latencies: &[u64]) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Run E15 and render its throughput and resilience tables.
///
/// # Panics
///
/// If any soak epoch returns an Unsound verdict, or if the midpoint
/// kill/restore replay's final snapshot differs from the uninterrupted
/// run's (crash-recovery determinism at experiment scale).
pub fn run(ctx: &ExperimentCtx) -> Vec<Table> {
    // (epochs, fault period): the full mode's first leg is the ISSUE's
    // ≥1000-epoch soak; the second leg doubles the fault density.
    let legs: &[(u64, u64)] = ctx.sweep(&[(1000, 7), (1000, 3)], &[(48, 5)]);

    let mut throughput = Table::new(
        &format!(
            "E15: beacon soak, n=7 t=1 M=8, composite faults \
             (crash/stampede/adversary), {INITIAL_COINS} initial coins"
        ),
        &["epochs", "faults", "coins", "coins/s", "seeds/coin", "prg/coin", "refills"],
    );
    let mut resilience = Table::new(
        "E15: beacon resilience (backpressure, supervisor policy, crash recovery)",
        &["blocked", "starved", "fails", "skips", "rollbk", "crashes", "recov p50/max", "unsound"],
    );

    let mut determinism_verdict: Option<(u64, bool)> = None;
    for (leg, &(epochs, period)) in legs.iter().enumerate() {
        let master_seed = ctx.seed ^ 0xE15 ^ (period << 32);
        let plan = SoakPlan::composite(master_seed, epochs, period);

        let t0 = Instant::now();
        let outcome = soak(master_seed, epochs, &plan, None);
        let wall = t0.elapsed().as_secs_f64();

        assert_eq!(
            outcome.unsound, 0,
            "E15 leg {leg}: unsound epochs under a within-model fault schedule"
        );
        let s = outcome.stats;
        assert_eq!(s.epochs, epochs, "E15 leg {leg}: soak ended early");
        let exposed = s.coins_exposed.max(1);
        throughput.row(
            &format!("soak period={period}"),
            &[
                epochs.to_string(),
                plan.len().to_string(),
                s.coins_served.to_string(),
                fmt_f(s.coins_served as f64 / wall),
                fmt_f(s.seeds_spent as f64 / exposed as f64),
                fmt_f(outcome.prg_invocations as f64 / exposed as f64),
                s.refills.to_string(),
            ],
        );
        let max_lat = outcome.recovery_latencies.iter().copied().max().unwrap_or(0);
        resilience.row(
            &format!("soak period={period}"),
            &[
                s.would_block.to_string(),
                s.starved.to_string(),
                s.refill_failures.to_string(),
                s.skipped_epochs.to_string(),
                s.rollbacks.to_string(),
                outcome.crashes.to_string(),
                format!("{}/{}", median(&outcome.recovery_latencies), max_lat),
                outcome.unsound.to_string(),
            ],
        );

        if leg == 0 {
            // Crash-recovery determinism at soak scale: replay the leg
            // with an extra kill/restore at the midpoint boundary; the
            // final snapshots must be byte-identical.
            let twin = soak(master_seed, epochs, &plan, Some(epochs / 2));
            let identical = twin.snapshot == outcome.snapshot;
            assert!(identical, "E15: kill@{} replay diverged from the base soak", epochs / 2);
            determinism_verdict = Some((epochs / 2, identical));
        }
    }

    let (boundary, ok) = determinism_verdict.expect("at least one leg ran");
    let mut determinism = Table::new(
        "E15: crash-recovery determinism (kill/restore replay vs uninterrupted soak)",
        &["kill boundary", "verdict"],
    );
    determinism.row(
        "snapshot bytes",
        &[
            boundary.to_string(),
            if ok { "byte-identical (restore determinism OK)" } else { "DIVERGED" }.to_string(),
        ],
    );
    vec![throughput, resilience, determinism]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_sim::Attack;

    #[test]
    fn e15_quick_soak_renders_with_zero_unsound() {
        // `run` itself asserts zero unsound epochs and snapshot-identical
        // kill/restore replay before rendering.
        let tables = run(&ExperimentCtx::new(true));
        let rendered: String =
            tables.iter().map(|t| t.render()).collect::<Vec<_>>().join("\n");
        assert!(rendered.contains("E15: beacon soak"));
        assert!(rendered.contains("byte-identical"));
        assert!(rendered.contains("soak period=5"));
    }

    #[test]
    fn soak_is_a_pure_function_of_its_seed() {
        // Same (seed, epochs, plan) → identical counters and snapshot;
        // different seed → a different transcript.
        let plan = SoakPlan::composite(0xABCD, 24, 5);
        let a = soak(0xABCD, 24, &plan, None);
        let b = soak(0xABCD, 24, &plan, None);
        assert_eq!(a, b);
        let c = soak(0xABCE, 24, &plan, None);
        assert_ne!(a.snapshot, c.snapshot);
    }

    #[test]
    fn crash_faults_recover_through_the_boundary_snapshot() {
        // A plan that is only crashes: every one must restore and the
        // soak must still finish all its epochs with zero unsound.
        let plan = SoakPlan::new()
            .fault(3, EpochFault::Crash { down_epochs: 2 })
            .fault(9, EpochFault::Crash { down_epochs: 1 });
        let out = soak(0xC4A5, 16, &plan, None);
        assert_eq!(out.crashes, 2);
        assert_eq!(out.recovery_latencies, vec![2, 1]);
        assert_eq!(out.downtime_epochs, 3);
        assert_eq!(out.unsound, 0);
        assert_eq!(out.stats.epochs, 16);
    }

    #[test]
    fn stampede_faults_exercise_backpressure() {
        let plan = SoakPlan::new().fault(2, EpochFault::Stampede { demand: 64 });
        let out = soak(0x57A3, 8, &plan, None);
        assert!(out.stats.would_block > 0, "a 64-coin stampede must hit backpressure");
        assert_eq!(out.unsound, 0);
    }

    #[test]
    fn adversary_faults_keep_the_soak_sound() {
        let plan = SoakPlan::new()
            .fault(1, EpochFault::Adversary { attack: Attack::LeaderEclipse, f: 1 })
            .fault(4, EpochFault::Adversary {
                attack: Attack::RandomChaos { drop_pct: 25, delay_pct: 25, max_delay: 2 },
                f: 1,
            });
        let out = soak(0xADE5, 10, &plan, None);
        assert_eq!(out.unsound, 0);
        assert_eq!(out.stats.epochs, 10);
    }
}
