//! E13 — implementation-layer speedups: CLMUL backend, parallel
//! executor, batched decoding.
//!
//! Not a paper table: the paper's §2 cost model counts field operations,
//! and none of the machinery measured here changes a single count. This
//! experiment measures the three wall-clock levers the implementation
//! pulls *underneath* that model, and — more importantly — asserts that
//! each lever is observationally invisible:
//!
//! 1. **Carry-less multiply backend**: the fixed-iteration portable
//!    ladder vs. the `PCLMULQDQ` instruction behind the same runtime
//!    dispatch (`dprbg_field::clmul`). Same products, fewer cycles.
//! 2. **Parallel executor**: full Coin-Gen at beacon scale (n = 61,
//!    t = 10) under the single-threaded [`StepRunner`] vs. the
//!    work-stealing [`ParRunner`] — with the transcripts, cost reports,
//!    round profiles, and logical traces asserted byte-identical before
//!    any timing is reported.
//! 3. **Batched decoding**: per-word [`bw_decode`] vs. the shared-basis
//!    [`BatchDecoder`] fast path over one abscissa set.
//!
//! The parity column is the experiment's real product; the speedup
//! column is hardware-dependent garnish.

use std::time::Instant;

use dprbg_core::{CoinBatch, CoinGenConfig, CoinGenError, CoinGenMachine, CoinGenMsg, CoinWallet, Params};
use dprbg_field::{clmul, Field, Gf2k};
use dprbg_metrics::Table;
use dprbg_poly::{bw_decode, share_points, share_polynomial, BatchDecoder};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};
use dprbg_sim::{BoxedMachine, ParRunner, StepRunner, TraceConfig};
use dprbg_trace::{to_chrome_json, validate_chrome_json};

use super::common::{fmt_f, seed_wallets, ExperimentCtx};

/// The beacon-scale field: GF(2^8) keeps the n² decodes cheap while
/// holding 61 distinct evaluation points (same choice as the n = 61
/// executor test).
type F8 = Gf2k<8>;

/// A Coin-Gen machine's output: the final wallet plus the batch result.
type BeaconOut = (CoinWallet<F8>, Result<CoinBatch<F8>, CoinGenError>);

/// Time `iters` dependent carry-less products through `f`; returns ns/op.
fn time_clmul(iters: usize, seed: u64, f: impl Fn(u64, u64) -> u128) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a: u64 = rng.random();
    let b: u64 = rng.random::<u64>() | 1;
    let start = Instant::now();
    for _ in 0..iters {
        let p = f(a, b);
        // Fold the 128-bit product back to 64 bits to keep the chain
        // dependent without growing the operand.
        a = (p as u64) ^ ((p >> 64) as u64) ^ 1;
    }
    let ns = start.elapsed().as_nanos() as f64 / iters as f64;
    std::hint::black_box(a);
    ns
}

/// One Coin-Gen fleet at (n, t) over GF(2^8).
fn beacon_fleet(
    n: usize,
    t: usize,
    m: usize,
    seed: u64,
) -> Vec<BoxedMachine<CoinGenMsg<F8>, BeaconOut>> {
    let params = Params::p2p_model(n, t).expect("valid beacon parameters");
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F8>> = seed_wallets(n, t, 4 + t, seed ^ 0xE13);
    (0..n).map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _).collect()
}

/// A per-party digest of everything observable about a run.
fn digest(res: dprbg_sim::RunResult<BeaconOut>) -> String {
    let mut s = format!("{:?}|{:?}|", res.report, res.rounds);
    for (_, out) in res.unwrap_all() {
        let b = out.expect("beacon-scale coin generation succeeds");
        s.push_str(&format!("{:?};{};{};", b.dealers, b.attempts, b.seeds_consumed));
    }
    s
}

/// Outcome of the executor leg: wall times plus the parity verdicts.
struct ExecutorLeg {
    step_ms: f64,
    par_ms: f64,
    threads: usize,
    transcripts_identical: bool,
    traces_identical: bool,
    chrome_round_trip_ok: bool,
}

fn executor_leg(n: usize, t: usize, m: usize, seed: u64) -> ExecutorLeg {
    // The parallel run is timed FIRST (cold caches, cold allocator) and
    // the single-threaded baseline second (warm): any warm-up bias makes
    // the reported parallel speedup conservative, never flattering.
    let runner = ParRunner::new(n, seed).with_trace(TraceConfig::full());
    let threads = runner.threads();
    let start = Instant::now();
    let parallel = runner.run(beacon_fleet(n, t, m, seed));
    let par_ms = start.elapsed().as_secs_f64() * 1e3;

    let start = Instant::now();
    let stepped = StepRunner::new(n, seed).with_trace(TraceConfig::full()).run(beacon_fleet(n, t, m, seed));
    let step_ms = start.elapsed().as_secs_f64() * 1e3;

    let step_trace = stepped.trace.clone().expect("traced step run records a trace");
    let par_trace = parallel.trace.clone().expect("traced parallel run records a trace");
    let traces_identical = step_trace == par_trace;
    let step_json = to_chrome_json(&step_trace);
    let par_json = to_chrome_json(&par_trace);
    let chrome_round_trip_ok =
        step_json == par_json && validate_chrome_json(&par_json).is_ok();
    let transcripts_identical = digest(stepped) == digest(parallel);

    ExecutorLeg { step_ms, par_ms, threads, transcripts_identical, traces_identical, chrome_round_trip_ok }
}

/// Time decoding `words` clean degree-`t` words over `n` abscissas,
/// (naive per-word bw_decode, shared-basis BatchDecoder); asserts the
/// decoded polynomials agree word for word.
fn time_decode(n: usize, t: usize, words: usize, seed: u64) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let xs: Vec<F8> = (1..=n as u64).map(F8::element).collect();
    let batch: Vec<Vec<F8>> = (0..words)
        .map(|_| {
            let poly = share_polynomial(F8::random(&mut rng), t, &mut rng);
            share_points(&poly, n).into_iter().map(|s| s.y).collect()
        })
        .collect();
    let e_max = (n - t - 1) / 2;

    let start = Instant::now();
    let naive: Vec<_> = batch
        .iter()
        .map(|ys| {
            let points: Vec<(F8, F8)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            bw_decode(&points, t, e_max).expect("clean word decodes")
        })
        .collect();
    let naive_ms = start.elapsed().as_secs_f64() * 1e3;

    let decoder = BatchDecoder::new(&xs, t, e_max).expect("valid abscissas");
    let start = Instant::now();
    let batched: Vec<_> = decoder
        .decode_many(&batch)
        .into_iter()
        .map(|r| r.expect("clean word decodes"))
        .collect();
    let batched_ms = start.elapsed().as_secs_f64() * 1e3;

    assert_eq!(naive, batched, "BatchDecoder must reproduce bw_decode exactly");
    (naive_ms, batched_ms)
}

/// Run E13 and render its table.
pub fn run(ctx: &ExperimentCtx) -> Table {
    let mut table = Table::new(
        "E13: implementation speedups — CLMUL backend, ParRunner, batched decode (cost model unchanged)",
        &["time", "speedup", "parity"],
    );

    // 1. Carry-less multiply backends.
    let iters = if ctx.quick { 50_000 } else { 500_000 };
    let portable_ns = time_clmul(iters, ctx.seed, clmul::clmul_portable);
    let dispatch_ns = time_clmul(iters, ctx.seed, clmul::clmul);
    let mut rng = StdRng::seed_from_u64(ctx.seed + 1);
    let clmul_parity = (0..4096)
        .all(|_| {
            let (a, b) = (rng.random(), rng.random());
            clmul::clmul(a, b) == clmul::clmul_portable(a, b)
        });
    table.row(
        "clmul portable ladder",
        &[format!("{portable_ns:.1} ns/op"), "1.0".into(), "reference".into()],
    );
    table.row(
        &format!("clmul dispatch ({})", clmul::backend_name()),
        &[
            format!("{dispatch_ns:.1} ns/op"),
            fmt_f(portable_ns / dispatch_ns.max(1e-9)),
            if clmul_parity { "backends agree (4096 ops): OK" } else { "BACKEND MISMATCH" }.into(),
        ],
    );

    // 2. Executors at beacon scale. Quick mode (CI smoke, debug-build
    // tests) shrinks n — the full report runs the real n = 61 target.
    let (n, t) = if ctx.quick { (31, 5) } else { (61, 10) };
    let m = if ctx.quick { 2 } else { 4 };
    let leg = executor_leg(n, t, m, ctx.seed + 2);
    table.row(
        &format!("StepRunner  coin-gen n={n} t={t} M={m}"),
        &[format!("{:.1} ms", leg.step_ms), "1.0".into(), "reference".into()],
    );
    table.row(
        &format!("ParRunner   coin-gen n={n} t={t} M={m} ({} threads)", leg.threads),
        &[
            format!("{:.1} ms", leg.par_ms),
            fmt_f(leg.step_ms / leg.par_ms.max(1e-9)),
            if leg.transcripts_identical && leg.traces_identical {
                "executor parity OK (transcripts + traces byte-identical)"
            } else {
                "EXECUTOR DIVERGENCE"
            }
            .into(),
        ],
    );
    table.row(
        "ParRunner chrome trace export",
        &[
            "-".into(),
            "-".into(),
            if leg.chrome_round_trip_ok { "par trace round-trip OK" } else { "TRACE EXPORT BROKEN" }
                .into(),
        ],
    );

    // 3. Batched decoding.
    let words = if ctx.quick { 32 } else { 512 };
    let (naive_ms, batched_ms) = time_decode(n, t, words, ctx.seed + 3);
    table.row(
        &format!("bw_decode     {words} words, n={n} t={t}"),
        &[format!("{naive_ms:.1} ms"), "1.0".into(), "reference".into()],
    );
    table.row(
        &format!("BatchDecoder  {words} words, n={n} t={t}"),
        &[
            format!("{batched_ms:.1} ms"),
            fmt_f(naive_ms / batched_ms.max(1e-9)),
            "decode parity OK (asserted word-for-word)".into(),
        ],
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_executors_are_byte_identical_at_beacon_scale() {
        // n = 31 keeps the debug-build suite fast; the full n = 61 parity
        // assertion runs inside `run()` on every (release) report.
        let leg = executor_leg(31, 5, 2, 7);
        assert!(leg.transcripts_identical, "ParRunner transcript diverged from StepRunner");
        assert!(leg.traces_identical, "ParRunner trace diverged from StepRunner");
        assert!(leg.chrome_round_trip_ok, "chrome export diverged or failed validation");
        assert!(leg.threads >= 1);
    }

    #[test]
    fn e13_batch_decode_agrees_with_naive() {
        // time_decode asserts word-for-word equality internally.
        let (naive_ms, batched_ms) = time_decode(13, 2, 32, 9);
        assert!(naive_ms >= 0.0 && batched_ms >= 0.0);
    }

    #[test]
    fn e13_renders() {
        let s = run(&ExperimentCtx::new(true)).render();
        assert!(s.contains("executor parity OK"), "{s}");
        assert!(s.contains("par trace round-trip OK"), "{s}");
        assert!(s.contains("backends agree"), "{s}");
    }
}
