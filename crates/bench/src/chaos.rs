//! The chaos campaign: seeded fault-injection sweeps over the paper's
//! protocols, classified by outcome.
//!
//! Each **episode** runs one protocol instance (Bit-Gen, Coin-Gen,
//! Batch-VSS verification, or proactive refresh) under an
//! [`AdaptiveAdversary`] driving one [`Attack`] strategy with a
//! corruption budget `f`. The episode is fully described by
//! `(master_seed, strategy, schedule)` — both executors
//! ([`StepRunner`] and [`ParRunner`]) replay it byte-identically, so any
//! classified failure can be handed to a debugger as three numbers.
//!
//! Classification looks only at the *honest* parties — those outside the
//! adversary's final corrupted set:
//!
//! * [`Outcome::Agreed`] — every honest party produced `Ok` with the
//!   same digest (unanimity, the Theorem 1 guarantee);
//! * [`Outcome::GracefulAbort`] — every honest party produced an error
//!   (seed exhaustion, no agreement, …): the run failed *safely*, no
//!   honest party was fooled;
//! * [`Outcome::Unsound`] — anything else: honest parties disagree, some
//!   accept while others abort, or a machine died mid-run. This is the
//!   verdict the paper's theorems say must not happen while `f ≤ t` and
//!   the adversary stays within the model.
//!
//! [`Attack::BreakBroadcast`] exists precisely to show the harness can
//! *reach* the `Unsound` verdict: it violates the §3 ideal-broadcast
//! Given, and against a strict-mode Batch-VSS it deterministically
//! splits honest verdicts (see the tests).
//!
//! **Composite episodes** ([`run_composite_episode`]) swap the single
//! [`Attack`] for a `(start_round, attack)` schedule driven by a
//! [`ScheduledAdversary`]: the strategy switches mid-episode while the
//! corruption budget stays shared, the first leg of the ROADMAP's
//! adversarial-search program. The confirmed abort paths this machinery
//! surfaces are pinned as named regression tests in
//! `tests/repro_corpus.rs`.

use std::collections::BTreeSet;

use dprbg_core::batch_vss::cheating_batch_deal;
use dprbg_core::{
    BatchOpts, BatchVssMsg, BatchVssVerifyMachine, BitGenMachine, BitGenMode, BitGenMsg,
    BitGenRun, CoinBatch, CoinError, CoinGenConfig, CoinGenError, CoinGenMachine, CoinGenMsg,
    CoinWallet, Params, RefreshMachine, RefreshReport, VssMode, VssVerdict,
};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;
use dprbg_sim::{
    AdaptiveAdversary, Attack, BoxedMachine, CorruptionHandle, MsgTap, ParRunner, PartyId,
    RunResult, ScheduledAdversary, StepRunner, Trace, TraceConfig, WireSize,
};

use crate::experiments::common::{challenge_coins, seed_wallets, F32};
use crate::harness::wilson_interval;

/// Round backstop for attacked runs (delays stretch protocols, but
/// nothing legitimate approaches this).
const MAX_CAMPAIGN_ROUNDS: u64 = 4096;

/// Local seed mixer (SplitMix64 finalizer) for deriving per-episode
/// seeds from a campaign master seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seed for episode `i` of a campaign.
pub fn episode_seed(master_seed: u64, i: u64) -> u64 {
    splitmix64(master_seed ^ splitmix64(i))
}

/// Which protocol an episode attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// Fig. 4 Bit-Gen, all parties dealing.
    BitGen,
    /// Fig. 5 Coin-Gen (the full clique/grade-cast/BA pipeline).
    CoinGen,
    /// Fig. 3 Batch-VSS verification of an honest dealing.
    BatchVss,
    /// §1.2 proactive wallet refresh.
    Refresh,
}

impl Protocol {
    /// Every campaign target.
    pub const ALL: [Protocol; 4] =
        [Protocol::BitGen, Protocol::CoinGen, Protocol::BatchVss, Protocol::Refresh];

    /// Short table label.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::BitGen => "bit-gen",
            Protocol::CoinGen => "coin-gen",
            Protocol::BatchVss => "batch-vss",
            Protocol::Refresh => "refresh",
        }
    }
}

/// One campaign point: parameters plus the attack strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Parties.
    pub n: usize,
    /// The protocol's corruption tolerance.
    pub t: usize,
    /// The adversary's corruption budget (may exceed `t` — that is the
    /// point of the beyond-threshold legs).
    pub f: usize,
    /// Batch size for Bit-Gen / Coin-Gen / Batch-VSS.
    pub m: usize,
    /// The adversary strategy.
    pub attack: Attack,
    /// Verdict mode for Batch-VSS episodes (ignored elsewhere).
    pub vss_mode: VssMode,
}

impl Schedule {
    /// A schedule with the default robust Batch-VSS verdict mode.
    pub fn new(n: usize, t: usize, f: usize, m: usize, attack: Attack) -> Self {
        Schedule { n, t, f, m, attack, vss_mode: VssMode::Robust }
    }
}

/// How an episode ended, judged over the honest parties only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// All honest parties succeeded with identical results.
    Agreed,
    /// All honest parties failed — safely and explicitly.
    GracefulAbort,
    /// Honest parties disagree, or some honest machine died: the
    /// soundness guarantee broke.
    Unsound,
}

/// Which executor drives the episode (both must agree — that is tested).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Executor {
    /// The single-threaded [`StepRunner`].
    Stepped,
    /// The deterministic work-stealing pool ([`ParRunner`]).
    Parallel,
}

/// The replayable record of one episode.
///
/// An [`Outcome::Unsound`] episode is a bug report: `seed` and
/// `schedule` (which carries the attack strategy) are the complete
/// replay triple — feed them back to [`run_episode`] on either executor
/// to reproduce the failure byte-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Episode {
    /// The soundness classification.
    pub outcome: Outcome,
    /// The adversary's final corrupted set.
    pub corrupted: BTreeSet<PartyId>,
    /// Synchronous rounds the run took.
    pub rounds: u64,
    /// The exact seed this episode ran with (for a campaign leg, the
    /// [`episode_seed`] derived from the master seed).
    pub seed: u64,
    /// The campaign point — `n`, `t`, `f`, `m`, the attack strategy, and
    /// the Batch-VSS verdict mode.
    pub schedule: Schedule,
}

/// Drive `machines` under the tap `adv` on the chosen executor,
/// returning the run result plus the adversary's final corrupted set
/// (read through its pre-extracted `handle`).
fn run_tapped<M, Out>(
    n: usize,
    seed: u64,
    machines: Vec<BoxedMachine<M, Out>>,
    adv: impl MsgTap<M> + 'static,
    handle: CorruptionHandle,
    executor: Executor,
    trace: Option<TraceConfig>,
) -> (RunResult<Out>, BTreeSet<PartyId>)
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    let res = match executor {
        Executor::Stepped => {
            let mut runner = StepRunner::new(n, seed)
                .with_tap(adv)
                .with_max_rounds(MAX_CAMPAIGN_ROUNDS);
            if let Some(cfg) = trace {
                runner = runner.with_trace(cfg);
            }
            runner.run(machines)
        }
        Executor::Parallel => {
            let mut runner = ParRunner::new(n, seed)
                .with_tap(adv)
                .with_max_rounds(MAX_CAMPAIGN_ROUNDS);
            if let Some(cfg) = trace {
                runner = runner.with_trace(cfg);
            }
            runner.run(machines)
        }
    };
    let corrupted = handle.snapshot();
    (res, corrupted)
}

/// Classify the honest parties' digests: `None` = machine died,
/// `Some(Ok(d))` = success with digest `d`, `Some(Err(_))` = explicit
/// protocol error.
fn classify(honest: &[Option<Result<String, String>>]) -> Outcome {
    if honest.iter().any(Option::is_none) {
        return Outcome::Unsound;
    }
    let oks: Vec<&String> = honest
        .iter()
        .filter_map(|d| d.as_ref().unwrap().as_ref().ok())
        .collect();
    let errs = honest.len() - oks.len();
    if oks.is_empty() {
        // No honest party at all (f = n) counts as vacuously agreed;
        // otherwise everyone aborted explicitly.
        return if errs == 0 { Outcome::Agreed } else { Outcome::GracefulAbort };
    }
    if errs > 0 || oks.windows(2).any(|w| w[0] != w[1]) {
        return Outcome::Unsound;
    }
    Outcome::Agreed
}

/// Run machines, snapshot the corrupted set, digest honest outputs,
/// classify. With `legs = None` the adversary plays `s.attack` for the
/// whole episode; with `legs = Some(..)` it switches strategy
/// mid-episode per the `(start_round, attack)` schedule (one shared
/// corruption budget `s.f` — see [`ScheduledAdversary`]).
fn digest_episode<M, Out, D>(
    s: &Schedule,
    legs: Option<&[(u64, Attack)]>,
    seed: u64,
    machines: Vec<BoxedMachine<M, Out>>,
    executor: Executor,
    trace: Option<TraceConfig>,
    digest: D,
) -> (Episode, Option<Trace>)
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
    D: Fn(&Out, &BTreeSet<PartyId>) -> Result<String, String>,
{
    let (res, corrupted) = match legs {
        None => {
            let adv = AdaptiveAdversary::new(s.attack, s.n, s.f, seed);
            let handle = adv.handle();
            run_tapped(s.n, seed, machines, adv, handle, executor, trace)
        }
        Some(legs) => {
            let adv = ScheduledAdversary::new(legs.to_vec(), s.n, s.f, seed);
            let handle = adv.handle();
            run_tapped(s.n, seed, machines, adv, handle, executor, trace)
        }
    };
    let honest: Vec<Option<Result<String, String>>> = (1..=s.n)
        .filter(|id| !corrupted.contains(id))
        .map(|id| res.outputs[id - 1].as_ref().map(|out| digest(out, &corrupted)))
        .collect();
    let episode = Episode {
        outcome: classify(&honest),
        corrupted,
        rounds: res.report.comm.rounds,
        seed,
        schedule: *s,
    };
    (episode, res.trace)
}

/// Run one episode: protocol `protocol` under `schedule`, fully
/// determined by `seed` and the executor choice (which must not matter —
/// see the replay tests).
pub fn run_episode(
    protocol: Protocol,
    schedule: &Schedule,
    seed: u64,
    executor: Executor,
) -> Episode {
    run_episode_inner(protocol, schedule, None, seed, executor, None).0
}

/// Run one episode on the stepped executor with a ring-buffer trace
/// attached, and return the trace dump when the run *failed* — an
/// [`Outcome::Unsound`] or [`Outcome::GracefulAbort`] episode comes
/// back with the last `ring_cap` span events per party (phase names and
/// per-round cost deltas leading up to the failure), ready for the
/// timeline or Chrome exporters. An [`Outcome::Agreed`] episode needs
/// no forensics and returns `None`.
pub fn run_episode_traced(
    protocol: Protocol,
    schedule: &Schedule,
    seed: u64,
    ring_cap: usize,
) -> (Episode, Option<Trace>) {
    let (episode, trace) = run_episode_inner(
        protocol,
        schedule,
        None,
        seed,
        Executor::Stepped,
        Some(TraceConfig::ring(ring_cap)),
    );
    let forensics = if episode.outcome == Outcome::Agreed { None } else { trace };
    (episode, forensics)
}

/// Run one **composite** episode: the adversary switches strategy
/// mid-episode per the `(start_round, attack)` `legs` schedule (a
/// [`ScheduledAdversary`]), sharing the single corruption budget
/// `schedule.f` across all legs. `schedule.attack` is ignored — the legs
/// *are* the strategy; everything else about the campaign point (`n`,
/// `t`, `f`, `m`, the Batch-VSS verdict mode) reads from `schedule` as
/// usual, so [`Schedule`] stays a flat `Copy` record. The returned
/// [`Episode`]'s replay triple is `(seed, schedule, legs)`.
///
/// # Panics
///
/// Panics if `legs` is empty or its start rounds are not strictly
/// ascending (the [`ScheduledAdversary`] contract).
pub fn run_composite_episode(
    protocol: Protocol,
    schedule: &Schedule,
    legs: &[(u64, Attack)],
    seed: u64,
    executor: Executor,
) -> Episode {
    run_episode_inner(protocol, schedule, Some(legs), seed, executor, None).0
}

/// The traced variant of [`run_composite_episode`]: stepped executor,
/// ring-buffer forensics returned for any non-[`Outcome::Agreed`] run
/// (same contract as [`run_episode_traced`]).
pub fn run_composite_episode_traced(
    protocol: Protocol,
    schedule: &Schedule,
    legs: &[(u64, Attack)],
    seed: u64,
    ring_cap: usize,
) -> (Episode, Option<Trace>) {
    let (episode, trace) = run_episode_inner(
        protocol,
        schedule,
        Some(legs),
        seed,
        Executor::Stepped,
        Some(TraceConfig::ring(ring_cap)),
    );
    let forensics = if episode.outcome == Outcome::Agreed { None } else { trace };
    (episode, forensics)
}

fn run_episode_inner(
    protocol: Protocol,
    schedule: &Schedule,
    legs: Option<&[(u64, Attack)]>,
    seed: u64,
    executor: Executor,
    trace: Option<TraceConfig>,
) -> (Episode, Option<Trace>) {
    let s = schedule;
    match protocol {
        Protocol::BitGen => {
            type BgOut = Result<BitGenRun<F32>, CoinError>;
            let coins = challenge_coins::<F32>(s.n, s.t, seed ^ 0xB17);
            let dealers: Vec<PartyId> = (1..=s.n).collect();
            let machines: Vec<BoxedMachine<BitGenMsg<F32>, BgOut>> = coins
                .into_iter()
                .map(|coin| {
                    Box::new(BitGenMachine::new(
                        s.t,
                        s.m,
                        coin,
                        dealers.clone(),
                        BitGenMode::RandomCoins,
                    )) as _
                })
                .collect();
            digest_episode(s, legs, seed, machines, executor, trace, |out, corrupted| match out {
                // Unanimity = same challenge point and the same verdict on
                // every *honest* dealer's instance. Fig. 4 alone makes no
                // agreement promise about corrupted dealers — that is what
                // Coin-Gen's clique/grade-cast/BA layer adds — so their
                // verdicts may legitimately differ between honest parties.
                Ok(run) => {
                    let accepted: Vec<PartyId> = run
                        .views
                        .iter()
                        .enumerate()
                        .filter(|(i, v)| {
                            !corrupted.contains(&(i + 1)) && v.check_poly.is_some()
                        })
                        .map(|(i, _)| i + 1)
                        .collect();
                    Ok(format!("{:?}|{:?}", run.r, accepted))
                }
                Err(e) => Err(format!("{e:?}")),
            })
        }
        Protocol::CoinGen => {
            let cfg = CoinGenConfig {
                params: Params::p2p_model(s.n, s.t).expect("schedule violates the p2p model"),
                batch_size: s.m,
            };
            let mut wallets = seed_wallets::<F32>(s.n, s.t, 6 + s.t, seed ^ 0xC61);
            type CgOut = (CoinWallet<F32>, Result<CoinBatch<F32>, CoinGenError>);
            let machines: Vec<BoxedMachine<CoinGenMsg<F32>, CgOut>> = (0..s.n)
                .map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _)
                .collect();
            digest_episode(s, legs, seed, machines, executor, trace, |(_wallet, res), _| match res {
                Ok(b) => Ok(format!("{:?}|{}|{}", b.dealers, b.attempts, b.seeds_consumed)),
                Err(e) => Err(format!("{e:?}")),
            })
        }
        Protocol::BatchVss => {
            // An honest dealing handed out out-of-band; the attack is on
            // the verification traffic.
            let mut rng = StdRng::seed_from_u64(seed ^ 0xBA7C);
            let shares = cheating_batch_deal::<F32, _>(s.n, s.t, s.m, 0, &mut rng);
            let coins = challenge_coins::<F32>(s.n, s.t, seed ^ 0x5EA1);
            let opts = BatchOpts { blinding: true, mode: s.vss_mode };
            let machines: Vec<BoxedMachine<BatchVssMsg<F32>, Result<VssVerdict, CoinError>>> =
                shares
                .into_iter()
                .zip(coins)
                .map(|(sh, coin)| {
                    Box::new(BatchVssVerifyMachine::new(s.t, sh, s.m, coin, opts)) as _
                })
                .collect();
            digest_episode(s, legs, seed, machines, executor, trace, |out, _| match out {
                Ok(verdict) => Ok(format!("{verdict:?}")),
                Err(e) => Err(format!("{e:?}")),
            })
        }
        Protocol::Refresh => {
            let cfg = CoinGenConfig {
                params: Params::p2p_model(s.n, s.t).expect("schedule violates the p2p model"),
                batch_size: s.m,
            };
            let mut wallets = seed_wallets::<F32>(s.n, s.t, 6 + s.t, seed ^ 0x5EED);
            type RfOut = (CoinWallet<F32>, Result<RefreshReport, CoinGenError>);
            let machines: Vec<BoxedMachine<CoinGenMsg<F32>, RfOut>> = (0..s.n)
                .map(|_| Box::new(RefreshMachine::new(cfg, wallets.remove(0))) as _)
                .collect();
            digest_episode(s, legs, seed, machines, executor, trace, |(_wallet, res), _| match res {
                Ok(r) => Ok(format!(
                    "{:?}|{}|{}|{}",
                    r.dealers, r.coins_refreshed, r.attempts, r.seeds_consumed
                )),
                Err(e) => Err(format!("{e:?}")),
            })
        }
    }
}

/// Outcome counts for one `(protocol, schedule)` campaign leg.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignStats {
    /// Episodes run.
    pub episodes: usize,
    /// [`Outcome::Agreed`] count.
    pub agreed: usize,
    /// [`Outcome::GracefulAbort`] count.
    pub aborted: usize,
    /// [`Outcome::Unsound`] count.
    pub unsound: usize,
}

impl CampaignStats {
    /// Tally one episode.
    pub fn record(&mut self, outcome: Outcome) {
        self.episodes += 1;
        match outcome {
            Outcome::Agreed => self.agreed += 1,
            Outcome::GracefulAbort => self.aborted += 1,
            Outcome::Unsound => self.unsound += 1,
        }
    }

    /// Wilson-score confidence interval on the unsound rate.
    pub fn unsound_ci(&self, z: f64) -> (f64, f64) {
        wilson_interval(self.unsound, self.episodes, z)
    }
}

/// Run `episodes` seeded episodes of `(protocol, schedule)` and tally
/// the outcomes. Episode `i` uses [`episode_seed`]`(master_seed, i)`, so
/// any tallied failure is replayable in isolation via [`run_episode`].
pub fn run_campaign(
    protocol: Protocol,
    schedule: &Schedule,
    episodes: usize,
    master_seed: u64,
    executor: Executor,
) -> CampaignStats {
    let mut stats = CampaignStats::default();
    for i in 0..episodes {
        let ep = run_episode(protocol, schedule, episode_seed(master_seed, i as u64), executor);
        stats.record(ep.outcome);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    const WITHIN_MODEL: [Attack; 6] = [
        Attack::LeaderEclipse,
        Attack::DealerDelay { delay: 2 },
        Attack::Equivocate,
        Attack::CrashAtRound { round: 3 },
        Attack::RandomChaos { drop_pct: 20, delay_pct: 20, max_delay: 2 },
        Attack::Partition { until_round: 2 },
    ];

    #[test]
    fn episodes_replay_identically_across_executors() {
        for protocol in [Protocol::CoinGen, Protocol::BatchVss] {
            for attack in [
                Attack::LeaderEclipse,
                Attack::RandomChaos { drop_pct: 25, delay_pct: 25, max_delay: 2 },
            ] {
                let s = Schedule::new(7, 1, 1, 4, attack);
                for seed in [11, 42] {
                    let a = run_episode(protocol, &s, seed, Executor::Stepped);
                    let c = run_episode(protocol, &s, seed, Executor::Parallel);
                    assert_eq!(
                        a, c,
                        "{} under {} seed {seed}: ParRunner diverged from StepRunner",
                        protocol.name(),
                        attack.name()
                    );
                }
            }
        }
    }

    #[test]
    fn within_model_attacks_never_go_unsound() {
        for protocol in Protocol::ALL {
            for attack in WITHIN_MODEL {
                assert!(attack.within_model());
                let s = Schedule::new(7, 1, 1, 4, attack);
                for i in 0..2u64 {
                    let ep = run_episode(protocol, &s, episode_seed(0xCAFE, i), Executor::Stepped);
                    assert_ne!(
                        ep.outcome,
                        Outcome::Unsound,
                        "{} under {} episode {i}: corrupted {:?}",
                        protocol.name(),
                        attack.name(),
                        ep.corrupted
                    );
                    assert!(ep.corrupted.len() <= s.f, "budget violated");
                }
            }
        }
    }

    #[test]
    fn over_threshold_crash_fails_gracefully_not_silently() {
        // 3 crashes against t = 1: Coin-Gen cannot form its n − 2t clique,
        // so every honest party must abort explicitly — unanimously.
        let s = Schedule::new(7, 1, 3, 4, Attack::CrashAtRound { round: 2 });
        let mut aborted = 0;
        for i in 0..3u64 {
            let ep = run_episode(Protocol::CoinGen, &s, episode_seed(0xDEAD, i), Executor::Stepped);
            assert_ne!(ep.outcome, Outcome::Agreed, "f > t crash cannot just succeed");
            if ep.outcome == Outcome::GracefulAbort {
                aborted += 1;
            }
        }
        assert!(aborted > 0, "expected at least one graceful abort");
    }

    #[test]
    fn break_broadcast_splits_strict_batch_vss() {
        // The beyond-model strategy: equivocating over the §3 ideal
        // channel deterministically splits a strict-mode verdict (even
        // recipients lose one β point and reject; odd ones accept), so
        // the harness provably *can* reach the Unsound verdict.
        let mut s = Schedule::new(7, 1, 1, 4, Attack::BreakBroadcast);
        s.vss_mode = VssMode::Strict;
        let ep = run_episode(Protocol::BatchVss, &s, 7, Executor::Stepped);
        assert_eq!(ep.outcome, Outcome::Unsound);
        let ep2 = run_episode(Protocol::BatchVss, &s, 7, Executor::Parallel);
        assert_eq!(ep, ep2, "the unsound episode must replay identically");
    }

    #[test]
    fn traced_episode_dumps_ring_forensics_on_failure() {
        // The known-unsound episode must come back with its replay triple
        // and a ring-bounded trace of the rounds leading up to the split.
        let mut s = Schedule::new(7, 1, 1, 4, Attack::BreakBroadcast);
        s.vss_mode = VssMode::Strict;
        let (ep, forensics) = run_episode_traced(Protocol::BatchVss, &s, 7, 16);
        assert_eq!(ep.outcome, Outcome::Unsound);
        assert_eq!((ep.seed, ep.schedule), (7, s), "replay triple must ride along");
        let trace = forensics.expect("failed episode must carry a forensic dump");
        assert!(!trace.events.is_empty());
        for id in 1..=s.n {
            let per_party = trace.events.iter().filter(|e| e.party == id).count();
            assert!(per_party <= 16, "ring cap exceeded: {per_party} events for party {id}");
        }
        // A clean episode needs no forensics: zero corruption budget means
        // the attack never engages and the run agrees.
        let calm = Schedule::new(7, 1, 0, 4, Attack::LeaderEclipse);
        let (ep2, forensics2) = run_episode_traced(Protocol::BatchVss, &calm, 11, 16);
        assert_eq!(ep2.outcome, Outcome::Agreed);
        assert!(forensics2.is_none(), "agreed episodes carry no dump");
    }

    #[test]
    fn campaign_stats_tally_and_ci() {
        let s = Schedule::new(7, 1, 1, 4, Attack::LeaderEclipse);
        let stats = run_campaign(Protocol::CoinGen, &s, 4, 0xF00D, Executor::Stepped);
        assert_eq!(stats.episodes, 4);
        assert_eq!(stats.agreed + stats.aborted + stats.unsound, 4);
        let (lo, hi) = stats.unsound_ci(1.96);
        assert!(lo >= 0.0 && hi <= 1.0 && lo <= hi);
    }

    #[test]
    fn composite_episodes_replay_identically_across_executors() {
        // Mid-episode strategy switches must stay byte-identical across
        // executors: the active leg keys on the round number, which both
        // runners present identically.
        let legs: &[(u64, Attack)] = &[
            (0, Attack::LeaderEclipse),
            (2, Attack::Equivocate),
            (4, Attack::RandomChaos { drop_pct: 20, delay_pct: 20, max_delay: 2 }),
        ];
        let s = Schedule::new(7, 1, 1, 4, legs[0].1);
        for seed in [5, 23] {
            let a = run_composite_episode(Protocol::CoinGen, &s, legs, seed, Executor::Stepped);
            let b = run_composite_episode(Protocol::CoinGen, &s, legs, seed, Executor::Parallel);
            assert_eq!(a, b, "composite episode seed {seed} diverged between executors");
        }
    }

    #[test]
    fn composite_within_model_schedule_stays_sound() {
        // Every leg in-model and f ≤ t: the Theorem 1 guarantee must
        // survive the strategy switches.
        let legs: &[(u64, Attack)] = &[
            (0, Attack::DealerDelay { delay: 2 }),
            (3, Attack::CrashAtRound { round: 5 }),
            (8, Attack::Partition { until_round: 10 }),
        ];
        let s = Schedule::new(7, 1, 1, 4, legs[0].1);
        for protocol in [Protocol::CoinGen, Protocol::BatchVss] {
            for i in 0..2u64 {
                let ep = run_composite_episode(
                    protocol,
                    &s,
                    legs,
                    episode_seed(0x5C4D, i),
                    Executor::Stepped,
                );
                assert_ne!(
                    ep.outcome,
                    Outcome::Unsound,
                    "{} composite episode {i}: corrupted {:?}",
                    protocol.name(),
                    ep.corrupted
                );
                assert!(ep.corrupted.len() <= s.f, "shared budget violated");
            }
        }
    }

    #[test]
    fn composite_schedule_differs_from_its_first_leg_alone() {
        // The later legs must actually bite: the first leg alone is a
        // crash scheduled far beyond the run's length (it never engages,
        // the episode agrees), while the composite escalates into an
        // immediate over-threshold crash and must abort.
        let legs: &[(u64, Attack)] = &[
            (0, Attack::CrashAtRound { round: 4000 }),
            (2, Attack::CrashAtRound { round: 2 }),
        ];
        let s = Schedule::new(7, 1, 3, 4, legs[0].1);
        let composite =
            run_composite_episode(Protocol::CoinGen, &s, legs, 17, Executor::Stepped);
        let single = run_episode(Protocol::CoinGen, &s, 17, Executor::Stepped);
        assert_eq!(single.outcome, Outcome::Agreed, "the dormant leg alone must be harmless");
        assert_ne!(
            composite.outcome,
            Outcome::Agreed,
            "the crash leg never engaged — the schedule is inert"
        );
    }

    #[test]
    fn campaigns_agree_between_stepped_and_parallel() {
        // Campaign-level executor equivalence: a whole adversarial sweep —
        // stateful taps, drops, delays, corruption decisions — must tally
        // identically under the work-stealing pool.
        for attack in [
            Attack::RandomChaos { drop_pct: 20, delay_pct: 20, max_delay: 2 },
            Attack::Equivocate,
        ] {
            let s = Schedule::new(7, 1, 1, 4, attack);
            let stepped = run_campaign(Protocol::CoinGen, &s, 3, 0xBEEF, Executor::Stepped);
            let parallel = run_campaign(Protocol::CoinGen, &s, 3, 0xBEEF, Executor::Parallel);
            assert_eq!(
                stepped, parallel,
                "campaign stats diverged under {} between executors",
                attack.name()
            );
        }
    }
}
