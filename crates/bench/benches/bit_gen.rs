//! Wall-time companion to experiment E3: Bit-Gen with a single dealer
//! across batch sizes (Lemma 6).

use dprbg_bench::harness::{BenchmarkId, Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_bench::experiments::common::{challenge_coins, F32};
use dprbg_core::{BitGenMachine, BitGenMode, BitGenMsg, BitGenRun, CoinError};
use dprbg_sim::{BoxedMachine, StepRunner};

const N: usize = 7;
const T: usize = 1;

fn run_bit_gen(m: usize, seed: u64) {
    let coins = challenge_coins::<F32>(N, T, seed);
    let machines: Vec<BoxedMachine<BitGenMsg<F32>, Result<BitGenRun<F32>, CoinError>>> = coins
        .into_iter()
        .map(|coin| {
            Box::new(BitGenMachine::new(T, m, coin, vec![1], BitGenMode::RandomCoins)) as _
        })
        .collect();
    for out in StepRunner::new(N, seed).run(machines).unwrap_all() {
        let run = out.unwrap();
        assert!(run.views[0].check_poly.is_some());
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_gen_single_dealer_n7");
    group.sample_size(20);
    for m in [1usize, 16, 64, 256] {
        group.throughput(Throughput::Elements(m as u64));
        let mut seed = m as u64 * 7;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                seed += 1;
                run_bit_gen(m, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(e3, benches);
criterion_main!(e3);
