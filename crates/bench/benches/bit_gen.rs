//! Wall-time companion to experiment E3: Bit-Gen with a single dealer
//! across batch sizes (Lemma 6).

use dprbg_bench::harness::{BenchmarkId, Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_bench::experiments::common::{challenge_coins, F32};
use dprbg_core::{bit_gen_all, BitGenMsg};
use dprbg_sim::{run_network, Behavior, PartyCtx};

const N: usize = 7;
const T: usize = 1;

fn run_bit_gen(m: usize, seed: u64) {
    let coins = challenge_coins::<F32>(N, T, seed);
    let behaviors: Vec<Behavior<BitGenMsg<F32>, bool>> = (1..=N)
        .map(|id| {
            let coin = coins[id - 1];
            Box::new(move |ctx: &mut PartyCtx<BitGenMsg<F32>>| {
                let run = bit_gen_all(ctx, T, m, coin, &[1]).unwrap();
                run.views[0].check_poly.is_some()
            }) as Behavior<_, _>
        })
        .collect();
    assert!(run_network(N, seed, behaviors).unwrap_all().iter().all(|&ok| ok));
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bit_gen_single_dealer_n7");
    group.sample_size(20);
    for m in [1usize, 16, 64, 256] {
        group.throughput(Throughput::Elements(m as u64));
        let mut seed = m as u64 * 7;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                seed += 1;
                run_bit_gen(m, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(e3, benches);
criterion_main!(e3);
