//! Wall-time companion to experiment E1: single-secret VSS — the paper's
//! protocol (one interpolation) vs CCD cut-and-choose (k interpolations)
//! vs Feldman (t exponentiations), full network simulation.

use dprbg_bench::harness::Criterion;
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_baselines::feldman::Exp;
use dprbg_baselines::{CcdMachine, CcdMsg, CcdOpts, FeldmanMachine, FeldmanMsg, FeldmanVerdict};
use dprbg_bench::experiments::common::{challenge_coins, F32};
use dprbg_core::{CoinError, DealtShares, VssMode, VssMsg, VssVerdict, VssVerifyMachine};
use dprbg_field::Field;
use dprbg_poly::Poly;
use dprbg_sim::{BoxedMachine, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

const N: usize = 7;
const T: usize = 2;

fn ours(seed: u64) -> Vec<Result<VssVerdict, CoinError>> {
    let coins = challenge_coins::<F32>(N, T, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let f = Poly::<F32>::random(T, &mut rng);
    let g = Poly::<F32>::random(T, &mut rng);
    let machines: Vec<BoxedMachine<VssMsg<F32>, Result<VssVerdict, CoinError>>> = (1..=N)
        .map(|id| {
            let shares = DealtShares {
                alpha: f.eval(F32::element(id as u64)),
                gamma: g.eval(F32::element(id as u64)),
            };
            Box::new(VssVerifyMachine::new(T, shares, coins[id - 1], VssMode::Strict)) as _
        })
        .collect();
    StepRunner::new(N, seed).run(machines).unwrap_all()
}

fn ccd(seed: u64) -> Vec<(VssVerdict, F32)> {
    let opts = CcdOpts { rounds: 32, challenge_seed: seed };
    let machines: Vec<BoxedMachine<CcdMsg<F32>, (VssVerdict, F32)>> = (1..=N)
        .map(|id| {
            let secret = (id == 1).then(|| F32::from_u64(7));
            Box::new(CcdMachine::new(1, secret, T, opts)) as _
        })
        .collect();
    StepRunner::new(N, seed).run(machines).unwrap_all()
}

fn feldman(seed: u64) -> Vec<(FeldmanVerdict, Exp)> {
    let machines: Vec<BoxedMachine<FeldmanMsg, (FeldmanVerdict, Exp)>> = (1..=N)
        .map(|id| {
            let secret = (id == 1).then(|| Exp::from_u64(5));
            Box::new(FeldmanMachine::new(1, secret, T)) as _
        })
        .collect();
    StepRunner::new(N, seed).run(machines).unwrap_all()
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("vss_single_n7_t2");
    group.sample_size(20);
    let mut seed = 0u64;
    group.bench_function("ours", |b| {
        b.iter(|| {
            seed += 1;
            ours(seed)
        })
    });
    group.bench_function("ccd_k32", |b| {
        b.iter(|| {
            seed += 1;
            ccd(seed)
        })
    });
    group.bench_function("feldman", |b| {
        b.iter(|| {
            seed += 1;
            feldman(seed)
        })
    });
    group.finish();
}

criterion_group!(e1, benches);
criterion_main!(e1);
