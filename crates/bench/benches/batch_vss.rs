//! Wall-time companion to experiment E2: Batch-VSS verification across
//! batch sizes (Lemma 4 — cost of one interpolation regardless of M).

use dprbg_bench::harness::{BenchmarkId, Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_bench::experiments::common::{challenge_coins, F32};
use dprbg_core::batch_vss::cheating_batch_deal;
use dprbg_core::{BatchOpts, BatchVssMsg, BatchVssVerifyMachine, CoinError, VssVerdict};
use dprbg_sim::{BoxedMachine, StepRunner};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

const N: usize = 7;
const T: usize = 2;

fn verify_batch(m: usize, seed: u64) {
    let coins = challenge_coins::<F32>(N, T, seed);
    let mut rng = StdRng::seed_from_u64(seed + 1);
    let all = cheating_batch_deal::<F32, _>(N, T, m, 0, &mut rng);
    let machines: Vec<BoxedMachine<BatchVssMsg<F32>, Result<VssVerdict, CoinError>>> = all
        .into_iter()
        .zip(coins)
        .map(|(shares, coin)| {
            Box::new(BatchVssVerifyMachine::new(T, shares, m, coin, BatchOpts::default())) as _
        })
        .collect();
    for v in StepRunner::new(N, seed).run(machines).unwrap_all() {
        assert_eq!(v.unwrap(), VssVerdict::Accept);
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_vss_verify_n7");
    group.sample_size(20);
    for m in [1usize, 16, 64, 256] {
        group.throughput(Throughput::Elements(m as u64));
        let mut seed = m as u64 * 1000;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                seed += 1;
                verify_batch(m, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(e2, benches);
criterion_main!(e2);
