//! Wall-time companion to experiment E7: sustained beacon draws through
//! the bootstrapped reservoir (Fig. 1), including refills.

use dprbg_bench::harness::{Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_bench::experiments::common::{seed_wallets, F32};
use dprbg_core::{Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, Params};
use dprbg_sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

const N: usize = 7;
const T: usize = 1;
const DRAWS: usize = 30;

/// Draw `draws` coins back-to-back, threading the reservoir through.
fn draw_many(
    b: Bootstrap<F32>,
    draws: usize,
) -> impl RoundMachine<CoinGenMsg<F32>, Output = usize> {
    looping((b, draws), |(b, k)| {
        if k == 0 {
            return LoopControl::Break(b.stats().draws);
        }
        LoopControl::Continue(Box::new(b.draw().map(move |(b, res)| {
            res.expect("draw succeeds");
            (b, k - 1)
        })))
    })
}

fn beacon(seed: u64) {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 16,
    });
    let mut wallets = seed_wallets::<F32>(N, T, 6, seed);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, usize>> = (0..N)
        .map(|_| {
            let b = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(draw_many(b, DRAWS)) as _
        })
        .collect();
    let outs = StepRunner::new(N, seed).run(machines).unwrap_all();
    assert!(outs.iter().all(|&d| d == DRAWS));
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap_beacon_n7");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DRAWS as u64));
    let mut seed = 0u64;
    group.bench_function("draws_30_with_refills", |b| {
        b.iter(|| {
            seed += 1;
            beacon(seed)
        })
    });
    group.finish();
}

criterion_group!(e7, benches);
criterion_main!(e7);
