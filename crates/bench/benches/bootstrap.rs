//! Wall-time companion to experiment E7: sustained beacon draws through
//! the bootstrapped reservoir (Fig. 1), including refills.

use dprbg_bench::harness::{Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_bench::experiments::common::{seed_wallets, F32};
use dprbg_core::{Bootstrap, BootstrapConfig, CoinGenConfig, CoinGenMsg, Params};
use dprbg_sim::{run_network, Behavior, PartyCtx};

const N: usize = 7;
const T: usize = 1;
const DRAWS: usize = 30;

fn beacon(seed: u64) {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
        params,
        batch_size: 16,
    });
    let mut wallets = seed_wallets::<F32>(N, T, 6, seed);
    let behaviors: Vec<Behavior<CoinGenMsg<F32>, usize>> = (0..N)
        .map(|_| {
            let mut b = Bootstrap::new(cfg, wallets.remove(0));
            Box::new(move |ctx: &mut PartyCtx<CoinGenMsg<F32>>| {
                for _ in 0..DRAWS {
                    b.draw(ctx).unwrap();
                }
                b.stats().draws
            }) as Behavior<_, _>
        })
        .collect();
    let outs = run_network(N, seed, behaviors).unwrap_all();
    assert!(outs.iter().all(|&d| d == DRAWS));
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bootstrap_beacon_n7");
    group.sample_size(10);
    group.throughput(Throughput::Elements(DRAWS as u64));
    let mut seed = 0u64;
    group.bench_function("draws_30_with_refills", |b| {
        b.iter(|| {
            seed += 1;
            beacon(seed)
        })
    });
    group.finish();
}

criterion_group!(e7, benches);
criterion_main!(e7);
