//! Wall-time companion to experiment E5: one delivered coin via the
//! D-PRBG (amortized over a batch) vs one from-scratch coin (§1.4).

use dprbg_bench::harness::{Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_baselines::{from_scratch_coin, FromScratchMsg};
use dprbg_bench::experiments::common::{seed_wallets, F32};
use dprbg_core::{
    CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinWallet, ExposeMachine, ExposeVia, Params,
    SealedShare,
};
use dprbg_sim::{looping, BoxedMachine, LoopControl, MachineExt, RoundMachine, StepRunner};

const N: usize = 7;
const T: usize = 1;
const M: usize = 64;

/// Expose every share of a batch, one Coin-Expose after another.
fn expose_all(
    t: usize,
    mut shares: Vec<SealedShare<F32>>,
) -> impl RoundMachine<CoinGenMsg<F32>, Output = ()> {
    shares.reverse();
    looping(shares, move |mut stack: Vec<SealedShare<F32>>| match stack.pop() {
        Some(s) => LoopControl::Continue(Box::new(
            ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(move |res| {
                res.expect("expose succeeds");
                stack
            }),
        )),
        None => LoopControl::Break(()),
    })
}

/// D-PRBG path: one batch of M coins, all exposed (M delivered coins).
fn dprbg_batch(seed: u64) {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: M };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(N, T, 5, seed);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, ()>> = (0..N)
        .map(|_| {
            let machine = CoinGenMachine::new(cfg, wallets.remove(0)).then(
                |(_wallet, res): (CoinWallet<F32>, _)| {
                    expose_all(T, res.expect("coin gen succeeds").shares)
                },
            );
            Box::new(machine) as _
        })
        .collect();
    StepRunner::new(N, seed).run(machines);
}

/// From-scratch path: one coin (matched 2^-32 soundness).
fn from_scratch_one(seed: u64) {
    let machines: Vec<BoxedMachine<FromScratchMsg<F32>, Option<F32>>> = (1..=N)
        .map(|id| Box::new(from_scratch_coin::<F32>(id, T, 32, seed)) as _)
        .collect();
    assert!(StepRunner::new(N, seed).run(machines).unwrap_all()[0].is_some());
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_delivery_n7_t1");
    group.sample_size(10);
    group.throughput(Throughput::Elements(M as u64));
    let mut seed = 0u64;
    group.bench_function("dprbg_batch_of_64", |b| {
        b.iter(|| {
            seed += 1;
            dprbg_batch(seed)
        })
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("from_scratch_single", |b| {
        b.iter(|| {
            seed += 1;
            from_scratch_one(seed)
        })
    });
    group.finish();
}

criterion_group!(e5, benches);
criterion_main!(e5);
