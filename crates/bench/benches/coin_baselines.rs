//! Wall-time companion to experiment E5: one delivered coin via the
//! D-PRBG (amortized over a batch) vs one from-scratch coin (§1.4).

use dprbg_bench::harness::{Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_baselines::{from_scratch_coin, FromScratchMsg};
use dprbg_bench::experiments::common::{seed_wallets, F32};
use dprbg_core::{
    coin_expose, coin_gen, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeVia, Params,
};
use dprbg_sim::{run_network, Behavior, PartyCtx};

const N: usize = 7;
const T: usize = 1;
const M: usize = 64;

/// D-PRBG path: one batch of M coins, all exposed (M delivered coins).
fn dprbg_batch(seed: u64) {
    let params = Params::p2p_model(N, T).unwrap();
    let cfg = CoinGenConfig { params, batch_size: M };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(N, T, 5, seed);
    let behaviors: Vec<Behavior<CoinGenMsg<F32>, ()>> = (0..N)
        .map(|_| {
            let mut w = wallets.remove(0);
            Box::new(move |ctx: &mut PartyCtx<CoinGenMsg<F32>>| {
                let batch = coin_gen(ctx, &cfg, &mut w).unwrap();
                for s in batch.shares {
                    let _ = coin_expose(ctx, s, T, ExposeVia::PointToPoint).unwrap();
                }
            }) as Behavior<_, _>
        })
        .collect();
    run_network(N, seed, behaviors);
}

/// From-scratch path: one coin (matched 2^-32 soundness).
fn from_scratch_one(seed: u64) {
    let behaviors: Vec<Behavior<FromScratchMsg<F32>, Option<F32>>> = (0..N)
        .map(|_| {
            Box::new(move |ctx: &mut PartyCtx<FromScratchMsg<F32>>| {
                from_scratch_coin(ctx, T, 32, seed)
            }) as Behavior<_, _>
        })
        .collect();
    assert!(run_network(N, seed, behaviors).unwrap_all()[0].is_some());
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_delivery_n7_t1");
    group.sample_size(10);
    group.throughput(Throughput::Elements(M as u64));
    let mut seed = 0u64;
    group.bench_function("dprbg_batch_of_64", |b| {
        b.iter(|| {
            seed += 1;
            dprbg_batch(seed)
        })
    });
    group.throughput(Throughput::Elements(1));
    group.bench_function("from_scratch_single", |b| {
        b.iter(|| {
            seed += 1;
            from_scratch_one(seed)
        })
    });
    group.finish();
}

criterion_group!(e5, benches);
criterion_main!(e5);
