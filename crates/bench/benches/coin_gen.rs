//! Wall-time companion to experiment E4: the full Coin-Gen protocol
//! (Theorem 2) — throughput in coins/second rises with the batch size,
//! the wall-clock face of Corollary 3's amortization.

use dprbg_bench::harness::{BenchmarkId, Criterion, Throughput};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_bench::experiments::common::{seed_wallets, F32};
use dprbg_core::{
    CoinBatch, CoinGenConfig, CoinGenError, CoinGenMachine, CoinGenMsg, CoinWallet, Params,
};
use dprbg_sim::{BoxedMachine, StepRunner};

fn run_coin_gen(n: usize, t: usize, m: usize, seed: u64) {
    let params = Params::p2p_model(n, t).unwrap();
    let cfg = CoinGenConfig { params, batch_size: m };
    let mut wallets: Vec<CoinWallet<F32>> = seed_wallets(n, t, 4 + t, seed);
    type Out = (CoinWallet<F32>, Result<CoinBatch<F32>, CoinGenError>);
    let machines: Vec<BoxedMachine<CoinGenMsg<F32>, Out>> = (0..n)
        .map(|_| Box::new(CoinGenMachine::new(cfg, wallets.remove(0))) as _)
        .collect();
    for (_wallet, res) in StepRunner::new(n, seed).run(machines).unwrap_all() {
        assert_eq!(res.unwrap().shares.len(), m);
    }
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("coin_gen_n7_t1");
    group.sample_size(15);
    for m in [1usize, 16, 64] {
        group.throughput(Throughput::Elements(m as u64));
        let mut seed = m as u64 * 31;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                seed += 1;
                run_coin_gen(7, 1, m, seed)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("coin_gen_n13_t2");
    group.sample_size(10);
    for m in [16usize, 64] {
        group.throughput(Throughput::Elements(m as u64));
        let mut seed = m as u64 * 77;
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                seed += 1;
                run_coin_gen(13, 2, m, seed)
            })
        });
    }
    group.finish();
}

criterion_group!(e4, benches);
criterion_main!(e4);
