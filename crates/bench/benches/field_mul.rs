//! Wall-time companion to experiment E8: field-multiplication cost in
//! GF(2^k) (naive carry-less) vs GF(q^l) (schoolbook vs DFT) — §2's
//! "an implementation should be careful about which method it uses".

use dprbg_bench::harness::{Criterion};
use dprbg_bench::{criterion_group, criterion_main};
use dprbg_field::{Field, Gf2k, GfQlParams};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;
use std::hint::black_box;

fn bench_gf2k<const K: usize>(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(K as u64);
    let a = Gf2k::<K>::random(&mut rng);
    let b = Gf2k::<K>::random(&mut rng);
    c.bench_function(&format!("gf2k_mul/k={K}"), |bench| {
        bench.iter(|| black_box(black_box(a) * black_box(b)))
    });
    c.bench_function(&format!("gf2k_inv/k={K}"), |bench| {
        bench.iter(|| black_box(black_box(a).inv()))
    });
}

fn bench_gfql(c: &mut Criterion, q: u64, l: usize) {
    let f = GfQlParams::new(q, l).unwrap();
    let mut rng = StdRng::seed_from_u64(q + l as u64);
    let a = f.random(&mut rng);
    let b = f.random(&mut rng);
    c.bench_function(&format!("gfql_naive/q={q}_l={l}"), |bench| {
        bench.iter(|| black_box(f.mul_naive(black_box(&a), black_box(&b))))
    });
    c.bench_function(&format!("gfql_fft/q={q}_l={l}"), |bench| {
        bench.iter(|| black_box(f.mul_fft(black_box(&a), black_box(&b))))
    });
}

fn benches(c: &mut Criterion) {
    bench_gf2k::<8>(c);
    bench_gf2k::<16>(c);
    bench_gf2k::<32>(c);
    bench_gf2k::<64>(c);
    bench_gfql(c, 17, 8);
    bench_gfql(c, 97, 16);
    bench_gfql(c, 193, 32);
    bench_gfql(c, 769, 64);
}

criterion_group!(e8, benches);
criterion_main!(e8);
