//! Service-level behaviour: sustained serving with pipelined refills,
//! backpressure outcomes, supervisor policy under over-threshold
//! adversaries, and read-only degradation at seed exhaustion.

use dprbg_beacon::{
    BeaconConfig, BeaconService, DrawOutcome, EpochDecision, ExecutorKind, Mode, ReservoirConfig,
};
use dprbg_core::{CoinGenConfig, Params, RetryPolicy};
use dprbg_field::Gf2k;
use dprbg_sim::Attack;

type F = Gf2k<32>;

fn config() -> BeaconConfig {
    BeaconConfig {
        coin_gen: CoinGenConfig { params: Params::p2p_model(7, 1).unwrap(), batch_size: 8 },
        reservoir: ReservoirConfig { capacity: 8, low_water: 2 },
        wallet_low_water: 4,
        retry: RetryPolicy { max_attempts: 3, seed_budget: 8 },
        max_backoff_exp: 3,
        max_rounds_per_epoch: 4096,
    }
}

#[test]
fn sustained_serving_with_pipelined_refills() {
    let mut svc = BeaconService::<F>::new(config(), 0xFEED, 10);
    let mut served = 0u64;
    for e in 0..30 {
        let report = svc.run_epoch(ExecutorKind::Step, &[(1, 1), (2, 1)], None).unwrap();
        assert_eq!(report.epoch, e);
        served += report.draws.iter().filter(|(_, o)| o.coin().is_some()).count() as u64;
    }
    let stats = svc.stats();
    assert_eq!(stats.epochs, 30);
    assert_eq!(stats.coins_served, served);
    assert!(stats.refills >= 2, "30 epochs at 2 coins/epoch must refill: {stats:?}");
    assert_eq!(stats.refill_failures, 0);
    assert_eq!(stats.rollbacks, 0);
    assert_eq!(stats.starved, 0);
    // Most demand is met once the pipeline is warm.
    assert!(served >= 50, "served only {served}/60");
    assert_eq!(svc.supervisor().mode(), Mode::Active);
    // The ledger accounts PRG work (the §1.4 comparison currency).
    assert!(svc.ledger().total().prg_invocations > 0);
    assert!(svc.ledger().total().interpolations > 0);
}

#[test]
fn stampede_gets_would_block_not_starved() {
    let mut svc = BeaconService::<F>::new(config(), 0xFEED2, 10);
    // Warm up one epoch, then demand far beyond stock + capacity.
    svc.run_epoch(ExecutorKind::Step, &[(1, 1)], None).unwrap();
    let report = svc.run_epoch(ExecutorKind::Step, &[(1, 40), (2, 40)], None).unwrap();
    let blocked =
        report.draws.iter().filter(|(_, o)| matches!(o, DrawOutcome::WouldBlock)).count();
    let granted = report.draws.iter().filter(|(_, o)| o.coin().is_some()).count();
    assert!(blocked > 0, "stampede must hit backpressure");
    assert!(granted > 0, "stampede must still drain the stock");
    assert!(
        !report.draws.iter().any(|(_, o)| matches!(o, DrawOutcome::Starved)),
        "a healthy beacon never starves"
    );
    // Fairness under contention: the two consumers' grants differ by ≤ 1.
    let g = |id: u32| report.draws.iter().filter(|(c, o)| *c == id && o.coin().is_some()).count();
    assert!(g(1).abs_diff(g(2)) <= 1, "unfair stampede split: {} vs {}", g(1), g(2));
}

#[test]
fn stampede_beyond_capacity_is_served_not_burned() {
    // REVIEW regression: with capacity 4 and a demand of 12, the old
    // deposit-then-serve order burned every exposed coin beyond capacity
    // (popped from the wallets, refused by the reservoir, lost). Fresh
    // exposes must answer the demand first; only the leftover cushion is
    // capacity-bounded.
    let mut cfg = config();
    cfg.reservoir = ReservoirConfig { capacity: 4, low_water: 2 };
    cfg.wallet_low_water = 0;
    let mut svc = BeaconService::<F>::new(cfg, 0xFEED5, 30);
    let report = svc.run_epoch(ExecutorKind::Step, &[(1, 12)], None).unwrap();
    let granted = report.draws.iter().filter(|(_, o)| o.coin().is_some()).count();
    assert_eq!(granted, 12, "demand beyond capacity must be served from fresh exposes");
    let stats = svc.stats();
    // Conservation: every wallet coin popped was exposed, and every
    // exposed coin was served or banked — none destroyed.
    assert_eq!(svc.wallet_level(), 30 - stats.coins_exposed as usize);
    assert_eq!(stats.coins_exposed, stats.coins_served + svc.reservoir().level() as u64);
    assert!(svc.reservoir().level() <= 4, "leftover respects the capacity bound");
}

#[test]
fn exposed_coins_are_conserved_across_a_soak() {
    // The conservation invariant holds at every epoch boundary of a
    // mixed run (refills, stampedes, backpressure): exposed coins are
    // exactly the served coins plus the current stock.
    let mut svc = BeaconService::<F>::new(config(), 0xFEED6, 12);
    for e in 0..40u64 {
        let demand = if e % 7 == 3 { 20 } else { 1 + (e % 3) as u32 };
        svc.run_epoch(ExecutorKind::Step, &[(1, demand), (2, 1)], None).unwrap();
        let stats = svc.stats();
        assert_eq!(
            stats.coins_exposed,
            stats.coins_served + svc.reservoir().level() as u64,
            "coin destroyed by epoch {e}"
        );
        assert!(svc.reservoir().level() <= 8, "stock above capacity after epoch {e}");
    }
    assert!(svc.stats().coins_served > 40, "the soak must actually serve");
}

#[test]
fn over_threshold_adversary_triggers_backoff_then_recovery() {
    // A deep wallet and an aggressive refill threshold: failed refills
    // under attack burn a bounded number of seeds (RetryPolicy::single)
    // without exhausting the wallet, so the supervisor backs off and
    // recovers instead of degrading to read-only.
    let mut cfg = config();
    cfg.wallet_low_water = 30;
    cfg.retry = RetryPolicy { max_attempts: 1, seed_budget: 4 };
    let mut svc = BeaconService::<F>::new(cfg, 0xFEED3, 40);
    // Hit the refill epochs with f = 3 > t crashes: Coin-Gen must fail,
    // the supervisor must back off, and a later clean epoch must succeed.
    let mut saw_failure = false;
    let mut saw_skip = false;
    let mut saw_recovery = false;
    for e in 0..40 {
        let fault = (10..=16).contains(&e).then_some((Attack::CrashAtRound { round: 0 }, 3));
        let report = svc.run_epoch(ExecutorKind::Step, &[(1, 2)], fault).unwrap();
        // A failed epoch surfaces either as a committed refill error
        // (symmetric failure) or a transactional rollback (divergence).
        if report.rolled_back || matches!(report.refill, Some(Err(_))) {
            saw_failure = true;
        } else if matches!(report.refill, Some(Ok(_))) && saw_failure {
            saw_recovery = true;
        }
        if report.decision == EpochDecision::Skip {
            saw_skip = true;
        }
    }
    assert!(saw_failure, "f > t crashes must fail a refill");
    assert!(saw_skip, "failures must schedule backoff epochs");
    assert!(saw_recovery, "the beacon must recover after the attack window");
    let stats = svc.stats();
    assert!(stats.refill_failures > 0 || stats.rollbacks > 0);
    assert!(stats.skipped_epochs > 0);
    assert_eq!(svc.supervisor().mode(), Mode::Active, "recovered mode");
}

#[test]
fn seed_exhaustion_degrades_to_read_only_and_starves() {
    // One sealed coin is less than MIN_SEEDS_PER_ATTEMPT: the first
    // refill pops the challenge and runs dry — a *symmetric* failure
    // that commits (all parties agree on SeedExhausted), sinks the
    // wallet below any further attempt, and degrades the beacon to
    // read-only: empty-stock demand is answered Starved, never a panic.
    let cfg = config();
    let mut svc = BeaconService::<F>::new(cfg, 0xFEED4, 1);
    let mut starved = 0;
    let mut refill_errors = 0;
    for _ in 0..12 {
        let report = svc.run_epoch(ExecutorKind::Step, &[(9, 1)], None).unwrap();
        starved +=
            report.draws.iter().filter(|(_, o)| matches!(o, DrawOutcome::Starved)).count();
        refill_errors += matches!(report.refill, Some(Err(_))) as usize;
    }
    assert_eq!(refill_errors, 1, "exactly the first epoch's refill fails; then read-only");
    assert_eq!(svc.supervisor().mode(), Mode::ReadOnly);
    assert!(starved > 0, "read-only with empty stock must starve demand");
    assert!(svc.stats().starved > 0);
    assert!(svc.wallet_level() < 2);
    // Still snapshotable and restorable in the degraded state.
    let snap = svc.snapshot();
    let revived = BeaconService::<F>::restore(cfg, &snap).unwrap();
    assert_eq!(revived.supervisor().mode(), Mode::ReadOnly);
}
