//! Crash-recovery determinism: a beacon killed at *any* epoch boundary
//! and restored from its snapshot must continue **byte-identically** to
//! one that never died — same epoch reports, same served coins, same
//! final snapshot bytes — under either executor, and even when the
//! restored incarnation switches executors.

use dprbg_beacon::{
    BeaconConfig, BeaconService, EpochReport, ExecutorKind, ReservoirConfig,
};
use dprbg_core::{CoinGenConfig, Params, RetryPolicy};
use dprbg_field::Gf2k;
use dprbg_sim::Attack;

type F = Gf2k<32>;

const MASTER_SEED: u64 = 0xD12B6_BEAC;
const INITIAL_COINS: usize = 9;
const EPOCHS: u64 = 6;

fn config() -> BeaconConfig {
    BeaconConfig {
        coin_gen: CoinGenConfig { params: Params::p2p_model(7, 1).unwrap(), batch_size: 8 },
        reservoir: ReservoirConfig { capacity: 8, low_water: 2 },
        wallet_low_water: 4,
        retry: RetryPolicy { max_attempts: 3, seed_budget: 8 },
        max_backoff_exp: 3,
        max_rounds_per_epoch: 4096,
    }
}

/// The test's demand schedule: a pure function of the epoch number, as
/// any recoverable deployment's must be replayable state.
fn demands_for(epoch: u64) -> Vec<(u32, u32)> {
    match epoch % 3 {
        0 => vec![(1, 2), (2, 1)],
        1 => vec![(1, 1), (3, 2)],
        _ => vec![(2, 3)],
    }
}

/// The fault schedule: one adversarial epoch inside the run, so the
/// property covers recovery around attacked epochs too.
fn fault_for(epoch: u64) -> Option<(Attack, usize)> {
    (epoch == 2).then_some((Attack::LeaderEclipse, 1))
}

fn drive(
    svc: &mut BeaconService<F>,
    exec: ExecutorKind,
    from: u64,
    to: u64,
) -> Vec<EpochReport<F>> {
    (from..to)
        .map(|e| {
            assert_eq!(svc.epoch(), e);
            svc.run_epoch(exec, &demands_for(e), fault_for(e)).unwrap()
        })
        .collect()
}

#[test]
fn kill_restore_is_byte_identical_at_every_boundary() {
    for exec in [ExecutorKind::Step, ExecutorKind::Par] {
        // The uninterrupted reference run.
        let mut base = BeaconService::<F>::new(config(), MASTER_SEED, INITIAL_COINS);
        let base_reports = drive(&mut base, exec, 0, EPOCHS);
        let base_snap = base.snapshot();
        assert!(
            base_reports.iter().any(|r| r.refill.is_some()),
            "the schedule must exercise the gen plane"
        );

        for k in 0..=EPOCHS {
            // Run k epochs, snapshot, kill the process (drop), restore,
            // and run the remainder.
            let mut victim = BeaconService::<F>::new(config(), MASTER_SEED, INITIAL_COINS);
            let mut reports = drive(&mut victim, exec, 0, k);
            let snap = victim.snapshot();
            drop(victim);

            let mut revived = BeaconService::<F>::restore(config(), &snap).unwrap();
            assert_eq!(revived.epoch(), k);
            reports.extend(drive(&mut revived, exec, k, EPOCHS));

            assert_eq!(reports, base_reports, "{exec:?}: reports diverged at boundary {k}");
            assert_eq!(
                revived.snapshot(),
                base_snap,
                "{exec:?}: final snapshot diverged at boundary {k}"
            );
        }
    }
}

#[test]
fn executors_are_interchangeable_mid_recovery() {
    // Reference: all-Step run.
    let mut base = BeaconService::<F>::new(config(), MASTER_SEED, INITIAL_COINS);
    drive(&mut base, ExecutorKind::Step, 0, EPOCHS);
    let base_snap = base.snapshot();

    // Every boundary: Step before the kill, Par after the restore.
    for k in 0..=EPOCHS {
        let mut victim = BeaconService::<F>::new(config(), MASTER_SEED, INITIAL_COINS);
        drive(&mut victim, ExecutorKind::Step, 0, k);
        let snap = victim.snapshot();
        let mut revived = BeaconService::<F>::restore(config(), &snap).unwrap();
        drive(&mut revived, ExecutorKind::Par, k, EPOCHS);
        assert_eq!(
            revived.snapshot(),
            base_snap,
            "Step→Par handoff diverged at boundary {k}"
        );
    }
}

#[test]
fn restore_rejects_mismatched_parameters() {
    let mut svc = BeaconService::<F>::new(config(), MASTER_SEED, INITIAL_COINS);
    drive(&mut svc, ExecutorKind::Step, 0, 1);
    let snap = svc.snapshot();

    // Wrong party count.
    let mut bad = config();
    bad.coin_gen.params = Params::p2p_model(13, 2).unwrap();
    assert!(BeaconService::<F>::restore(bad, &snap).is_err());

    // Wrong field width.
    assert!(BeaconService::<Gf2k<16>>::restore(config(), &snap).is_err());

    // Arbitrary corruption never panics.
    let mut torn = snap.clone();
    torn.truncate(torn.len() / 2);
    assert!(BeaconService::<F>::restore(config(), &torn).is_err());
}
