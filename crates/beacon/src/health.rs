//! The beacon's flight recorder: bounded per-epoch health history.
//!
//! The health [`Registry`](dprbg_metrics::Registry) answers "how much,
//! in total" — the flight recorder answers "what just happened": a ring
//! buffer of the last [`HealthRecord`]s, one per driven epoch, serialized
//! inside the versioned snapshot so a restored service carries the same
//! recent history as one that never died. On the abort/rollback paths the
//! service renders it as a forensic report, so the evidence of *how* a
//! beacon got into trouble survives the trouble itself.
//!
//! Everything here is keyed on logical time (epoch numbers) only, like
//! the rest of the health plane.

use std::collections::VecDeque;

use dprbg_metrics::Table;

use crate::supervisor::Mode;

/// How one driven epoch ended, from the service's point of view.
// lint: snapshot-abi(v2, 9c8c76d094b0b7b0)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcomeTag {
    /// The epoch ran (or had nothing to run) and its effects committed.
    Committed,
    /// The supervisor skipped the protocol (backoff cooldown).
    Skipped,
    /// The fleet ran but diverged; wallets were rolled back.
    RolledBack,
    /// Read-only mode: served from stock, starved unmet demand.
    Degraded,
}

impl EpochOutcomeTag {
    /// Stable lowercase label, used as a metric label value.
    pub fn label(&self) -> &'static str {
        match self {
            EpochOutcomeTag::Committed => "committed",
            EpochOutcomeTag::Skipped => "skipped",
            EpochOutcomeTag::RolledBack => "rolled_back",
            EpochOutcomeTag::Degraded => "degraded",
        }
    }
}

/// What the gen plane did this epoch.
// lint: snapshot-abi(v2, d824d9e4fc01148f)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefillStatus {
    /// No refill was scheduled.
    NotScheduled,
    /// The refill succeeded.
    Ok,
    /// The refill failed (the error went to the supervisor).
    Failed,
}

impl RefillStatus {
    /// Stable short label for dashboards and forensic dumps.
    pub fn label(&self) -> &'static str {
        match self {
            RefillStatus::NotScheduled => "-",
            RefillStatus::Ok => "ok",
            RefillStatus::Failed => "failed",
        }
    }
}

/// One epoch's health, as the flight recorder remembers it.
// lint: snapshot-abi(v2, 431efe8a17848447)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthRecord {
    /// The epoch this record describes.
    pub epoch: u64,
    /// How the epoch ended.
    pub outcome: EpochOutcomeTag,
    /// Supervisor mode after the epoch.
    pub mode: Mode,
    /// Protocol rounds the epoch took (0 when skipped).
    pub rounds: u64,
    /// Coins exposed and admitted this epoch.
    pub exposed: u32,
    /// Draws answered with a coin.
    pub served: u32,
    /// Draws answered `WouldBlock`.
    pub would_block: u32,
    /// Draws answered `Starved`.
    pub starved: u32,
    /// Sealed coins left in the wallets after the epoch.
    pub wallet_level: u32,
    /// Exposed coins banked in the reservoir after the epoch.
    pub reservoir_level: u32,
    /// Supervisor's consecutive-failure streak after the epoch.
    pub failures: u32,
    /// Supervisor's current backoff exponent after the epoch.
    pub backoff_exp: u32,
    /// What the gen plane did.
    pub refill: RefillStatus,
    /// Coin-Gen runs the refill made (0 unless `refill` is `Ok`).
    pub refill_attempts: u32,
}

/// A bounded ring of the most recent [`HealthRecord`]s.
///
/// The capacity is a service constant, *not* serialized — only the
/// records and the lifetime total are, so the snapshot ABI does not
/// change when the ring is resized across builds.
// lint: snapshot-abi(v2, aad478614f7300f0)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    records: VecDeque<HealthRecord>,
    capacity: usize,
    total: u64,
}

impl FlightRecorder {
    /// An empty recorder keeping at most `capacity` records (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            total: 0,
        }
    }

    /// Append one epoch's record, evicting the oldest past capacity.
    pub fn push(&mut self, rec: HealthRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(rec);
        self.total += 1;
    }

    /// Records currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no epoch has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records ever pushed over the service's lifetime.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &HealthRecord> {
        self.records.iter()
    }

    /// Tear into snapshotable parts `(records oldest-first, total)`.
    pub(crate) fn parts(&self) -> (Vec<HealthRecord>, u64) {
        (self.records.iter().copied().collect(), self.total)
    }

    /// Rebuild from snapshot parts; if a foreign snapshot holds more
    /// records than `capacity`, the oldest are dropped — exactly what a
    /// live ring of that capacity would have kept.
    pub(crate) fn from_parts(capacity: usize, records: Vec<HealthRecord>, total: u64) -> Self {
        let capacity = capacity.max(1);
        let skip = records.len().saturating_sub(capacity);
        FlightRecorder {
            records: records.into_iter().skip(skip).collect(),
            capacity,
            total,
        }
    }

    /// Render the ring as a forensic report table headed by `reason`.
    pub fn render(&self, reason: &str) -> String {
        let title = format!(
            "beacon forensic dump ({reason}) — last {} of {} epochs",
            self.len(),
            self.total()
        );
        let mut t = Table::new(
            &title,
            &[
                "outcome", "mode", "rounds", "exposed", "served", "block", "starve", "wallet",
                "stock", "fail", "exp", "refill",
            ],
        );
        for rec in &self.records {
            t.row(
                &format!("e{}", rec.epoch),
                &[
                    rec.outcome.label().into(),
                    rec.mode.label().into(),
                    rec.rounds.to_string(),
                    rec.exposed.to_string(),
                    rec.served.to_string(),
                    rec.would_block.to_string(),
                    rec.starved.to_string(),
                    rec.wallet_level.to_string(),
                    rec.reservoir_level.to_string(),
                    rec.failures.to_string(),
                    rec.backoff_exp.to_string(),
                    rec.refill.label().into(),
                ],
            );
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(epoch: u64) -> HealthRecord {
        HealthRecord {
            epoch,
            outcome: EpochOutcomeTag::Committed,
            mode: Mode::Active,
            rounds: 4,
            exposed: 2,
            served: 2,
            would_block: 0,
            starved: 0,
            wallet_level: 9,
            reservoir_level: 3,
            failures: 0,
            backoff_exp: 0,
            refill: RefillStatus::NotScheduled,
            refill_attempts: 0,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_lifetime_total() {
        let mut fr = FlightRecorder::new(4);
        for e in 0..10 {
            fr.push(rec(e));
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total(), 10);
        let epochs: Vec<u64> = fr.records().map(|r| r.epoch).collect();
        assert_eq!(epochs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn parts_round_trip() {
        let mut fr = FlightRecorder::new(3);
        for e in 0..5 {
            fr.push(rec(e));
        }
        let (records, total) = fr.parts();
        assert_eq!(fr, FlightRecorder::from_parts(3, records, total));
    }

    #[test]
    fn oversized_snapshot_truncates_to_a_live_ring() {
        let records: Vec<HealthRecord> = (0..8).map(rec).collect();
        let fr = FlightRecorder::from_parts(4, records, 8);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.records().next().unwrap().epoch, 4);
    }

    #[test]
    fn render_names_every_epoch_and_the_reason() {
        let mut fr = FlightRecorder::new(8);
        let mut bad = rec(2);
        bad.outcome = EpochOutcomeTag::RolledBack;
        fr.push(rec(1));
        fr.push(bad);
        let s = fr.render("epoch diverged");
        assert!(s.contains("epoch diverged"));
        assert!(s.contains("e1"));
        assert!(s.contains("e2"));
        assert!(s.contains("rolled_back"));
        assert!(s.contains("last 2 of 2 epochs"));
    }
}
