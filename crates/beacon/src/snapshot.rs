//! The beacon's versioned binary snapshot format.
//!
//! A snapshot is the *complete* cross-epoch state of a
//! [`BeaconService`](crate::BeaconService): wallets, reservoir,
//! supervisor, statistics, trace cursor, the cumulative cost ledger,
//! and (since v2) the health plane — the metric registry and the
//! flight recorder's ring of per-epoch records.
//! Restoring one continues byte-identically to an uninterrupted run —
//! the crash-recovery contract the kill/restore property tests enforce.
//!
//! The format is deliberately dependency-free: explicit little-endian
//! field writes behind a magic string, a format version, and a trailing
//! checksum. Decoding is total — every malformed input maps to a
//! [`SnapshotError`], never a panic — because restore-time input is
//! exactly the kind of data a crashed process leaves half-written.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! "DPRBGSNP" | version u16 | field_bits u32 | n u32
//! master_seed u64 | epoch u64
//! wallets:   per party: len u32, then per share: tag u8 (0 = absent,
//!            1 = present) + value u64
//! reservoir: coin count u32 + values u64…, cursor u32,
//!            grants count u32 + (consumer u32, granted u64)…
//! supervisor: mode tag u8 (+ until_epoch u64 for backoff),
//!            failures u32, max_exp u32,
//!            blamed count u32 + party u32…
//! stats:     13 × u64
//! trace:     rounds u64, events u64, digest u64
//! ledger:    per party: 8 × u64 (CostSnapshot), then comm 3 × u64
//! registry:  blob len u32 + the canonical `Registry::to_bytes` blob
//! recorder:  record count u32, then per record: epoch u64,
//!            outcome tag u8, mode tag u8 (+ until_epoch u64 for
//!            backoff), rounds u64, 8 × u32 (exposed, served,
//!            would_block, starved, wallet_level, reservoir_level,
//!            failures, backoff_exp), refill tag u8, attempts u32;
//!            then lifetime total u64
//! checksum   u64 (SplitMix-folded over everything above)
//! ```

use std::collections::{BTreeMap, BTreeSet};

use dprbg_field::Field;
use dprbg_metrics::{CommStats, CostSnapshot, Registry};

use crate::health::{EpochOutcomeTag, HealthRecord, RefillStatus};
use crate::service::{mix64, BeaconStats};
use crate::supervisor::Mode;

/// Magic prefix of every beacon snapshot.
const MAGIC: &[u8; 8] = b"DPRBGSNP";

/// Current format version. Every struct that serializes into the
/// snapshot carries a `lint: snapshot-abi` pin fingerprinting its field
/// list against this constant — editing any of those layouts without
/// bumping it (and re-taking the pins) fails `dprbg-lint --workspace`.
pub(crate) const SNAPSHOT_VERSION: u16 = 2;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the snapshot magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// The version the snapshot claims.
        got: u16,
    },
    /// The byte stream ended before the structure did.
    Truncated,
    /// The trailing checksum does not match the content.
    ChecksumMismatch,
    /// A well-formed field holds a value this build cannot represent
    /// (e.g. an unknown mode tag).
    Malformed {
        /// Which structure was malformed.
        field: &'static str,
    },
    /// The snapshot's embedded parameters disagree with the restoring
    /// service's configuration.
    ParamMismatch {
        /// Which parameter disagreed.
        field: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a beacon snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { got } => {
                write!(f, "unsupported snapshot version {got} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::Malformed { field } => write!(f, "malformed snapshot field: {field}"),
            SnapshotError::ParamMismatch { field } => {
                write!(f, "snapshot parameter mismatch: {field}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The decoded (or to-be-encoded) cross-epoch state, field-agnostic
/// except for the coin values themselves.
// lint: snapshot-abi(v2, 0d9c5233bc5dba8a)
#[derive(Debug)]
pub(crate) struct SnapshotState<F: Field> {
    pub n: u32,
    pub field_bits: u32,
    pub master_seed: u64,
    pub epoch: u64,
    /// Per party, per wallet position: the share value (`None` = absent).
    pub wallets: Vec<Vec<Option<F>>>,
    /// `(coins oldest-first, cursor, grants)`.
    pub reservoir: (Vec<F>, u32, BTreeMap<u32, u64>),
    /// `(mode, failures, max_exp, blamed)`.
    pub supervisor: (Mode, u32, u32, BTreeSet<usize>),
    pub stats: BeaconStats,
    /// `(rounds, events, digest)`.
    pub trace: (u64, u64, u64),
    /// `(per-party cost snapshots, comm totals)`.
    pub ledger: (Vec<CostSnapshot>, CommStats),
    /// The health-plane metric registry, embedded as its canonical blob.
    pub registry: Registry,
    /// `(flight-recorder records oldest-first, lifetime total)`.
    pub recorder: (Vec<HealthRecord>, u64),
}

/// Little-endian writer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
}

/// Little-endian reader over a borrowed snapshot.
struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(len).ok_or(SnapshotError::Truncated)?;
        let s = self.buf.get(self.pos..end).ok_or(SnapshotError::Truncated)?;
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, SnapshotError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }
    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }
    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }
}

/// SplitMix-fold a byte stream into the trailing checksum. Not
/// cryptographic — it catches truncation, bit rot, and half-written
/// files, which is the crash-recovery threat model; tampering resistance
/// is out of scope for a local state file.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0x5EED_BEAC_0000_0001u64;
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = mix64(h ^ u64::from_le_bytes(w) ^ chunk.len() as u64);
    }
    h
}

/// Encode `state` into the versioned snapshot format.
pub(crate) fn encode<F: Field>(state: &SnapshotState<F>) -> Vec<u8> {
    let mut e = Enc { buf: Vec::new() };
    e.buf.extend_from_slice(MAGIC);
    e.u16(SNAPSHOT_VERSION);
    e.u32(state.field_bits);
    e.u32(state.n);
    e.u64(state.master_seed);
    e.u64(state.epoch);

    for wallet in &state.wallets {
        e.u32(wallet.len() as u32);
        for share in wallet {
            match share {
                Some(v) => {
                    e.u8(1);
                    e.u64(v.to_u64());
                }
                None => {
                    e.u8(0);
                    e.u64(0);
                }
            }
        }
    }

    let (coins, cursor, grants) = &state.reservoir;
    e.u32(coins.len() as u32);
    for c in coins {
        e.u64(c.to_u64());
    }
    e.u32(*cursor);
    e.u32(grants.len() as u32);
    for (&consumer, &granted) in grants {
        e.u32(consumer);
        e.u64(granted);
    }

    let (mode, failures, max_exp, blamed) = &state.supervisor;
    match mode {
        Mode::Active => e.u8(0),
        Mode::Backoff { until_epoch } => {
            e.u8(1);
            e.u64(*until_epoch);
        }
        Mode::ReadOnly => e.u8(2),
    }
    e.u32(*failures);
    e.u32(*max_exp);
    e.u32(blamed.len() as u32);
    for &p in blamed {
        e.u32(p as u32);
    }

    let s = &state.stats;
    for v in [
        s.epochs,
        s.protocol_epochs,
        s.skipped_epochs,
        s.coins_exposed,
        s.coins_served,
        s.would_block,
        s.starved,
        s.refills,
        s.refill_failures,
        s.seeds_spent,
        s.rollbacks,
        s.expose_failures,
        s.rounds,
    ] {
        e.u64(v);
    }

    e.u64(state.trace.0);
    e.u64(state.trace.1);
    e.u64(state.trace.2);

    let (snaps, comm) = &state.ledger;
    e.u32(snaps.len() as u32);
    for c in snaps {
        for v in [
            c.field_adds,
            c.field_muls,
            c.field_invs,
            c.interpolations,
            c.prg_invocations,
            c.messages,
            c.bytes,
            c.rounds,
        ] {
            e.u64(v);
        }
    }
    e.u64(comm.messages);
    e.u64(comm.bytes);
    e.u64(comm.rounds);

    let blob = state.registry.to_bytes();
    e.u32(blob.len() as u32);
    e.buf.extend_from_slice(&blob);

    let (records, total) = &state.recorder;
    e.u32(records.len() as u32);
    for rec in records {
        e.u64(rec.epoch);
        e.u8(match rec.outcome {
            EpochOutcomeTag::Committed => 0,
            EpochOutcomeTag::Skipped => 1,
            EpochOutcomeTag::RolledBack => 2,
            EpochOutcomeTag::Degraded => 3,
        });
        match rec.mode {
            Mode::Active => e.u8(0),
            Mode::Backoff { until_epoch } => {
                e.u8(1);
                e.u64(until_epoch);
            }
            Mode::ReadOnly => e.u8(2),
        }
        e.u64(rec.rounds);
        for v in [
            rec.exposed,
            rec.served,
            rec.would_block,
            rec.starved,
            rec.wallet_level,
            rec.reservoir_level,
            rec.failures,
            rec.backoff_exp,
        ] {
            e.u32(v);
        }
        e.u8(match rec.refill {
            RefillStatus::NotScheduled => 0,
            RefillStatus::Ok => 1,
            RefillStatus::Failed => 2,
        });
        e.u32(rec.refill_attempts);
    }
    e.u64(*total);

    let sum = checksum(&e.buf);
    e.u64(sum);
    e.buf
}

/// Decode a snapshot, checking magic, version, structure, and checksum.
pub(crate) fn decode<F: Field>(bytes: &[u8]) -> Result<SnapshotState<F>, SnapshotError> {
    // Checksum first: the final 8 bytes must fold from the rest.
    if bytes.len() < MAGIC.len() + 8 {
        return Err(if bytes.starts_with(&MAGIC[..bytes.len().min(8)]) {
            SnapshotError::Truncated
        } else {
            SnapshotError::BadMagic
        });
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let mut d = Dec { buf: body, pos: 0 };
    if d.take(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let stored = u64::from_le_bytes([
        tail[0], tail[1], tail[2], tail[3], tail[4], tail[5], tail[6], tail[7],
    ]);
    if checksum(body) != stored {
        return Err(SnapshotError::ChecksumMismatch);
    }
    let version = d.u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { got: version });
    }
    let field_bits = d.u32()?;
    let n = d.u32()?;
    if n == 0 || n > 1 << 20 {
        return Err(SnapshotError::Malformed { field: "party count n" });
    }
    let master_seed = d.u64()?;
    let epoch = d.u64()?;

    let mut wallets = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let len = d.u32()? as usize;
        let mut wallet = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            let tag = d.u8()?;
            let raw = d.u64()?;
            wallet.push(match tag {
                0 => None,
                1 => Some(F::from_u64(raw)),
                _ => return Err(SnapshotError::Malformed { field: "share tag" }),
            });
        }
        wallets.push(wallet);
    }

    let coin_count = d.u32()? as usize;
    let mut coins = Vec::with_capacity(coin_count.min(1 << 16));
    for _ in 0..coin_count {
        coins.push(F::from_u64(d.u64()?));
    }
    let cursor = d.u32()?;
    let grant_count = d.u32()? as usize;
    let mut grants = BTreeMap::new();
    for _ in 0..grant_count {
        let consumer = d.u32()?;
        let granted = d.u64()?;
        grants.insert(consumer, granted);
    }

    let mode = match d.u8()? {
        0 => Mode::Active,
        1 => Mode::Backoff { until_epoch: d.u64()? },
        2 => Mode::ReadOnly,
        _ => return Err(SnapshotError::Malformed { field: "supervisor mode tag" }),
    };
    let failures = d.u32()?;
    let max_exp = d.u32()?;
    let blamed_count = d.u32()? as usize;
    let mut blamed = BTreeSet::new();
    for _ in 0..blamed_count {
        blamed.insert(d.u32()? as usize);
    }

    let stats = BeaconStats {
        epochs: d.u64()?,
        protocol_epochs: d.u64()?,
        skipped_epochs: d.u64()?,
        coins_exposed: d.u64()?,
        coins_served: d.u64()?,
        would_block: d.u64()?,
        starved: d.u64()?,
        refills: d.u64()?,
        refill_failures: d.u64()?,
        seeds_spent: d.u64()?,
        rollbacks: d.u64()?,
        expose_failures: d.u64()?,
        rounds: d.u64()?,
    };

    let trace = (d.u64()?, d.u64()?, d.u64()?);

    let snap_count = d.u32()? as usize;
    let mut snaps = Vec::with_capacity(snap_count.min(1 << 16));
    for _ in 0..snap_count {
        snaps.push(CostSnapshot {
            field_adds: d.u64()?,
            field_muls: d.u64()?,
            field_invs: d.u64()?,
            interpolations: d.u64()?,
            prg_invocations: d.u64()?,
            messages: d.u64()?,
            bytes: d.u64()?,
            rounds: d.u64()?,
        });
    }
    let comm = CommStats { messages: d.u64()?, bytes: d.u64()?, rounds: d.u64()? };

    let blob_len = d.u32()? as usize;
    let registry = Registry::from_bytes(d.take(blob_len)?)
        .map_err(|_| SnapshotError::Malformed { field: "health registry" })?;

    let record_count = d.u32()? as usize;
    let mut records = Vec::with_capacity(record_count.min(1 << 16));
    for _ in 0..record_count {
        let epoch = d.u64()?;
        let outcome = match d.u8()? {
            0 => EpochOutcomeTag::Committed,
            1 => EpochOutcomeTag::Skipped,
            2 => EpochOutcomeTag::RolledBack,
            3 => EpochOutcomeTag::Degraded,
            _ => return Err(SnapshotError::Malformed { field: "health outcome tag" }),
        };
        let mode = match d.u8()? {
            0 => Mode::Active,
            1 => Mode::Backoff { until_epoch: d.u64()? },
            2 => Mode::ReadOnly,
            _ => return Err(SnapshotError::Malformed { field: "health mode tag" }),
        };
        let rounds = d.u64()?;
        let exposed = d.u32()?;
        let served = d.u32()?;
        let would_block = d.u32()?;
        let starved = d.u32()?;
        let wallet_level = d.u32()?;
        let reservoir_level = d.u32()?;
        let failures = d.u32()?;
        let backoff_exp = d.u32()?;
        let refill = match d.u8()? {
            0 => RefillStatus::NotScheduled,
            1 => RefillStatus::Ok,
            2 => RefillStatus::Failed,
            _ => return Err(SnapshotError::Malformed { field: "health refill tag" }),
        };
        let refill_attempts = d.u32()?;
        records.push(HealthRecord {
            epoch,
            outcome,
            mode,
            rounds,
            exposed,
            served,
            would_block,
            starved,
            wallet_level,
            reservoir_level,
            failures,
            backoff_exp,
            refill,
            refill_attempts,
        });
    }
    let recorder_total = d.u64()?;

    if d.pos != body.len() {
        return Err(SnapshotError::Malformed { field: "trailing bytes" });
    }

    Ok(SnapshotState {
        n,
        field_bits,
        master_seed,
        epoch,
        wallets,
        reservoir: (coins, cursor, grants),
        supervisor: (mode, failures, max_exp, blamed),
        stats,
        trace,
        ledger: (snaps, comm),
        registry,
        recorder: (records, recorder_total),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;

    type F = Gf2k<32>;

    fn sample() -> SnapshotState<F> {
        SnapshotState {
            n: 7,
            field_bits: 32,
            master_seed: 0xD12B6,
            epoch: 42,
            wallets: (0..7)
                .map(|p| {
                    (0..5)
                        .map(|i| (i != 2).then(|| F::from_u64(p * 10 + i)))
                        .collect()
                })
                .collect(),
            reservoir: (
                vec![F::from_u64(7), F::from_u64(8)],
                3,
                [(1u32, 9u64), (4, 2)].into_iter().collect(),
            ),
            supervisor: (
                Mode::Backoff { until_epoch: 44 },
                2,
                4,
                [3usize, 6].into_iter().collect(),
            ),
            stats: BeaconStats {
                epochs: 42,
                protocol_epochs: 30,
                coins_served: 55,
                seeds_spent: 61,
                ..BeaconStats::default()
            },
            trace: (1234, 56789, 0xFEED_BEEF),
            ledger: (
                (0..7)
                    .map(|i| CostSnapshot {
                        field_adds: 100 + i,
                        prg_invocations: 7 * i,
                        ..CostSnapshot::default()
                    })
                    .collect(),
                CommStats { messages: 900, bytes: 80_000, rounds: 333 },
            ),
            registry: {
                let mut r = Registry::new();
                r.counter_add("beacon_epochs_total", &[("outcome", "committed")], 30);
                r.gauge_set(
                    "beacon_reservoir_level",
                    &[],
                    dprbg_metrics::LogicalTime::at_epoch(41),
                    2,
                );
                r.histogram_observe("beacon_epoch_rounds", &[], 6);
                r.histogram_observe("beacon_epoch_rounds", &[], 9);
                r
            },
            recorder: (
                vec![
                    HealthRecord {
                        epoch: 40,
                        outcome: EpochOutcomeTag::Committed,
                        mode: Mode::Active,
                        rounds: 6,
                        exposed: 3,
                        served: 2,
                        would_block: 1,
                        starved: 0,
                        wallet_level: 9,
                        reservoir_level: 2,
                        failures: 0,
                        backoff_exp: 0,
                        refill: RefillStatus::Ok,
                        refill_attempts: 1,
                    },
                    HealthRecord {
                        epoch: 41,
                        outcome: EpochOutcomeTag::Skipped,
                        mode: Mode::Backoff { until_epoch: 44 },
                        rounds: 0,
                        exposed: 0,
                        served: 0,
                        would_block: 2,
                        starved: 0,
                        wallet_level: 9,
                        reservoir_level: 2,
                        failures: 2,
                        backoff_exp: 1,
                        refill: RefillStatus::NotScheduled,
                        refill_attempts: 0,
                    },
                ],
                42,
            ),
        }
    }

    fn assert_state_eq(a: &SnapshotState<F>, b: &SnapshotState<F>) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.field_bits, b.field_bits);
        assert_eq!(a.master_seed, b.master_seed);
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.wallets, b.wallets);
        assert_eq!(a.reservoir, b.reservoir);
        assert_eq!(a.supervisor, b.supervisor);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.ledger, b.ledger);
        assert_eq!(a.registry, b.registry);
        assert_eq!(a.recorder, b.recorder);
    }

    #[test]
    fn round_trip_is_lossless_and_stable() {
        let state = sample();
        let bytes = encode(&state);
        let back: SnapshotState<F> = decode(&bytes).unwrap();
        assert_state_eq(&state, &back);
        // Deterministic bytes: encoding the decoded state is identical.
        assert_eq!(encode(&back), bytes);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xFF;
        assert_eq!(decode::<F>(&bytes).unwrap_err(), SnapshotError::BadMagic);
        assert_eq!(decode::<F>(b"nonsense").unwrap_err(), SnapshotError::BadMagic);
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode(&sample());
        // Stamp version 0x7FEE, then re-seal the checksum so the version
        // check is what fires.
        bytes[8] = 0xEE;
        bytes[9] = 0x7F;
        let body_len = bytes.len() - 8;
        let sum = checksum(&bytes[..body_len]).to_le_bytes();
        bytes[body_len..].copy_from_slice(&sum);
        assert_eq!(
            decode::<F>(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion { got: 0x7FEE }
        );
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            let err = decode::<F>(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated
                        | SnapshotError::BadMagic
                        | SnapshotError::ChecksumMismatch
                ),
                "unexpected error at len {len}: {err:?}"
            );
        }
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let bytes = encode(&sample());
        // Flip one bit in every byte position past the magic.
        for pos in (8..bytes.len() - 8).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(
                decode::<F>(&bad).is_err(),
                "bit flip at {pos} decoded successfully"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let state = sample();
        let mut bytes = encode(&state);
        bytes.extend_from_slice(&[0u8; 4]);
        assert!(decode::<F>(&bytes).is_err());
    }
}
