//! The epoch machine: one beacon epoch as a two-plane round machine.
//!
//! An epoch overlaps the two halves of the paper's amortization story
//! (§1.2/Fig. 1) instead of running them back to back:
//!
//! * the **serve plane** exposes the coins consumers are waiting for —
//!   one [`ExposeMachine`] per reserved wallet share, all of which finish
//!   in the two fixed rounds of Coin-Expose (Fig. 6);
//! * the **gen plane** concurrently replenishes the wallet with a fresh
//!   Coin-Gen batch under an explicit
//!   [`RetryPolicy`](dprbg_core::RetryPolicy) (Fig. 5 via
//!   [`coin_gen_with_retry`]).
//!
//! Both planes share one synchronous network: their traffic is
//! multiplexed over [`BeaconMsg`] and the epoch machine demultiplexes
//! each round's inbox per plane, steps the gen plane first and the serve
//! slots in ascending order (a fixed RNG draw order, so both executors
//! stay byte-identical), and merges the plane outboxes with
//! [`Outbox::append`]. The epoch finishes when every plane is done, so
//! its wall-clock is `max(2, coin_gen_rounds)` rounds — the pipelining
//! win over a serial refill-then-serve beacon, whose window costs
//! `2 + coin_gen_rounds`.

use dprbg_core::{
    coin_gen_with_retry, CoinBatch, CoinGenConfig, CoinGenMsg, CoinWallet, ExposeMachine,
    ExposeMsg, ExposeVia, ProtocolError, RetryPolicy, RetryReport, SealedShare,
};
use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_sim::{
    BoxedMachine, Inbox, Received, RoundMachine, RoundView, Step,
};

use crate::CoinError;

/// The beacon's composite wire type: generation-plane Coin-Gen traffic
/// and serve-plane expose shares, tagged by serve slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeaconMsg<F: Field> {
    /// Gen-plane traffic (a full Coin-Gen run).
    Gen(CoinGenMsg<F>),
    /// Serve-plane traffic: the expose share for serve slot `slot`.
    Serve {
        /// Which serve slot (0-based, < the epoch's `serve_count`) the
        /// share belongs to.
        slot: u32,
        /// The bare Coin-Expose share.
        msg: ExposeMsg<F>,
    },
}

impl<F: Field> WireSize for BeaconMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            BeaconMsg::Gen(m) => m.wire_bytes(),
            // The slot tag rides on the wire so receivers can route the
            // share to the right decoder.
            BeaconMsg::Serve { msg, .. } => 4 + msg.wire_bytes(),
        }
    }
}

/// What the gen plane reported, when the epoch ran one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefillReport {
    /// Coins the batch added to the wallet.
    pub coins: usize,
    /// Coin-Gen runs made, including the successful one.
    pub attempts: usize,
    /// Wallet coins consumed across all runs.
    pub seeds_spent: usize,
}

/// One party's output of one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochOutcome<F: Field> {
    /// The wallet after the epoch: the pre-split remainder handed back by
    /// the gen plane, extended with the fresh batch on success.
    pub wallet: CoinWallet<F>,
    /// The serve plane's decoded coins, one per slot in slot order.
    pub served: Vec<Result<F, CoinError>>,
    /// The gen plane's result — `None` when no refill was scheduled.
    pub refill: Option<Result<RefillReport, ProtocolError>>,
}

/// The serve plane: one expose per reserved share.
enum SlotState<F: Field> {
    Running(ExposeMachine<ExposeMsg<F>, F>),
    Done,
}

/// The gen plane's in-flight machine: `coin_gen_with_retry` boxed to its
/// final (remainder wallet, batch-or-blame) pair.
type GenMachine<F> =
    BoxedMachine<CoinGenMsg<F>, (CoinWallet<F>, Result<(CoinBatch<F>, RetryReport), ProtocolError>)>;

/// The gen plane.
enum GenState<F: Field> {
    /// No refill this epoch: the wallet just waits for the serve plane.
    Idle(CoinWallet<F>),
    /// A retry-wrapped Coin-Gen run in flight.
    Running(GenMachine<F>),
    /// Finished (or never started); wallet already merged with any batch.
    Done(CoinWallet<F>, Option<Result<RefillReport, ProtocolError>>),
    /// Transient marker while ownership moves between states.
    Poisoned,
}

/// One beacon epoch for one party: serve `serve_count` coins off the
/// wallet front while (optionally) refilling the remainder via Coin-Gen.
///
/// All honest parties must construct this machine in the same round with
/// wallets in the same state and identical `serve_count` / `refill`
/// choices — the beacon service derives both deterministically from
/// snapshotable state, so resumed runs make the same choices.
pub struct EpochMachine<F: Field> {
    serve: Vec<SlotState<F>>,
    served: Vec<Option<Result<F, CoinError>>>,
    gen: GenState<F>,
}

impl<F: Field> EpochMachine<F> {
    /// Build the epoch: pop `serve_count` shares for the serve plane
    /// (oldest coins first, preserving the wallets' lock-step positions)
    /// and hand the remainder to `coin_gen_with_retry` when `refill` is
    /// set.
    ///
    /// A party whose wallet runs short mid-split serves
    /// [`SealedShare::absent`] for the missing slots — it abstains from
    /// those exposes but still learns the coins, mirroring Fig. 6's
    /// non-contributor behaviour.
    pub fn new(
        cfg: CoinGenConfig,
        mut wallet: CoinWallet<F>,
        serve_count: usize,
        refill: Option<RetryPolicy>,
    ) -> Self {
        let t = cfg.params.t;
        let serve: Vec<SlotState<F>> = (0..serve_count)
            .map(|_| {
                let share = wallet.pop().unwrap_or_else(|_| SealedShare::absent());
                SlotState::Running(ExposeMachine::new(share, t, ExposeVia::PointToPoint))
            })
            .collect();
        let gen = match refill {
            Some(policy) => GenState::Running(Box::new(coin_gen_with_retry::<CoinGenMsg<F>, F>(
                cfg, wallet, policy,
            ))),
            None => GenState::Idle(wallet),
        };
        EpochMachine { served: vec![None; serve_count], serve, gen }
    }

    /// Whether both planes have finished.
    fn all_done(&self) -> bool {
        matches!(self.gen, GenState::Done(..))
            && self.serve.iter().all(|s| matches!(s, SlotState::Done))
    }

    /// Collect the finished epoch's outcome, consuming the plane states.
    fn finish(&mut self) -> EpochOutcome<F> {
        let (wallet, refill) = match std::mem::replace(&mut self.gen, GenState::Poisoned) {
            GenState::Done(w, r) => (w, r),
            _ => unreachable!("finish() requires a Done gen plane"),
        };
        let served = self
            .served
            .iter_mut()
            .map(|s| s.take().unwrap_or(Err(CoinError::WalletEmpty)))
            .collect();
        EpochOutcome { wallet, served, refill }
    }
}

/// Filter one plane's messages out of the multiplexed inbox.
fn plane_inbox<F: Field, N>(
    inbox: &Inbox<BeaconMsg<F>>,
    mut select: impl FnMut(&BeaconMsg<F>) -> Option<N>,
) -> Inbox<N> {
    let msgs: Vec<Received<N>> = inbox
        .iter()
        .filter_map(|r| {
            select(&r.msg).map(|msg| Received {
                from: r.from,
                broadcast: r.broadcast,
                seq: r.seq,
                msg,
            })
        })
        .collect();
    Inbox::from_messages(msgs)
}

impl<F: Field> RoundMachine<BeaconMsg<F>> for EpochMachine<F> {
    type Output = EpochOutcome<F>;

    fn round(&mut self, view: RoundView<'_, BeaconMsg<F>>) -> Step<BeaconMsg<F>, Self::Output> {
        let mut out = view.outbox();

        // Gen plane first — the RNG draw order must not depend on which
        // planes happen to still be live.
        if let GenState::Running(_) = self.gen {
            let inbox = plane_inbox(view.inbox, |m| match m {
                BeaconMsg::Gen(g) => Some(g.clone()),
                BeaconMsg::Serve { .. } => None,
            });
            let sub = RoundView {
                id: view.id,
                n: view.n,
                round: view.round,
                inbox: &inbox,
                rng: &mut *view.rng,
            };
            let gen = std::mem::replace(&mut self.gen, GenState::Poisoned);
            let GenState::Running(mut m) = gen else { unreachable!() };
            match m.round(sub) {
                Step::Continue(o) => {
                    out.append(o.map(BeaconMsg::Gen));
                    self.gen = GenState::Running(m);
                }
                Step::Done((mut wallet, res)) => {
                    let report = res.map(|(batch, report)| {
                        let coins = batch.shares.len();
                        wallet.extend(batch.shares);
                        RefillReport {
                            coins,
                            attempts: report.attempts,
                            seeds_spent: report.seeds_spent,
                        }
                    });
                    self.gen = GenState::Done(wallet, Some(report));
                }
            }
        } else if let GenState::Idle(_) = self.gen {
            let GenState::Idle(wallet) = std::mem::replace(&mut self.gen, GenState::Poisoned)
            else {
                unreachable!()
            };
            self.gen = GenState::Done(wallet, None);
        }

        // Serve plane: slots in ascending order.
        for (i, slot) in self.serve.iter_mut().enumerate() {
            if let SlotState::Running(m) = slot {
                let want = i as u32;
                let inbox = plane_inbox(view.inbox, |msg| match msg {
                    BeaconMsg::Serve { slot, msg } if *slot == want => Some(*msg),
                    _ => None,
                });
                let sub = RoundView {
                    id: view.id,
                    n: view.n,
                    round: view.round,
                    inbox: &inbox,
                    rng: &mut *view.rng,
                };
                match m.round(sub) {
                    Step::Continue(o) => {
                        out.append(o.map(|msg| BeaconMsg::Serve { slot: want, msg }));
                    }
                    Step::Done(res) => {
                        self.served[i] = Some(res);
                        *slot = SlotState::Done;
                    }
                }
            }
        }

        if self.all_done() {
            debug_assert!(out.is_empty(), "finished planes must not leave queued sends");
            Step::Done(self.finish())
        } else {
            Step::Continue(out)
        }
    }

    fn phase_name(&self) -> &'static str {
        match (&self.gen, self.serve.iter().any(|s| matches!(s, SlotState::Running(_)))) {
            (GenState::Running(_), true) => "epoch/gen+serve",
            (GenState::Running(_), false) => "epoch/gen",
            (_, true) => "epoch/serve",
            _ => "epoch/drain",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_core::{Params, TrustedDealer};
    use dprbg_field::Gf2k;
    use dprbg_sim::{BoxedMachine, ParRunner, StepRunner};

    type F = Gf2k<32>;

    fn cfg(n: usize, t: usize) -> CoinGenConfig {
        CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 8 }
    }

    fn fleet(
        n: usize,
        t: usize,
        count: usize,
        seed: u64,
        serve: usize,
        refill: Option<RetryPolicy>,
    ) -> Vec<BoxedMachine<BeaconMsg<F>, EpochOutcome<F>>> {
        TrustedDealer::deal_wallets::<F>(Params::p2p_model(n, t).unwrap(), count, seed)
            .into_iter()
            .map(|w| {
                Box::new(EpochMachine::new(cfg(n, t), w, serve, refill))
                    as BoxedMachine<BeaconMsg<F>, _>
            })
            .collect()
    }

    #[test]
    fn serve_only_epoch_takes_two_rounds() {
        let res = StepRunner::new(7, 40).run(fleet(7, 1, 6, 400, 3, None));
        // One *communication* round: the share send (the decode call
        // consumes it without sending anything, so it profiles no round).
        assert_eq!(res.rounds.len(), 1, "pure serve plane = one Coin-Expose window");
        let outs = res.unwrap_all();
        for out in &outs {
            assert_eq!(out.wallet.len(), 3);
            assert_eq!(out.served.len(), 3);
            assert!(out.refill.is_none());
            for c in &out.served {
                c.as_ref().unwrap();
            }
        }
        // Unanimity across parties.
        for w in outs.windows(2) {
            assert_eq!(w[0].served, w[1].served);
        }
    }

    #[test]
    fn pipelined_epoch_is_no_slower_than_gen_alone() {
        let n = 7;
        let policy = RetryPolicy { max_attempts: 3, seed_budget: 8 };
        // Gen alone (serve_count = 0).
        let gen_only = StepRunner::new(n, 41).run(fleet(n, 1, 10, 410, 0, Some(policy)));
        let gen_rounds = gen_only.rounds.len();
        assert!(gen_rounds > 2, "Coin-Gen must dominate the epoch");
        // Gen + 4 serves, overlapped.
        let both = StepRunner::new(n, 41).run(fleet(n, 1, 10, 410, 4, Some(policy)));
        assert_eq!(
            both.rounds.len(),
            gen_rounds,
            "serving during refill must not stretch the epoch"
        );
        let outs = both.unwrap_all();
        for out in &outs {
            assert_eq!(out.served.len(), 4);
            let refill = out.refill.clone().unwrap().unwrap();
            assert!(refill.coins > 0);
            // Wallet = 10 dealt − 4 served − seeds + fresh batch.
            assert_eq!(out.wallet.len(), 10 - 4 - refill.seeds_spent + refill.coins);
        }
        for w in outs.windows(2) {
            assert_eq!(w[0].served, w[1].served);
            assert_eq!(w[0].refill, w[1].refill);
        }
    }

    #[test]
    fn executors_agree_on_epoch_transcripts() {
        let policy = RetryPolicy { max_attempts: 2, seed_budget: 6 };
        let a = StepRunner::new(7, 42).run(fleet(7, 1, 9, 420, 2, Some(policy)));
        let b = ParRunner::new(7, 42).run(fleet(7, 1, 9, 420, 2, Some(policy)));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.report, b.report);
    }

    #[test]
    fn short_wallet_slots_abstain_but_still_learn() {
        // Parties hold 2 coins but the epoch serves 3: slot 2 is exposed
        // by nobody, so it fails to decode — deterministically, at every
        // party — while slots 0 and 1 still succeed.
        let res = StepRunner::new(7, 43).run(fleet(7, 1, 2, 430, 3, None));
        let outs = res.unwrap_all();
        for out in &outs {
            assert!(out.served[0].is_ok());
            assert!(out.served[1].is_ok());
            assert!(out.served[2].is_err());
        }
        for w in outs.windows(2) {
            assert_eq!(w[0].served, w[1].served);
        }
    }

    #[test]
    fn beacon_msg_wire_size_counts_slot_tag() {
        let m: BeaconMsg<F> = BeaconMsg::Serve { slot: 7, msg: ExposeMsg(F::from_u64(3)) };
        assert_eq!(m.wire_bytes(), 4 + F::wire_bytes_static());
    }
}
