//! The beacon service: a long-running, crash-recoverable epoch driver.
//!
//! [`BeaconService`] owns everything that outlives one epoch — the
//! parties' sealed-coin wallets, the exposed-coin [`Reservoir`], the
//! [`Supervisor`], cumulative statistics, the cost ledger, and a trace
//! cursor — and drives one [`EpochMachine`] fleet per epoch over either
//! executor. Three properties make it recoverable:
//!
//! 1. **Epochs are hermetic.** Each epoch is an independent fleet run
//!    whose RNG seed is derived from `(master seed, epoch number)`, so a
//!    run's randomness depends only on snapshotable data, never on how
//!    many process lifetimes preceded it.
//! 2. **All cross-epoch state is plain data.** No thread, socket, or RNG
//!    survives an epoch boundary; [`BeaconService::snapshot`] serializes
//!    the whole service and [`BeaconService::restore`] rebuilds it, so a
//!    process killed at *any* epoch boundary and restored continues
//!    byte-identically to one that never died (property-tested across
//!    both executors).
//! 3. **Epochs are transactional.** A protocol epoch commits only when
//!    every party's outcome is consistent (lock-step wallets, unanimous
//!    serve/refill results); anything else rolls the wallets back to the
//!    epoch-start state and lets the [`Supervisor`] decide how to
//!    proceed. Honest-party disagreement — the one outcome the paper's
//!    model rules out — is reported as [`BeaconError::Unsound`], never
//!    papered over.

use dprbg_core::{
    CoinGenConfig, CoinWallet, ProtocolError, RetryPolicy, TrustedDealer, MIN_SEEDS_PER_ATTEMPT,
};
use dprbg_field::Field;
use dprbg_metrics::{CostReport, CostSnapshot, LogicalTime, Registry};
use dprbg_sim::{
    AdaptiveAdversary, Attack, BoxedMachine, ParRunner, RunResult, StepRunner, TraceConfig,
};
use dprbg_trace::{Event, EventKind};

use crate::epoch::{BeaconMsg, EpochMachine, EpochOutcome, RefillReport};
use crate::health::{EpochOutcomeTag, FlightRecorder, HealthRecord, RefillStatus};
use crate::reservoir::{DrawOutcome, Reservoir, ReservoirConfig};
use crate::snapshot::{self, SnapshotError, SnapshotState};
use crate::supervisor::{EpochDecision, Mode, Supervisor};

/// SplitMix64's finalizer — the service's seed-derivation and digest
/// mixer. Statistically strong, dependency-free, and (unlike a stateful
/// RNG) a pure function of snapshotable inputs.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of epoch `epoch` under `master_seed`: a pure function of
/// snapshotable data, so restored services re-derive identical epochs.
pub fn epoch_seed(master_seed: u64, epoch: u64) -> u64 {
    mix64(master_seed ^ mix64(epoch.wrapping_add(1)))
}

/// Which executor drives the epoch fleet. Both are byte-identical per
/// seed, so the choice is a performance knob — and the determinism
/// property tests exploit that by mixing them freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorKind {
    /// The single-threaded [`StepRunner`].
    Step,
    /// The work-stealing [`ParRunner`] with its default worker pool.
    Par,
    /// The [`ParRunner`] pinned to an explicit worker count — the health
    /// plane's cross-thread-count determinism tests sweep this.
    ParThreads(usize),
}

/// Standing configuration of a [`BeaconService`]. Not serialized into
/// snapshots — the restorer supplies it and the snapshot's embedded
/// parameters are checked against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconConfig {
    /// Coin-Gen parameters for the gen plane.
    pub coin_gen: CoinGenConfig,
    /// Sizing of the exposed-coin reservoir.
    pub reservoir: ReservoirConfig,
    /// Refill the wallet when an epoch's serve split would leave it at
    /// or below this many sealed coins.
    pub wallet_low_water: usize,
    /// Retry/seed-budget policy for each refill.
    pub retry: RetryPolicy,
    /// Cap on the supervisor's backoff exponent.
    pub max_backoff_exp: u32,
    /// Round cap per epoch — the liveness backstop under adversaries
    /// that stall the protocol.
    pub max_rounds_per_epoch: u64,
}

/// A failure the service cannot turn into policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BeaconError {
    /// Honest parties disagreed on an epoch's outcome — a violation of
    /// the paper's unanimity guarantees (Theorem 1), impossible while
    /// the adversary stays within the `f ≤ t` model.
    Unsound {
        /// The epoch whose outcomes disagreed.
        epoch: u64,
        /// Which consistency check failed.
        detail: &'static str,
    },
}

impl std::fmt::Display for BeaconError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BeaconError::Unsound { epoch, detail } => {
                write!(f, "unsound epoch {epoch}: honest parties disagreed on {detail}")
            }
        }
    }
}

impl std::error::Error for BeaconError {}

/// Cumulative service statistics (snapshotted).
// lint: snapshot-abi(v2, 5efdad8e74da19d0)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BeaconStats {
    /// Epochs driven (including skipped ones).
    pub epochs: u64,
    /// Epochs that ran the protocol fleet.
    pub protocol_epochs: u64,
    /// Epochs skipped by backoff or read-only mode.
    pub skipped_epochs: u64,
    /// Coins exposed and admitted into the reservoir. Conservation
    /// invariant: always equals `coins_served` plus the current stock —
    /// an exposed coin is served or banked, never destroyed.
    pub coins_exposed: u64,
    /// Coins granted to consumers.
    pub coins_served: u64,
    /// Draws answered with [`DrawOutcome::WouldBlock`].
    pub would_block: u64,
    /// Draws answered with [`DrawOutcome::Starved`].
    pub starved: u64,
    /// Successful gen-plane refills.
    pub refills: u64,
    /// Failed gen-plane refills.
    pub refill_failures: u64,
    /// Sealed coins consumed as Coin-Gen seeds.
    pub seeds_spent: u64,
    /// Epochs rolled back for cross-party divergence.
    pub rollbacks: u64,
    /// Serve-plane exposes that failed to decode.
    pub expose_failures: u64,
    /// Synchronous protocol rounds driven.
    pub rounds: u64,
}

/// What one [`BeaconService::run_epoch`] call did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochReport<F: Field> {
    /// The epoch number driven.
    pub epoch: u64,
    /// The supervisor's decision for this epoch.
    pub decision: EpochDecision,
    /// Whether a protocol fleet actually ran.
    pub ran: bool,
    /// Protocol rounds the epoch took (0 when skipped).
    pub rounds: u64,
    /// Coins exposed this epoch and admitted to the reservoir ahead of
    /// the serve pass.
    pub exposed: usize,
    /// The gen plane's result, if a refill was scheduled.
    pub refill: Option<Result<RefillReport, ProtocolError>>,
    /// Whether the epoch was rolled back (wallets restored, nothing
    /// deposited).
    pub rolled_back: bool,
    /// Per-draw outcomes, grouped by consumer in demand order.
    pub draws: Vec<(u32, DrawOutcome<F>)>,
    /// A rendered forensic health dump, attached on the rollback path so
    /// the evidence travels with the report that needs it.
    pub forensics: Option<String>,
}

/// The long-running beacon: all cross-epoch state, plain and
/// snapshotable.
pub struct BeaconService<F: Field> {
    cfg: BeaconConfig,
    master_seed: u64,
    epoch: u64,
    /// Per-party wallets, lock-step by construction (divergent epochs
    /// roll back).
    wallets: Vec<CoinWallet<F>>,
    reservoir: Reservoir<F>,
    supervisor: Supervisor,
    stats: BeaconStats,
    /// Cumulative per-party cost ledger across all epochs.
    ledger: CostReport,
    /// Rounds folded into the trace cursor so far.
    trace_rounds: u64,
    /// Events folded into the trace digest so far.
    trace_events: u64,
    /// Order-independent digest of every trace event the service ever
    /// produced (rebased to service-global rounds). Snapshotting the
    /// digest instead of the events keeps snapshots O(1) in run length.
    trace_digest: u64,
    /// Health-plane registry: counters/gauges/histograms keyed on
    /// logical time, byte-identical across executors.
    registry: Registry,
    /// Bounded ring of per-epoch health records (the flight recorder).
    recorder: FlightRecorder,
}

/// How many per-epoch [`HealthRecord`]s the flight recorder retains.
/// A service constant, not serialized — see [`FlightRecorder`].
pub const FLIGHT_RECORDER_EPOCHS: usize = 64;

/// The fault injections threaded into one epoch fleet run: an in-model
/// message-tap adversary and/or the fire-drill's post-run output
/// discard (see [`BeaconService::rollback_drill`]).
#[derive(Debug, Clone, Copy, Default)]
struct Injection {
    adversary: Option<(Attack, usize)>,
    drill: Option<usize>,
}

impl<F: Field> BeaconService<F> {
    /// A fresh beacon: `initial_coins` sealed coins per wallet dealt by
    /// the trusted dealer of §1.2 (seeded from `master_seed`), empty
    /// reservoir, healthy supervisor.
    pub fn new(cfg: BeaconConfig, master_seed: u64, initial_coins: usize) -> Self {
        let n = cfg.coin_gen.params.n;
        let wallets = TrustedDealer::deal_wallets::<F>(
            cfg.coin_gen.params,
            initial_coins,
            mix64(master_seed ^ 0xDEA1),
        );
        BeaconService {
            reservoir: Reservoir::new(cfg.reservoir),
            supervisor: Supervisor::new(cfg.max_backoff_exp),
            cfg,
            master_seed,
            epoch: 0,
            wallets,
            stats: BeaconStats::default(),
            ledger: CostReport::from_snapshots((0..n).map(|_| CostSnapshot::default())),
            trace_rounds: 0,
            trace_events: 0,
            trace_digest: 0,
            registry: Registry::new(),
            recorder: FlightRecorder::new(FLIGHT_RECORDER_EPOCHS),
        }
    }

    /// The next epoch number to be driven.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BeaconStats {
        self.stats
    }

    /// The exposed-coin reservoir.
    pub fn reservoir(&self) -> &Reservoir<F> {
        &self.reservoir
    }

    /// The failure-policy supervisor.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Sealed coins left in the (lock-step) wallets.
    pub fn wallet_level(&self) -> usize {
        self.wallets.first().map_or(0, CoinWallet::len)
    }

    /// The cumulative per-party cost ledger.
    pub fn ledger(&self) -> &CostReport {
        &self.ledger
    }

    /// The trace cursor: `(rounds, events, digest)` folded so far.
    pub fn trace_cursor(&self) -> (u64, u64, u64) {
        (self.trace_rounds, self.trace_events, self.trace_digest)
    }

    /// The health-plane registry (counters, gauges, histograms).
    pub fn health(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder: the last [`FLIGHT_RECORDER_EPOCHS`] epochs'
    /// health records.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Record a completed crash recovery: the service was down for
    /// `down_epochs` epochs and has been restored. Called by the
    /// operator/harness after [`BeaconService::restore`] succeeds —
    /// restore itself cannot know how long the process was dead.
    pub fn note_recovery(&mut self, down_epochs: u64) {
        self.registry.counter_add("beacon_recoveries_total", &[], 1);
        self.registry
            .histogram_observe("beacon_recovery_depth_epochs", &[], down_epochs);
    }

    /// Render the flight recorder plus supervisor state as a forensic
    /// report. The rollback path attaches this to its [`EpochReport`];
    /// callers that hit [`BeaconError::Unsound`] should call it
    /// themselves before discarding the service.
    pub fn forensic_report(&self, reason: &str) -> String {
        let mut out = self.recorder.render(reason);
        out.push_str(&format!(
            "supervisor: mode={} failures={} blamed={:?}\n",
            self.supervisor.mode().label(),
            self.supervisor.failures(),
            self.supervisor.blamed(),
        ));
        out
    }

    /// Drive one epoch: decide policy, (maybe) run the two-plane fleet,
    /// commit or roll back, admit exposed coins, and serve `demands`
    /// (`(consumer id, coins wanted)` pairs) with round-robin fairness.
    ///
    /// `adversary` injects an [`AdaptiveAdversary`] with the given attack
    /// and corruption budget into the epoch's message layer.
    ///
    /// # Errors
    ///
    /// [`BeaconError::Unsound`] when honest parties disagree. The
    /// epoch's effects are discarded wholesale — wallets, reservoir,
    /// ledger, trace cursor, and statistics are left exactly as they
    /// were — and only the epoch counter advances, so a caller that
    /// chooses to continue is not forced to replay the same doomed
    /// epoch (and the snapshot/replay invariant survives either way).
    pub fn run_epoch(
        &mut self,
        executor: ExecutorKind,
        demands: &[(u32, u32)],
        adversary: Option<(Attack, usize)>,
    ) -> Result<EpochReport<F>, BeaconError> {
        let epoch = self.epoch;
        let mode_before = self.supervisor.mode();
        let decision = self.supervisor.decide(epoch);
        let mut report = EpochReport {
            epoch,
            decision,
            ran: false,
            rounds: 0,
            exposed: 0,
            refill: None,
            rolled_back: false,
            draws: Vec::new(),
            forensics: None,
        };

        let mut fresh = Vec::new();
        if decision == EpochDecision::Run {
            let (serve_count, refill) = self.plan(demands);
            if serve_count > 0 || refill.is_some() {
                match self
                    .run_protocol(
                        epoch,
                        serve_count,
                        refill,
                        executor,
                        Injection { adversary, drill: None },
                        &mut report,
                    )
                {
                    Ok(coins) => fresh = coins,
                    Err(e) => {
                        self.stats.epochs += 1;
                        self.epoch += 1;
                        return Err(e);
                    }
                }
            }
        } else {
            self.stats.skipped_epochs += 1;
        }

        // Fresh coins answer this epoch's demand before the leftover is
        // banked: a demand spike larger than the reservoir's capacity is
        // served in full (wallet permitting), never exposed-then-refused.
        report.exposed = fresh.len();
        self.stats.coins_exposed += fresh.len() as u64;
        self.reservoir.admit(fresh);

        // Serve demand from stock. Starvation is sharp: only a beacon
        // that can never refill again starves its consumers.
        let starving = self.supervisor.mode() == Mode::ReadOnly;
        report.draws = self.reservoir.serve(demands, starving);
        for (_, outcome) in &report.draws {
            match outcome {
                DrawOutcome::Coin(_) => self.stats.coins_served += 1,
                DrawOutcome::WouldBlock => self.stats.would_block += 1,
                DrawOutcome::Starved => self.stats.starved += 1,
            }
        }

        self.stats.epochs += 1;
        self.epoch += 1;
        self.record_health(mode_before, &mut report);
        Ok(report)
    }

    /// Fold one committed epoch into the health plane: registry metrics,
    /// a flight-recorder entry, and (on the rollback path) the forensic
    /// dump. Called only from [`Self::run_epoch`]'s `Ok` path — the
    /// Unsound path discards the epoch wholesale, health included, so
    /// the snapshot-equality contract survives.
    fn record_health(&mut self, mode_before: Mode, report: &mut EpochReport<F>) {
        let epoch = report.epoch;
        let at = LogicalTime::at_epoch(epoch);
        let outcome = match report.decision {
            EpochDecision::ReadOnly => EpochOutcomeTag::Degraded,
            EpochDecision::Skip => EpochOutcomeTag::Skipped,
            EpochDecision::Run if report.rolled_back => EpochOutcomeTag::RolledBack,
            EpochDecision::Run => EpochOutcomeTag::Committed,
        };

        let r = &mut self.registry;
        r.counter_add("beacon_epochs_total", &[("outcome", outcome.label())], 1);
        if report.ran {
            r.counter_add("beacon_rounds_total", &[], report.rounds);
            r.histogram_observe("beacon_epoch_rounds", &[], report.rounds);
        }
        if report.exposed > 0 {
            r.counter_add("beacon_coins_exposed_total", &[], report.exposed as u64);
        }

        let (mut served, mut would_block, mut starved) = (0u32, 0u32, 0u32);
        let mut grants: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
        for (consumer, draw) in &report.draws {
            match draw {
                DrawOutcome::Coin(_) => {
                    served += 1;
                    *grants.entry(*consumer).or_insert(0) += 1;
                }
                DrawOutcome::WouldBlock => would_block += 1,
                DrawOutcome::Starved => starved += 1,
            }
        }
        for (label, count) in
            [("coin", served), ("would_block", would_block), ("starved", starved)]
        {
            if count > 0 {
                r.counter_add("beacon_draws_total", &[("outcome", label)], count as u64);
            }
        }
        for (consumer, granted) in &grants {
            let consumer = consumer.to_string();
            r.counter_add("beacon_grants_total", &[("consumer", &consumer)], *granted);
        }

        let mut refill_status = RefillStatus::NotScheduled;
        let mut refill_attempts = 0u32;
        match &report.refill {
            Some(Ok(rr)) => {
                refill_status = RefillStatus::Ok;
                refill_attempts = rr.attempts as u32;
                r.counter_add("beacon_refills_total", &[("result", "ok")], 1);
                r.counter_add("beacon_refill_attempts_total", &[], rr.attempts as u64);
                r.counter_add("beacon_seeds_spent_total", &[], rr.seeds_spent as u64);
            }
            Some(Err(_)) => {
                refill_status = RefillStatus::Failed;
                r.counter_add("beacon_refills_total", &[("result", "failed")], 1);
            }
            None => {}
        }
        if report.rolled_back {
            r.counter_add("beacon_rollbacks_total", &[], 1);
        }

        let mode_after = self.supervisor.mode();
        if mode_after != mode_before {
            r.counter_add(
                "beacon_mode_transitions_total",
                &[("from", mode_before.label()), ("to", mode_after.label())],
                1,
            );
        }
        let wallet_level = self.wallets.first().map_or(0, CoinWallet::len);
        r.gauge_set("beacon_reservoir_level", &[], at, self.reservoir.level() as u64);
        r.gauge_set("beacon_wallet_level", &[], at, wallet_level as u64);
        r.gauge_set("beacon_supervisor_failures", &[], at, self.supervisor.failures() as u64);
        r.gauge_set("beacon_backoff_exp", &[], at, self.supervisor.backoff_exp() as u64);

        self.recorder.push(HealthRecord {
            epoch,
            outcome,
            mode: mode_after,
            rounds: report.rounds,
            exposed: report.exposed as u32,
            served,
            would_block,
            starved,
            wallet_level: wallet_level as u32,
            reservoir_level: self.reservoir.level() as u32,
            failures: self.supervisor.failures(),
            backoff_exp: self.supervisor.backoff_exp(),
            refill: refill_status,
            refill_attempts,
        });

        if report.rolled_back {
            report.forensics =
                Some(self.forensic_report("epoch rolled back: cross-party divergence"));
        }
    }

    /// Plan the epoch: how many coins to expose (serve plane) and
    /// whether to refill (gen plane). A pure function of snapshotable
    /// state plus this epoch's demands, so all parties — and all resumed
    /// incarnations — make the same choice.
    fn plan(&self, demands: &[(u32, u32)]) -> (usize, Option<RetryPolicy>) {
        let demand_total: usize = demands.iter().map(|&(_, want)| want as usize).sum();
        let stock = self.reservoir.level();
        let rcfg = self.reservoir.config();
        // Expose enough to meet demand and restore the low-water cushion.
        // Demand is served from the fresh coins before the leftover is
        // banked, so only the post-serve cushion is subject to the
        // capacity bound — clamping it keeps the post-serve level at or
        // under capacity (given stock ≤ capacity, which this preserves),
        // so the admission after the fleet run never destroys a coin.
        let cushion = rcfg.low_water.min(rcfg.capacity);
        let want = (demand_total + cushion).saturating_sub(stock);
        let avail = self.wallet_level();
        let mut serve_count = want.min(avail);
        let refill_needed = avail - serve_count <= self.cfg.wallet_low_water;
        if refill_needed {
            // Keep at least one attempt's worth of seeds for the gen
            // plane — serving them as output coins now would trade the
            // beacon's future for one epoch's throughput.
            serve_count = serve_count.min(avail.saturating_sub(MIN_SEEDS_PER_ATTEMPT));
        }
        (serve_count, refill_needed.then_some(self.cfg.retry))
    }

    /// Run the two-plane fleet for `epoch` and commit or roll back;
    /// returns the epoch's successfully exposed coins (empty on a
    /// rollback) for the caller to serve and bank.
    fn run_protocol(
        &mut self,
        epoch: u64,
        serve_count: usize,
        refill: Option<RetryPolicy>,
        executor: ExecutorKind,
        inject: Injection,
        report: &mut EpochReport<F>,
    ) -> Result<Vec<F>, BeaconError> {
        let n = self.cfg.coin_gen.params.n;
        let before = self.wallets.clone();
        let machines: Vec<BoxedMachine<BeaconMsg<F>, EpochOutcome<F>>> = self
            .wallets
            .iter()
            .cloned()
            .map(|w| {
                Box::new(EpochMachine::new(self.cfg.coin_gen, w, serve_count, refill))
                    as BoxedMachine<BeaconMsg<F>, _>
            })
            .collect();

        let seed = epoch_seed(self.master_seed, epoch);
        let (mut res, corrupted) = self.run_fleet(n, seed, executor, inject.adversary, machines);
        if let Some(party) = inject.drill {
            res.outputs[party - 1] = None;
        }
        self.commit_epoch(epoch, res, &corrupted, before, report)
    }

    /// Fire-drill for the abort machinery: run one real (adversary-free)
    /// epoch fleet, then discard the last party's output before the
    /// consistency audit, exactly as if that party's process had died
    /// mid-epoch. The divergence audit, the transactional rollback, the
    /// supervisor's failure policy, and the forensic flight-recorder
    /// dump all fire through the same code a real incident would take.
    ///
    /// The drill exists because no in-model adversary can reach the
    /// rollback path through [`Self::run_epoch`]: within the `f ≤ t`
    /// model failures are symmetric and commit as *failed* epochs (the
    /// E12 campaign's zero-unsound evidence), so the audit is
    /// defense-in-depth against states the theorems rule out. Operators
    /// (and the repro corpus) use the drill to prove the plumbing end to
    /// end before trusting it in anger.
    ///
    /// The drill is a real epoch: the rollback restores the wallets, but
    /// the epoch counter advances, the supervisor records the failure
    /// (expect a backoff), and the flight recorder keeps the rolled-back
    /// record. The returned report has `rolled_back` set and carries the
    /// forensic dump.
    pub fn rollback_drill(&mut self, executor: ExecutorKind) -> EpochReport<F> {
        let epoch = self.epoch;
        let mode_before = self.supervisor.mode();
        let mut report = EpochReport {
            epoch,
            decision: EpochDecision::Run,
            ran: false,
            rounds: 0,
            exposed: 0,
            refill: None,
            rolled_back: false,
            draws: Vec::new(),
            forensics: None,
        };
        // A minimal serve-plane fleet (one coin, no refill): enough
        // protocol to produce the per-party outputs the audit rejects.
        let serve_count = 1usize.min(self.wallet_level());
        let drill_party = self.cfg.coin_gen.params.n;
        let inject = Injection { adversary: None, drill: Some(drill_party) };
        let coins = self
            .run_protocol(epoch, serve_count, None, executor, inject, &mut report)
            .unwrap_or_else(|_| unreachable!("a drilled epoch diverges, and divergence rolls back"));
        debug_assert!(coins.is_empty(), "a rolled-back epoch exposes no coins");
        self.stats.epochs += 1;
        self.epoch += 1;
        self.record_health(mode_before, &mut report);
        report
    }

    /// Audit one epoch's fleet result and commit, roll back, or reject
    /// it as unsound. Factored out of [`Self::run_protocol`] so the
    /// Unsound path's state discipline is unit-testable — no in-model
    /// adversary can make honest fleet machines disagree.
    fn commit_epoch(
        &mut self,
        epoch: u64,
        res: RunResult<EpochOutcome<F>>,
        corrupted: &std::collections::BTreeSet<usize>,
        before: Vec<CoinWallet<F>>,
        report: &mut EpochReport<F>,
    ) -> Result<Vec<F>, BeaconError> {
        let n = self.cfg.coin_gen.params.n;
        report.ran = true;
        report.rounds = res.rounds.len() as u64;

        // Consistency audit — before any service state is touched, so an
        // unsound verdict discards the epoch wholesale. Wallets must stay
        // lock-step across *all* parties (a diverged wallet poisons every
        // future expose), each party's surviving shares must descend from
        // its own pre-epoch wallet, and the parties the adversary did not
        // touch must agree exactly.
        let honest: Vec<usize> =
            (1..=n).filter(|id| !corrupted.contains(id)).collect();
        let divergent = res.outputs.iter().any(Option::is_none)
            || !Self::lock_step(&res.outputs)
            || !Self::retention_intact(&res.outputs, &before);
        if !divergent {
            // All outputs present and lock-step; now honest parties must
            // be *unanimous* — anything else breaks Theorem 1. Checked
            // before stats/ledger/trace merge so the Unsound path leaves
            // the service byte-identical to its pre-epoch state.
            let outcomes: Vec<&EpochOutcome<F>> = res
                .outputs
                .iter()
                .map(|o| o.as_ref().unwrap_or_else(|| unreachable!()))
                .collect();
            for pair in honest.windows(2) {
                let (a, b) = (outcomes[pair[0] - 1], outcomes[pair[1] - 1]);
                if a.served != b.served {
                    return Err(BeaconError::Unsound { epoch, detail: "served coin values" });
                }
                if a.refill != b.refill {
                    return Err(BeaconError::Unsound { epoch, detail: "refill results" });
                }
            }
        }

        // The epoch's outcome is representable as policy: commit the
        // accounting. The rollback path keeps it too — the fleet really
        // ran and its rounds, costs, and trace are part of the service's
        // history even though its wallets are not.
        self.stats.protocol_epochs += 1;
        self.stats.rounds += report.rounds;
        self.ledger.merge(&res.report);
        self.fold_trace(&res);

        if divergent {
            // Adversary-induced divergence: transactional rollback.
            self.wallets = before;
            self.stats.rollbacks += 1;
            report.rolled_back = true;
            let err = ProtocolError::Aborted {
                blame: corrupted.iter().copied().collect(),
                reason: "epoch diverged across parties",
            };
            self.supervisor.on_failure(epoch, &err, self.wallet_level());
            return Ok(Vec::new());
        }

        // Commit: adopt every party's post-epoch wallet, hand the
        // consensus coins back for serving, and convert results into
        // supervisor policy.
        let consensus = res.outputs[honest.first().map_or(1, |&id| id) - 1]
            .clone()
            .unwrap_or_else(|| unreachable!());
        self.wallets =
            res.outputs.into_iter().map(|o| o.unwrap_or_else(|| unreachable!()).wallet).collect();

        let ok_coins: Vec<F> = consensus.served.iter().filter_map(|r| (*r).ok()).collect();
        let failures = consensus.served.len() - ok_coins.len();
        self.stats.expose_failures += failures as u64;

        report.refill = consensus.refill.clone();
        match &consensus.refill {
            Some(Ok(r)) => {
                self.stats.refills += 1;
                self.stats.seeds_spent += r.seeds_spent as u64;
                self.supervisor.on_success();
            }
            Some(Err(e)) => {
                self.stats.refill_failures += 1;
                self.supervisor.on_failure(epoch, e, self.wallet_level());
            }
            None if failures > 0 => {
                // Serve-plane decode failures without a refill verdict
                // still count as a failed protocol epoch.
                let err = ProtocolError::Coin(crate::CoinError::DecodeFailed);
                self.supervisor.on_failure(epoch, &err, self.wallet_level());
            }
            None => {}
        }
        Ok(ok_coins)
    }

    /// Drive the fleet under the chosen executor, with tracing and the
    /// optional adversary tap; returns the run and the corrupted set.
    fn run_fleet(
        &self,
        n: usize,
        seed: u64,
        executor: ExecutorKind,
        adversary: Option<(Attack, usize)>,
        machines: Vec<BoxedMachine<BeaconMsg<F>, EpochOutcome<F>>>,
    ) -> (RunResult<EpochOutcome<F>>, std::collections::BTreeSet<usize>) {
        let max_rounds = self.cfg.max_rounds_per_epoch;
        let tap = adversary.map(|(attack, f)| {
            let adv = AdaptiveAdversary::new(attack, n, f, mix64(seed ^ 0xBAD));
            let handle = adv.handle();
            (adv, handle)
        });
        match executor {
            ExecutorKind::Step => {
                let runner = StepRunner::new(n, seed)
                    .with_trace(TraceConfig::full())
                    .with_max_rounds(max_rounds);
                match tap {
                    Some((adv, h)) => (runner.with_tap(adv).run(machines), h.snapshot()),
                    None => (runner.run(machines), std::collections::BTreeSet::new()),
                }
            }
            ExecutorKind::Par | ExecutorKind::ParThreads(_) => {
                let mut runner = ParRunner::new(n, seed)
                    .with_trace(TraceConfig::full())
                    .with_max_rounds(max_rounds);
                if let ExecutorKind::ParThreads(threads) = executor {
                    runner = runner.with_threads(threads);
                }
                match tap {
                    Some((adv, h)) => (runner.with_tap(adv).run(machines), h.snapshot()),
                    None => (runner.run(machines), std::collections::BTreeSet::new()),
                }
            }
        }
    }

    /// Whether every party finished with the same wallet length, serve
    /// count, and refill verdict shape — the cross-party half of the
    /// lock-step invariant. Wallet share *values* differ across parties
    /// by design (each holds its own Shamir shares), so content is
    /// audited per party against its own pre-epoch wallet by
    /// [`Self::retention_intact`].
    fn lock_step(outputs: &[Option<EpochOutcome<F>>]) -> bool {
        let mut shapes = outputs.iter().map(|o| {
            o.as_ref().map(|out| {
                (out.wallet.len(), out.served.len(), out.refill.as_ref().map(Result::is_ok))
            })
        });
        let Some(first) = shapes.next() else { return true };
        first.is_some() && shapes.all(|s| s == first)
    }

    /// Whether each party's post-epoch wallet is its pre-epoch wallet
    /// with some shares popped off the front and fresh batch shares
    /// appended at the back — the only shape an honest epoch can
    /// produce. This checks the surviving share *values*, not just
    /// lengths: a wallet whose retained shares changed would poison a
    /// future expose, so it must trigger the transactional rollback now
    /// rather than surface as a decode failure epochs later.
    fn retention_intact(outputs: &[Option<EpochOutcome<F>>], before: &[CoinWallet<F>]) -> bool {
        outputs.iter().zip(before).all(|(o, prior)| {
            let Some(out) = o.as_ref() else { return false };
            let fresh =
                out.refill.as_ref().and_then(|r| r.as_ref().ok()).map_or(0, |r| r.coins);
            let Some(retained) = out.wallet.len().checked_sub(fresh) else { return false };
            if retained > prior.len() {
                return false;
            }
            let consumed = prior.len() - retained;
            (0..retained).all(|i| out.wallet.peek_at(i) == prior.peek_at(consumed + i))
        })
    }

    /// Fold one epoch's trace into the service-global cursor. The digest
    /// accumulates commutatively (wrapping addition of per-event
    /// hashes), so it is independent of the executor's event
    /// interleaving while still binding every event's content.
    fn fold_trace(&mut self, res: &RunResult<EpochOutcome<F>>) {
        let base = self.trace_rounds;
        if let Some(trace) = &res.trace {
            for ev in &trace.events {
                self.trace_digest =
                    self.trace_digest.wrapping_add(Self::event_hash(base, ev));
                self.trace_events += 1;
            }
        }
        self.trace_rounds += res.rounds.len() as u64;
    }

    /// A content hash of one trace event, rebased to service-global
    /// rounds.
    fn event_hash(base_round: u64, ev: &Event) -> u64 {
        let mut h = mix64(ev.party as u64 ^ mix64(base_round + ev.round) ^ ((ev.seq as u64) << 32));
        let (tag, a, b) = match &ev.kind {
            EventKind::Begin { phase } => (1u64, Self::str_hash(phase), 0),
            EventKind::Flush { messages, bytes } => (2, *messages, *bytes),
            EventKind::End { cost } => (
                3,
                cost.field_adds ^ cost.field_muls.rotate_left(16),
                cost.prg_invocations ^ cost.messages.rotate_left(16) ^ cost.bytes.rotate_left(32),
            ),
            EventKind::Mark { label } => (4, Self::str_hash(label), 0),
        };
        h = mix64(h ^ tag);
        h = mix64(h ^ a);
        mix64(h ^ b)
    }

    /// FNV-1a over a label's bytes.
    fn str_hash(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Serialize the entire cross-epoch state into the versioned binary
    /// snapshot format (the versioned binary codec in `snapshot.rs`).
    pub fn snapshot(&self) -> Vec<u8> {
        let state = SnapshotState {
            n: self.cfg.coin_gen.params.n as u32,
            field_bits: F::bits(),
            master_seed: self.master_seed,
            epoch: self.epoch,
            wallets: self
                .wallets
                .iter()
                .map(|w| (0..w.len()).map(|i| w.peek_at(i).and_then(|s| s.sigma)).collect())
                .collect(),
            reservoir: {
                let (_, coins, cursor, grants) = self.reservoir.parts();
                (coins, cursor, grants.clone())
            },
            supervisor: {
                let (mode, failures, max_exp, blamed) = self.supervisor.parts();
                (mode, failures, max_exp, blamed.clone())
            },
            stats: self.stats,
            trace: (self.trace_rounds, self.trace_events, self.trace_digest),
            ledger: (
                self.ledger.per_party.iter().map(|p| p.cost).collect(),
                self.ledger.comm,
            ),
            registry: self.registry.clone(),
            recorder: self.recorder.parts(),
        };
        snapshot::encode(&state)
    }

    /// Rebuild a service from `cfg` and snapshot `bytes`, continuing
    /// byte-identically to the service that took the snapshot.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: corrupt/truncated/foreign bytes, or a
    /// snapshot whose embedded parameters (`n`, field width) disagree
    /// with `cfg`.
    pub fn restore(cfg: BeaconConfig, bytes: &[u8]) -> Result<Self, SnapshotError> {
        let state: SnapshotState<F> = snapshot::decode(bytes)?;
        if state.n as usize != cfg.coin_gen.params.n {
            return Err(SnapshotError::ParamMismatch { field: "party count n" });
        }
        if state.field_bits != F::bits() {
            return Err(SnapshotError::ParamMismatch { field: "field width k" });
        }
        let (coins, cursor, grants) = state.reservoir;
        let (mode, failures, max_exp, blamed) = state.supervisor;
        let (snaps, comm) = state.ledger;
        Ok(BeaconService {
            reservoir: Reservoir::from_parts(cfg.reservoir, coins, cursor, grants),
            supervisor: Supervisor::from_parts(mode, failures, max_exp, blamed),
            cfg,
            master_seed: state.master_seed,
            epoch: state.epoch,
            wallets: state
                .wallets
                .into_iter()
                .map(|w| {
                    w.into_iter()
                        .map(|sigma| dprbg_core::SealedShare { sigma })
                        .collect()
                })
                .collect(),
            stats: state.stats,
            ledger: CostReport {
                per_party: snaps
                    .into_iter()
                    .enumerate()
                    .map(|(i, cost)| dprbg_metrics::PartyCost { party: i + 1, cost })
                    .collect(),
                comm,
            },
            trace_rounds: state.trace.0,
            trace_events: state.trace.1,
            trace_digest: state.trace.2,
            registry: state.registry,
            recorder: {
                let (records, total) = state.recorder;
                FlightRecorder::from_parts(FLIGHT_RECORDER_EPOCHS, records, total)
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_core::{Params, SealedShare};
    use dprbg_field::Gf2k;
    use std::collections::BTreeSet;

    type F = Gf2k<32>;

    fn config() -> BeaconConfig {
        BeaconConfig {
            coin_gen: CoinGenConfig { params: Params::p2p_model(7, 1).unwrap(), batch_size: 8 },
            reservoir: crate::ReservoirConfig { capacity: 8, low_water: 2 },
            wallet_low_water: 0,
            retry: RetryPolicy { max_attempts: 3, seed_budget: 8 },
            max_backoff_exp: 3,
            max_rounds_per_epoch: 4096,
        }
    }

    fn blank_report(epoch: u64) -> EpochReport<F> {
        EpochReport {
            epoch,
            decision: EpochDecision::Run,
            ran: false,
            rounds: 0,
            exposed: 0,
            refill: None,
            rolled_back: false,
            draws: Vec::new(),
            forensics: None,
        }
    }

    fn fleet_result(outputs: Vec<Option<EpochOutcome<F>>>) -> RunResult<EpochOutcome<F>> {
        let n = outputs.len();
        RunResult {
            outputs,
            report: CostReport::from_snapshots((0..n).map(|_| CostSnapshot::default())),
            rounds: Vec::new(),
            trace: None,
        }
    }

    /// One popped-front epoch outcome per party, with `served` chosen by
    /// the caller.
    fn outcomes_serving(
        wallets: &[CoinWallet<F>],
        served: impl Fn(usize) -> Vec<Result<F, crate::CoinError>>,
    ) -> Vec<Option<EpochOutcome<F>>> {
        wallets
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let mut wallet = w.clone();
                let _ = wallet.pop();
                Some(EpochOutcome { wallet, served: served(i), refill: None })
            })
            .collect()
    }

    #[test]
    fn unsound_epoch_leaves_service_state_untouched() {
        // REVIEW regression: the unanimity check must run before the
        // stats/ledger/trace merge, so an Unsound epoch is discarded
        // wholesale and a continuing caller cannot double-fold its trace.
        let mut svc = BeaconService::<F>::new(config(), 0xFACE, 6);
        // Warm the counters so "untouched" is not vacuous.
        svc.run_epoch(ExecutorKind::Step, &[(1, 1)], None).unwrap();
        let pre_snap = svc.snapshot();
        let pre_cursor = svc.trace_cursor();

        // Fabricate an all-honest epoch whose parties disagree on the
        // served value — unreachable through the fleet (Theorem 1), which
        // is exactly why this path is exercised at the commit layer.
        let before = svc.wallets.clone();
        let res =
            fleet_result(outcomes_serving(&before, |i| vec![Ok(F::from_u64(i as u64))]));
        let mut report = blank_report(1);
        let err = svc
            .commit_epoch(1, res, &BTreeSet::new(), before, &mut report)
            .unwrap_err();
        assert_eq!(err, BeaconError::Unsound { epoch: 1, detail: "served coin values" });
        assert_eq!(svc.snapshot(), pre_snap, "unsound epoch mutated service state");
        assert_eq!(svc.trace_cursor(), pre_cursor);
    }

    #[test]
    fn tampered_retained_share_triggers_rollback_not_commit() {
        // REVIEW regression: lock-step shapes are not enough — a party
        // whose surviving wallet shares changed value must hit the
        // transactional rollback now, not poison a later expose.
        let mut svc = BeaconService::<F>::new(config(), 0xFACE2, 6);
        let pre_wallets = svc.wallets.clone();
        let before = svc.wallets.clone();
        let mut outputs = outcomes_serving(&before, |_| vec![Ok(F::from_u64(7))]);
        // Flip one retained share at party 4: same length, wrong value.
        let out3 = outputs[3].as_mut().unwrap();
        let mut shares: Vec<SealedShare<F>> =
            (0..out3.wallet.len()).map(|j| *out3.wallet.peek_at(j).unwrap()).collect();
        shares[0] = SealedShare::of(F::from_u64(0xBAD0BAD));
        out3.wallet = shares.into_iter().collect();

        let mut report = blank_report(0);
        let fresh = svc
            .commit_epoch(0, fleet_result(outputs), &BTreeSet::new(), before, &mut report)
            .unwrap();
        assert!(fresh.is_empty(), "a rolled-back epoch exposes nothing");
        assert!(report.rolled_back);
        assert_eq!(svc.wallets, pre_wallets, "rollback must restore the pre-epoch wallets");
        assert_eq!(svc.stats().rollbacks, 1);
    }

    #[test]
    fn honest_suffix_wallets_pass_the_retention_audit() {
        let svc = BeaconService::<F>::new(config(), 0xFACE3, 6);
        let before = svc.wallets.clone();
        let outputs = outcomes_serving(&before, |_| vec![Ok(F::from_u64(7))]);
        assert!(BeaconService::retention_intact(&outputs, &before));
    }

    #[test]
    fn rollback_drill_rolls_back_and_attaches_forensics() {
        let mut svc = BeaconService::<F>::new(config(), 0xD811, 8);
        // Real history first, so the dump has something to say.
        for _ in 0..3 {
            svc.run_epoch(ExecutorKind::Step, &[(1, 1)], None).unwrap();
        }
        let pre_wallets = svc.wallets.clone();
        let pre_epoch = svc.epoch();

        let report = svc.rollback_drill(ExecutorKind::Step);
        assert!(report.rolled_back);
        assert!(report.ran);
        let dump = report.forensics.expect("the rollback path must attach the forensic dump");
        assert!(dump.contains("beacon forensic dump"), "{dump}");
        assert!(dump.contains("rolled_back"), "the drilled epoch's record must be in the dump");
        assert!(dump.contains("supervisor: mode="), "{dump}");

        assert_eq!(svc.wallets, pre_wallets, "the drill's rollback must restore the wallets");
        assert_eq!(svc.epoch(), pre_epoch + 1, "the drilled epoch still advances the counter");
        assert_eq!(svc.stats().rollbacks, 1);
        assert_eq!(svc.supervisor().failures(), 1, "the drill is a real supervisor failure");
        let last = svc.flight_recorder().records().last().unwrap();
        assert_eq!(last.outcome, EpochOutcomeTag::RolledBack);
    }

    #[test]
    fn rollback_drill_is_deterministic_across_executors() {
        let run = |executor| {
            let mut svc = BeaconService::<F>::new(config(), 0xD812, 8);
            for _ in 0..2 {
                svc.run_epoch(executor, &[(1, 1)], None).unwrap();
            }
            let report = svc.rollback_drill(executor);
            (report.forensics.unwrap(), svc.snapshot())
        };
        let (dump_step, snap_step) = run(ExecutorKind::Step);
        let (dump_par, snap_par) = run(ExecutorKind::ParThreads(2));
        assert_eq!(dump_step, dump_par, "the drill's dump must not depend on the executor");
        assert_eq!(snap_step, snap_par, "the drilled service must stay snapshot-identical");
    }
}
