//! The epoch supervisor: every [`ProtocolError`] becomes a policy
//! decision.
//!
//! The retry machinery inside an epoch
//! ([`coin_gen_with_retry`](dprbg_core::coin_gen_with_retry)) bounds how
//! much seed a *single* refill may burn; the supervisor bounds what the
//! *service* does across epochs when refills keep failing. Failures are
//! never swallowed: each one either schedules an exponential epoch
//! backoff (transient — a Byzantine leader streak, a failed expose),
//! records blame (an [`ProtocolError::Aborted`] names the parties whose
//! equivocation was proven), or — when the wallet can no longer cover
//! even the cheapest Coin-Gen attempt — degrades the beacon to
//! read-only, where it serves whatever stock remains and answers
//! further demand with [`DrawOutcome::Starved`](crate::DrawOutcome).
//!
//! The supervisor is plain snapshotable data: restoring it resumes the
//! same policy mid-backoff.

use std::collections::BTreeSet;

use dprbg_core::{ProtocolError, MIN_SEEDS_PER_ATTEMPT};

/// The supervisor's standing mode.
// lint: snapshot-abi(v2, 124da62dc7bf7833)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Healthy: run the epoch pipeline normally.
    Active,
    /// Cooling down after failures: skip protocol epochs until
    /// `until_epoch`, serving from stock only.
    Backoff {
        /// First epoch allowed to run the protocol again.
        until_epoch: u64,
    },
    /// Seed exhausted: no refill can ever succeed. Serve remaining stock,
    /// then starve.
    ReadOnly,
}

impl Mode {
    /// Stable lowercase label, used as a metric label value and in
    /// forensic dumps.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Active => "active",
            Mode::Backoff { .. } => "backoff",
            Mode::ReadOnly => "read_only",
        }
    }
}

/// What the supervisor tells the service to do with one epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochDecision {
    /// Run the epoch pipeline (serve + refill as needed).
    Run,
    /// Skip the protocol this epoch (backoff); serve from stock only.
    Skip,
    /// Read-only: serve from stock, starve unmet demand, never refill.
    ReadOnly,
}

/// Cross-epoch failure policy: bounded blame ledger, exponential
/// backoff, and read-only degradation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Supervisor {
    mode: Mode,
    /// Consecutive failed protocol epochs (reset on success).
    failures: u32,
    /// Cap on the backoff exponent: the longest backoff is
    /// `2^max_exp` epochs.
    max_exp: u32,
    /// Parties named by `Aborted { blame }` errors, accumulated.
    blamed: BTreeSet<usize>,
}

impl Supervisor {
    /// A healthy supervisor whose longest backoff is `2^max_exp` epochs.
    /// The exponent is clamped to 63 — a longer backoff than `2^63`
    /// epochs is indistinguishable from forever, and the clamp keeps the
    /// cooldown shift within `u64`.
    pub fn new(max_exp: u32) -> Self {
        Supervisor { mode: Mode::Active, failures: 0, max_exp: max_exp.min(63), blamed: BTreeSet::new() }
    }

    /// Current mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Consecutive failed protocol epochs.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Parties blamed by abort errors so far.
    pub fn blamed(&self) -> &BTreeSet<usize> {
        &self.blamed
    }

    /// The backoff exponent the current failure streak earns: the next
    /// cooldown would be `2^backoff_exp` epochs (0 while healthy).
    pub fn backoff_exp(&self) -> u32 {
        self.failures.saturating_sub(1).min(self.max_exp)
    }

    /// Decide what epoch `epoch` does. Leaving backoff is decided here:
    /// once the cooldown expires the supervisor re-arms to [`Mode::Active`]
    /// and lets the epoch run (the failure count stays, so the *next*
    /// failure backs off longer).
    pub fn decide(&mut self, epoch: u64) -> EpochDecision {
        match self.mode {
            Mode::ReadOnly => EpochDecision::ReadOnly,
            Mode::Backoff { until_epoch } if epoch < until_epoch => EpochDecision::Skip,
            Mode::Backoff { .. } => {
                self.mode = Mode::Active;
                EpochDecision::Run
            }
            Mode::Active => EpochDecision::Run,
        }
    }

    /// A protocol epoch succeeded: clear the failure streak.
    pub fn on_success(&mut self) {
        self.failures = 0;
        self.mode = Mode::Active;
    }

    /// A protocol epoch failed at `epoch` with `err`, leaving
    /// `wallet_level` sealed coins.
    ///
    /// Blame from [`ProtocolError::Aborted`] is recorded; a wallet that
    /// can no longer cover [`MIN_SEEDS_PER_ATTEMPT`] degrades the beacon
    /// to read-only; anything else schedules an exponential backoff of
    /// `2^min(failures − 1, max_exp)` epochs.
    pub fn on_failure(&mut self, epoch: u64, err: &ProtocolError, wallet_level: usize) {
        if let ProtocolError::Aborted { blame, .. } = err {
            self.blamed.extend(blame.iter().copied());
        }
        if wallet_level < MIN_SEEDS_PER_ATTEMPT {
            self.mode = Mode::ReadOnly;
            return;
        }
        self.failures = self.failures.saturating_add(1);
        let exp = (self.failures - 1).min(self.max_exp);
        let cooldown = 1u64.checked_shl(exp).unwrap_or(u64::MAX);
        self.mode =
            Mode::Backoff { until_epoch: epoch.saturating_add(1).saturating_add(cooldown) };
    }

    /// Tear into snapshotable parts `(mode, failures, max_exp, blamed)`.
    pub(crate) fn parts(&self) -> (Mode, u32, u32, &BTreeSet<usize>) {
        (self.mode, self.failures, self.max_exp, &self.blamed)
    }

    /// Rebuild from snapshot parts. `max_exp` is clamped exactly as in
    /// [`Supervisor::new`], so a crafted snapshot cannot smuggle in an
    /// exponent that would overflow the cooldown shift.
    pub(crate) fn from_parts(
        mode: Mode,
        failures: u32,
        max_exp: u32,
        blamed: BTreeSet<usize>,
    ) -> Self {
        Supervisor { mode, failures, max_exp: max_exp.min(63), blamed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let mut s = Supervisor::new(3);
        let err = ProtocolError::NoAgreement { attempts: 4 };
        let mut epoch = 0u64;
        let mut gaps = Vec::new();
        for _ in 0..6 {
            assert_eq!(s.decide(epoch), EpochDecision::Run);
            s.on_failure(epoch, &err, 10);
            let Mode::Backoff { until_epoch } = s.mode() else { panic!("expected backoff") };
            gaps.push(until_epoch - epoch - 1);
            // Skip through the cooldown.
            while s.decide(epoch + 1) == EpochDecision::Skip {
                epoch += 1;
            }
            epoch += 1;
        }
        assert_eq!(gaps, vec![1, 2, 4, 8, 8, 8], "exponential then capped at 2^3");
    }

    #[test]
    fn success_resets_the_streak() {
        let mut s = Supervisor::new(4);
        let err = ProtocolError::SeedExhausted;
        s.on_failure(0, &err, 10);
        s.on_failure(3, &err, 10);
        assert_eq!(s.failures(), 2);
        s.on_success();
        assert_eq!(s.failures(), 0);
        assert_eq!(s.mode(), Mode::Active);
        // Next failure starts the ladder over.
        s.on_failure(9, &err, 10);
        assert_eq!(s.mode(), Mode::Backoff { until_epoch: 11 });
    }

    #[test]
    fn seed_exhaustion_degrades_to_read_only() {
        let mut s = Supervisor::new(4);
        s.on_failure(5, &ProtocolError::SeedExhausted, MIN_SEEDS_PER_ATTEMPT - 1);
        assert_eq!(s.mode(), Mode::ReadOnly);
        assert_eq!(s.decide(6), EpochDecision::ReadOnly);
        // Read-only is terminal: successes cannot happen, failures keep it.
        assert_eq!(s.decide(100), EpochDecision::ReadOnly);
    }

    #[test]
    fn abort_blame_accumulates() {
        let mut s = Supervisor::new(2);
        s.on_failure(0, &ProtocolError::Aborted { blame: vec![3, 5], reason: "equivocation" }, 8);
        s.on_failure(4, &ProtocolError::Aborted { blame: vec![5, 6], reason: "equivocation" }, 8);
        assert_eq!(s.blamed().iter().copied().collect::<Vec<_>>(), vec![3, 5, 6]);
    }

    #[test]
    fn oversized_backoff_exponent_never_overflows() {
        // REVIEW regression: a configured exponent ≥ 64 must clamp, not
        // panic (debug) or wrap to a near-zero cooldown (release) once
        // the failure streak outruns the shift width.
        let mut s = Supervisor::new(u32::MAX);
        let err = ProtocolError::SeedExhausted;
        for e in 0..70u64 {
            s.on_failure(e, &err, 10);
        }
        let Mode::Backoff { until_epoch } = s.mode() else { panic!("expected backoff") };
        assert!(until_epoch - 70 >= 1u64 << 63, "cooldown collapsed: {until_epoch}");
        // The clamp survives a snapshot round-trip with a crafted exponent.
        let (mode, failures, _, blamed) = s.parts();
        let restored = Supervisor::from_parts(mode, failures, u32::MAX, blamed.clone());
        assert_eq!(restored.parts().2, 63);
    }

    #[test]
    fn parts_round_trip() {
        let mut s = Supervisor::new(3);
        s.on_failure(2, &ProtocolError::Aborted { blame: vec![1], reason: "x" }, 9);
        let (mode, failures, max_exp, blamed) = s.parts();
        assert_eq!(s, Supervisor::from_parts(mode, failures, max_exp, blamed.clone()));
    }
}
