//! The coin reservoir: bounded stock of exposed coins with explicit
//! backpressure and per-consumer fairness.
//!
//! The beacon's consumers draw *exposed* field elements, not sealed
//! shares; the reservoir sits between the epoch pipeline (which admits
//! each epoch's freshly exposed coins ahead of the serve pass) and the
//! demand side. Its capacity is bounded — exposing coins nobody asked
//! for burns the distributed seed the amortization story (§1.2) depends
//! on — and the bound is enforced on the *production* side: the
//! service's planner never exposes more than the epoch's demand plus
//! the cushion the capacity can absorb, so an admitted coin is never
//! destroyed. [`Reservoir::deposit`] additionally refuses overflow for
//! any producer outside that planning loop.
//!
//! On the demand side, backpressure is explicit rather than blocking:
//! a draw that cannot be met *now* yields [`DrawOutcome::WouldBlock`]
//! ("retry next epoch — the pipeline is refilling"), and only a beacon
//! that has degraded to read-only with an empty stock yields
//! [`DrawOutcome::Starved`] ("no coin will ever come"). Contention is
//! resolved round-robin across the epoch's consumers, so within one
//! epoch no two consumers' grant counts differ by more than one.

use std::collections::BTreeMap;

use dprbg_field::Field;

/// Sizing of a [`Reservoir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservoirConfig {
    /// Maximum exposed coins held; deposits beyond this are refused.
    pub capacity: usize,
    /// Refill trigger: the service tops the stock back up whenever an
    /// epoch would leave it at or below this level.
    pub low_water: usize,
}

impl ReservoirConfig {
    /// A config with `capacity` and a low-water mark of `capacity / 4`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "reservoir capacity must be positive");
        ReservoirConfig { capacity, low_water: capacity / 4 }
    }
}

/// The result of one requested draw.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrawOutcome<F: Field> {
    /// A coin was granted.
    Coin(F),
    /// The stock ran out this epoch but the pipeline is still producing:
    /// re-request next epoch.
    WouldBlock,
    /// The beacon is read-only (seed exhausted) and the stock is empty:
    /// no retry can succeed.
    Starved,
}

impl<F: Field> DrawOutcome<F> {
    /// The granted coin, if any.
    pub fn coin(&self) -> Option<F> {
        match self {
            DrawOutcome::Coin(c) => Some(*c),
            _ => None,
        }
    }
}

/// A bounded FIFO of exposed coins with round-robin serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reservoir<F: Field> {
    cfg: ReservoirConfig,
    coins: std::collections::VecDeque<F>,
    /// Round-robin start offset, advanced once per serve pass so no
    /// consumer is permanently first in line.
    cursor: u32,
    /// Cumulative grants per consumer id — the fairness ledger.
    grants: BTreeMap<u32, u64>,
}

impl<F: Field> Reservoir<F> {
    /// An empty reservoir.
    pub fn new(cfg: ReservoirConfig) -> Self {
        Reservoir { cfg, coins: std::collections::VecDeque::new(), cursor: 0, grants: BTreeMap::new() }
    }

    /// The sizing this reservoir was built with.
    pub fn config(&self) -> ReservoirConfig {
        self.cfg
    }

    /// Exposed coins currently in stock.
    pub fn level(&self) -> usize {
        self.coins.len()
    }

    /// Whether the stock is at or below the low-water mark.
    pub fn needs_refill(&self) -> bool {
        self.coins.len() <= self.cfg.low_water
    }

    /// Cumulative grants per consumer id.
    pub fn grants(&self) -> &BTreeMap<u32, u64> {
        &self.grants
    }

    /// Deposit freshly exposed coins, oldest first; returns how many fit
    /// under the capacity bound (the rest are refused — the caller should
    /// not have exposed them).
    pub fn deposit(&mut self, coins: impl IntoIterator<Item = F>) -> usize {
        let mut accepted = 0;
        for c in coins {
            if self.coins.len() >= self.cfg.capacity {
                break;
            }
            self.coins.push_back(c);
            accepted += 1;
        }
        accepted
    }

    /// Admit one epoch's freshly exposed coins ahead of the serve pass,
    /// unconditionally (newest last). Demand is served from these coins
    /// before the leftover cushion is subject to the capacity bound, so
    /// admission must never destroy a coin — the planner guarantees the
    /// post-serve level fits under [`ReservoirConfig::capacity`].
    pub(crate) fn admit(&mut self, coins: impl IntoIterator<Item = F>) {
        self.coins.extend(coins);
    }

    /// Serve one epoch's demands: `demands` is `(consumer id, coins
    /// wanted)` pairs. Coins are granted in round-robin passes starting
    /// at a rotating offset, so within this call no two consumers with
    /// unmet demand differ by more than one grant. Unmet requests get
    /// [`DrawOutcome::WouldBlock`], or [`DrawOutcome::Starved`] when
    /// `starving` (read-only beacon) — sharp backpressure instead of an
    /// implicit queue.
    ///
    /// Returns one `(consumer id, outcome)` per requested draw, grouped
    /// by consumer in `demands` order.
    pub fn serve(&mut self, demands: &[(u32, u32)], starving: bool) -> Vec<(u32, DrawOutcome<F>)> {
        if demands.is_empty() {
            return Vec::new();
        }
        let k = demands.len();
        let mut remaining: Vec<u32> = demands.iter().map(|&(_, want)| want).collect();
        let mut granted: Vec<Vec<F>> = vec![Vec::new(); k];
        let start = (self.cursor as usize) % k;
        // Round-robin passes until the stock or the demand runs out.
        loop {
            let mut progressed = false;
            for j in 0..k {
                let i = (start + j) % k;
                if remaining[i] == 0 {
                    continue;
                }
                let Some(c) = self.coins.pop_front() else { break };
                granted[i].push(c);
                remaining[i] -= 1;
                progressed = true;
            }
            if !progressed || remaining.iter().all(|&r| r == 0) {
                break;
            }
        }
        self.cursor = self.cursor.wrapping_add(1);
        let mut out = Vec::new();
        for (i, &(consumer, want)) in demands.iter().enumerate() {
            let got = granted[i].len();
            *self.grants.entry(consumer).or_insert(0) += got as u64;
            for &c in &granted[i] {
                out.push((consumer, DrawOutcome::Coin(c)));
            }
            for _ in got..want as usize {
                out.push((
                    consumer,
                    if starving { DrawOutcome::Starved } else { DrawOutcome::WouldBlock },
                ));
            }
        }
        out
    }

    /// Tear the reservoir into its snapshotable parts
    /// `(config, coins oldest-first, cursor, grants)`.
    pub(crate) fn parts(&self) -> (ReservoirConfig, Vec<F>, u32, &BTreeMap<u32, u64>) {
        (self.cfg, self.coins.iter().copied().collect(), self.cursor, &self.grants)
    }

    /// Rebuild a reservoir from snapshot parts.
    pub(crate) fn from_parts(
        cfg: ReservoirConfig,
        coins: Vec<F>,
        cursor: u32,
        grants: BTreeMap<u32, u64>,
    ) -> Self {
        Reservoir { cfg, coins: coins.into(), cursor, grants }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;

    type F = Gf2k<32>;

    fn filled(capacity: usize, n: usize) -> Reservoir<F> {
        let mut r = Reservoir::new(ReservoirConfig::with_capacity(capacity));
        r.deposit((0..n as u64).map(F::from_u64));
        r
    }

    #[test]
    fn deposit_respects_capacity() {
        let mut r = Reservoir::<F>::new(ReservoirConfig::with_capacity(4));
        assert_eq!(r.deposit((0..10).map(F::from_u64)), 4);
        assert_eq!(r.level(), 4);
        assert_eq!(r.deposit([F::from_u64(99)]), 0);
    }

    #[test]
    fn fifo_order_and_low_water() {
        let mut r = filled(8, 6);
        assert!(!r.needs_refill());
        let out = r.serve(&[(1, 5)], false);
        let coins: Vec<u64> = out.iter().filter_map(|(_, o)| o.coin()).map(|c| c.to_u64()).collect();
        assert_eq!(coins, vec![0, 1, 2, 3, 4], "oldest coins first");
        assert!(r.needs_refill(), "level 1 ≤ low water 2");
    }

    #[test]
    fn round_robin_fairness_under_contention() {
        // 5 coins, three consumers wanting 4 each: grants must split
        // 2/2/1 (no pair differs by more than one), the rest WouldBlock.
        let mut r = filled(16, 5);
        let out = r.serve(&[(10, 4), (20, 4), (30, 4)], false);
        let grant = |id: u32| out.iter().filter(|(c, o)| *c == id && o.coin().is_some()).count();
        let blocked = out.iter().filter(|(_, o)| matches!(o, DrawOutcome::WouldBlock)).count();
        let grants = [grant(10), grant(20), grant(30)];
        assert_eq!(grants.iter().sum::<usize>(), 5);
        assert!(grants.iter().all(|&g| (1..=2).contains(&g)), "unfair split {grants:?}");
        assert_eq!(blocked, 12 - 5);
        assert_eq!(r.level(), 0);
    }

    #[test]
    fn cursor_rotates_first_pick() {
        // One coin per epoch, two consumers: the extra grant must
        // alternate, not always favour the first-listed consumer.
        let mut r = Reservoir::<F>::new(ReservoirConfig::with_capacity(4));
        let mut firsts = Vec::new();
        for e in 0..4u64 {
            r.deposit([F::from_u64(e)]);
            let out = r.serve(&[(1, 1), (2, 1)], false);
            firsts.push(out.iter().find(|(_, o)| o.coin().is_some()).unwrap().0);
        }
        assert_eq!(firsts, vec![1, 2, 1, 2]);
        assert_eq!(r.grants()[&1], 2);
        assert_eq!(r.grants()[&2], 2);
    }

    #[test]
    fn starved_only_when_flagged() {
        let mut r = Reservoir::<F>::new(ReservoirConfig::with_capacity(4));
        assert_eq!(r.serve(&[(1, 1)], false), vec![(1, DrawOutcome::WouldBlock)]);
        assert_eq!(r.serve(&[(1, 1)], true), vec![(1, DrawOutcome::Starved)]);
    }

    #[test]
    fn parts_round_trip() {
        let mut r = filled(8, 3);
        r.serve(&[(7, 2)], false);
        let (cfg, coins, cursor, grants) = r.parts();
        let r2 = Reservoir::from_parts(cfg, coins, cursor, grants.clone());
        assert_eq!(r, r2);
    }
}
