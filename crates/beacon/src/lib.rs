#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A crash-recoverable, epoch-pipelined randomness-beacon service.
//!
//! The paper's bottom line (§1.2, Fig. 1) is an *amortized* cost story:
//! a distributed seed is stretched into a long public stream of shared
//! coins, with occasional expensive Coin-Gen runs paying for many cheap
//! Coin-Expose draws. This crate turns that story into a long-running
//! **service** with the operational properties a real deployment needs:
//!
//! * **Epoch pipelining** ([`EpochMachine`]): each epoch overlaps
//!   next-seed generation (Coin-Gen under a retry budget) with
//!   current-seed stretching (a batch of Coin-Exposes), multiplexed over
//!   one [`BeaconMsg`] wire — the epoch costs `max` of the two planes'
//!   rounds instead of their sum.
//! * **Explicit backpressure** ([`Reservoir`]): exposed coins flow
//!   through a bounded reservoir; draws that cannot be met yield
//!   [`DrawOutcome::WouldBlock`] (retry next epoch) or
//!   [`DrawOutcome::Starved`] (seed exhausted for good), with
//!   round-robin fairness across consumers.
//! * **Failure policy** ([`Supervisor`]): every
//!   [`ProtocolError`](dprbg_core::ProtocolError) becomes a decision —
//!   bounded retry inside the epoch, exponential epoch backoff across
//!   epochs, blame recording for proven aborts, and read-only
//!   degradation once the wallet cannot fund another attempt.
//! * **Crash recovery** ([`BeaconService::snapshot`] /
//!   [`BeaconService::restore`]): all cross-epoch state is plain data in
//!   a versioned, checksummed binary format; a service killed at any
//!   epoch boundary and restored continues **byte-identically** to one
//!   that never died, under either executor (property-tested).
//! * **Health telemetry** ([`BeaconService::health`] /
//!   [`FlightRecorder`]): every epoch folds into a deterministic metric
//!   [`Registry`](dprbg_metrics::Registry) (mode transitions, backoff
//!   depth, reservoir occupancy, draw outcomes, refill attempts) and a
//!   bounded flight recorder of per-epoch [`HealthRecord`]s — both ride
//!   inside the snapshot, and the rollback path renders them as a
//!   forensic dump.
//!
//! The fault-injection schedules the soak tests drive this with —
//! composite mid-episode strategy switches, crash/stampede/adversary
//! epoch plans — live in [`dprbg_sim`] ([`ScheduledAdversary`],
//! [`SoakPlan`](dprbg_sim::SoakPlan)).
//!
//! [`ScheduledAdversary`]: dprbg_sim::ScheduledAdversary

mod epoch;
mod health;
mod reservoir;
mod service;
mod snapshot;
mod supervisor;

pub use epoch::{BeaconMsg, EpochMachine, EpochOutcome, RefillReport};
pub use health::{EpochOutcomeTag, FlightRecorder, HealthRecord, RefillStatus};
pub use reservoir::{DrawOutcome, Reservoir, ReservoirConfig};
pub use service::{
    epoch_seed, BeaconConfig, BeaconError, BeaconService, BeaconStats, EpochReport, ExecutorKind,
    FLIGHT_RECORDER_EPOCHS,
};
pub use snapshot::SnapshotError;
pub use supervisor::{EpochDecision, Mode, Supervisor};

pub use dprbg_core::CoinError;
