//! A thin Reed–Solomon codec view over [`Poly`] + [`bw_decode`].
//!
//! Shamir sharing *is* Reed–Solomon encoding (share `i` is the codeword
//! symbol at evaluation point `i`); this module packages that view with
//! explicit code parameters so tests and benches can speak in coding
//! terms: an `[n, t+1]` code corrects `⌊(n − t − 1)/2⌋` errors.

use dprbg_field::Field;

use crate::berlekamp_welch::{bw_decode, BwError};
use crate::poly::Poly;

/// Errors from [`RsCode::decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RsDecodeError {
    /// The decoder could not find a codeword within the error radius.
    BeyondRadius,
    /// The received word was malformed (wrong length or repeated
    /// positions).
    Malformed,
}

impl std::fmt::Display for RsDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsDecodeError::BeyondRadius => write!(f, "more errors than the code can correct"),
            RsDecodeError::Malformed => write!(f, "malformed received word"),
        }
    }
}

impl std::error::Error for RsDecodeError {}

/// An `[n, t+1]` Reed–Solomon code over `F`, evaluated at points `1..=n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RsCode {
    n: usize,
    t: usize,
}

impl RsCode {
    /// Define an `[n, t+1]` code.
    ///
    /// # Panics
    ///
    /// Panics unless `t < n`.
    pub fn new(n: usize, t: usize) -> Self {
        assert!(t < n, "message degree must be below the code length");
        RsCode { n, t }
    }

    /// Code length `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Degree bound `t` (dimension `t + 1`).
    pub fn t(&self) -> usize {
        self.t
    }

    /// The number of symbol errors the code corrects.
    pub fn radius(&self) -> usize {
        (self.n - self.t - 1) / 2
    }

    /// Encode a message polynomial into its `n` codeword symbols.
    ///
    /// # Panics
    ///
    /// Panics if `message` has degree above `t`, or if `n` does not embed
    /// into the field.
    pub fn encode<F: Field>(&self, message: &Poly<F>) -> Vec<F> {
        assert!(
            message.degree().is_none_or(|d| d <= self.t),
            "message degree exceeds code dimension"
        );
        (1..=self.n as u64).map(|i| message.eval(F::element(i))).collect()
    }

    /// Decode a (possibly corrupted) codeword back to the message
    /// polynomial.
    ///
    /// # Errors
    ///
    /// [`RsDecodeError::Malformed`] if `received.len() != n`;
    /// [`RsDecodeError::BeyondRadius`] if more than [`RsCode::radius`]
    /// symbols are wrong.
    pub fn decode<F: Field>(&self, received: &[F]) -> Result<Poly<F>, RsDecodeError> {
        if received.len() != self.n {
            return Err(RsDecodeError::Malformed);
        }
        let pts: Vec<(F, F)> = received
            .iter()
            .enumerate()
            .map(|(i, &y)| (F::element(i as u64 + 1), y))
            .collect();
        bw_decode(&pts, self.t, self.radius()).map_err(|e| match e {
            BwError::DecodingFailed => RsDecodeError::BeyondRadius,
            _ => RsDecodeError::Malformed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Gf2k<16>;

    #[test]
    fn roundtrip_clean() {
        let code = RsCode::new(10, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let msg = Poly::<F>::random(3, &mut rng);
        let cw = code.encode(&msg);
        assert_eq!(cw.len(), 10);
        assert_eq!(code.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn corrects_radius_errors() {
        let code = RsCode::new(10, 3);
        assert_eq!(code.radius(), 3);
        let mut rng = StdRng::seed_from_u64(2);
        let msg = Poly::<F>::random(3, &mut rng);
        let mut cw = code.encode(&msg);
        cw[0] += F::one();
        cw[5] = F::from_u64(0xFFFF);
        cw[9] = F::zero();
        assert_eq!(code.decode(&cw).unwrap(), msg);
    }

    #[test]
    fn wrong_length_rejected() {
        let code = RsCode::new(6, 2);
        assert_eq!(code.decode::<F>(&[]), Err(RsDecodeError::Malformed));
    }

    #[test]
    #[should_panic(expected = "degree exceeds")]
    fn encode_rejects_big_message() {
        let code = RsCode::new(6, 2);
        let msg = Poly::<F>::new(vec![F::one(); 4]);
        let _ = code.encode(&msg);
    }

    #[test]
    #[should_panic(expected = "below the code length")]
    fn constructor_validates() {
        let _ = RsCode::new(3, 3);
    }
}
