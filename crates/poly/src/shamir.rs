//! Shamir secret sharing [18] — the substrate of every VSS in the paper.
//!
//! "The most common way … is to employ the secret sharing scheme proposed
//! by Shamir, in which the secret is the value of a polynomial at the
//! origin, while the players' shares are the values of the polynomial
//! evaluated at the players' id's" (§1.3).

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_rng::Rng;

use crate::berlekamp_welch::{bw_decode, BwError};
use crate::lagrange::lagrange_eval_at_zero;
use crate::poly::Poly;

/// One party's share: the pair `(i, f(i))` with `i` the party's evaluation
/// point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Share<F: Field> {
    /// The evaluation point (party id embedded in the field).
    pub x: F,
    /// The share value `f(x)`.
    pub y: F,
}

impl<F: Field> WireSize for Share<F> {
    fn wire_bytes(&self) -> usize {
        // Only the value travels; the abscissa is implied by the recipient.
        self.y.wire_bytes()
    }
}

/// Errors from the reconstruction functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShamirError {
    /// Fewer than `t + 1` shares were supplied.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required.
        need: usize,
    },
    /// The supplied shares are mutually inconsistent (no degree-`t`
    /// polynomial explains them within the allowed number of errors).
    Inconsistent,
    /// Two shares claim the same evaluation point.
    DuplicateShare,
}

impl std::fmt::Display for ShamirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShamirError::NotEnoughShares { got, need } => {
                write!(f, "need {need} shares, got {got}")
            }
            ShamirError::Inconsistent => write!(f, "shares are mutually inconsistent"),
            ShamirError::DuplicateShare => write!(f, "duplicate share evaluation point"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// The dealer's polynomial: uniformly random of degree ≤ `t` with
/// `f(0) = secret`.
pub fn share_polynomial<F: Field, R: Rng + ?Sized>(secret: F, t: usize, rng: &mut R) -> Poly<F> {
    Poly::random_with_constant(secret, t, rng)
}

/// Evaluate the dealer's polynomial at party points `1..=n`.
///
/// # Panics
///
/// Panics if `n` does not embed into the field (need `order > n`).
pub fn share_points<F: Field>(poly: &Poly<F>, n: usize) -> Vec<Share<F>> {
    (1..=n as u64)
        .map(|i| {
            let x = F::element(i);
            Share { x, y: poly.eval(x) }
        })
        .collect()
}

/// Reconstruct the secret from **error-free** shares.
///
/// Uses the first `t + 1` shares to interpolate and checks every remaining
/// share for consistency, so a corrupted share is *detected* (but not
/// corrected — use [`reconstruct_robust`] against Byzantine shares).
///
/// # Errors
///
/// See [`ShamirError`].
pub fn reconstruct_secret<F: Field>(shares: &[Share<F>], t: usize) -> Result<F, ShamirError> {
    if shares.len() < t + 1 {
        return Err(ShamirError::NotEnoughShares {
            got: shares.len(),
            need: t + 1,
        });
    }
    for (i, s) in shares.iter().enumerate() {
        if shares[i + 1..].iter().any(|o| o.x == s.x) {
            return Err(ShamirError::DuplicateShare);
        }
    }
    let pts: Vec<(F, F)> = shares.iter().map(|s| (s.x, s.y)).collect();
    if shares.len() == t + 1 {
        return lagrange_eval_at_zero(&pts).map_err(|_| ShamirError::Inconsistent);
    }
    // With extra shares, interpolate the full polynomial and verify.
    let f = crate::lagrange::interpolate(&pts[..t + 1]).map_err(|_| ShamirError::Inconsistent)?;
    for &(x, y) in &pts[t + 1..] {
        if f.eval(x) != y {
            return Err(ShamirError::Inconsistent);
        }
    }
    Ok(f.constant_term())
}

/// Reconstruct the full sharing polynomial from shares of which up to
/// `e` may be Byzantine, via Berlekamp–Welch.
///
/// This is the paper's reconstruction path: "This enables us to use the
/// Berlekamp-Welch decoder to compute the desired polynomial" (Thm. 1).
///
/// # Errors
///
/// See [`ShamirError`].
pub fn reconstruct_robust<F: Field>(
    shares: &[Share<F>],
    t: usize,
    e: usize,
) -> Result<Poly<F>, ShamirError> {
    let pts: Vec<(F, F)> = shares.iter().map(|s| (s.x, s.y)).collect();
    bw_decode(&pts, t, e).map_err(|err| match err {
        BwError::TooFewPoints { got, need } => ShamirError::NotEnoughShares { got, need },
        BwError::DuplicateAbscissa => ShamirError::DuplicateShare,
        BwError::DecodingFailed => ShamirError::Inconsistent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Gf2k<32>;

    #[test]
    fn share_and_reconstruct() {
        let mut rng = StdRng::seed_from_u64(1);
        let secret = F::from_u64(0xC0FFEE);
        let t = 3;
        let f = share_polynomial(secret, t, &mut rng);
        let shares = share_points(&f, 10);
        assert_eq!(reconstruct_secret(&shares[..4], t).unwrap(), secret);
        assert_eq!(reconstruct_secret(&shares, t).unwrap(), secret);
    }

    #[test]
    fn too_few_shares_fail() {
        let mut rng = StdRng::seed_from_u64(2);
        let f = share_polynomial(F::one(), 3, &mut rng);
        let shares = share_points(&f, 10);
        assert_eq!(
            reconstruct_secret(&shares[..3], 3),
            Err(ShamirError::NotEnoughShares { got: 3, need: 4 })
        );
    }

    #[test]
    fn t_shares_reveal_nothing() {
        // Statistical check: with t shares fixed, every candidate secret
        // is consistent with *some* polynomial — i.e. t points plus a
        // hypothesised secret at 0 always interpolate.
        let mut rng = StdRng::seed_from_u64(3);
        let t = 2;
        let f = share_polynomial(F::from_u64(42), t, &mut rng);
        let shares = share_points(&f, 5);
        for candidate in [0u64, 1, 99, 12345] {
            let mut pts = vec![(F::zero(), F::from_u64(candidate))];
            pts.extend(shares[..t].iter().map(|s| (s.x, s.y)));
            // t+1 points always interpolate to a degree-≤t polynomial.
            assert!(crate::lagrange::interpolate(&pts).is_ok());
        }
    }

    #[test]
    fn detects_tampered_share() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = 2;
        let f = share_polynomial(F::from_u64(7), t, &mut rng);
        let mut shares = share_points(&f, 6);
        shares[5].y += F::one();
        assert_eq!(reconstruct_secret(&shares, t), Err(ShamirError::Inconsistent));
    }

    #[test]
    fn duplicate_share_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let f = share_polynomial(F::one(), 1, &mut rng);
        let shares = share_points(&f, 3);
        let dup = vec![shares[0], shares[0], shares[1]];
        assert_eq!(reconstruct_secret(&dup, 1), Err(ShamirError::DuplicateShare));
    }

    #[test]
    fn robust_reconstruction_corrects_byzantine_shares() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = 3;
        let n = 3 * t + 1;
        let secret = F::from_u64(0xABCD);
        let f = share_polynomial(secret, t, &mut rng);
        let mut shares = share_points(&f, n);
        // t Byzantine parties send garbage.
        for s in shares.iter_mut().take(t) {
            s.y = F::random(&mut rng);
        }
        let g = reconstruct_robust(&shares, t, t).unwrap();
        assert_eq!(g, f);
        assert_eq!(g.constant_term(), secret);
    }

    #[test]
    fn share_wire_size_is_one_element() {
        let s = Share { x: F::one(), y: F::one() };
        assert_eq!(s.wire_bytes(), 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_roundtrip_any_subset(seed: u64, t in 1usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let secret = F::random(&mut rng);
            let f = share_polynomial(secret, t, &mut rng);
            let n = 3 * t + 1;
            let shares = share_points(&f, n);
            // Any contiguous window of t+1 shares reconstructs.
            for start in 0..=(n - t - 1) {
                let window = &shares[start..start + t + 1];
                prop_assert_eq!(reconstruct_secret(window, t).unwrap(), secret);
            }
        }
    }
}
