//! Dense univariate polynomials over a [`Field`].

use std::fmt;

use dprbg_field::Field;
use dprbg_rng::Rng;

/// A dense univariate polynomial, constant term first.
///
/// The coefficient vector is kept *trimmed*: the leading coefficient is
/// nonzero, and the zero polynomial has an empty vector. This makes
/// [`Poly::degree`] and equality well-defined.
///
/// # Examples
///
/// ```
/// use dprbg_field::{Field, Gf2k};
/// use dprbg_poly::Poly;
/// type F = Gf2k<8>;
/// let f = Poly::new(vec![F::one(), F::one()]); // 1 + x
/// assert_eq!(f.degree(), Some(1));
/// assert_eq!(f.eval(F::from_u64(2)).to_u64(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Poly<F: Field> {
    coeffs: Vec<F>,
}

impl<F: Field> Poly<F> {
    /// Build a polynomial from coefficients (constant term first); trailing
    /// zeros are trimmed.
    pub fn new(mut coeffs: Vec<F>) -> Self {
        while coeffs.last().is_some_and(F::is_zero) {
            coeffs.pop();
        }
        Poly { coeffs }
    }

    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `c`.
    pub fn constant(c: F) -> Self {
        Poly::new(vec![c])
    }

    /// A uniformly random polynomial of degree **at most** `deg`.
    pub fn random<R: Rng + ?Sized>(deg: usize, rng: &mut R) -> Self {
        Poly::new((0..=deg).map(|_| F::random(rng)).collect())
    }

    /// A uniformly random polynomial of degree at most `deg` with the given
    /// constant term — the Shamir dealer's move: `f(0) = secret`.
    pub fn random_with_constant<R: Rng + ?Sized>(secret: F, deg: usize, rng: &mut R) -> Self {
        let mut coeffs = vec![secret];
        coeffs.extend((0..deg).map(|_| F::random(rng)));
        Poly::new(coeffs)
    }

    /// The degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// The coefficients, constant term first (trimmed).
    pub fn coeffs(&self) -> &[F] {
        &self.coeffs
    }

    /// The coefficient of `x^i` (zero beyond the degree).
    pub fn coeff(&self, i: usize) -> F {
        self.coeffs.get(i).copied().unwrap_or_else(F::zero)
    }

    /// Evaluate at `x` by Horner's rule: `deg` multiplications and
    /// additions.
    pub fn eval(&self, x: F) -> F {
        let mut acc = F::zero();
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// The constant term `f(0)` (free — no field operations).
    pub fn constant_term(&self) -> F {
        self.coeff(0)
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Poly<F>) -> Poly<F> {
        let n = self.coeffs.len().max(other.coeffs.len());
        Poly::new((0..n).map(|i| self.coeff(i) + other.coeff(i)).collect())
    }

    /// Polynomial subtraction.
    pub fn sub(&self, other: &Poly<F>) -> Poly<F> {
        let n = self.coeffs.len().max(other.coeffs.len());
        Poly::new((0..n).map(|i| self.coeff(i) - other.coeff(i)).collect())
    }

    /// Multiply every coefficient by the scalar `s`.
    pub fn scale(&self, s: F) -> Poly<F> {
        Poly::new(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Schoolbook polynomial multiplication.
    pub fn mul(&self, other: &Poly<F>) -> Poly<F> {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut out = vec![F::zero(); self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a.is_zero() {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                out[i + j] += a * b;
            }
        }
        Poly::new(out)
    }

    /// Division with remainder: `self = q·divisor + r`, `deg r < deg
    /// divisor`. Returns `(q, r)`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is the zero polynomial.
    pub fn divmod(&self, divisor: &Poly<F>) -> (Poly<F>, Poly<F>) {
        assert!(!divisor.is_zero(), "polynomial division by zero");
        let dd = divisor.degree().unwrap();
        if self.degree().is_none_or(|d| d < dd) {
            return (Poly::zero(), self.clone());
        }
        let mut rem = self.coeffs.clone();
        let dn = self.degree().unwrap();
        let mut quot = vec![F::zero(); dn - dd + 1];
        let lead_inv = divisor
            .coeffs
            .last()
            .unwrap()
            .inv()
            .expect("trimmed leading coefficient is nonzero");
        for i in (dd..=dn).rev() {
            let c = rem[i] * lead_inv;
            if c.is_zero() {
                continue;
            }
            let shift = i - dd;
            quot[shift] = c;
            for (j, &dj) in divisor.coeffs.iter().enumerate() {
                rem[shift + j] -= c * dj;
            }
        }
        (Poly::new(quot), Poly::new(rem))
    }

    /// Exact division: `self / divisor` if the remainder is zero, else
    /// `None`. (Berlekamp–Welch finishes with `F = Q / E`, which must be
    /// exact when decoding succeeds.)
    pub fn div_exact(&self, divisor: &Poly<F>) -> Option<Poly<F>> {
        let (q, r) = self.divmod(divisor);
        r.is_zero().then_some(q)
    }
}

impl<F: Field> dprbg_metrics::WireSize for Poly<F> {
    /// A degree-`d` polynomial travels as its `d + 1` coefficients.
    fn wire_bytes(&self) -> usize {
        self.coeffs.len() * F::wire_bytes_static()
    }
}

impl<F: Field> fmt::Debug for Poly<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "Poly(0)");
        }
        write!(f, "Poly(")?;
        for (i, c) in self.coeffs.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}·x^{i}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Gf2k<16>;

    fn p(vals: &[u64]) -> Poly<F> {
        Poly::new(vals.iter().map(|&v| F::from_u64(v)).collect())
    }

    #[test]
    fn trimming_and_degree() {
        assert_eq!(p(&[1, 2, 0, 0]).degree(), Some(1));
        assert_eq!(p(&[0]).degree(), None);
        assert!(Poly::<F>::zero().is_zero());
        assert_eq!(Poly::<F>::constant(F::from_u64(9)).degree(), Some(0));
        assert_eq!(Poly::<F>::constant(F::zero()).degree(), None);
    }

    #[test]
    fn eval_matches_direct_expansion() {
        // f(x) = 1 + 2x + 3x^2 over GF(2^16)
        let f = p(&[1, 2, 3]);
        let x = F::from_u64(7);
        let expect = F::from_u64(1) + F::from_u64(2) * x + F::from_u64(3) * x * x;
        assert_eq!(f.eval(x), expect);
        assert_eq!(f.constant_term(), F::one());
        assert_eq!(Poly::<F>::zero().eval(x), F::zero());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = p(&[1, 2, 3]);
        let b = p(&[5, 0, 3, 9]);
        let s = a.add(&b);
        assert_eq!(s.sub(&b), a);
        assert_eq!(a.sub(&a), Poly::zero());
    }

    #[test]
    fn add_cancels_leading_terms() {
        // (x^2 + 1) + (x^2) = 1 in characteristic 2 — degree must drop.
        let a = p(&[1, 0, 1]);
        let b = p(&[0, 0, 1]);
        assert_eq!(a.add(&b).degree(), Some(0));
    }

    #[test]
    fn mul_degrees_add() {
        let a = p(&[1, 1]); // 1 + x
        let b = p(&[1, 0, 1]); // 1 + x^2
        let c = a.mul(&b);
        assert_eq!(c.degree(), Some(3));
        // (1+x)(1+x^2) = 1 + x + x^2 + x^3 over GF(2^k).
        assert_eq!(c, p(&[1, 1, 1, 1]));
        assert_eq!(a.mul(&Poly::zero()), Poly::zero());
    }

    #[test]
    fn divmod_reconstructs() {
        let a = p(&[3, 1, 4, 1, 5]);
        let b = p(&[2, 7, 1]);
        let (q, r) = a.divmod(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r.degree() < b.degree());
    }

    #[test]
    fn div_exact_detects_remainder() {
        let a = p(&[1, 1]); // 1 + x
        let b = p(&[1, 0, 1]); // (1+x)^2 over GF(2)
        assert_eq!(b.div_exact(&a), Some(a.clone()));
        assert_eq!(p(&[1, 1, 1]).div_exact(&a), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn divmod_by_zero_panics() {
        let _ = p(&[1]).divmod(&Poly::zero());
    }

    #[test]
    fn random_with_constant_pins_secret() {
        let mut rng = StdRng::seed_from_u64(9);
        let s = F::from_u64(0xBEEF);
        for _ in 0..10 {
            let f = Poly::random_with_constant(s, 5, &mut rng);
            assert_eq!(f.constant_term(), s);
            assert!(f.degree().unwrap_or(0) <= 5);
        }
    }

    #[test]
    fn scale_distributes_over_eval() {
        let f = p(&[1, 2, 3, 4]);
        let s = F::from_u64(0x55);
        let x = F::from_u64(12);
        assert_eq!(f.scale(s).eval(x), s * f.eval(x));
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(format!("{:?}", Poly::<F>::zero()).contains('0'));
        assert!(format!("{:?}", p(&[1, 2])).contains("x^1"));
    }

    proptest! {
        #[test]
        fn prop_divmod_identity(seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Poly::<F>::random(8, &mut rng);
            let b = Poly::<F>::random(3, &mut rng);
            prop_assume!(!b.is_zero());
            let (q, r) = a.divmod(&b);
            prop_assert_eq!(q.mul(&b).add(&r), a);
        }

        #[test]
        fn prop_eval_is_linear(seed: u64, x: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Poly::<F>::random(6, &mut rng);
            let b = Poly::<F>::random(4, &mut rng);
            let x = F::from_u64(x);
            prop_assert_eq!(a.add(&b).eval(x), a.eval(x) + b.eval(x));
        }

        #[test]
        fn prop_mul_eval_homomorphic(seed: u64, x: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Poly::<F>::random(5, &mut rng);
            let b = Poly::<F>::random(5, &mut rng);
            let x = F::from_u64(x);
            prop_assert_eq!(a.mul(&b).eval(x), a.eval(x) * b.eval(x));
        }
    }
}
