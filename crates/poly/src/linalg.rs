//! Dense linear algebra over a [`Field`]: just enough Gaussian elimination
//! to drive the Berlekamp–Welch decoder's linear system.

use dprbg_field::Field;

/// A dense row-major matrix over `F`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix<F: Field> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// An all-zero `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![F::zero(); rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, r: usize, c: usize) -> F {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Set the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: F) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

/// Solve the linear system `A·x = b` by Gaussian elimination.
///
/// Returns *some* solution if the system is consistent (free variables are
/// set to zero), or `None` if it is inconsistent. This "any solution"
/// contract is exactly what Berlekamp–Welch needs: its system is usually
/// underdetermined when there are fewer errors than the decoder allows for.
///
/// # Panics
///
/// Panics if `b.len() != a.rows()`.
#[allow(clippy::needless_range_loop)]
pub fn solve_linear<F: Field>(a: &Matrix<F>, b: &[F]) -> Option<Vec<F>> {
    assert_eq!(b.len(), a.rows(), "rhs length must match row count");
    let rows = a.rows();
    let cols = a.cols();
    // Augmented matrix [A | b].
    let mut m = Matrix::<F>::zeros(rows, cols + 1);
    for r in 0..rows {
        for c in 0..cols {
            m.set(r, c, a.get(r, c));
        }
        m.set(r, cols, b[r]);
    }

    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        // Find a pivot at or below `rank`.
        let Some(pr) = (rank..rows).find(|&r| !m.get(r, col).is_zero()) else {
            continue;
        };
        m.swap_rows(rank, pr);
        let inv = m.get(rank, col).inv().expect("pivot is nonzero");
        for c in col..=cols {
            m.set(rank, c, m.get(rank, c) * inv);
        }
        for r in 0..rows {
            if r != rank && !m.get(r, col).is_zero() {
                let factor = m.get(r, col);
                for c in col..=cols {
                    let v = m.get(r, c) - factor * m.get(rank, c);
                    m.set(r, c, v);
                }
            }
        }
        pivot_of_col[col] = Some(rank);
        rank += 1;
        if rank == rows {
            break;
        }
    }

    // Inconsistent if any zero row has nonzero rhs.
    for r in rank..rows {
        if !m.get(r, cols).is_zero() {
            return None;
        }
    }

    let mut x = vec![F::zero(); cols];
    for (col, pivot) in pivot_of_col.iter().enumerate() {
        if let Some(r) = pivot {
            x[col] = m.get(*r, cols);
        }
    }
    Some(x)
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use dprbg_field::{Field, Fp, Gf2k};
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Fp<101>;

    fn mat<Fd: Field>(rows: &[&[u64]]) -> Matrix<Fd> {
        let mut m = Matrix::zeros(rows.len(), rows[0].len());
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                m.set(r, c, Fd::from_u64(v));
            }
        }
        m
    }

    #[test]
    fn solves_unique_system() {
        // x + y = 3, x - y = 1  (over F_101) → x = 2, y = 1.
        let a = mat::<F>(&[&[1, 1], &[1, 100]]);
        let b = [F::from_u64(3), F::from_u64(1)];
        let x = solve_linear(&a, &b).unwrap();
        assert_eq!(x, vec![F::from_u64(2), F::from_u64(1)]);
    }

    #[test]
    fn detects_inconsistency() {
        // x + y = 1, x + y = 2 → no solution.
        let a = mat::<F>(&[&[1, 1], &[1, 1]]);
        let b = [F::from_u64(1), F::from_u64(2)];
        assert_eq!(solve_linear(&a, &b), None);
    }

    #[test]
    fn underdetermined_returns_some_solution() {
        // x + y = 5 with two unknowns: any solution acceptable.
        let a = mat::<F>(&[&[1, 1]]);
        let b = [F::from_u64(5)];
        let x = solve_linear(&a, &b).unwrap();
        assert_eq!(x[0] + x[1], F::from_u64(5));
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = mat::<F>(&[&[3, 7], &[2, 9]]);
        let b = [F::zero(), F::zero()];
        let x = solve_linear(&a, &b).unwrap();
        assert_eq!(x, vec![F::zero(), F::zero()]);
    }

    #[test]
    fn works_over_gf2k() {
        type G = Gf2k<8>;
        // Random invertible-ish 3x3 system: verify A·x = b.
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = Matrix::<G>::zeros(3, 3);
        for r in 0..3 {
            for c in 0..3 {
                a.set(r, c, G::random(&mut rng));
            }
        }
        let b = [G::random(&mut rng), G::random(&mut rng), G::random(&mut rng)];
        if let Some(x) = solve_linear(&a, &b) {
            for r in 0..3 {
                let lhs: G = (0..3).map(|c| a.get(r, c) * x[c]).sum();
                assert_eq!(lhs, b[r]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "rhs length")]
    fn rejects_mismatched_rhs() {
        let a = Matrix::<F>::zeros(2, 2);
        let _ = solve_linear(&a, &[F::zero()]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_bounds_checked() {
        let m = Matrix::<F>::zeros(2, 2);
        let _ = m.get(2, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_solution_satisfies_system(seed: u64, n in 1usize..6) {
            type G = Gf2k<16>;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = Matrix::<G>::zeros(n, n);
            for r in 0..n {
                for c in 0..n {
                    a.set(r, c, G::random(&mut rng));
                }
            }
            // Build b from a known x so the system is always consistent.
            let x_true: Vec<G> = (0..n).map(|_| G::random(&mut rng)).collect();
            let b: Vec<G> = (0..n)
                .map(|r| (0..n).map(|c| a.get(r, c) * x_true[c]).sum())
                .collect();
            let x = solve_linear(&a, &b).expect("consistent by construction");
            for r in 0..n {
                let lhs: G = (0..n).map(|c| a.get(r, c) * x[c]).sum();
                prop_assert_eq!(lhs, b[r]);
            }
        }
    }
}
