//! Batched interpolation kernels: many sharings over one abscissa set.
//!
//! The paper's whole construction amortizes fixed distributed cost over
//! many coins — and the local decode work amortizes the same way. Every
//! coin in a batch is reconstructed from shares held by the *same* party
//! set, i.e. the interpolation abscissas are identical across the batch;
//! only the y-values change. Both kernels here hoist everything that
//! depends only on the abscissas out of the per-sharing loop:
//!
//! * [`ZeroKernel`] — Shamir reconstruction at `x = 0`. Precomputes the
//!   Lagrange-at-zero coefficients once (`O(m²)` multiplications and a
//!   *single* field inversion via Montgomery's batch-inversion trick),
//!   then each sharing costs one `O(m)` dot product. The naive
//!   [`lagrange_eval_at_zero`](crate::lagrange_eval_at_zero) spends
//!   `O(m²)` multiplications and `m` inversions *per sharing*.
//! * [`BatchDecoder`] — Berlekamp–Welch with a shared-basis fast path.
//!   Precomputes the degree-`t` Lagrange basis over the first `t + 1`
//!   abscissas once; each sharing builds its candidate polynomial by a
//!   linear combination and verifies it against all `m` points. Clean
//!   words (the overwhelmingly common case) never touch the `O(m³)`
//!   linear solve; words with disagreements fall back to the full
//!   [`bw_decode`], so the result is always exactly what `bw_decode`
//!   would return.
//!
//! Cost accounting: each decoded sharing still ticks exactly one
//! interpolation (the paper's headline unit), so "interpolations per
//! player" is unchanged by batching — only the field-op cost *inside*
//! each interpolation shrinks. All arithmetic goes through counted
//! [`Field`] operations.

use dprbg_field::Field;
use dprbg_metrics::ops;

use crate::berlekamp_welch::{bw_decode, BwError};
use crate::lagrange::InterpolateError;
use crate::poly::Poly;

/// A reusable Lagrange-at-zero evaluator for a fixed abscissa set.
///
/// # Examples
///
/// ```
/// use dprbg_field::{Field, Gf2k};
/// use dprbg_poly::{Poly, ZeroKernel};
///
/// type F = Gf2k<16>;
/// let xs: Vec<F> = (1..=5).map(F::element).collect();
/// let kernel = ZeroKernel::new(&xs).unwrap();
/// // Reconstruct two secrets shared over the same five parties.
/// for secret in [7u64, 1996] {
///     let f = Poly::new(vec![F::from_u64(secret), F::one(), F::one()]);
///     let ys: Vec<F> = xs.iter().map(|&x| f.eval(x)).collect();
///     assert_eq!(kernel.eval_at_zero(&ys), F::from_u64(secret));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ZeroKernel<F> {
    xs: Vec<F>,
    coeffs: Vec<F>,
}

impl<F: Field> ZeroKernel<F> {
    /// Precompute the at-zero coefficients `c_i = L_i(0)` for `xs`.
    ///
    /// Uses one batched inversion for all `m` Lagrange denominators.
    ///
    /// # Errors
    ///
    /// [`InterpolateError::Empty`] without abscissas,
    /// [`InterpolateError::DuplicateAbscissa`] if any repeat.
    pub fn new(xs: &[F]) -> Result<Self, InterpolateError> {
        if xs.is_empty() {
            return Err(InterpolateError::Empty);
        }
        for (i, xi) in xs.iter().enumerate() {
            if xs[i + 1..].iter().any(|xj| xj == xi) {
                return Err(InterpolateError::DuplicateAbscissa);
            }
        }
        let m = xs.len();
        // Numerators Π_{j≠i}(−x_j) and denominators Π_{j≠i}(x_i − x_j).
        let mut nums = vec![F::one(); m];
        let mut denoms = vec![F::one(); m];
        for i in 0..m {
            for j in 0..m {
                if j != i {
                    nums[i] *= -xs[j];
                    denoms[i] *= xs[i] - xs[j];
                }
            }
        }
        // Montgomery batch inversion: one inv for every denominator.
        let mut prefix = Vec::with_capacity(m);
        let mut acc = F::one();
        for d in &denoms {
            acc *= *d;
            prefix.push(acc);
        }
        let mut inv_acc =
            prefix[m - 1].inv().expect("distinct abscissas give nonzero denominators");
        let mut coeffs = vec![F::zero(); m];
        for i in (0..m).rev() {
            let inv_i = if i == 0 { inv_acc } else { inv_acc * prefix[i - 1] };
            coeffs[i] = nums[i] * inv_i;
            inv_acc *= denoms[i];
        }
        Ok(ZeroKernel { xs: xs.to_vec(), coeffs })
    }

    /// The abscissas this kernel was built for.
    #[must_use]
    pub fn xs(&self) -> &[F] {
        &self.xs
    }

    /// Number of shares per sharing.
    #[must_use]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the kernel is empty (never true — `new` rejects it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Evaluate the interpolating polynomial of one sharing at zero.
    ///
    /// Equals `lagrange_eval_at_zero(zip(xs, ys))` and ticks the same one
    /// interpolation, but costs `m` multiplications instead of `O(m²)`
    /// plus `m` inversions.
    ///
    /// # Panics
    ///
    /// Panics if `ys.len()` differs from the kernel's abscissa count.
    #[must_use]
    pub fn eval_at_zero(&self, ys: &[F]) -> F {
        assert_eq!(ys.len(), self.xs.len(), "one y-value per abscissa");
        ops::count_interpolation(1);
        let mut acc = F::zero();
        for (c, y) in self.coeffs.iter().zip(ys) {
            acc += *c * *y;
        }
        acc
    }

    /// Evaluate many sharings in one call.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the kernel's.
    #[must_use]
    pub fn eval_many(&self, words: &[Vec<F>]) -> Vec<F> {
        words.iter().map(|ys| self.eval_at_zero(ys)).collect()
    }
}

/// A reusable Berlekamp–Welch decoder for a fixed abscissa set.
///
/// Semantically identical to calling [`bw_decode`] per word with the same
/// `t` and `e_max`; the shared precomputation only changes speed.
#[derive(Debug, Clone)]
pub struct BatchDecoder<F: Field> {
    xs: Vec<F>,
    t: usize,
    e_max: usize,
    /// Lagrange basis over the first `t + 1` abscissas: `basis[i]` is the
    /// degree-`t` polynomial with `basis[i](xs[j]) = [i == j]` for
    /// `j ≤ t`. A clean word's codeword is `Σ ys[i]·basis[i]`.
    basis: Vec<Poly<F>>,
}

impl<F: Field> BatchDecoder<F> {
    /// Precompute the shared candidate basis for `xs`.
    ///
    /// # Errors
    ///
    /// [`BwError::TooFewPoints`] if fewer than `t + 1` abscissas,
    /// [`BwError::DuplicateAbscissa`] if any repeat — the same conditions
    /// [`bw_decode`] reports per call.
    pub fn new(xs: &[F], t: usize, e_max: usize) -> Result<Self, BwError> {
        let m = xs.len();
        if m < t + 1 {
            return Err(BwError::TooFewPoints { got: m, need: t + 1 });
        }
        for (i, xi) in xs.iter().enumerate() {
            if xs[i + 1..].iter().any(|xj| xj == xi) {
                return Err(BwError::DuplicateAbscissa);
            }
        }
        let mut basis = Vec::with_capacity(t + 1);
        for i in 0..=t {
            let mut num = Poly::constant(F::one());
            let mut denom = F::one();
            for j in 0..=t {
                if j != i {
                    num = num.mul(&Poly::new(vec![-xs[j], F::one()]));
                    denom *= xs[i] - xs[j];
                }
            }
            basis.push(num.scale(denom.inv().expect("distinct abscissas")));
        }
        Ok(BatchDecoder { xs: xs.to_vec(), t, e_max, basis })
    }

    /// The abscissas this decoder was built for.
    #[must_use]
    pub fn xs(&self) -> &[F] {
        &self.xs
    }

    /// Decode one word; returns exactly what
    /// `bw_decode(zip(xs, ys), t, e_max)` returns.
    ///
    /// Fast path: the candidate through the first `t + 1` points is
    /// checked against all `m`; zero disagreements means it *is* the
    /// unique degree-≤`t` polynomial through every point, so the full
    /// decoder would return it too (one interpolation tick, no linear
    /// solve). Any disagreement falls back to [`bw_decode`], which does
    /// its own counting and radius handling.
    ///
    /// # Errors
    ///
    /// See [`BwError`].
    ///
    /// # Panics
    ///
    /// Panics if `ys.len()` differs from the decoder's abscissa count.
    pub fn decode(&self, ys: &[F]) -> Result<Poly<F>, BwError> {
        assert_eq!(ys.len(), self.xs.len(), "one y-value per abscissa");
        let mut candidate = Poly::zero();
        for (b, y) in self.basis.iter().zip(ys) {
            if !y.is_zero() {
                candidate = candidate.add(&b.scale(*y));
            }
        }
        let clean = self
            .xs
            .iter()
            .zip(ys)
            .all(|(&x, &y)| candidate.eval(x) == y);
        if clean {
            ops::count_interpolation(1);
            return Ok(candidate);
        }
        let points: Vec<(F, F)> = self.xs.iter().copied().zip(ys.iter().copied()).collect();
        bw_decode(&points, self.t, self.e_max)
    }

    /// Decode many words in one call.
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the decoder's.
    pub fn decode_many(&self, words: &[Vec<F>]) -> Vec<Result<Poly<F>, BwError>> {
        words.iter().map(|ys| self.decode(ys)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lagrange::lagrange_eval_at_zero;
    use dprbg_field::Gf2k;
    use dprbg_metrics::CostSnapshot;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::seq::SliceRandom;
    use dprbg_rng::{RngExt, SeedableRng};

    type F = Gf2k<16>;

    fn abscissas(m: u64) -> Vec<F> {
        (1..=m).map(F::element).collect()
    }

    fn word_of(f: &Poly<F>, xs: &[F]) -> Vec<F> {
        xs.iter().map(|&x| f.eval(x)).collect()
    }

    #[test]
    fn zero_kernel_matches_naive_lagrange() {
        let mut rng = StdRng::seed_from_u64(11);
        let xs = abscissas(9);
        let kernel = ZeroKernel::new(&xs).unwrap();
        for _ in 0..20 {
            let f = Poly::<F>::random(4, &mut rng);
            let ys = word_of(&f, &xs);
            let points: Vec<(F, F)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            assert_eq!(kernel.eval_at_zero(&ys), lagrange_eval_at_zero(&points).unwrap());
            assert_eq!(kernel.eval_at_zero(&ys), f.constant_term());
        }
    }

    #[test]
    fn zero_kernel_handles_arbitrary_words_like_naive() {
        // Not just clean sharings: on *any* y-vector the kernel computes
        // the same linear functional the naive evaluation does.
        let mut rng = StdRng::seed_from_u64(12);
        let xs = abscissas(7);
        let kernel = ZeroKernel::new(&xs).unwrap();
        for _ in 0..20 {
            let ys: Vec<F> = (0..7).map(|_| F::random(&mut rng)).collect();
            let points: Vec<(F, F)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            assert_eq!(kernel.eval_at_zero(&ys), lagrange_eval_at_zero(&points).unwrap());
        }
    }

    #[test]
    fn zero_kernel_rejects_bad_abscissas() {
        assert_eq!(ZeroKernel::<F>::new(&[]).unwrap_err(), InterpolateError::Empty);
        assert_eq!(
            ZeroKernel::new(&[F::one(), F::one()]).unwrap_err(),
            InterpolateError::DuplicateAbscissa
        );
    }

    #[test]
    fn zero_kernel_amortizes_inversions() {
        let xs = abscissas(8);
        let before = CostSnapshot::capture();
        let kernel = ZeroKernel::new(&xs).unwrap();
        let setup = CostSnapshot::capture().since(&before);
        assert_eq!(setup.field_invs, 1, "batch inversion: one inv for all coefficients");
        assert_eq!(setup.interpolations, 0, "setup is not an interpolation");

        let mut rng = StdRng::seed_from_u64(13);
        let words: Vec<Vec<F>> =
            (0..5).map(|_| (0..8).map(|_| F::random(&mut rng)).collect()).collect();
        let before = CostSnapshot::capture();
        let _ = kernel.eval_many(&words);
        let d = CostSnapshot::capture().since(&before);
        assert_eq!(d.interpolations, 5, "one tick per sharing");
        assert_eq!(d.field_invs, 0, "no inversions on the per-sharing path");
    }

    #[test]
    fn decoder_matches_bw_on_clean_words() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = 3;
        let xs = abscissas(10);
        let dec = BatchDecoder::new(&xs, t, t).unwrap();
        for _ in 0..10 {
            let f = Poly::<F>::random(t, &mut rng);
            let ys = word_of(&f, &xs);
            assert_eq!(dec.decode(&ys).unwrap(), f);
        }
    }

    #[test]
    fn decoder_matches_bw_on_errored_words() {
        let mut rng = StdRng::seed_from_u64(22);
        let t = 2;
        let xs = abscissas(7); // m = 3t + 1
        let dec = BatchDecoder::new(&xs, t, t).unwrap();
        for trial in 0..20 {
            let f = Poly::<F>::random(t, &mut rng);
            let mut ys = word_of(&f, &xs);
            let e = rng.random_range(0..=t);
            let mut idx: Vec<usize> = (0..ys.len()).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().take(e) {
                ys[i] = F::random(&mut rng);
            }
            let points: Vec<(F, F)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            assert_eq!(
                dec.decode(&ys),
                bw_decode(&points, t, t),
                "trial {trial}: batched decode diverged from bw_decode"
            );
        }
    }

    #[test]
    fn decoder_fails_like_bw_beyond_radius() {
        let mut rng = StdRng::seed_from_u64(23);
        let t = 2;
        let xs = abscissas(7);
        let dec = BatchDecoder::new(&xs, t, t).unwrap();
        let f = Poly::<F>::random(t, &mut rng);
        let mut ys = word_of(&f, &xs);
        for y in ys.iter_mut().take(4) {
            *y += F::from_u64(0x5EED);
        }
        let points: Vec<(F, F)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        assert_eq!(dec.decode(&ys), bw_decode(&points, t, t));
    }

    #[test]
    fn decoder_rejects_bad_abscissas() {
        assert_eq!(
            BatchDecoder::new(&abscissas(3), 3, 3).unwrap_err(),
            BwError::TooFewPoints { got: 3, need: 4 }
        );
        assert_eq!(
            BatchDecoder::new(&[F::one(), F::one(), F::element(2), F::element(3)], 1, 1)
                .unwrap_err(),
            BwError::DuplicateAbscissa
        );
    }

    #[test]
    fn decoder_ticks_one_interpolation_per_clean_word() {
        let mut rng = StdRng::seed_from_u64(24);
        let t = 2;
        let xs = abscissas(7);
        let dec = BatchDecoder::new(&xs, t, t).unwrap();
        let words: Vec<Vec<F>> =
            (0..4).map(|_| word_of(&Poly::<F>::random(t, &mut rng), &xs)).collect();
        let before = CostSnapshot::capture();
        let out = dec.decode_many(&words);
        let d = CostSnapshot::capture().since(&before);
        assert!(out.iter().all(Result::is_ok));
        assert_eq!(d.interpolations, 4);
        assert_eq!(d.field_invs, 0, "clean words never hit the linear solve");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_batch_decoder_always_equals_bw(seed: u64, t in 1usize..4, errs in 0usize..5) {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = 3 * t + 1;
            let xs = abscissas(m as u64);
            let dec = BatchDecoder::new(&xs, t, t).unwrap();
            let f = Poly::<F>::random(t, &mut rng);
            let mut ys = word_of(&f, &xs);
            let mut idx: Vec<usize> = (0..m).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().take(errs.min(m)) {
                ys[i] = F::random(&mut rng);
            }
            let points: Vec<(F, F)> = xs.iter().copied().zip(ys.iter().copied()).collect();
            prop_assert_eq!(dec.decode(&ys), bw_decode(&points, t, t));
        }
    }
}
