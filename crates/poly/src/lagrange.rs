//! Lagrange interpolation.
//!
//! "The basic solution … is to choose any t+1 values (points) … and to
//! compute the unique polynomial f(x) that they define (using, say, the
//! Lagrange method)" (§3.1). Each call ticks the paper's "interpolations
//! per player" counter.

use dprbg_field::Field;
use dprbg_metrics::ops;

use crate::poly::Poly;

/// Errors from [`interpolate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterpolateError {
    /// Two supplied points share the same x-coordinate.
    DuplicateAbscissa,
    /// No points were supplied.
    Empty,
}

impl std::fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterpolateError::DuplicateAbscissa => {
                write!(f, "duplicate x-coordinate among interpolation points")
            }
            InterpolateError::Empty => write!(f, "no interpolation points supplied"),
        }
    }
}

impl std::error::Error for InterpolateError {}

/// The unique polynomial of degree `< points.len()` through all `points`.
///
/// Runs the classical `O(m²)` Lagrange construction and ticks one
/// interpolation on the cost counters.
///
/// # Errors
///
/// [`InterpolateError::Empty`] without points,
/// [`InterpolateError::DuplicateAbscissa`] if x-coordinates repeat.
pub fn interpolate<F: Field>(points: &[(F, F)]) -> Result<Poly<F>, InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        if points[i + 1..].iter().any(|(xj, _)| xj == xi) {
            return Err(InterpolateError::DuplicateAbscissa);
        }
    }
    ops::count_interpolation(1);
    let mut acc = Poly::zero();
    for (i, &(xi, yi)) in points.iter().enumerate() {
        if yi.is_zero() {
            continue;
        }
        // Basis polynomial L_i(x) = Π_{j≠i} (x − x_j) / (x_i − x_j).
        let mut num = Poly::constant(F::one());
        let mut denom = F::one();
        for (j, &(xj, _)) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            num = num.mul(&Poly::new(vec![-xj, F::one()]));
            denom *= xi - xj;
        }
        let scale = yi * denom.inv().expect("distinct abscissas give nonzero denominator");
        acc = acc.add(&num.scale(scale));
    }
    Ok(acc)
}

/// Evaluate the interpolating polynomial at zero without constructing it —
/// the classic "reconstruct the Shamir secret" shortcut, `O(m²)` additions
/// and multiplications but no polynomial arithmetic.
///
/// # Errors
///
/// Same conditions as [`interpolate`]; additionally duplicates are detected
/// the same way.
pub fn lagrange_eval_at_zero<F: Field>(points: &[(F, F)]) -> Result<F, InterpolateError> {
    if points.is_empty() {
        return Err(InterpolateError::Empty);
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        if points[i + 1..].iter().any(|(xj, _)| xj == xi) {
            return Err(InterpolateError::DuplicateAbscissa);
        }
    }
    ops::count_interpolation(1);
    let mut acc = F::zero();
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut num = F::one();
        let mut denom = F::one();
        for (j, &(xj, _)) in points.iter().enumerate() {
            if j == i {
                continue;
            }
            num *= -xj;
            denom *= xi - xj;
        }
        acc += yi * num * denom.inv().expect("distinct abscissas");
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::{Fp, Gf2k};
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Gf2k<16>;

    #[test]
    fn recovers_known_polynomial() {
        let f = Poly::new(vec![F::from_u64(9), F::from_u64(4), F::from_u64(7)]);
        let pts: Vec<(F, F)> = (1..=3).map(|i| (F::element(i), f.eval(F::element(i)))).collect();
        assert_eq!(interpolate(&pts).unwrap(), f);
    }

    #[test]
    fn exact_degree_bound() {
        // m points define a polynomial of degree < m.
        let mut rng = StdRng::seed_from_u64(1);
        let f = Poly::<F>::random(4, &mut rng);
        let pts: Vec<(F, F)> = (1..=5).map(|i| (F::element(i), f.eval(F::element(i)))).collect();
        let g = interpolate(&pts).unwrap();
        assert_eq!(g, f);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(interpolate::<F>(&[]), Err(InterpolateError::Empty));
        let p = (F::one(), F::one());
        assert_eq!(
            interpolate(&[p, p]),
            Err(InterpolateError::DuplicateAbscissa)
        );
        assert_eq!(lagrange_eval_at_zero::<F>(&[]), Err(InterpolateError::Empty));
        assert_eq!(
            lagrange_eval_at_zero(&[p, p]),
            Err(InterpolateError::DuplicateAbscissa)
        );
    }

    #[test]
    fn works_over_prime_field() {
        type P = Fp<101>;
        // f(x) = 10 + 3x over F_101
        let f = Poly::new(vec![P::from_u64(10), P::from_u64(3)]);
        let pts = [(P::from_u64(1), f.eval(P::from_u64(1))), (P::from_u64(2), f.eval(P::from_u64(2)))];
        assert_eq!(interpolate(&pts).unwrap(), f);
        assert_eq!(lagrange_eval_at_zero(&pts).unwrap(), P::from_u64(10));
    }

    #[test]
    fn eval_at_zero_matches_full_interpolation() {
        let mut rng = StdRng::seed_from_u64(3);
        let f = Poly::<F>::random(6, &mut rng);
        let pts: Vec<(F, F)> = (1..=7).map(|i| (F::element(i), f.eval(F::element(i)))).collect();
        assert_eq!(
            lagrange_eval_at_zero(&pts).unwrap(),
            interpolate(&pts).unwrap().constant_term()
        );
    }

    #[test]
    fn counts_interpolations() {
        use dprbg_metrics::CostSnapshot;
        let pts = [(F::element(1), F::one()), (F::element(2), F::zero())];
        let before = CostSnapshot::capture();
        let _ = interpolate(&pts).unwrap();
        let _ = lagrange_eval_at_zero(&pts).unwrap();
        let d = CostSnapshot::capture().since(&before);
        assert_eq!(d.interpolations, 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_interpolate_roundtrip(seed: u64, deg in 0usize..8) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = Poly::<F>::random(deg, &mut rng);
            let pts: Vec<(F, F)> = (1..=(deg as u64 + 1))
                .map(|i| (F::element(i), f.eval(F::element(i))))
                .collect();
            prop_assert_eq!(interpolate(&pts).unwrap(), f);
        }

        #[test]
        fn prop_extra_points_do_not_change_result(seed: u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = Poly::<F>::random(3, &mut rng);
            let pts: Vec<(F, F)> = (1..=9)
                .map(|i| (F::element(i), f.eval(F::element(i))))
                .collect();
            // 9 points on a degree-3 polynomial still interpolate to it.
            prop_assert_eq!(interpolate(&pts).unwrap(), f);
        }
    }
}
