//! The Berlekamp–Welch decoder.
//!
//! Cited by the paper (§2, [5]) as the interpolation primitive: Bit-Gen
//! step 5 interpolates "using the Berlekamp-Welch decoder" through shares
//! of which up to `t` may be corrupted by faulty players, and Coin-Expose
//! step 2 does the same when a coin is revealed.
//!
//! Given `m` points of which at most `e` are wrong, with the underlying
//! polynomial of degree ≤ `t` and `m ≥ t + 2e + 1`, the decoder finds an
//! *error locator* `E(x)` (monic, degree `e`) and `Q(x)` (degree ≤ `t + e`)
//! with `Q(x_i) = y_i·E(x_i)` for every `i`; then `f = Q / E` exactly.

use dprbg_field::Field;
use dprbg_metrics::ops;

use crate::linalg::{solve_linear, Matrix};
use crate::poly::Poly;

/// Errors from [`bw_decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BwError {
    /// Fewer than `t + 1` points were supplied — no degree-`t` polynomial
    /// is determined.
    TooFewPoints {
        /// Points supplied.
        got: usize,
        /// Minimum required (`t + 1`).
        need: usize,
    },
    /// Two supplied points share an x-coordinate.
    DuplicateAbscissa,
    /// No polynomial of degree ≤ `t` agrees with enough of the points —
    /// more errors than the decoding radius allows.
    DecodingFailed,
}

impl std::fmt::Display for BwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BwError::TooFewPoints { got, need } => {
                write!(f, "need at least {need} points, got {got}")
            }
            BwError::DuplicateAbscissa => write!(f, "duplicate x-coordinate among points"),
            BwError::DecodingFailed => write!(f, "no degree-bounded polynomial within radius"),
        }
    }
}

impl std::error::Error for BwError {}

/// Decode the unique polynomial of degree ≤ `t` through `points`, of which
/// at most `e_max` may be arbitrary (Byzantine) errors.
///
/// The effective radius is `e = min(e_max, ⌊(m − t − 1) / 2⌋)` where `m` is
/// the number of points; callers in the protocols pass `e_max = t` with
/// `m ≥ 3t + 1` points, exactly the paper's setting (≥ `2t + 1` of the
/// clique's shares are honest).
///
/// Ticks one interpolation on the cost counters.
///
/// # Errors
///
/// See [`BwError`]. `DecodingFailed` is returned whenever no polynomial of
/// degree ≤ `t` agrees with at least `m − e` of the points.
pub fn bw_decode<F: Field>(points: &[(F, F)], t: usize, e_max: usize) -> Result<Poly<F>, BwError> {
    let m = points.len();
    if m < t + 1 {
        return Err(BwError::TooFewPoints { got: m, need: t + 1 });
    }
    for (i, (xi, _)) in points.iter().enumerate() {
        if points[i + 1..].iter().any(|(xj, _)| xj == xi) {
            return Err(BwError::DuplicateAbscissa);
        }
    }
    ops::count_interpolation(1);
    let e = e_max.min((m - t - 1) / 2);

    // Unknowns: q_0..q_{t+e}  (t + e + 1 of them), then e_0..e_{e-1}
    // (E is monic of degree e, so its leading coefficient is fixed at 1).
    let nq = t + e + 1;
    let cols = nq + e;
    let mut a = Matrix::<F>::zeros(m, cols);
    let mut b = vec![F::zero(); m];
    for (row, &(x, y)) in points.iter().enumerate() {
        // Σ_j q_j x^j − y·Σ_{j<e} e_j x^j = y·x^e
        let mut xp = F::one();
        for j in 0..nq {
            a.set(row, j, xp);
            xp *= x;
        }
        let mut xp = F::one();
        for j in 0..e {
            a.set(row, nq + j, -(y * xp));
            xp *= x;
        }
        b[row] = y * x.pow(e as u128);
    }
    let sol = solve_linear(&a, &b).ok_or(BwError::DecodingFailed)?;

    let q_poly = Poly::new(sol[..nq].to_vec());
    let mut e_coeffs = sol[nq..].to_vec();
    e_coeffs.push(F::one()); // monic x^e term
    let e_poly = Poly::new(e_coeffs);

    let f = q_poly.div_exact(&e_poly).ok_or(BwError::DecodingFailed)?;
    if f.degree().is_some_and(|d| d > t) {
        return Err(BwError::DecodingFailed);
    }
    // Accept only if the number of disagreeing points is within radius —
    // this is what makes the answer unique for m ≥ t + 2e + 1.
    let disagreements = points.iter().filter(|&&(x, y)| f.eval(x) != y).count();
    if disagreements > e {
        return Err(BwError::DecodingFailed);
    }
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::seq::SliceRandom;
    use dprbg_rng::{RngExt, SeedableRng};

    type F = Gf2k<16>;

    fn points_of(f: &Poly<F>, n: u64) -> Vec<(F, F)> {
        (1..=n).map(|i| (F::element(i), f.eval(F::element(i)))).collect()
    }

    #[test]
    fn error_free_equals_lagrange() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = Poly::<F>::random(3, &mut rng);
        let pts = points_of(&f, 10);
        assert_eq!(bw_decode(&pts, 3, 3).unwrap(), f);
    }

    #[test]
    fn corrects_up_to_radius() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = 2;
        let f = Poly::<F>::random(t, &mut rng);
        // m = 3t + 1 = 7 points, radius t = 2 errors.
        let mut pts = points_of(&f, 7);
        pts[0].1 += F::one();
        pts[4].1 = F::from_u64(0xDEAD);
        assert_eq!(bw_decode(&pts, t, t).unwrap(), f);
    }

    #[test]
    fn fails_beyond_radius() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = 2;
        let f = Poly::<F>::random(t, &mut rng);
        let mut pts = points_of(&f, 7);
        // 3 errors with radius 2: must either fail or return some *other*
        // consistent polynomial — never silently return a wrong "f".
        for p in pts.iter_mut().take(3) {
            p.1 += F::from_u64(0x1234);
        }
        match bw_decode(&pts, t, t) {
            Err(BwError::DecodingFailed) => {}
            Ok(g) => {
                // If it decodes, it must satisfy the radius contract.
                let dis = pts.iter().filter(|&&(x, y)| g.eval(x) != y).count();
                assert!(dis <= 2);
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn rejects_too_few_points() {
        let pts = vec![(F::element(1), F::one())];
        assert_eq!(
            bw_decode(&pts, 3, 0),
            Err(BwError::TooFewPoints { got: 1, need: 4 })
        );
    }

    #[test]
    fn rejects_duplicates() {
        let p = (F::element(1), F::one());
        let pts = vec![p, p, (F::element(2), F::zero()), (F::element(3), F::zero())];
        assert_eq!(bw_decode(&pts, 1, 1), Err(BwError::DuplicateAbscissa));
    }

    #[test]
    fn radius_clamped_by_point_count() {
        // m = t + 1 points: radius collapses to zero; clean data decodes.
        let mut rng = StdRng::seed_from_u64(4);
        let f = Poly::<F>::random(3, &mut rng);
        let pts = points_of(&f, 4);
        assert_eq!(bw_decode(&pts, 3, 3).unwrap(), f);
    }

    #[test]
    fn detects_degree_violation() {
        // Points from a degree-5 polynomial, decoded with t = 2 and no
        // error budget to hide behind.
        let mut rng = StdRng::seed_from_u64(5);
        let f = Poly::<F>::random(5, &mut rng);
        let pts = points_of(&f, 12);
        assert!(matches!(bw_decode(&pts, 2, 0), Err(BwError::DecodingFailed)));
    }

    #[test]
    fn zero_polynomial_decodes() {
        let pts: Vec<(F, F)> = (1..=7).map(|i| (F::element(i), F::zero())).collect();
        let f = bw_decode(&pts, 2, 2).unwrap();
        assert!(f.is_zero());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn prop_decodes_with_random_error_patterns(
            seed: u64,
            t in 1usize..4,
            extra in 0usize..4,
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let f = Poly::<F>::random(t, &mut rng);
            let n = (3 * t + 1 + extra) as u64;
            let mut pts = points_of(&f, n);
            // Corrupt up to t random positions with random values.
            let e = rng.random_range(0..=t);
            let mut idx: Vec<usize> = (0..pts.len()).collect();
            idx.shuffle(&mut rng);
            for &i in idx.iter().take(e) {
                pts[i].1 = F::random(&mut rng);
            }
            let decoded = bw_decode(&pts, t, t).unwrap();
            prop_assert_eq!(decoded, f);
        }
    }
}
