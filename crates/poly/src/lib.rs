#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Polynomial algebra and decoding for the `dprbg` workspace.
//!
//! The paper's protocols are built almost entirely out of polynomial
//! operations over a finite field:
//!
//! - **Horner evaluation** — the batched linear combinations of Batch-VSS
//!   and Bit-Gen ("this can be efficiently computed as
//!   `(((r·α_iM + α_i(M−1))r + …)r + α_i1)r`", Fig. 3);
//! - **Lagrange interpolation** — "in some parts we consider the
//!   interpolation of a polynomial as a basic step" (§2);
//! - **Berlekamp–Welch decoding** — "Methods such as the Berlekamp-Welch
//!   decoder \[5\] can be used to implement this operation" (§2); Bit-Gen
//!   step 5 and Coin-Expose step 2 decode in the presence of up to `t`
//!   corrupted shares;
//! - **Shamir secret sharing** \[18\] — the substrate of every VSS.
//!
//! This crate provides all four, plus the Gaussian elimination the decoder
//! needs, generic over [`dprbg_field::Field`]. Interpolations tick the
//! [`dprbg_metrics::ops::count_interpolation`] counter (the paper reports
//! "interpolations per player" as a headline figure, e.g. Lemma 2).
//!
//! # Examples
//!
//! ```
//! use dprbg_field::{Field, Gf2k};
//! use dprbg_poly::Poly;
//!
//! type F = Gf2k<16>;
//! // f(x) = 3 + 5x + x^2
//! let f = Poly::new(vec![F::from_u64(3), F::from_u64(5), F::one()]);
//! let pts: Vec<(F, F)> = (1..=3).map(|i| {
//!     let x = F::element(i);
//!     (x, f.eval(x))
//! }).collect();
//! let g = dprbg_poly::interpolate(&pts).unwrap();
//! assert_eq!(f, g);
//! ```

mod batch;
mod berlekamp_welch;
mod lagrange;
mod linalg;
mod poly;
mod rs;
mod shamir;

pub use batch::{BatchDecoder, ZeroKernel};
pub use berlekamp_welch::{bw_decode, BwError};
pub use lagrange::{interpolate, lagrange_eval_at_zero, InterpolateError};
pub use linalg::{solve_linear, Matrix};
pub use poly::Poly;
pub use rs::{RsCode, RsDecodeError};
pub use shamir::{
    reconstruct_robust, reconstruct_secret, share_points, share_polynomial, Share, ShamirError,
};
