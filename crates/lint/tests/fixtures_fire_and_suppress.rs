//! Every rule must fire on its bad fixture and stay silent on its
//! allowed fixture — the analyzer's own regression corpus
//! (`tests/fixtures/`; the workspace scan deliberately skips that
//! directory).

use dprbg_lint::{lint_manifest, lint_rust_source, FileClass, FileKind, RuleId};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint a fixture as if it were library code of `crate_name`.
fn lint_as(name: &str, crate_name: &str) -> Vec<dprbg_lint::Diagnostic> {
    let class = FileClass { crate_name: crate_name.into(), kind: FileKind::Lib };
    lint_rust_source(name, &fixture(name), &class)
}

#[test]
fn determinism_bad_fires() {
    let d = lint_as("determinism_bad.rs", "dprbg-core");
    assert!(d.len() >= 6, "want every nondeterminism source flagged, got {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Determinism));
    // Specific sources: hash collections, clocks, env, thread id.
    // (`SystemTime` lines surface as the `std::time` path diagnostic.)
    for needle in ["HashMap", "HashSet", "Instant", "std::time", "env", "thread"] {
        assert!(
            d.iter().any(|x| x.message.contains(needle)),
            "no diagnostic mentions {needle}: {d:#?}"
        );
    }
}

#[test]
fn determinism_allowed_is_clean() {
    assert_eq!(lint_as("determinism_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn determinism_is_scoped_to_protocol_crates() {
    // The same file inside the bench crate is out of scope.
    assert_eq!(lint_as("determinism_bad.rs", "dprbg-bench").len(), 0);
}

#[test]
fn error_discipline_bad_fires() {
    let d = lint_as("error_discipline_bad.rs", "dprbg-core");
    assert_eq!(d.len(), 5, "unwrap, expect, panic!, todo!, unimplemented!: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::ErrorDiscipline));
}

#[test]
fn error_discipline_allowed_is_clean() {
    assert_eq!(lint_as("error_discipline_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn cost_model_bad_fires() {
    let d = lint_as("cost_model_bad.rs", "dprbg-poly");
    assert!(d.len() >= 4, "xor, xor-assign, count_ones, wrapping/rotate: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::CostModel));
}

#[test]
fn cost_model_allowed_is_clean() {
    assert_eq!(lint_as("cost_model_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn cost_model_exempts_dprbg_field() {
    // The counted implementation itself is the one place bit-hacks live.
    assert_eq!(lint_as("cost_model_bad.rs", "dprbg-field").len(), 0);
}

#[test]
fn transport_bad_fires() {
    let d = lint_as("transport_bad.rs", "dprbg-bench");
    assert!(d.len() >= 3, "mpsc, thread spawn, retired entry point: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Transport));
}

#[test]
fn transport_allowed_is_clean() {
    assert_eq!(lint_as("transport_allowed.rs", "dprbg-bench"), vec![]);
}

#[test]
fn transport_suppressions_are_rejected() {
    // The pin fires as its own diagnostic, and suppresses neither of the
    // two retired-entry-point calls below it.
    let d = lint_as("transport_suppressed_bad.rs", "dprbg-bench");
    assert_eq!(d.len(), 3, "allow pin + two retired calls: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Transport));
    assert!(
        d.iter().any(|x| x.message.contains("retired along with the blocking transport")),
        "{d:#?}"
    );
}

#[test]
fn transport_thread_machinery_stays_in_sim_but_entry_points_fire_everywhere() {
    // In dprbg-sim, mpsc and thread::spawn are the ParRunner pool's
    // prerogative — only the retired blocking entry point fires.
    let d = lint_as("transport_bad.rs", "dprbg-sim");
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].rule, RuleId::Transport);
    assert!(d[0].message.contains("retired blocking transport"), "{d:#?}");
}

#[test]
fn trace_determinism_bad_fires() {
    let d = lint_as("trace_determinism_bad.rs", "dprbg-trace");
    assert!(d.len() >= 4, "Instant, std::time, thread::current, HashMap: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::TraceDeterminism));
    for needle in ["Instant", "std::time", "thread", "HashMap"] {
        assert!(
            d.iter().any(|x| x.message.contains(needle)),
            "no diagnostic mentions {needle}: {d:#?}"
        );
    }
}

#[test]
fn trace_determinism_allowed_is_clean() {
    assert_eq!(lint_as("trace_determinism_allowed.rs", "dprbg-trace"), vec![]);
}

#[test]
fn trace_determinism_is_scoped_to_the_trace_crate() {
    // The same file inside the bench crate is out of scope (bench times
    // things on purpose); inside a protocol crate it is plain
    // `determinism` territory instead.
    assert_eq!(lint_as("trace_determinism_bad.rs", "dprbg-bench").len(), 0);
    let in_core = lint_as("trace_determinism_bad.rs", "dprbg-core");
    assert!(in_core.iter().all(|x| x.rule == RuleId::Determinism), "{in_core:#?}");
}

#[test]
fn field_ct_bad_fires() {
    let d = lint_as("field_ct_bad.rs", "dprbg-field");
    assert_eq!(d.len(), 2, "both trailing_zeros loops flagged: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::FieldCt));
}

#[test]
fn field_ct_allowed_is_clean() {
    assert_eq!(lint_as("field_ct_allowed.rs", "dprbg-field"), vec![]);
}

#[test]
fn field_ct_is_scoped_to_the_field_crate() {
    // The same tokens in a cost-model crate are already cost-model
    // territory; in bench code they fire nothing.
    let in_poly = lint_as("field_ct_bad.rs", "dprbg-poly");
    assert!(!in_poly.is_empty());
    assert!(in_poly.iter().all(|x| x.rule == RuleId::CostModel), "{in_poly:#?}");
    assert_eq!(lint_as("field_ct_bad.rs", "dprbg-bench").len(), 0);
}

#[test]
fn hermetic_bad_fires() {
    let d = lint_manifest("hermetic_bad.toml", &fixture("hermetic_bad.toml"));
    assert!(d.len() >= 5, "five forbidden dependency shapes: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Hermetic));
}

#[test]
fn hermetic_allowed_is_clean() {
    assert_eq!(
        lint_manifest("hermetic_allowed.toml", &fixture("hermetic_allowed.toml")),
        vec![]
    );
}

#[test]
fn malformed_allows_are_diagnostics_and_do_not_suppress() {
    let d = lint_as("allow_syntax_bad.rs", "dprbg-core");
    // Three malformed allows + the HashMap uses they fail to suppress.
    assert!(d.iter().filter(|x| x.rule == RuleId::AllowSyntax).count() >= 3, "{d:#?}");
    assert!(d.iter().any(|x| x.rule == RuleId::Determinism), "{d:#?}");
}
