//! Every rule must fire on its bad fixture and stay silent on its
//! allowed fixture — the analyzer's own regression corpus
//! (`tests/fixtures/`; the workspace scan deliberately skips that
//! directory).

use dprbg_lint::{
    lint_manifest, lint_rust_source, lint_sources, FileClass, FileKind, RuleId, SourceSpec,
};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Lint a fixture as if it were library code of `crate_name`.
fn lint_as(name: &str, crate_name: &str) -> Vec<dprbg_lint::Diagnostic> {
    let class = FileClass { crate_name: crate_name.into(), kind: FileKind::Lib };
    lint_rust_source(name, &fixture(name), &class)
}

/// Run the full workspace analysis (flow rules + stale-allow included)
/// over one fixture classified as library code of `crate_name`.
fn scan_as(name: &str, crate_name: &str) -> Vec<dprbg_lint::Diagnostic> {
    let specs = vec![SourceSpec {
        label: name.to_string(),
        text: fixture(name),
        class: FileClass { crate_name: crate_name.into(), kind: FileKind::Lib },
    }];
    lint_sources(&specs).diags
}

#[test]
fn determinism_bad_fires() {
    let d = lint_as("determinism_bad.rs", "dprbg-core");
    assert!(d.len() >= 6, "want every nondeterminism source flagged, got {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Determinism));
    // Specific sources: hash collections, clocks, env, thread id.
    // (`SystemTime` lines surface as the `std::time` path diagnostic.)
    for needle in ["HashMap", "HashSet", "Instant", "std::time", "env", "thread"] {
        assert!(
            d.iter().any(|x| x.message.contains(needle)),
            "no diagnostic mentions {needle}: {d:#?}"
        );
    }
}

#[test]
fn determinism_allowed_is_clean() {
    assert_eq!(lint_as("determinism_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn determinism_is_scoped_to_protocol_crates() {
    // The same file inside the bench crate is out of scope.
    assert_eq!(lint_as("determinism_bad.rs", "dprbg-bench").len(), 0);
}

#[test]
fn error_discipline_bad_fires() {
    let d = lint_as("error_discipline_bad.rs", "dprbg-core");
    assert_eq!(d.len(), 5, "unwrap, expect, panic!, todo!, unimplemented!: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::ErrorDiscipline));
}

#[test]
fn error_discipline_allowed_is_clean() {
    assert_eq!(lint_as("error_discipline_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn cost_model_bad_fires() {
    let d = lint_as("cost_model_bad.rs", "dprbg-poly");
    assert!(d.len() >= 4, "xor, xor-assign, count_ones, wrapping/rotate: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::CostModel));
}

#[test]
fn cost_model_allowed_is_clean() {
    assert_eq!(lint_as("cost_model_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn cost_model_exempts_dprbg_field() {
    // The counted implementation itself is the one place bit-hacks live.
    assert_eq!(lint_as("cost_model_bad.rs", "dprbg-field").len(), 0);
}

#[test]
fn transport_bad_fires() {
    let d = lint_as("transport_bad.rs", "dprbg-bench");
    assert!(d.len() >= 3, "mpsc, thread spawn, retired entry point: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Transport));
}

#[test]
fn transport_allowed_is_clean() {
    assert_eq!(lint_as("transport_allowed.rs", "dprbg-bench"), vec![]);
}

#[test]
fn transport_suppressions_are_rejected() {
    // The pin fires as its own diagnostic, and suppresses neither of the
    // two retired-entry-point calls below it.
    let d = lint_as("transport_suppressed_bad.rs", "dprbg-bench");
    assert_eq!(d.len(), 3, "allow pin + two retired calls: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Transport));
    assert!(
        d.iter().any(|x| x.message.contains("retired along with the blocking transport")),
        "{d:#?}"
    );
}

#[test]
fn transport_thread_machinery_stays_in_sim_but_entry_points_fire_everywhere() {
    // In dprbg-sim, mpsc and thread::spawn are the ParRunner pool's
    // prerogative — only the retired blocking entry point fires.
    let d = lint_as("transport_bad.rs", "dprbg-sim");
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].rule, RuleId::Transport);
    assert!(d[0].message.contains("retired blocking transport"), "{d:#?}");
}

#[test]
fn trace_determinism_bad_fires() {
    let d = lint_as("trace_determinism_bad.rs", "dprbg-trace");
    assert!(d.len() >= 4, "Instant, std::time, thread::current, HashMap: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::TraceDeterminism));
    for needle in ["Instant", "std::time", "thread", "HashMap"] {
        assert!(
            d.iter().any(|x| x.message.contains(needle)),
            "no diagnostic mentions {needle}: {d:#?}"
        );
    }
}

#[test]
fn trace_determinism_allowed_is_clean() {
    assert_eq!(lint_as("trace_determinism_allowed.rs", "dprbg-trace"), vec![]);
}

#[test]
fn trace_determinism_is_scoped_to_the_trace_crate() {
    // The same file inside the bench crate is out of scope (bench times
    // things on purpose); inside a protocol crate it is plain
    // `determinism` territory instead.
    assert_eq!(lint_as("trace_determinism_bad.rs", "dprbg-bench").len(), 0);
    let in_core = lint_as("trace_determinism_bad.rs", "dprbg-core");
    assert!(in_core.iter().all(|x| x.rule == RuleId::Determinism), "{in_core:#?}");
}

#[test]
fn registry_determinism_bad_fires() {
    let d = lint_as("registry_determinism_bad.rs", "dprbg-metrics");
    assert!(d.len() >= 5, "Instant, std::time, thread::current, HashMap, std::env: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::RegistryDeterminism));
    for needle in ["Instant", "std::time", "thread", "HashMap", "env"] {
        assert!(
            d.iter().any(|x| x.message.contains(needle)),
            "no diagnostic mentions {needle}: {d:#?}"
        );
    }
}

#[test]
fn registry_determinism_allowed_is_clean() {
    assert_eq!(lint_as("registry_determinism_allowed.rs", "dprbg-metrics"), vec![]);
}

#[test]
fn registry_determinism_is_scoped_to_the_metrics_crate() {
    // The same file inside the bench crate is out of scope (bench times
    // things on purpose); inside a protocol crate it is plain
    // `determinism` territory instead.
    assert_eq!(lint_as("registry_determinism_bad.rs", "dprbg-bench").len(), 0);
    let in_core = lint_as("registry_determinism_bad.rs", "dprbg-core");
    assert!(!in_core.is_empty());
    assert!(in_core.iter().all(|x| x.rule == RuleId::Determinism), "{in_core:#?}");
}

#[test]
fn field_ct_bad_fires() {
    let d = lint_as("field_ct_bad.rs", "dprbg-field");
    assert_eq!(d.len(), 2, "both trailing_zeros loops flagged: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::FieldCt));
}

#[test]
fn field_ct_allowed_is_clean() {
    assert_eq!(lint_as("field_ct_allowed.rs", "dprbg-field"), vec![]);
}

#[test]
fn field_ct_is_scoped_to_the_field_crate() {
    // The same tokens in a cost-model crate are already cost-model
    // territory; in bench code they fire nothing.
    let in_poly = lint_as("field_ct_bad.rs", "dprbg-poly");
    assert!(!in_poly.is_empty());
    assert!(in_poly.iter().all(|x| x.rule == RuleId::CostModel), "{in_poly:#?}");
    assert_eq!(lint_as("field_ct_bad.rs", "dprbg-bench").len(), 0);
}

#[test]
fn hermetic_bad_fires() {
    let d = lint_manifest("hermetic_bad.toml", &fixture("hermetic_bad.toml"));
    assert!(d.len() >= 5, "five forbidden dependency shapes: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::Hermetic));
}

#[test]
fn hermetic_allowed_is_clean() {
    assert_eq!(
        lint_manifest("hermetic_allowed.toml", &fixture("hermetic_allowed.toml")),
        vec![]
    );
}

#[test]
fn malformed_allows_are_diagnostics_and_do_not_suppress() {
    let d = lint_as("allow_syntax_bad.rs", "dprbg-core");
    // Three malformed allows + the HashMap uses they fail to suppress.
    assert!(d.iter().filter(|x| x.rule == RuleId::AllowSyntax).count() >= 3, "{d:#?}");
    assert!(d.iter().any(|x| x.rule == RuleId::Determinism), "{d:#?}");
}

// ---------------------------------------------------------------------
// Flow rules (PR 9): exercised through `lint_sources`, since they need
// the item model and call graph, not just a token stream.
// ---------------------------------------------------------------------

#[test]
fn ledger_coverage_bad_fires() {
    let d = scan_as("ledger_coverage_bad.rs", "dprbg-core");
    // One direct shift next to Gf2k, one reached only via the call graph
    // (`pack` → `reduce_any` → `expose_low`), and `normalize`'s two
    // compound assigns (the `<<=`/`>>=` blind spot closed in PR 10) —
    // whose `Vec<Vec<u8>> =` line stays quiet. `format_header`'s shift
    // is out of reach and stays legal.
    assert_eq!(d.len(), 4, "{d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::LedgerCoverage));
    assert!(d.iter().any(|x| x.message.contains("`expose_low`")), "{d:#?}");
    assert!(d.iter().any(|x| x.message.contains("`pack`")), "{d:#?}");
    assert_eq!(
        d.iter().filter(|x| x.message.contains("`normalize`")).count(),
        2,
        "{d:#?}"
    );
}

#[test]
fn ledger_coverage_allowed_is_clean() {
    assert_eq!(scan_as("ledger_coverage_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn ledger_coverage_is_scoped_to_costed_crates() {
    // The same file in the beacon (or bench) crate is out of scope: the
    // §2 tables only cost dprbg-core / dprbg-poly arithmetic.
    assert_eq!(scan_as("ledger_coverage_bad.rs", "dprbg-beacon"), vec![]);
    assert_eq!(scan_as("ledger_coverage_bad.rs", "dprbg-bench"), vec![]);
}

#[test]
fn machine_contract_bad_fires() {
    let d = scan_as("machine_contract_bad.rs", "dprbg-bench");
    assert_eq!(d.len(), 3, "anonymous phase, no Done, ambient I/O: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::MachineContract));
    assert!(d.iter().any(|x| x.message.contains("does not define `phase_name`")), "{d:#?}");
    assert!(d.iter().any(|x| x.message.contains("never constructs `Step::Done`")), "{d:#?}");
    assert!(d.iter().any(|x| x.message.contains("only via `Outbox`")), "{d:#?}");
}

#[test]
fn machine_contract_allowed_is_clean() {
    // Conforming machine, pure delegator (neither Continue nor Done of
    // its own), pinned debug print, and a #[cfg(test)] probe.
    assert_eq!(scan_as("machine_contract_allowed.rs", "dprbg-bench"), vec![]);
}

#[test]
fn stale_allow_bad_fires() {
    let d = scan_as("stale_allow_bad.rs", "dprbg-core");
    assert_eq!(d.len(), 2, "both dead pins flagged: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::StaleAllow));
    assert!(d.iter().any(|x| x.message.contains("`determinism`")), "{d:#?}");
    assert!(d.iter().any(|x| x.message.contains("`cost-model`")), "{d:#?}");
}

#[test]
fn stale_allow_allowed_is_clean() {
    // The pin suppresses a live HashMap diagnostic, so it is not stale —
    // and the diagnostic it suppresses doesn't surface either.
    assert_eq!(scan_as("stale_allow_allowed.rs", "dprbg-core"), vec![]);
}

#[test]
fn stale_allow_cannot_be_suppressed() {
    let specs = vec![SourceSpec {
        label: "x.rs".into(),
        text: "// lint: allow(stale-allow) — trying to hide dead pins\nfn f() {}\n".into(),
        class: FileClass { crate_name: "dprbg-core".into(), kind: FileKind::Lib },
    }];
    let d = lint_sources(&specs).diags;
    assert_eq!(d.len(), 1, "{d:#?}");
    assert_eq!(d[0].rule, RuleId::AllowSyntax);
    assert!(d[0].message.contains("cannot be suppressed"), "{d:#?}");
}

#[test]
fn snapshot_abi_bad_fires() {
    let d = scan_as("snapshot_abi_bad.rs", "dprbg-beacon");
    assert_eq!(d.len(), 3, "drifted ABI, lagging version, dangling pin: {d:#?}");
    assert!(d.iter().all(|x| x.rule == RuleId::SnapshotAbi));
    assert!(d.iter().any(|x| x.message.contains("ABI of `DriftState` changed")), "{d:#?}");
    assert!(
        d.iter().any(|x| x.message.contains("declares v2 but `SNAPSHOT_VERSION` is 3")),
        "{d:#?}"
    );
    assert!(
        d.iter().any(|x| x.message.contains("does not directly precede")),
        "{d:#?}"
    );
}

#[test]
fn snapshot_abi_allowed_is_clean() {
    assert_eq!(scan_as("snapshot_abi_allowed.rs", "dprbg-beacon"), vec![]);
}

#[test]
fn snapshot_abi_mismatch_message_carries_the_new_fingerprint() {
    // The diagnostic quotes the computed fingerprint, so re-pinning after
    // a reviewed change is copy-paste — verify the quoted value is the
    // one that then passes.
    let d = scan_as("snapshot_abi_bad.rs", "dprbg-beacon");
    let msg = &d.iter().find(|x| x.message.contains("DriftState")).unwrap().message;
    let fp = msg.split('`').nth(3).unwrap();
    assert_eq!(fp.len(), 16, "fingerprint not where expected in: {msg}");
    let fixed = fixture("snapshot_abi_bad.rs")
        .replace("snapshot-abi(v3, f42001cb01d165df)", &format!("snapshot-abi(v3, {fp})"));
    let specs = vec![SourceSpec {
        label: "fixed.rs".into(),
        text: fixed,
        class: FileClass { crate_name: "dprbg-beacon".into(), kind: FileKind::Lib },
    }];
    let d2 = lint_sources(&specs).diags;
    assert!(
        !d2.iter().any(|x| x.message.contains("DriftState")),
        "re-pinned fingerprint should satisfy the rule: {d2:#?}"
    );
}
