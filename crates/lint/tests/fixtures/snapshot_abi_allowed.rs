// Fixture: correct pins — fingerprints current, versions matching the
// const.
pub const SNAPSHOT_VERSION: u16 = 3;

// lint: snapshot-abi(v3, de0baedb2b189b72)
pub struct PinnedState {
    pub epoch: u64,
    pub stock: u32,
}

// lint: snapshot-abi(v3, 2eadabdc6a09687c)
pub enum PinnedMode {
    Idle,
    Busy { until: u64 },
}
