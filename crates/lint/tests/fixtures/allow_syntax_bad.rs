// Fixture: malformed suppressions — each is itself a diagnostic.
// lint: allow(determinism)
use std::collections::HashMap;

// lint: allow(no-such-rule) — the rule name is wrong
fn f() -> HashMap<u64, u64> {
    HashMap::new()
}

// lint: allowing(determinism) — misspelled verb
fn g() {}
