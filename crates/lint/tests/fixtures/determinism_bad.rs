// Fixture: every banned ambient-nondeterminism source, unsuppressed.
use std::collections::{HashMap, HashSet};
use std::time::Instant;

fn state() -> HashMap<u64, u64> {
    let _seen: HashSet<u64> = HashSet::new();
    HashMap::new()
}

fn clock() -> Instant {
    Instant::now()
}

fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn ambient() -> Option<String> {
    std::env::var("SEED").ok()
}

fn who() -> std::thread::ThreadId {
    std::thread::current().id()
}
