// Fixture: a justified threaded-runner user (file-wide form).
// lint: allow-file(transport) — fixture: cross-executor equivalence needs the threaded half
fn shim(n: usize, seed: u64, behaviors: Vec<u64>) -> Vec<u64> {
    run_network(n, seed, behaviors)
}

fn shim2(n: usize, seed: u64, machines: Vec<u64>) -> Vec<u64> {
    run_machines_with_tap(n, seed, machines)
}
