// Fixture: transport-clean code — a machine fleet on the sans-IO engine.
// Identifiers here may *resemble* transport machinery (a field named
// `thread_count`, a fn named `run_fleet`) without naming the retired
// blocking entry points or raw thread primitives.
struct PoolShape {
    thread_count: usize,
}

fn run_fleet(n: usize, seed: u64, machines: Vec<u64>) -> Vec<u64> {
    let shape = PoolShape { thread_count: 4 };
    let _ = (n, seed, shape.thread_count);
    machines
}
