// Fixture: wall-clock and ambient reads inside the logical-time trace
// crate, unsuppressed.
use std::time::Instant;

fn clock() -> Instant {
    Instant::now()
}

fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn who() -> std::thread::ThreadId {
    std::thread::current().id()
}

fn unordered() -> std::collections::HashMap<u64, u64> {
    std::collections::HashMap::new()
}
