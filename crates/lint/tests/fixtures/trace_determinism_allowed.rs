// Fixture: logical time needs no clock — plus one justified exception.

/// A logical timestamp: (round, party, seq) ordered lexicographically.
pub fn key(round: u64, party: usize, seq: u32) -> (u64, usize, u32) {
    (round, party, seq)
}

// lint: allow(trace-determinism) — fixture: debug-only stderr note, never serialized into a trace
use std::time::Instant;

// lint: allow(trace-determinism) — fixture: value never reaches an event record
fn debug_clock() -> Instant {
    Instant::now() // lint: allow(trace-determinism) — fixture: same-line form
}
