// Fixture: a live pin — it suppresses a real diagnostic, so it is not
// stale.
fn cache() -> u32 {
    // lint: allow(determinism) — fixture: pinned wire format predates the BTreeMap sweep
    let m = HashMap::new();
    m.len() as u32
}
