// Fixture: data-dependent bit-scan loops on the multiplication path —
// the exact idiom the branchless clmul ladder replaced.
fn clmul(a: u64, b: u64) -> u128 {
    let mut r: u128 = 0;
    let a = a as u128;
    let mut b = b;
    while b != 0 {
        let i = b.trailing_zeros();
        r ^= a << i;
        b &= b - 1;
    }
    r
}

fn sparse_square(v: u64) -> u128 {
    let mut r: u128 = 0;
    let mut v = v;
    while v != 0 {
        let i = v.trailing_zeros();
        r ^= 1u128 << (2 * i);
        v &= v - 1;
    }
    r
}
