// Fixture: a reviewed shift next to field arithmetic carries a pin.
fn split_bits(x: Gf2k) -> Vec<bool> {
    let v = x.to_u64();
    // lint: allow(ledger-coverage) — fixture: bit-split of the canonical output u64, not field arithmetic
    (0..64).map(|i| (v >> i) & 1 == 1).collect()
}

fn masked(x: Gf2k) -> u64 {
    x.to_u64() >> 3 // lint: allow(ledger-coverage) — fixture: same-line form
}

fn fold(x: Gf2k) -> u64 {
    let mut v = x.to_u64();
    // lint: allow(ledger-coverage) — fixture: checksum fold of the canonical u64, not field arithmetic
    v >>= 32;
    v
}

// Out of reach, no pin needed.
fn checksum(tag: u64) -> u64 {
    tag << 1
}
