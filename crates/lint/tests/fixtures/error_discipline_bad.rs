// Fixture: library-code panics that should be `ProtocolError`s.
fn decode(x: Option<u64>) -> u64 {
    x.unwrap()
}

fn decode2(x: Option<u64>) -> u64 {
    x.expect("always present")
}

fn stage() -> u64 {
    panic!("driven past completion")
}

fn later() -> u64 {
    todo!()
}

fn never() -> u64 {
    unimplemented!()
}
