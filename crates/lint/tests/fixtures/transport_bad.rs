// Fixture: thread/channel/threaded-executor use outside dprbg-sim.
use std::sync::mpsc;

fn fan_out() {
    let (_tx, _rx) = mpsc::channel::<u64>();
    std::thread::spawn(|| {});
}

fn shim(n: usize, seed: u64, behaviors: Vec<u64>) -> Vec<u64> {
    run_network(n, seed, behaviors)
}
