// Fixture: a legacy allow(transport) pin. The blocking transport it
// carved out is deleted, so the suppression itself is now a violation
// and it suppresses nothing.
// lint: allow-file(transport) — fixture: cross-executor equivalence needs the threaded half
fn shim(n: usize, seed: u64, behaviors: Vec<u64>) -> Vec<u64> {
    run_network(n, seed, behaviors)
}

fn shim2(n: usize, seed: u64, machines: Vec<u64>) -> Vec<u64> {
    run_machines_with_tap(n, seed, machines)
}
