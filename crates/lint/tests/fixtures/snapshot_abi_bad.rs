// Fixture: ABI drift and bad pins.
pub const SNAPSHOT_VERSION: u16 = 3;

// Fingerprint taken before `delta` was added — the field landed without
// a version bump, which is exactly what the rule exists to catch.
// lint: snapshot-abi(v3, f42001cb01d165df)
pub struct DriftState {
    pub epoch: u64,
    pub stock: u32,
    pub delta: u64,
}

// Fingerprint is current, but the pin was taken at v2 and the const
// has moved on: the pin must be re-taken.
// lint: snapshot-abi(v2, 0024eae5efe8f081)
pub struct VersionLag {
    pub a: u64,
    pub b: u64,
}

// A pin that precedes no struct or enum pins nothing.
// lint: snapshot-abi(v3, 0123456789abcdef)
pub fn not_a_struct() {}
