// Fixture: a registry keyed on logical time needs no clock — plus one
// justified exception.
use std::collections::BTreeMap;

/// Metric keys are logical time: (epoch, round, party), lexicographic.
pub fn key(epoch: u64, round: u64, party: u32) -> (u64, u64, u32) {
    (epoch, round, party)
}

/// Sorted storage is what makes equal registries export equal bytes.
pub fn store() -> BTreeMap<(u64, u64, u32), u64> {
    BTreeMap::new()
}

// lint: allow(registry-determinism) — fixture: local debug timing, never enters a metric value
use std::time::Instant;

// lint: allow(registry-determinism) — fixture: value never reaches the registry
fn debug_clock() -> Instant {
    Instant::now() // lint: allow(registry-determinism) — fixture: same-line form
}
