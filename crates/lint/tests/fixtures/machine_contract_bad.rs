// Fixture: three broken machine contracts — an anonymous phase, a
// machine that can never terminate, and ambient I/O inside `round`.
struct Silent;

impl<M> RoundMachine<M> for Silent {
    type Output = ();

    fn round(&mut self, _view: RoundView<'_, M>) -> Step<M, ()> {
        Step::Done(())
    }
}

struct Spinner;

impl<M> RoundMachine<M> for Spinner {
    type Output = ();

    fn phase_name(&self) -> &'static str {
        "spin"
    }

    fn round(&mut self, _view: RoundView<'_, M>) -> Step<M, ()> {
        Step::Continue(Outbox::default())
    }
}

struct Chatty;

impl<M> RoundMachine<M> for Chatty {
    type Output = ();

    fn phase_name(&self) -> &'static str {
        "chatty"
    }

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, ()> {
        println!("round {}", view.round());
        Step::Done(())
    }
}
