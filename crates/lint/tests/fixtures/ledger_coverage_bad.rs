// Fixture: raw shifts in fns that reach `Gf2k` arithmetic — one direct,
// one only through the call graph.
fn expose_low(x: Gf2k) -> u64 {
    x.to_u64() << 1
}

fn reduce_any(raw: u64) -> u64 {
    expose_low(recover_share(raw)) & 1
}

fn recover_share(raw: u64) -> Gf2k {
    Gf2k::from_u64(raw)
}

// No field ident in sight, but `reduce_any` reaches `expose_low`:
// the shift below is still the cost model's business.
fn pack(raw: u64) -> u64 {
    let lo = reduce_any(raw);
    lo << 8
}

// Scope check: this fn reaches no field arithmetic, so its shift is
// plain integer formatting and stays legal.
fn format_header(tag: u64) -> u64 {
    tag << 48
}
