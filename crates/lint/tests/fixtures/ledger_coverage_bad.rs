// Fixture: raw shifts in fns that reach `Gf2k` arithmetic — one direct,
// one only through the call graph.
fn expose_low(x: Gf2k) -> u64 {
    x.to_u64() << 1
}

fn reduce_any(raw: u64) -> u64 {
    expose_low(recover_share(raw)) & 1
}

fn recover_share(raw: u64) -> Gf2k {
    Gf2k::from_u64(raw)
}

// No field ident in sight, but `reduce_any` reaches `expose_low`:
// the shift below is still the cost model's business.
fn pack(raw: u64) -> u64 {
    let lo = reduce_any(raw);
    lo << 8
}

// Compound assigns are shifts too (the `<<=`/`>>=` blind spot closed in
// PR 10) — and the nested-generics close before `=` two lines down must
// not be mistaken for one.
fn normalize(x: Gf2k) -> u64 {
    let layers: Vec<Vec<u8>> = Vec::new();
    let mut acc = x.to_u64() + layers.len() as u64;
    acc <<= 1;
    acc >>= 2;
    acc
}

// Scope check: this fn reaches no field arithmetic, so its shift is
// plain integer formatting and stays legal.
fn format_header(tag: u64) -> u64 {
    tag << 48
}
