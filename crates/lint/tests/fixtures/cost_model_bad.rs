// Fixture: raw limb bit-hacks that bypass the counted field ops.
fn gf_add(a: u64, b: u64) -> u64 {
    a ^ b
}

fn gf_acc(acc: &mut u64, x: u64) {
    *acc ^= x;
}

fn weight(x: u64) -> u32 {
    x.count_ones()
}

fn mix(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b).rotate_left(7)
}
