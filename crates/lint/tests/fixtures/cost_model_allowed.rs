// Fixture: justified bit-twiddling plus arithmetic that is fine.
// lint: allow(cost-model) — fixture: seed derivation, not share arithmetic
fn derive(seed: u64, id: u64) -> u64 {
    seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15) // lint: allow(cost-model) — fixture: same-line form
}

// Plain `+`/`*` on counters is not a bit-hack.
fn tally(a: u64, b: u64) -> u64 {
    a + b * 2
}
