// Fixture: the same nondeterminism sources, each justified.
// lint: allow(determinism) — fixture: pinned wire format predates the BTreeMap sweep
use std::collections::HashMap;

// lint: allow(determinism) — fixture: value never reaches a transcript
fn state() -> HashMap<u64, u64> {
    HashMap::new() // lint: allow(determinism) — fixture: same-line form
}

// A BTreeMap needs no annotation at all.
fn ordered() -> std::collections::BTreeMap<u64, u64> {
    std::collections::BTreeMap::new()
}
