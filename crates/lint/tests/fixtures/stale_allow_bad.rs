// Fixture: pins whose violations were fixed long ago — each one is now
// a hole waiting for a real violation to crawl in.
// lint: allow(determinism) — fixture: this HashMap was swept to BTreeMap two PRs ago
fn no_hashmap_here() -> u32 {
    7
}

// lint: allow-file(cost-model) — fixture: the XOR fold this pinned is long gone

fn plain() -> u32 {
    9
}
