// Fixture: the fixed-iteration branchless ladder plus a justified scan.
fn clmul_portable(a: u64, b: u64) -> u128 {
    let a = a as u128;
    let mut r: u128 = 0;
    let mut i = 0;
    while i < 64 {
        let keep = 0u128.wrapping_sub(((b >> i) & 1) as u128);
        r ^= (a << i) & keep;
        i += 1;
    }
    r
}

// `leading_zeros` degree walks (Euclid inversion) are out of scope.
fn degree(v: u128) -> i32 {
    127 - v.leading_zeros() as i32
}

fn lowest_set(v: u64) -> u32 {
    v.trailing_zeros() // lint: allow(field-ct) — fixture: table-build helper, not a mul path
}
