// Fixture: the same constructs, suppressed or exempt.
fn stage() -> u64 {
    // lint: allow(error-discipline) — fixture: driver contract, round() is never called after Done
    panic!("driven past completion")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let x: Option<u64> = Some(1);
        assert_eq!(x.unwrap(), 1);
    }
}
