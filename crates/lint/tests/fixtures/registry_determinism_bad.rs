// Fixture: wall-clock and ambient reads inside the logical-time metrics
// crate, unsuppressed.
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}

fn wall() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn who() -> std::thread::ThreadId {
    std::thread::current().id()
}

fn unordered() -> std::collections::HashMap<String, u64> {
    std::collections::HashMap::new()
}

fn ambient() -> Option<String> {
    std::env::var("METRICS_SINK").ok()
}
