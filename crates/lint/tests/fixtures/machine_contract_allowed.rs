// Fixture: conforming machines — the full contract, a pure delegator,
// a pinned debug print, and a `#[cfg(test)]` probe (exempt).
struct Conforming {
    left: u32,
}

impl<M> RoundMachine<M> for Conforming {
    type Output = ();

    fn phase_name(&self) -> &'static str {
        "conforming"
    }

    fn round(&mut self, _view: RoundView<'_, M>) -> Step<M, ()> {
        if self.left == 0 {
            return Step::Done(());
        }
        self.left -= 1;
        Step::Continue(Outbox::default())
    }
}

// Neither `Continue` nor `Done` of its own: forwards the inner step
// untouched, like the library's `Box`/`FromFn` combinators.
struct Fwd<T>(T);

impl<M, T: RoundMachine<M>> RoundMachine<M> for Fwd<T> {
    type Output = T::Output;

    fn phase_name(&self) -> &'static str {
        self.0.phase_name()
    }

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, T::Output> {
        self.0.round(view)
    }
}

struct Debugging;

impl<M> RoundMachine<M> for Debugging {
    type Output = ();

    fn phase_name(&self) -> &'static str {
        "debugging"
    }

    fn round(&mut self, _view: RoundView<'_, M>) -> Step<M, ()> {
        // lint: allow(machine-contract) — fixture: temporary diagnostics behind a debug flag
        eprintln!("tick");
        Step::Done(())
    }
}

#[cfg(test)]
mod tests {
    struct Probe;

    impl<M> RoundMachine<M> for Probe {
        type Output = ();

        fn round(&mut self, _view: RoundView<'_, M>) -> Step<M, ()> {
            println!("probe");
            Step::Continue(Outbox::default())
        }
    }
}
