//! The analyzer's ultimate fixture is the repository itself: a full
//! workspace scan must produce zero unsuppressed diagnostics, and the
//! CLI must exit non-zero the moment a violation is introduced.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root")
        .to_path_buf()
}

#[test]
fn workspace_scan_is_clean() {
    let diags = dprbg_lint::lint_workspace(&workspace_root()).expect("scan succeeds");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; fix or `// lint: allow(<rule>) — <reason>` these:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn manifests_scan_is_clean() {
    let diags = dprbg_lint::lint_manifests(&workspace_root()).expect("scan succeeds");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn workspace_pins_zero_transport_suppressions() {
    // The single-execution-path invariant: with the blocking transport
    // deleted, no source file outside the fixture corpus may carry an
    // `allow(transport)` pin.
    let n = dprbg_lint::count_transport_allows(&workspace_root()).expect("census succeeds");
    assert_eq!(n, 0, "found {n} allow(transport) pins; port the code instead of suppressing");
}

/// End-to-end: the binary exits 0 on the real workspace and 1 on a
/// synthetic workspace seeded with a `HashMap` in protocol code and a
/// registry dependency.
#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_dprbg-lint");

    let ok = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run dprbg-lint");
    assert!(ok.status.success(), "clean tree must exit 0: {ok:?}");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(
        stdout.contains("0 transport suppressions (required: 0)"),
        "workspace mode must report the transport-suppression census: {stdout}"
    );

    // Build a bad mini-workspace under the cargo-provided tmp dir.
    let bad_root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-bad-workspace");
    let core_src = bad_root.join("crates/core/src");
    std::fs::create_dir_all(&core_src).expect("mkdir");
    std::fs::write(
        bad_root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    std::fs::write(
        bad_root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"dprbg-core\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("write crate manifest");
    std::fs::write(
        core_src.join("lib.rs"),
        "use std::collections::HashMap;\npub fn m() -> HashMap<u8, u8> { HashMap::new() }\n",
    )
    .expect("write source");

    let bad = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run dprbg-lint");
    assert_eq!(bad.status.code(), Some(1), "violations must exit 1: {bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("[determinism]"), "{stdout}");
    assert!(stdout.contains("[hermetic]"), "{stdout}");

    // --manifests mode sees only the hermetic violation.
    let manifests = Command::new(bin)
        .args(["--manifests", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run dprbg-lint");
    assert_eq!(manifests.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&manifests.stdout);
    assert!(stdout.contains("[hermetic]") && !stdout.contains("[determinism]"), "{stdout}");
}
