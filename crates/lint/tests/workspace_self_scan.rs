//! The analyzer's ultimate fixture is the repository itself: a full
//! workspace scan must produce zero unsuppressed diagnostics, and the
//! CLI must exit non-zero the moment a violation is introduced.

use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root")
        .to_path_buf()
}

#[test]
fn workspace_scan_is_clean() {
    let diags = dprbg_lint::lint_workspace(&workspace_root()).expect("scan succeeds");
    assert!(
        diags.is_empty(),
        "workspace must lint clean; fix or `// lint: allow(<rule>) — <reason>` these:\n{}",
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

#[test]
fn manifests_scan_is_clean() {
    let diags = dprbg_lint::lint_manifests(&workspace_root()).expect("scan succeeds");
    assert!(diags.is_empty(), "{diags:#?}");
}

#[test]
fn workspace_pins_zero_transport_suppressions() {
    // The single-execution-path invariant: with the blocking transport
    // deleted, no source file outside the fixture corpus may carry an
    // `allow(transport)` pin.
    let n = dprbg_lint::count_transport_allows(&workspace_root()).expect("census succeeds");
    assert_eq!(n, 0, "found {n} allow(transport) pins; port the code instead of suppressing");
}

/// End-to-end: the binary exits 0 on the real workspace and 1 on a
/// synthetic workspace seeded with a `HashMap` in protocol code and a
/// registry dependency.
#[test]
fn cli_exit_codes() {
    let bin = env!("CARGO_BIN_EXE_dprbg-lint");

    let ok = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run dprbg-lint");
    assert!(ok.status.success(), "clean tree must exit 0: {ok:?}");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(
        stdout.contains("0 transport suppressions (required: 0)"),
        "workspace mode must report the transport-suppression census: {stdout}"
    );
    assert!(
        stdout.contains("0 stale suppressions"),
        "workspace mode must report the stale-allow census: {stdout}"
    );

    // Build a bad mini-workspace under the cargo-provided tmp dir.
    let bad_root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-bad-workspace");
    let core_src = bad_root.join("crates/core/src");
    std::fs::create_dir_all(&core_src).expect("mkdir");
    std::fs::write(
        bad_root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/*\"]\n",
    )
    .expect("write root manifest");
    std::fs::write(
        bad_root.join("crates/core/Cargo.toml"),
        "[package]\nname = \"dprbg-core\"\nversion = \"0.1.0\"\n\n[dependencies]\nserde = \"1.0\"\n",
    )
    .expect("write crate manifest");
    std::fs::write(
        core_src.join("lib.rs"),
        "use std::collections::HashMap;\npub fn m() -> HashMap<u8, u8> { HashMap::new() }\n",
    )
    .expect("write source");

    let bad = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run dprbg-lint");
    assert_eq!(bad.status.code(), Some(1), "violations must exit 1: {bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("[determinism]"), "{stdout}");
    assert!(stdout.contains("[hermetic]"), "{stdout}");

    // --manifests mode sees only the hermetic violation.
    let manifests = Command::new(bin)
        .args(["--manifests", "--root"])
        .arg(&bad_root)
        .output()
        .expect("run dprbg-lint");
    assert_eq!(manifests.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&manifests.stdout);
    assert!(stdout.contains("[hermetic]") && !stdout.contains("[determinism]"), "{stdout}");
}

/// Write a minimal one-crate workspace with the given beacon source.
fn synth_workspace(name: &str, crate_name: &str, source: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/x/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/*\"]\n")
        .expect("write root manifest");
    std::fs::write(
        root.join("crates/x/Cargo.toml"),
        format!("[package]\nname = \"{crate_name}\"\nversion = \"0.1.0\"\n"),
    )
    .expect("write crate manifest");
    std::fs::write(src.join("lib.rs"), source).expect("write source");
    root
}

/// The acceptance criterion for `snapshot-abi`: a serialized struct
/// grows a field, `SNAPSHOT_VERSION` is not bumped — the lint fails
/// the workspace. Bump + re-pin and it passes again.
#[test]
fn snapshot_abi_catches_field_added_without_version_bump() {
    let bin = env!("CARGO_BIN_EXE_dprbg-lint");
    let pinned = "pub(crate) const SNAPSHOT_VERSION: u16 = 1;\n\n\
                  // lint: snapshot-abi(v1, ec8829a3527b018f)\n\
                  pub struct SyntheticState {\n    pub epoch: u64,\n    pub stock: u32,\n}\n";

    // Clean state: pin matches the field list and the version.
    let root = synth_workspace("lint-abi-clean", "dprbg-beacon", pinned);
    let ok = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&root)
        .output()
        .expect("run dprbg-lint");
    assert!(ok.status.success(), "pinned struct must pass: {ok:?}");

    // Add a field, keep the pin and the version: must fail.
    let drifted = pinned.replace("    pub stock: u32,\n", "    pub stock: u32,\n    pub delta: u64,\n");
    let root = synth_workspace("lint-abi-drift", "dprbg-beacon", &drifted);
    let bad = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&root)
        .output()
        .expect("run dprbg-lint");
    assert_eq!(bad.status.code(), Some(1), "ABI drift must exit 1: {bad:?}");
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert!(stdout.contains("[snapshot-abi]"), "{stdout}");
    assert!(stdout.contains("bump `SNAPSHOT_VERSION`"), "{stdout}");

    // The diagnostic quotes the new fingerprint: bump the const and
    // re-pin with it, and the workspace is clean again.
    let fp = stdout
        .split("fingerprint is `")
        .nth(1)
        .and_then(|s| s.get(..16))
        .expect("diagnostic quotes the computed fingerprint");
    let repinned = drifted
        .replace("SNAPSHOT_VERSION: u16 = 1", "SNAPSHOT_VERSION: u16 = 2")
        .replace("snapshot-abi(v1, ec8829a3527b018f)", &format!("snapshot-abi(v2, {fp})"));
    let root = synth_workspace("lint-abi-repinned", "dprbg-beacon", &repinned);
    let ok = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&root)
        .output()
        .expect("run dprbg-lint");
    assert!(ok.status.success(), "bumped + re-pinned must pass: {ok:?}");
}

/// Baseline mode end-to-end: `--update-baseline` then `--baseline`
/// passes; a new violation on top of the accepted set exits 1 and names
/// only the new diagnostic.
#[test]
fn baseline_diff_cli_roundtrip() {
    let bin = env!("CARGO_BIN_EXE_dprbg-lint");
    let seeded = "pub fn m() -> usize {\n    HashMap::new().len()\n}\n";
    let root = synth_workspace("lint-baseline-e2e", "dprbg-core", seeded);
    let baseline = root.join("baseline.json");

    // Accept the seeded violation into the baseline.
    let upd = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&root)
        .arg("--update-baseline")
        .arg(&baseline)
        .output()
        .expect("run dprbg-lint");
    assert!(upd.status.success(), "--update-baseline always exits 0: {upd:?}");
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("[determinism]"), "{text}");

    // Same tree vs the baseline: accepted, exit 0.
    let same = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run dprbg-lint");
    assert!(same.status.success(), "baselined tree must exit 0: {same:?}");
    let stdout = String::from_utf8_lossy(&same.stdout);
    assert!(stdout.contains("no new diagnostics vs baseline (1 accepted)"), "{stdout}");

    // Introduce a second violation: only it is NEW; exit 1.
    std::fs::write(
        root.join("crates/x/src/lib.rs"),
        format!("{seeded}\npub fn i() -> u64 {{\n    Instant::now().elapsed().as_secs()\n}}\n"),
    )
    .expect("extend source");
    let drift = Command::new(bin)
        .args(["--workspace", "--root"])
        .arg(&root)
        .arg("--baseline")
        .arg(&baseline)
        .output()
        .expect("run dprbg-lint");
    assert_eq!(drift.status.code(), Some(1), "new diagnostic must exit 1: {drift:?}");
    let stderr = String::from_utf8_lossy(&drift.stderr);
    assert!(stderr.contains("NEW vs baseline"), "{stderr}");
    assert!(stderr.contains("[determinism]"), "{stderr}");
    assert_eq!(
        stderr.matches("NEW vs baseline").count(),
        1,
        "the accepted diagnostic must not re-fire: {stderr}"
    );
}

/// `--json` emits the census fields verify.sh greps for.
#[test]
fn json_report_carries_census_fields() {
    let bin = env!("CARGO_BIN_EXE_dprbg-lint");
    let out = Command::new(bin)
        .args(["--workspace", "--json", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run dprbg-lint");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"stale_suppressions\": 0"), "{stdout}");
    assert!(stdout.contains("\"transport_suppressions\": 0"), "{stdout}");
    assert!(stdout.contains("\"snapshot_pins\": 14"), "{stdout}");
}
