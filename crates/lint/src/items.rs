//! The item model: structural view of one source file.
//!
//! PR 4's analyzer was a flat token scanner; the only structure it
//! recovered was "is this line inside something `#[test]`-ish", by
//! scanning for any attribute containing the ident `test`. This module
//! replaces that heuristic with a real (still zero-dependency) item
//! parser over the token stream: `fn` / `struct` / `enum` / `trait` /
//! `impl` / `mod` / `const` items with their spans, attributes, nesting,
//! and `#[cfg(test)]` awareness. The flow rules build on it:
//!
//! * the call graph ([`crate::callgraph`]) needs `fn` items with body
//!   token ranges and the enclosing `impl` head;
//! * `machine-contract` needs `impl <Trait> for <Type>` blocks and the
//!   `fn`s defined inside them;
//! * `snapshot-abi` needs `struct` field lists / `enum` variant lists and
//!   `const SNAPSHOT_VERSION` values;
//! * the test exemption needs precise `#[cfg(test)]` / `#[test]` item
//!   spans, including nesting (`#[cfg(not(test))]` is *not* test code —
//!   the old heuristic got that wrong by construction).
//!
//! The parser is deliberately shallow where the rules don't need depth:
//! items declared *inside fn bodies* are not modeled (their tokens belong
//! to the enclosing fn, which is what both the call graph and the test
//! exemption want), and unparseable stretches degrade to skipped tokens,
//! never to a panic — the right failure mode for a linter.

use crate::lexer::{Tok, TokKind};

/// What kind of item a node is, at the granularity the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A function (free, in an `impl`, or in a `trait` body).
    Fn,
    /// A struct (unit, tuple, or named-field).
    Struct,
    /// An enum.
    Enum,
    /// A trait declaration.
    Trait,
    /// An `impl` block (inherent or trait).
    Impl,
    /// An inline `mod name { … }` (out-of-line `mod name;` is `Other`).
    Mod,
    /// A `const` or `static` item.
    Const,
    /// Anything else the parser recognized enough to skip (`use`,
    /// `type`, `macro_rules!`, out-of-line `mod`).
    Other,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// The item's own name. For an `impl` this is the *type* path's last
    /// segment (`CoinGenMachine` in `impl<..> RoundMachine<M> for
    /// CoinGenMachine<M, F>`).
    pub name: String,
    /// For a trait `impl`, the trait path's last segment
    /// (`RoundMachine`); `None` for inherent impls and non-impl items.
    pub trait_name: Option<String>,
    /// 1-based line the item starts on (its first attribute, if any).
    pub start_line: u32,
    /// 1-based line the item ends on.
    pub end_line: u32,
    /// Token index of the item's first token (attribute `#` included).
    pub tok_start: usize,
    /// Token index of the body-opening `{` (or of the terminating `;`
    /// for bodiless items). For `fn` items, `tok_start..body_start` is
    /// the signature and `body_start..tok_end` the body.
    pub body_start: usize,
    /// One past the item's last token.
    pub tok_end: usize,
    /// Index (into the same `Vec<Item>`) of the enclosing `mod` /
    /// `trait` / `impl` item, if any.
    pub parent: Option<usize>,
    /// Whether this item is test-only: it or an ancestor carries
    /// `#[test]` or `#[cfg(test)]` (but not `#[cfg(not(test))]`).
    pub test: bool,
    /// For structs: field names in declaration order (tuple fields as
    /// `0`, `1`, …). For enums: one entry per variant, rendered as
    /// `Name`, `Name(k)` (tuple arity), or `Name{a,b}` (named fields).
    pub fields: Vec<String>,
    /// For `const`/`static` items: the integer value, when the
    /// initializer's first token is a numeric literal.
    pub const_value: Option<u64>,
}

impl Item {
    /// The canonical ABI descriptor the `snapshot-abi` rule fingerprints:
    /// kind, name, and the ordered field/variant list. Field *types* are
    /// deliberately not included — the rule exists to catch layout
    /// changes (fields added, removed, reordered, renamed), and demanding
    /// type-level stability would turn every refactor into a version
    /// bump.
    pub fn abi_descriptor(&self) -> String {
        let kind = match self.kind {
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            _ => "item",
        };
        format!("{kind} {}{{{}}}", self.name, self.fields.join(","))
    }
}

/// Parse the items of one file from its token stream.
pub fn parse_items(toks: &[Tok]) -> Vec<Item> {
    let mut out = Vec::new();
    let mut p = Parser { toks };
    p.scope(0, toks.len(), None, false, &mut out);
    out
}

/// Inclusive 1-based line ranges of test-only code, derived from the
/// item model: every item whose `test` flag is set. This is what the
/// token rules use to exempt `#[cfg(test)]` modules and `#[test]` fns
/// inside library files.
pub fn test_spans(items: &[Item]) -> Vec<(u32, u32)> {
    let mut spans: Vec<(u32, u32)> = items
        .iter()
        .filter(|it| it.test)
        .map(|it| (it.start_line, it.end_line))
        .collect();
    spans.sort_unstable();
    spans
}

/// Whether any token in `toks[range]` is an identifier in `names`.
pub fn range_mentions(toks: &[Tok], start: usize, end: usize, names: &[&str]) -> bool {
    toks[start..end.min(toks.len())]
        .iter()
        .any(|t| matches!(&t.kind, TokKind::Ident(id) if names.contains(&id.as_str())))
}

struct Parser<'a> {
    toks: &'a [Tok],
}

impl<'a> Parser<'a> {
    fn kind(&self, i: usize) -> Option<&TokKind> {
        self.toks.get(i).map(|t| &t.kind)
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.kind(i), Some(TokKind::Punct(p)) if *p == c)
    }

    fn ident(&self, i: usize) -> Option<&str> {
        match self.kind(i) {
            Some(TokKind::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn line(&self, i: usize) -> u32 {
        self.toks.get(i).map_or_else(
            || self.toks.last().map_or(1, |t| t.line),
            |t| t.line,
        )
    }

    /// Skip a balanced `{…}` / `(…)` / `[…]` group starting at `i`
    /// (which must be the opening delimiter). Returns one past the
    /// closing delimiter; unterminated groups run to `end`.
    fn skip_group(&self, i: usize, end: usize) -> usize {
        let (open, close) = match self.kind(i) {
            Some(TokKind::Punct('{')) => ('{', '}'),
            Some(TokKind::Punct('(')) => ('(', ')'),
            Some(TokKind::Punct('[')) => ('[', ']'),
            _ => return i + 1,
        };
        let mut depth = 0usize;
        let mut j = i;
        while j < end {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skip a generics list starting at `i` (which must be `<`). Type
    /// grammar only: every `>` closes (consecutive `>>` handled by
    /// counting), except the `>` of a `->` arrow.
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut j = i;
        while j < end {
            match self.kind(j) {
                Some(TokKind::Punct('<')) => depth += 1,
                Some(TokKind::Punct('>')) if !(j > 0 && self.is_punct(j - 1, '-')) => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                None => break,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Scan one `#[…]` attribute starting at the `#` (possibly `#!`).
    /// Returns `(one past the closing ']', attribute is test-marking)`.
    /// Test-marking means `#[test]`, `#[cfg(test)]`, or any attribute
    /// naming `test` outside a `not(…)` group — so `#[cfg(not(test))]`
    /// does not mark, and `#[cfg(all(test, unix))]` does.
    fn scan_attr(&self, i: usize, end: usize) -> (usize, bool) {
        let mut j = i + 1; // past '#'
        if self.is_punct(j, '!') {
            j += 1;
        }
        if !self.is_punct(j, '[') {
            return (i + 1, false);
        }
        let close = self.skip_group(j, end);
        let mut test = false;
        let mut k = j;
        while k < close {
            match self.kind(k) {
                Some(TokKind::Ident(id)) if id == "not" && self.is_punct(k + 1, '(') => {
                    // `test` under a `not(…)` group does not mark: skip
                    // the whole group and keep scanning after it.
                    k = self.skip_group(k + 1, close);
                    continue;
                }
                Some(TokKind::Ident(id)) if id == "test" => test = true,
                _ => {}
            }
            k += 1;
        }
        (close, test)
    }

    /// Parse the items of `toks[i..end]` at one scope level.
    #[allow(clippy::too_many_lines)]
    fn scope(
        &mut self,
        mut i: usize,
        end: usize,
        parent: Option<usize>,
        parent_test: bool,
        out: &mut Vec<Item>,
    ) {
        while i < end {
            let item_start = i;
            let start_line = self.line(i);

            // Leading attributes.
            let mut test = parent_test;
            let mut saw_attr = false;
            while self.is_punct(i, '#') && i < end {
                let (after, attr_test) = self.scan_attr(i, end);
                if after == i + 1 {
                    break; // stray '#', not an attribute
                }
                test = test || attr_test;
                saw_attr = true;
                i = after;
            }

            // Visibility / item modifiers.
            loop {
                match self.ident(i) {
                    Some("pub") => {
                        i += 1;
                        if self.is_punct(i, '(') {
                            i = self.skip_group(i, end);
                        }
                    }
                    Some("unsafe") | Some("async") | Some("default") => i += 1,
                    Some("extern") => {
                        i += 1;
                        if matches!(self.kind(i), Some(TokKind::Literal)) {
                            i += 1;
                        }
                    }
                    // `const fn` is a modifier; `const NAME` is an item
                    // (handled below).
                    Some("const") if self.ident(i + 1) == Some("fn") => i += 1,
                    _ => break,
                }
            }

            match self.ident(i) {
                Some("fn") => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    let (body_start, tok_end) = self.body_or_semi(i, end);
                    out.push(Item {
                        kind: ItemKind::Fn,
                        name,
                        trait_name: None,
                        start_line,
                        end_line: self.line(tok_end.saturating_sub(1)),
                        tok_start: item_start,
                        body_start,
                        tok_end,
                        parent,
                        test,
                        fields: Vec::new(),
                        const_value: None,
                    });
                    i = tok_end;
                }
                Some("struct") => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    let (body_start, tok_end) = self.body_or_semi(i, end);
                    // Tuple structs close with `;`, so `body_start` lands
                    // there — the paren body sits right after the name
                    // (and its generics, if any).
                    let mut q = i + 2;
                    if self.is_punct(q, '<') {
                        q = self.skip_angles(q, end);
                    }
                    let fields = if self.is_punct(q, '(') {
                        self.struct_fields(q, self.skip_group(q, end))
                    } else {
                        self.struct_fields(body_start, tok_end)
                    };
                    out.push(Item {
                        kind: ItemKind::Struct,
                        name,
                        trait_name: None,
                        start_line,
                        end_line: self.line(tok_end.saturating_sub(1)),
                        tok_start: item_start,
                        body_start,
                        tok_end,
                        parent,
                        test,
                        fields,
                        const_value: None,
                    });
                    i = tok_end;
                }
                Some("enum") => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    let (body_start, tok_end) = self.body_or_semi(i, end);
                    let fields = self.enum_variants(body_start, tok_end);
                    out.push(Item {
                        kind: ItemKind::Enum,
                        name,
                        trait_name: None,
                        start_line,
                        end_line: self.line(tok_end.saturating_sub(1)),
                        tok_start: item_start,
                        body_start,
                        tok_end,
                        parent,
                        test,
                        fields,
                        const_value: None,
                    });
                    i = tok_end;
                }
                Some("trait") => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    let (body_start, tok_end) = self.body_or_semi(i, end);
                    let idx = out.len();
                    out.push(Item {
                        kind: ItemKind::Trait,
                        name,
                        trait_name: None,
                        start_line,
                        end_line: self.line(tok_end.saturating_sub(1)),
                        tok_start: item_start,
                        body_start,
                        tok_end,
                        parent,
                        test,
                        fields: Vec::new(),
                        const_value: None,
                    });
                    if body_start < tok_end && self.is_punct(body_start, '{') {
                        self.scope(body_start + 1, tok_end - 1, Some(idx), test, out);
                    }
                    i = tok_end;
                }
                Some("impl") => {
                    let (type_name, trait_name, head_end) = self.impl_head(i + 1, end);
                    let (body_start, tok_end) = self.body_or_semi(head_end.max(i + 1) - 1, end);
                    let idx = out.len();
                    out.push(Item {
                        kind: ItemKind::Impl,
                        name: type_name,
                        trait_name,
                        start_line,
                        end_line: self.line(tok_end.saturating_sub(1)),
                        tok_start: item_start,
                        body_start,
                        tok_end,
                        parent,
                        test,
                        fields: Vec::new(),
                        const_value: None,
                    });
                    if body_start < tok_end && self.is_punct(body_start, '{') {
                        self.scope(body_start + 1, tok_end - 1, Some(idx), test, out);
                    }
                    i = tok_end;
                }
                Some("mod") => {
                    let name = self.ident(i + 1).unwrap_or("").to_string();
                    if self.is_punct(i + 2, ';') {
                        // Out-of-line module: the file boundary handles it.
                        out.push(Item {
                            kind: ItemKind::Other,
                            name,
                            trait_name: None,
                            start_line,
                            end_line: self.line(i + 2),
                            tok_start: item_start,
                            body_start: i + 2,
                            tok_end: i + 3,
                            parent,
                            test,
                            fields: Vec::new(),
                            const_value: None,
                        });
                        i += 3;
                    } else {
                        let (body_start, tok_end) = self.body_or_semi(i, end);
                        let idx = out.len();
                        out.push(Item {
                            kind: ItemKind::Mod,
                            name,
                            trait_name: None,
                            start_line,
                            end_line: self.line(tok_end.saturating_sub(1)),
                            tok_start: item_start,
                            body_start,
                            tok_end,
                            parent,
                            test,
                            fields: Vec::new(),
                            const_value: None,
                        });
                        if body_start < tok_end && self.is_punct(body_start, '{') {
                            self.scope(body_start + 1, tok_end - 1, Some(idx), test, out);
                        }
                        i = tok_end;
                    }
                }
                Some("const") | Some("static") => {
                    let mut j = i + 1;
                    if self.ident(j) == Some("mut") {
                        j += 1;
                    }
                    let name = self.ident(j).unwrap_or("").to_string();
                    // Value: first numeric literal after `=`.
                    let (body_start, tok_end) = self.body_or_semi(i, end);
                    let mut const_value = None;
                    let mut k = j;
                    while k < tok_end {
                        if self.is_punct(k, '=') {
                            if let Some(TokKind::Num(text)) = self.kind(k + 1) {
                                const_value = parse_int(text);
                            }
                            break;
                        }
                        k += 1;
                    }
                    out.push(Item {
                        kind: ItemKind::Const,
                        name,
                        trait_name: None,
                        start_line,
                        end_line: self.line(tok_end.saturating_sub(1)),
                        tok_start: item_start,
                        body_start,
                        tok_end,
                        parent,
                        test,
                        fields: Vec::new(),
                        const_value,
                    });
                    i = tok_end;
                }
                Some("type") | Some("use") => {
                    let (_, tok_end) = self.body_or_semi(i, end);
                    i = tok_end;
                }
                Some("macro_rules") => {
                    // macro_rules! name { … }
                    let mut j = i + 1;
                    while j < end && !self.is_punct(j, '{') {
                        j += 1;
                    }
                    i = if j < end { self.skip_group(j, end) } else { end };
                }
                _ => {
                    // Something the item grammar doesn't cover (stray
                    // macro invocation, leftover tokens): skip one token
                    // or one balanced group, and keep going.
                    let _ = saw_attr;
                    if self.is_punct(i, '{') || self.is_punct(i, '(') || self.is_punct(i, '[') {
                        i = self.skip_group(i, end);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// From an item keyword at `kw`, find `(body_start, tok_end)`: the
    /// index of the first `{` at group depth 0 (body opens; `tok_end` is
    /// one past its matching `}`) or of the first `;` at depth 0
    /// (bodiless; `tok_end` is one past it). Parens, brackets, and
    /// generics before the body are skipped as groups, so `where` clause
    /// bounds and tuple-struct bodies never look like item bodies.
    fn body_or_semi(&self, kw: usize, end: usize) -> (usize, usize) {
        let mut j = kw + 1;
        while j < end {
            match self.kind(j) {
                Some(TokKind::Punct('{')) => return (j, self.skip_group(j, end)),
                Some(TokKind::Punct(';')) => return (j, j + 1),
                Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => {
                    j = self.skip_group(j, end);
                }
                Some(TokKind::Punct('<')) => j = self.skip_angles(j, end),
                _ => j += 1,
            }
        }
        (end, end)
    }

    /// Parse an `impl` head starting just past the `impl` keyword:
    /// `[<generics>] TraitPath for TypePath [where …] {` or
    /// `[<generics>] TypePath [where …] {`. Returns the type path's last
    /// segment, the trait path's last segment (if a trait impl), and one
    /// past the last head token consumed.
    fn impl_head(&self, mut i: usize, end: usize) -> (String, Option<String>, usize) {
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, end);
        }
        let (first, mut j) = self.path_last_segment(i, end);
        if self.ident(j) == Some("for") {
            let (second, k) = self.path_last_segment(j + 1, end);
            j = k;
            (second, Some(first), j)
        } else {
            (first, None, j)
        }
    }

    /// Read a type path (`a::b::Name<args>`, `&mut Name`, `!`), returning
    /// its last identifier segment and one past its end.
    fn path_last_segment(&self, mut i: usize, end: usize) -> (String, usize) {
        let mut last = String::new();
        while i < end {
            match self.kind(i) {
                Some(TokKind::Ident(id)) => {
                    if id == "for" || id == "where" {
                        break;
                    }
                    last = id.clone();
                    i += 1;
                }
                Some(TokKind::Punct(':')) if self.is_punct(i + 1, ':') => i += 2,
                Some(TokKind::Punct('<')) => i = self.skip_angles(i, end),
                Some(TokKind::Punct('&')) | Some(TokKind::Punct('*')) => i += 1,
                Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => {
                    i = self.skip_group(i, end);
                }
                _ => break,
            }
        }
        (last, i)
    }

    /// Field names of a struct body at `body_start` (`{`, `(`, or `;`).
    fn struct_fields(&self, body_start: usize, tok_end: usize) -> Vec<String> {
        match self.kind(body_start) {
            Some(TokKind::Punct('{')) => {
                let mut fields = Vec::new();
                let mut i = body_start + 1;
                let inner_end = tok_end.saturating_sub(1);
                while i < inner_end {
                    // Skip field attributes and visibility.
                    while self.is_punct(i, '#') {
                        let (after, _) = self.scan_attr(i, inner_end);
                        i = after;
                    }
                    if self.ident(i) == Some("pub") {
                        i += 1;
                        if self.is_punct(i, '(') {
                            i = self.skip_group(i, inner_end);
                        }
                    }
                    let Some(name) = self.ident(i) else { break };
                    if !self.is_punct(i + 1, ':') {
                        break;
                    }
                    fields.push(name.to_string());
                    // Skip the type to the next `,` at this level.
                    i += 2;
                    while i < inner_end {
                        match self.kind(i) {
                            Some(TokKind::Punct(',')) => {
                                i += 1;
                                break;
                            }
                            Some(TokKind::Punct('<')) => i = self.skip_angles(i, inner_end),
                            Some(TokKind::Punct('('))
                            | Some(TokKind::Punct('['))
                            | Some(TokKind::Punct('{')) => i = self.skip_group(i, inner_end),
                            _ => i += 1,
                        }
                    }
                }
                fields
            }
            Some(TokKind::Punct('(')) => {
                // Tuple struct: positional fields, named by index.
                let close = self.skip_group(body_start, tok_end);
                let mut arity = 0usize;
                let mut i = body_start + 1;
                let mut any = false;
                while i < close.saturating_sub(1) {
                    any = true;
                    match self.kind(i) {
                        Some(TokKind::Punct(',')) => {
                            arity += 1;
                            i += 1;
                        }
                        Some(TokKind::Punct('<')) => i = self.skip_angles(i, close - 1),
                        Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => {
                            i = self.skip_group(i, close - 1);
                        }
                        _ => i += 1,
                    }
                }
                if any {
                    arity += 1;
                }
                (0..arity).map(|k| k.to_string()).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Variant descriptors of an enum body.
    fn enum_variants(&self, body_start: usize, tok_end: usize) -> Vec<String> {
        if !matches!(self.kind(body_start), Some(TokKind::Punct('{'))) {
            return Vec::new();
        }
        let mut variants = Vec::new();
        let mut i = body_start + 1;
        let inner_end = tok_end.saturating_sub(1);
        while i < inner_end {
            while self.is_punct(i, '#') {
                let (after, _) = self.scan_attr(i, inner_end);
                i = after;
            }
            let Some(name) = self.ident(i) else { break };
            i += 1;
            match self.kind(i) {
                Some(TokKind::Punct('(')) => {
                    let close = self.skip_group(i, inner_end);
                    let mut arity = 0usize;
                    let mut k = i + 1;
                    let mut any = false;
                    while k < close.saturating_sub(1) {
                        any = true;
                        match self.kind(k) {
                            Some(TokKind::Punct(',')) => {
                                arity += 1;
                                k += 1;
                            }
                            Some(TokKind::Punct('<')) => k = self.skip_angles(k, close - 1),
                            Some(TokKind::Punct('(')) | Some(TokKind::Punct('[')) => {
                                k = self.skip_group(k, close - 1);
                            }
                            _ => k += 1,
                        }
                    }
                    if any {
                        arity += 1;
                    }
                    variants.push(format!("{name}({arity})"));
                    i = close;
                }
                Some(TokKind::Punct('{')) => {
                    let close = self.skip_group(i, inner_end);
                    let named = self.struct_fields(i, close);
                    variants.push(format!("{name}{{{}}}", named.join(",")));
                    i = close;
                }
                _ => variants.push(name.to_string()),
            }
            // Skip an explicit discriminant, then the separating comma.
            while i < inner_end && !self.is_punct(i, ',') {
                i += 1;
            }
            i += 1;
        }
        variants
    }
}

/// Parse an integer literal's text (decimal or `0x…`, `_` separators and
/// type suffixes tolerated).
fn parse_int(text: &str) -> Option<u64> {
    let t: String = text.chars().filter(|c| *c != '_').collect();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(char::is_ascii_hexdigit).collect();
        return u64::from_str_radix(&digits, 16).ok();
    }
    let digits: String = t.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// FNV-1a 64-bit hash, rendered as 16 hex digits — the `snapshot-abi`
/// fingerprint function. Stable across platforms and runs by
/// construction.
pub fn fnv64(text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn items_of(src: &str) -> Vec<Item> {
        parse_items(&lex(src).tokens)
    }

    fn find<'a>(items: &'a [Item], name: &str) -> &'a Item {
        items
            .iter()
            .find(|it| it.name == name)
            .unwrap_or_else(|| panic!("no item named {name} in {items:#?}"))
    }

    #[test]
    fn fns_structs_and_mods_are_modeled() {
        let src = "pub fn a() { b(); }\nstruct S { x: u32, y: Vec<u8> }\nmod m { fn inner() {} }\n";
        let items = items_of(src);
        let a = find(&items, "a");
        assert_eq!(a.kind, ItemKind::Fn);
        assert_eq!((a.start_line, a.end_line), (1, 1));
        assert_eq!(find(&items, "S").fields, vec!["x", "y"]);
        let inner = find(&items, "inner");
        assert_eq!(items[inner.parent.unwrap()].name, "m");
    }

    #[test]
    fn cfg_test_marks_nested_items() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n  #[test]\n  fn t() {}\n}\n";
        let items = items_of(src);
        assert!(!find(&items, "lib").test);
        assert!(find(&items, "tests").test);
        assert!(find(&items, "helper").test, "nesting must inherit cfg(test)");
        assert!(find(&items, "t").test);
        assert_eq!(test_spans(&items), vec![(2, 7), (4, 4), (5, 6)]);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn shipping() {}\n#[cfg(test)]\nfn testing() {}\n";
        let items = items_of(src);
        assert!(!find(&items, "shipping").test, "cfg(not(test)) is library code");
        assert!(find(&items, "testing").test);
    }

    #[test]
    fn impl_heads_resolve_trait_and_type() {
        let src = "impl<M, T: RoundMachine<M> + ?Sized> RoundMachine<M> for Box<T> {\n  fn round(&mut self) {}\n}\nimpl Helper { fn go(&self) {} }\n";
        let items = items_of(src);
        let b = find(&items, "Box");
        assert_eq!(b.kind, ItemKind::Impl);
        assert_eq!(b.trait_name.as_deref(), Some("RoundMachine"));
        let round = find(&items, "round");
        assert_eq!(round.parent, Some(0));
        let h = find(&items, "Helper");
        assert_eq!(h.trait_name, None);
    }

    #[test]
    fn impl_with_where_clause_finds_its_body() {
        let src = "impl<M, F> RoundMachine<M> for Machine<M, F>\nwhere\n  M: Clone + Embeds<Msg<F>>,\n  F: Field,\n{\n  fn round(&mut self) { x(); }\n  fn phase_name(&self) -> &'static str { \"x\" }\n}\n";
        let items = items_of(src);
        let m = find(&items, "Machine");
        assert_eq!(m.trait_name.as_deref(), Some("RoundMachine"));
        let fns: Vec<_> = items
            .iter()
            .filter(|it| it.kind == ItemKind::Fn && it.parent == Some(0))
            .map(|it| it.name.as_str())
            .collect();
        assert_eq!(fns, vec!["round", "phase_name"]);
    }

    #[test]
    fn raw_strings_and_nested_comments_do_not_derail_items() {
        let src = r##"
fn a() { let s = r#"fn fake() { } struct Nope { x: u8 }"#; }
/* fn commented() {} /* nested: struct Gone {} */ still comment */
fn b() {}
"##;
        let items = items_of(src);
        let names: Vec<_> = items.iter().map(|it| it.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn enums_render_variant_descriptors() {
        let src = "enum Mode { Active, Backoff { until_epoch: u64 }, Pair(u8, u8), Tagged = 3 }\n";
        let items = items_of(src);
        assert_eq!(
            find(&items, "Mode").fields,
            vec!["Active", "Backoff{until_epoch}", "Pair(2)", "Tagged"]
        );
    }

    #[test]
    fn tuple_and_unit_structs() {
        let items = items_of("struct Unit;\nstruct Pair(u32, Vec<u8>);\n");
        assert!(find(&items, "Unit").fields.is_empty());
        assert_eq!(find(&items, "Pair").fields, vec!["0", "1"]);
    }

    #[test]
    fn const_values_are_read() {
        let items = items_of("pub const SNAPSHOT_VERSION: u16 = 2;\nconst HEX: u64 = 0x10;\nstatic NAME: &str = \"x\";\n");
        assert_eq!(find(&items, "SNAPSHOT_VERSION").const_value, Some(2));
        assert_eq!(find(&items, "HEX").const_value, Some(16));
        assert_eq!(find(&items, "NAME").const_value, None);
    }

    #[test]
    fn abi_descriptor_is_stable() {
        let items = items_of("struct Snap { a: u8, b: Vec<u32>, c: BTreeMap<u32, u64> }\n");
        let d = find(&items, "Snap").abi_descriptor();
        assert_eq!(d, "struct Snap{a,b,c}");
        // Fingerprint is a pure function of the descriptor.
        assert_eq!(fnv64(&d), fnv64("struct Snap{a,b,c}"));
        assert_ne!(fnv64(&d), fnv64("struct Snap{a,b}"));
    }

    #[test]
    fn fn_body_items_are_not_modeled_but_do_not_confuse_spans() {
        // Items inside fn bodies belong to the fn (conservative).
        let src = "fn outer() {\n  struct Local { x: u8 }\n  let v = Local { x: 1 };\n}\nfn after() {}\n";
        let items = items_of(src);
        let names: Vec<_> = items.iter().map(|it| it.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "after"]);
        assert_eq!(find(&items, "outer").end_line, 4);
    }

    #[test]
    fn trait_bodies_are_scoped() {
        let src = "trait T {\n  fn required(&self);\n  fn provided(&self) { body(); }\n}\n";
        let items = items_of(src);
        let req = find(&items, "required");
        assert_eq!(items[req.parent.unwrap()].name, "T");
        // Bodiless: body_start points at the `;`.
        assert_eq!(req.body_start + 1, req.tok_end);
    }

    #[test]
    fn stacked_attrs_and_doc_attrs() {
        let src = "#[derive(Debug, Clone)]\n#[cfg(test)]\n#[allow(dead_code)]\nstruct S { f: u8 }\n";
        let items = items_of(src);
        let s = find(&items, "S");
        assert!(s.test);
        assert_eq!(s.start_line, 1, "span starts at the first attribute");
    }
}
