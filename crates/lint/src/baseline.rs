//! Machine-readable output and the committed-baseline diff mode.
//!
//! `--json` serializes a [`ScanReport`] for tooling; `--baseline <file>`
//! compares the current scan against a committed list of accepted
//! diagnostics so verify.sh can assert "no *new* diagnostics"
//! structurally instead of grepping human-formatted lines.
//!
//! Baseline entries are deliberately **line-less** — `file: [rule]
//! message` — so an unrelated edit that shifts a pinned diagnostic down
//! three lines doesn't churn the committed file. Entries are compared as
//! a multiset: two identical diagnostics in one file need two baseline
//! entries.
//!
//! Both the emitter and the parser are hand-rolled (the crate is
//! zero-dependency by policy); the parser accepts exactly the subset the
//! emitter produces — a JSON array of strings — which is all a committed
//! baseline can contain.

use crate::rules::Diagnostic;
use crate::ScanReport;

/// Render a scan as a JSON document: the diagnostics (with lines, for
/// tooling), the line-less baseline keys, and the census counters.
#[must_use]
pub fn to_json(report: &ScanReport) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}}}",
            json_str(&d.file),
            d.line,
            json_str(d.rule.name()),
            json_str(&d.message)
        ));
    }
    if !report.diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"summary\": {");
    out.push_str(&format!("\n    \"files\": {},", report.files));
    out.push_str(&format!("\n    \"diagnostics\": {},", report.diags.len()));
    out.push_str(&format!("\n    \"suppressions\": {},", report.suppressions));
    out.push_str(&format!("\n    \"stale_suppressions\": {},", report.stale_suppressions));
    out.push_str(&format!(
        "\n    \"transport_suppressions\": {},",
        report.transport_suppressions
    ));
    out.push_str(&format!("\n    \"snapshot_pins\": {},", report.snapshot_pins));
    out.push_str(&format!("\n    \"unresolved_calls\": {}", report.unresolved_calls));
    out.push_str("\n  }\n}\n");
    out
}

/// The line-less baseline key of a diagnostic.
#[must_use]
pub fn baseline_key(d: &Diagnostic) -> String {
    format!("{}: [{}] {}", d.file, d.rule.name(), d.message)
}

/// Sorted baseline keys (a multiset: duplicates kept) for a scan.
#[must_use]
pub fn baseline_keys(diags: &[Diagnostic]) -> Vec<String> {
    let mut keys: Vec<String> = diags.iter().map(baseline_key).collect();
    keys.sort();
    keys
}

/// Render baseline keys as the committed file format: a JSON array of
/// strings, one per line, trailing newline.
#[must_use]
pub fn render_baseline(keys: &[String]) -> String {
    if keys.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, k) in keys.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&json_str(k));
        if i + 1 < keys.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// The difference between a scan and a committed baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Diagnostics present now but not in the baseline — these fail.
    pub new: Vec<String>,
    /// Baseline entries with no matching diagnostic — stale accepted
    /// debt; reported so the baseline gets re-tightened, but not a
    /// failure on its own.
    pub resolved: Vec<String>,
}

/// Multiset-compare current diagnostics against baseline keys.
#[must_use]
pub fn diff(current: &[Diagnostic], baseline: &[String]) -> BaselineDiff {
    let mut have = baseline_keys(current);
    let mut want = baseline.to_vec();
    want.sort();
    let mut out = BaselineDiff::default();
    let (mut i, mut j) = (0usize, 0usize);
    while i < have.len() || j < want.len() {
        match (have.get(i), want.get(j)) {
            (Some(h), Some(w)) if h == w => {
                i += 1;
                j += 1;
            }
            (Some(h), Some(w)) if h < w => {
                out.new.push(std::mem::take(&mut have[i]));
                i += 1;
            }
            (Some(_), Some(_)) => {
                out.resolved.push(std::mem::take(&mut want[j]));
                j += 1;
            }
            (Some(_), None) => {
                out.new.push(std::mem::take(&mut have[i]));
                i += 1;
            }
            (None, Some(_)) => {
                out.resolved.push(std::mem::take(&mut want[j]));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// Parse a committed baseline: a JSON array of strings (the exact format
/// [`render_baseline`] emits; whitespace-insensitive).
///
/// # Errors
///
/// Returns a description of the first syntax problem found.
pub fn parse_baseline(text: &str) -> Result<Vec<String>, String> {
    let b: Vec<char> = text.chars().collect();
    let mut i = 0usize;
    let skip_ws = |i: &mut usize| {
        while *i < b.len() && b[*i].is_whitespace() {
            *i += 1;
        }
    };
    skip_ws(&mut i);
    if b.get(i) != Some(&'[') {
        return Err("baseline must be a JSON array of strings".to_string());
    }
    i += 1;
    let mut out = Vec::new();
    loop {
        skip_ws(&mut i);
        match b.get(i) {
            Some(']') => return Ok(out),
            Some('"') => {
                let (s, next) = parse_json_string(&b, i)?;
                out.push(s);
                i = next;
                skip_ws(&mut i);
                match b.get(i) {
                    Some(',') => i += 1,
                    Some(']') => return Ok(out),
                    _ => return Err("expected `,` or `]` after baseline entry".to_string()),
                }
            }
            _ => return Err("expected a string or `]` in baseline array".to_string()),
        }
    }
}

/// Escape a string as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a JSON string literal starting at the opening quote; returns
/// the value and the index one past the closing quote.
fn parse_json_string(b: &[char], start: usize) -> Result<(String, usize), String> {
    let mut i = start + 1;
    let mut out = String::new();
    while i < b.len() {
        match b[i] {
            '"' => return Ok((out, i + 1)),
            '\\' => {
                let esc = b.get(i + 1).ok_or("unterminated escape in baseline string")?;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let hex: String = b
                            .get(i + 2..i + 6)
                            .ok_or("truncated \\u escape in baseline string")?
                            .iter()
                            .collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| "bad \\u escape in baseline string".to_string())?;
                        out.push(
                            char::from_u32(code)
                                .ok_or("bad \\u code point in baseline string")?,
                        );
                        i += 4;
                    }
                    _ => return Err(format!("unknown escape `\\{esc}` in baseline string")),
                }
                i += 2;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    Err("unterminated string in baseline".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleId;

    fn diag(file: &str, line: u32, rule: RuleId, msg: &str) -> Diagnostic {
        Diagnostic { file: file.into(), line, rule, message: msg.into() }
    }

    #[test]
    fn baseline_round_trips_through_render_and_parse() {
        let diags = vec![
            diag("a.rs", 3, RuleId::Determinism, "uses `HashMap` — \"quoted\""),
            diag("b.rs", 9, RuleId::CostModel, "raw XOR"),
        ];
        let keys = baseline_keys(&diags);
        let rendered = render_baseline(&keys);
        assert_eq!(parse_baseline(&rendered).unwrap(), keys);
        assert_eq!(parse_baseline("[]\n").unwrap(), Vec::<String>::new());
    }

    #[test]
    fn diff_is_line_insensitive_and_multiset() {
        let base = vec![
            diag("a.rs", 3, RuleId::Determinism, "m"),
            diag("a.rs", 8, RuleId::Determinism, "m"),
        ];
        let keys = baseline_keys(&base);
        // Same two diagnostics on different lines: clean diff.
        let moved = vec![
            diag("a.rs", 13, RuleId::Determinism, "m"),
            diag("a.rs", 20, RuleId::Determinism, "m"),
        ];
        let d = diff(&moved, &keys);
        assert!(d.new.is_empty() && d.resolved.is_empty(), "{d:?}");
        // A third identical instance is NEW (multiset semantics).
        let mut three = moved.clone();
        three.push(diag("a.rs", 30, RuleId::Determinism, "m"));
        let d = diff(&three, &keys);
        assert_eq!(d.new.len(), 1);
        // One instance fixed: resolved, not a failure.
        let d = diff(&moved[..1], &keys);
        assert_eq!(d.resolved.len(), 1);
        assert!(d.new.is_empty());
    }

    #[test]
    fn parse_rejects_non_arrays() {
        assert!(parse_baseline("{}").is_err());
        assert!(parse_baseline("[1]").is_err());
        assert!(parse_baseline("[\"a\" \"b\"]").is_err());
    }
}
