//! The flow-aware rules: statements about items and reachability, not
//! single tokens.
//!
//! Three of the four PR 9 rules live here (`stale-allow` is computed in
//! [`crate::lint_sources`] because it needs the suppression accounting):
//!
//! * **`ledger-coverage`** — closes the `<<`/`>>` cost-model hole *by
//!   context*: a raw shift is flagged in `dprbg-core`/`dprbg-poly`
//!   exactly when the containing fn can reach `Gf2k` arithmetic through
//!   the call graph. Shifts in code that provably never touches field
//!   math (there is none today, but the rule is scoped so it stays
//!   possible) are not the cost model's business.
//! * **`machine-contract`** — per-`impl` conformance for
//!   `impl RoundMachine`: a named phase, a reachable `Done` transition,
//!   and no ambient I/O (messages travel through `Outbox`, full stop).
//! * **`snapshot-abi`** — every pinned beacon snapshot struct's field
//!   list is fingerprinted; the pin records the fingerprint and the
//!   `SNAPSHOT_VERSION` it was taken at, so an ABI edit that forgets the
//!   version bump fails the scan with the new fingerprint in the
//!   message.

use crate::callgraph::{FlowFile, Graph};
use crate::items::{fnv64, range_mentions, ItemKind};
use crate::lexer::{Tok, TokKind};
use crate::rules::{Diagnostic, FileKind, RuleId};
use std::collections::BTreeMap;

/// Crates in scope for `ledger-coverage` (the §2-costed protocol code).
const LEDGER_CRATES: &[&str] = &["dprbg-core", "dprbg-poly"];

/// Identifiers whose presence in a fn (or its `impl` head) marks it as
/// touching field arithmetic — the seeds of the reach analysis. `Field`
/// is deliberately included: a fn generic over `F: Field` is
/// field-adjacent by declaration, which errs on the over-approximation
/// side the rule is designed around.
const FIELD_SEEDS: &[&str] = &[
    "Gf2k",
    "DefaultField",
    "Field",
    "to_u64",
    "from_u64",
    "to_canonical",
    "from_canonical",
];

/// Macros that are ambient I/O inside a machine impl.
const MACHINE_IO_MACROS: &[&str] = &["println", "eprintln", "print", "eprint", "dbg", "write", "writeln"];

/// Identifiers that are ambient I/O or transport inside a machine impl.
const MACHINE_IO_IDENTS: &[&str] =
    &["stdout", "stdin", "stderr", "TcpStream", "UdpSocket", "TcpListener"];

/// `std::<module>` path heads that are ambient I/O.
const MACHINE_IO_STD: &[&str] = &["fs", "io", "net", "process"];

/// Run the flow rules. Returns one diagnostic list per input file, in
/// the same order, so the caller can apply per-file suppressions.
pub fn check(files: &[FlowFile<'_>], graph: &Graph) -> Vec<Vec<Diagnostic>> {
    let mut out: Vec<Vec<Diagnostic>> = files.iter().map(|_| Vec::new()).collect();
    ledger_coverage(files, graph, &mut out);
    machine_contract(files, &mut out);
    snapshot_abi(files, &mut out);
    out
}

// ---------------------------------------------------------------------
// ledger-coverage
// ---------------------------------------------------------------------

fn ledger_coverage(files: &[FlowFile<'_>], graph: &Graph, out: &mut [Vec<Diagnostic>]) {
    // Seeds: fns that mention field arithmetic directly, in their own
    // tokens or in the head of the impl block they live in.
    let seeds: Vec<bool> = graph
        .nodes
        .iter()
        .map(|n| {
            let f = &files[n.file];
            let it = &f.items[n.item];
            if range_mentions(f.tokens, it.tok_start, it.tok_end, FIELD_SEEDS) {
                return true;
            }
            it.parent.is_some_and(|p| {
                let head = &f.items[p];
                head.kind == ItemKind::Impl
                    && range_mentions(f.tokens, head.tok_start, head.body_start, FIELD_SEEDS)
            })
        })
        .collect();
    let reaching = graph.mark_reaching(&seeds);

    for (k, node) in graph.nodes.iter().enumerate() {
        if !reaching[k] {
            continue;
        }
        let f = &files[node.file];
        let it = &f.items[node.item];
        if f.class.kind != FileKind::Lib
            || !LEDGER_CRATES.contains(&f.class.crate_name.as_str())
            || it.test
        {
            continue;
        }
        for line in find_shifts(f.tokens, it.body_start, it.tok_end) {
            out[node.file].push(Diagnostic {
                file: f.label.to_string(),
                line,
                rule: RuleId::LedgerCoverage,
                message: format!(
                    "raw shift in `{}`, which reaches `Gf2k` arithmetic: bit manipulation \
                     on field data must go through the counted `dprbg-field` ops (§2 cost model)",
                    it.name
                ),
            });
        }
    }
}

/// Lines of shift operators (`<<` / `>>`) in `toks[start..end)`.
///
/// The lexer emits single-char puncts, so a shift is two consecutive
/// angle tokens — exactly what a generics list also produces. The
/// disambiguation is expression-shaped: a shift sits **between two
/// operands** (identifier, number, or a closing `)`/`]` on the left;
/// identifier, number, or `(` on the right), and never inside a
/// turbofish (`::<…>`), which is tracked explicitly. Longer angle runs
/// (`F>>>` in a nested-generics tail) are skipped wholesale.
///
/// The compound-assign forms `<<=`/`>>=` (an `=` right neighbor) are
/// shifts too — the historical blind spot closed in PR 10. `<<=` is
/// unambiguous (no type syntax produces it); `>>=` could also be a
/// nested-generics close followed by `=` (`Vec<Vec<u8>> =`), so it is
/// flagged only when a backward statement-scoped scan
/// (`open_angles_before`) finds fewer than two unmatched `<` before it.
pub fn find_shifts(toks: &[Tok], start: usize, end: usize) -> Vec<u32> {
    let end = end.min(toks.len());
    let mut lines = Vec::new();
    let mut i = start;
    let mut angle_depth = 0isize;
    while i < end {
        let kind = &toks[i].kind;
        if angle_depth > 0 {
            // Inside a turbofish: count angles until it closes.
            match kind {
                TokKind::Punct('<') => angle_depth += 1,
                TokKind::Punct('>')
                    if !(i > start && matches!(toks[i - 1].kind, TokKind::Punct('-'))) =>
                {
                    angle_depth -= 1;
                }
                _ => {}
            }
            i += 1;
            continue;
        }
        // `::<` opens a turbofish.
        if matches!(kind, TokKind::Punct(':'))
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(':')))
            && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct('<')))
        {
            angle_depth = 1;
            i += 3;
            continue;
        }
        for angle in ['<', '>'] {
            if *kind != TokKind::Punct(angle)
                || !matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(a)) if *a == angle)
            {
                continue;
            }
            // Part of a longer run (`>>>`): a generics tail, not a shift.
            if matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(a)) if *a == angle)
                || (i > start
                    && matches!(&toks[i - 1].kind, TokKind::Punct(a) if *a == angle))
            {
                continue;
            }
            let prev_operand = i > start
                && matches!(
                    &toks[i - 1].kind,
                    TokKind::Ident(_) | TokKind::Num(_) | TokKind::Punct(')') | TokKind::Punct(']')
                );
            let next = toks.get(i + 2).map(|t| &t.kind);
            let next_operand =
                matches!(next, Some(TokKind::Ident(_) | TokKind::Num(_) | TokKind::Punct('(')));
            // `x <<= 1` / `x >>= 1`: an `=` follower makes a compound
            // shift-assign — unless (for `>`) the pair is really a
            // nested-generics close in `Vec<Vec<u8>> = …`, which the
            // backward angle balance detects.
            let compound_assign = matches!(next, Some(TokKind::Punct('=')))
                && (angle == '<' || open_angles_before(toks, start, i) < 2);
            if prev_operand && (next_operand || compound_assign) {
                lines.push(toks[i].line);
            }
        }
        i += 1;
    }
    lines.dedup();
    lines
}

/// Unmatched `<` openers between the enclosing statement boundary and
/// `toks[i]`, scanning backwards from `i` until `;`/`{`/`}` (or `lo`).
///
/// Used by [`find_shifts`] to tell `x >>= 1` (no open angles) from
/// `Vec<Vec<u8>> =` (two open angles waiting for the `>>` to close
/// them). `<=` comparisons and the `>` of `->`/`=>` arrows are not
/// angle brackets and are skipped.
fn open_angles_before(toks: &[Tok], lo: usize, i: usize) -> isize {
    let mut bal = 0isize;
    for j in (lo..i).rev() {
        match toks[j].kind {
            TokKind::Punct(';') | TokKind::Punct('{') | TokKind::Punct('}') => break,
            TokKind::Punct('<')
                if !matches!(toks.get(j + 1).map(|t| &t.kind), Some(TokKind::Punct('='))) =>
            {
                bal += 1;
            }
            TokKind::Punct('>') => {
                let arrow = j > lo
                    && matches!(toks[j - 1].kind, TokKind::Punct('-') | TokKind::Punct('='));
                if !arrow {
                    bal -= 1;
                }
            }
            _ => {}
        }
    }
    bal
}

// ---------------------------------------------------------------------
// machine-contract
// ---------------------------------------------------------------------

fn machine_contract(files: &[FlowFile<'_>], out: &mut [Vec<Diagnostic>]) {
    for (fi, f) in files.iter().enumerate() {
        if f.class.kind != FileKind::Lib {
            continue;
        }
        for (ii, it) in f.items.iter().enumerate() {
            if it.kind != ItemKind::Impl
                || it.trait_name.as_deref() != Some("RoundMachine")
                || it.test
            {
                continue;
            }
            let push = |out: &mut [Vec<Diagnostic>], line: u32, message: String| {
                out[fi].push(Diagnostic {
                    file: f.label.to_string(),
                    line,
                    rule: RuleId::MachineContract,
                    message,
                });
            };

            // (a) Every machine names its phase — the default
            // `phase_name` ("round") makes traces unreadable at fleet
            // scale, so relying on it is a contract violation.
            let defines_phase = f.items.iter().any(|c| {
                c.parent == Some(ii) && c.kind == ItemKind::Fn && c.name == "phase_name"
            });
            if !defines_phase {
                push(
                    out,
                    it.start_line,
                    format!(
                        "`impl RoundMachine for {}` does not define `phase_name`: \
                         every machine names its phase for traces and progress reports",
                        it.name
                    ),
                );
            }

            // (b) A machine that can `Continue` but never constructs
            // `Done` cannot terminate — the driver would spin forever.
            // Pure delegators (neither token: `Box`/`FromFn` forward the
            // inner machine's `Step` untouched) are fine.
            let body = (it.body_start, it.tok_end);
            let has_done = range_mentions(f.tokens, body.0, body.1, &["Done"]);
            let has_continue = range_mentions(f.tokens, body.0, body.1, &["Continue"]);
            if has_continue && !has_done {
                push(
                    out,
                    it.start_line,
                    format!(
                        "`impl RoundMachine for {}` can `Step::Continue` but never \
                         constructs `Step::Done`: every machine must have a terminal transition",
                        it.name
                    ),
                );
            }

            // (c) No ambient I/O: a machine's only effect channel is the
            // `Outbox` it returns. Printing, files, sockets, or process
            // state inside `round()` would make transcripts lie.
            for (j, tok) in f.tokens[body.0..body.1.min(f.tokens.len())].iter().enumerate() {
                let TokKind::Ident(id) = &tok.kind else { continue };
                let abs = body.0 + j;
                let next_bang = matches!(
                    f.tokens.get(abs + 1).map(|t| &t.kind),
                    Some(TokKind::Punct('!'))
                );
                let offending = if MACHINE_IO_MACROS.contains(&id.as_str()) && next_bang {
                    Some(format!("{id}!"))
                } else if MACHINE_IO_IDENTS.contains(&id.as_str()) {
                    Some(id.clone())
                } else if id == "std"
                    && crate::rules::path_next(f.tokens, abs)
                        .is_some_and(|m| MACHINE_IO_STD.contains(&m))
                {
                    Some(format!(
                        "std::{}",
                        crate::rules::path_next(f.tokens, abs).unwrap_or_default()
                    ))
                } else {
                    None
                };
                if let Some(what) = offending {
                    push(
                        out,
                        tok.line,
                        format!(
                            "`{what}` inside `impl RoundMachine for {}`: machines emit \
                             messages only via `Outbox`",
                            it.name
                        ),
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// snapshot-abi
// ---------------------------------------------------------------------

fn snapshot_abi(files: &[FlowFile<'_>], out: &mut [Vec<Diagnostic>]) {
    // Resolve `SNAPSHOT_VERSION`: same-crate consts win; a unique
    // workspace-wide definition is the fallback (the metrics structs are
    // serialized *inside* the beacon snapshot, so they version with it).
    let mut by_crate: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    for f in files {
        for it in f.items {
            if it.kind == ItemKind::Const && it.name == "SNAPSHOT_VERSION" && !it.test {
                if let Some(v) = it.const_value {
                    by_crate.entry(f.class.crate_name.as_str()).or_default().push(v);
                }
            }
        }
    }
    let global: Vec<u64> = by_crate.values().flatten().copied().collect();

    for (fi, f) in files.iter().enumerate() {
        let push = |out: &mut [Vec<Diagnostic>], line: u32, message: String| {
            out[fi].push(Diagnostic {
                file: f.label.to_string(),
                line,
                rule: RuleId::SnapshotAbi,
                message,
            });
        };
        for pin in f.pins {
            // The pinned item is the struct/enum starting directly below
            // the pin comment (attributes included in the item span, so
            // the pin sits above any `#[derive]`).
            let Some(it) = f.items.iter().find(|it| {
                matches!(it.kind, ItemKind::Struct | ItemKind::Enum)
                    && it.start_line == pin.end_line + 1
            }) else {
                push(
                    out,
                    pin.line,
                    "snapshot-abi pin does not directly precede a struct or enum".to_string(),
                );
                continue;
            };
            let fp = fnv64(&it.abi_descriptor());
            if fp != pin.fingerprint {
                push(
                    out,
                    it.start_line,
                    format!(
                        "ABI of `{}` changed since its snapshot-abi pin (fingerprint is \
                         `{fp}`, pin says `{}`): bump `SNAPSHOT_VERSION` and re-pin as \
                         `snapshot-abi(v<new>, {fp})`",
                        it.name, pin.fingerprint
                    ),
                );
                continue;
            }
            let resolved = by_crate
                .get(f.class.crate_name.as_str())
                .and_then(|v| v.first().copied())
                .or_else(|| if global.len() == 1 { Some(global[0]) } else { None });
            match resolved {
                None if global.is_empty() => push(
                    out,
                    pin.line,
                    "snapshot-abi pin but no `SNAPSHOT_VERSION` const exists in the workspace"
                        .to_string(),
                ),
                None => push(
                    out,
                    pin.line,
                    "snapshot-abi pin is ambiguous: multiple crates define `SNAPSHOT_VERSION` \
                     and none is in this crate"
                        .to_string(),
                ),
                Some(v) if v != pin.version => push(
                    out,
                    pin.line,
                    format!(
                        "snapshot-abi pin declares v{} but `SNAPSHOT_VERSION` is {v}: \
                         the pin must be re-taken at the current version",
                        pin.version
                    ),
                ),
                Some(_) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn shifts(src: &str) -> Vec<u32> {
        let toks = lex(src).tokens;
        find_shifts(&toks, 0, toks.len())
    }

    #[test]
    fn real_shifts_are_found() {
        assert_eq!(shifts("let x = v >> i;"), vec![1]);
        assert_eq!(shifts("let x = 1 << k;"), vec![1]);
        assert_eq!(shifts("let x = (a + b) << 3;"), vec![1]);
        assert_eq!(shifts("let y = limbs[0] >> 7;"), vec![1]);
        assert_eq!(shifts("let z = a << (b + 1);"), vec![1]);
    }

    #[test]
    fn generics_are_not_shifts() {
        assert!(shifts("fn f() -> Vec<Vec<u8>> { Vec::new() }").is_empty());
        assert!(shifts("let m: BTreeMap<u32, Vec<u8>> = BTreeMap::new();").is_empty());
        assert!(shifts("let x = parse::<Vec<u8>>(s);").is_empty());
        assert!(shifts("let x = <M as Embeds<ExposeMsg<F>>>::wrap(m);").is_empty());
        assert!(shifts("let v = items.iter().collect::<Vec<_>>();").is_empty());
    }

    #[test]
    fn turbofish_interior_shifts_are_out_of_scope_but_exteriors_count() {
        // After the turbofish closes, a genuine shift is still seen.
        assert_eq!(shifts("let x = parse::<u64>(s) >> 3;"), vec![1]);
    }

    #[test]
    fn compound_assigns_are_shifts() {
        // The former `=`-follower blind spot, closed in PR 10.
        assert_eq!(shifts("x <<= 1;"), vec![1]);
        assert_eq!(shifts("x >>= 3;"), vec![1]);
        assert_eq!(shifts("acc <<= width; acc >>= half;"), vec![1]);
        assert_eq!(shifts("limbs[0] >>= 7;"), vec![1]);
    }

    #[test]
    fn generics_close_before_assign_is_not_a_compound_shift() {
        // `>>` closing nested generics right before an `=` must stay
        // quiet — the backward angle balance sees the two open `<`.
        assert!(shifts("let m: BTreeMap<u32, Vec<u8>> = x;").is_empty());
        assert!(shifts("let v: Vec<Vec<u8>> = Vec::new();").is_empty());
        assert!(shifts("let p: Foo<(A, B), Bar<u8>> = make();").is_empty());
        // ...and a real compound shift later in the same fn is still hit.
        assert_eq!(shifts("let v: Vec<Vec<u8>> = x; y >>= 2;"), vec![1]);
    }
}
