//! A minimal Rust lexer: just enough structure for invariant rules.
//!
//! The analyzer never needs a syntax tree — every rule in
//! [`crate::rules`] is a statement about *tokens in non-test library
//! code* ("the identifier `HashMap` appears", "`^` is used as an
//! operator"). What it does need, and what naive `grep` cannot give, is
//! to know when text is **not** a token at all: inside a `//` or
//! `/* */` comment, a string or char literal, or a lifetime (`'a` is not
//! an unterminated char). This module provides exactly that: a
//! line-number-preserving token stream plus the comment list (comments
//! carry the `lint: allow(...)` suppressions).

/// What a token is, at the granularity the rules care about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `unwrap`, `mod`, …).
    Ident(String),
    /// A single punctuation character (`^`, `:`, `!`, `{`, …).
    /// Multi-char operators appear as consecutive tokens (`::` is two
    /// `:`), which is all the sequence matchers need.
    Punct(char),
    /// A lifetime (`'a`, `'static`) — lexed as one unit so the `'` never
    /// looks like an open char literal.
    Lifetime,
    /// A string, raw string, byte string, or char literal. Contents are
    /// irrelevant to every rule, so they are not kept.
    Literal,
    /// A numeric literal (including suffixed and float forms). The text
    /// is kept: the item model reads `const SNAPSHOT_VERSION: u16 = 1`
    /// values out of it for the `snapshot-abi` rule.
    Num(String),
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// 1-based line the token starts on.
    pub line: u32,
    /// The token's classification.
    pub kind: TokKind,
}

/// One comment with its 1-based starting line and body text (delimiters
/// stripped for line comments; block comments keep interior text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: u32,
    /// The comment text without the leading `//` / `/*` markers.
    pub text: String,
    /// Whether this is a doc comment (`///`, `//!`, `/**`, `/*!`). Doc
    /// comments are documentation — they describe the allow syntax, they
    /// never *are* an allow.
    pub doc: bool,
}

/// The output of [`lex`]: the token stream and the comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Tok>,
    /// All comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

/// Tokenize Rust source. Never fails: unterminated constructs are
/// consumed to end-of-file, which is the right degradation for a linter.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let n = b.len();

    // Count newlines in b[start..end) into `line`.
    macro_rules! advance_lines {
        ($start:expr, $end:expr) => {
            for k in $start..$end {
                if b[k] == '\n' {
                    line += 1;
                }
            }
        };
    }

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Line comment (incl. `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i + 2;
            let doc = start < n && (b[start] == '/' || b[start] == '!');
            let mut j = start;
            while j < n && b[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text: b[start..j].iter().collect::<String>().trim().to_string(),
                doc,
            });
            i = j;
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start_line = line;
            let start = i + 2;
            let doc = start < n && (b[start] == '*' || b[start] == '!') && b.get(start + 1) != Some(&'/');
            let mut depth = 1;
            let mut j = start;
            while j < n && depth > 0 {
                if b[j] == '/' && j + 1 < n && b[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if b[j] == '*' && j + 1 < n && b[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    if b[j] == '\n' {
                        line += 1;
                    }
                    j += 1;
                }
            }
            let text_end = if depth == 0 { j - 2 } else { j };
            out.comments.push(Comment {
                line: start_line,
                end_line: line,
                text: b[start..text_end].iter().collect::<String>().trim().to_string(),
                doc,
            });
            i = j;
            continue;
        }
        // Raw / byte string heads: r"", r#""#, b"", br#""#, ...
        if c == 'r' || c == 'b' {
            if let Some(j) = raw_or_byte_string_end(&b, i) {
                out.tokens.push(Tok { line, kind: TokKind::Literal });
                advance_lines!(i, j);
                i = j;
                continue;
            }
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            let mut j = i;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            out.tokens.push(Tok {
                line,
                kind: TokKind::Ident(b[start..j].iter().collect()),
            });
            i = j;
            continue;
        }
        // Number (identifier-ish tail covers 0x_, suffixes; a trailing
        // `.digit` covers simple floats).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_' || b[j] == '.') {
                // A second dot (e.g. `0..n`) is a range, not part of the number.
                if b[j] == '.' && (j + 1 >= n || !b[j + 1].is_ascii_digit()) {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Tok { line, kind: TokKind::Num(b[start..j].iter().collect()) });
            i = j;
            continue;
        }
        // Quote: char literal or lifetime.
        if c == '\'' {
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                // Escaped char literal: '\n', '\'', '\u{..}'.
                j += 2;
                while j < n && b[j] != '\'' {
                    j += 1;
                }
                out.tokens.push(Tok { line, kind: TokKind::Literal });
                i = (j + 1).min(n);
                continue;
            }
            if j < n && (b[j].is_alphabetic() || b[j] == '_') {
                // Could be 'a' (char) or 'a / 'static (lifetime): a
                // lifetime's identifier is not followed by a closing quote.
                let mut k = j;
                while k < n && (b[k].is_alphanumeric() || b[k] == '_') {
                    k += 1;
                }
                if k < n && b[k] == '\'' {
                    out.tokens.push(Tok { line, kind: TokKind::Literal });
                    i = k + 1;
                } else {
                    out.tokens.push(Tok { line, kind: TokKind::Lifetime });
                    i = k;
                }
                continue;
            }
            // Non-alphabetic char literal: '0', '{', …
            while j < n && b[j] != '\'' {
                if b[j] == '\n' {
                    line += 1;
                }
                j += 1;
            }
            out.tokens.push(Tok { line, kind: TokKind::Literal });
            i = (j + 1).min(n);
            continue;
        }
        // Plain string literal.
        if c == '"' {
            let mut j = i + 1;
            while j < n {
                match b[j] {
                    '\\' => j += 2,
                    '"' => break,
                    ch => {
                        if ch == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
            }
            out.tokens.push(Tok { line, kind: TokKind::Literal });
            i = (j + 1).min(n);
            continue;
        }
        // Everything else: single punctuation char.
        out.tokens.push(Tok { line, kind: TokKind::Punct(c) });
        i += 1;
    }
    out
}

/// If `b[i..]` starts a raw/byte string (`r"`, `r#"`, `b"`, `br##"`, …),
/// return the index one past its closing delimiter; otherwise `None`.
fn raw_or_byte_string_end(b: &[char], i: usize) -> Option<usize> {
    let n = b.len();
    let mut j = i;
    // Optional 'b', optional 'r'.
    if j < n && b[j] == 'b' {
        j += 1;
    }
    let raw = j < n && b[j] == 'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    if raw {
        while j < n && b[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= n || b[j] != '"' {
        return None;
    }
    if !raw && j == i {
        // Plain `"` with no prefix is handled by the caller.
        return None;
    }
    j += 1;
    if raw {
        // Scan for `"` followed by `hashes` hashes; escapes are inert.
        while j < n {
            if b[j] == '"'
                && j + hashes < n
                && b[j + 1..j + 1 + hashes].iter().all(|&h| h == '#')
            {
                return Some(j + 1 + hashes);
            }
            j += 1;
        }
        Some(n)
    } else {
        // Byte string: same escape rules as a plain string.
        while j < n {
            match b[j] {
                '\\' => j += 2,
                '"' => return Some(j + 1),
                _ => j += 1,
            }
        }
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in /* a nested */ block */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
        "##;
        // The only idents are let/s/let/r.
        assert!(!idents(src).iter().any(|i| i == "HashMap"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { unwrap_me(x) }";
        let ids = idents(src);
        assert!(ids.contains(&"unwrap_me".to_string()));
        assert!(ids.contains(&"str".to_string()));
    }

    #[test]
    fn char_literals_lex_as_literals() {
        let src = "let c = 'x'; let q = '\\''; let b = '{';";
        let lx = lex(src);
        let lits = lx.tokens.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn numeric_literals_keep_their_text() {
        let lx = lex("const V: u16 = 1; let x = 0x2A_u64; let f = 3.5;");
        let nums: Vec<String> = lx
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Num(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1", "0x2A_u64", "3.5"]);
    }

    #[test]
    fn line_numbers_track_through_multiline_constructs() {
        let src = "/* one\ntwo */\nlet x = 1;\n\"a\nb\"\nident";
        let lx = lex(src);
        let last = lx.tokens.last().unwrap();
        assert_eq!(last.kind, TokKind::Ident("ident".into()));
        assert_eq!(last.line, 6);
    }

    #[test]
    fn comment_text_is_captured() {
        let lx = lex("let a = 1; // lint: allow(determinism) — reason\n");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.starts_with("lint: allow"));
    }

}
