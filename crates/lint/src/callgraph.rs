//! A conservative cross-file call graph over the item model.
//!
//! Resolution is deliberately crude — and that crudeness is the point.
//! Without type information (and this crate has no `syn`, let alone
//! `rustc`), a call site `x.add(y)` could bind to any `fn add` in the
//! workspace. So the graph **over-approximates**: a call named `add`
//! gets an edge to *every* workspace fn named `add`. Calls whose name
//! matches no workspace fn at all (`std` and `core` calls, mostly)
//! become **edges-to-unknown** — counted, never resolved.
//!
//! This direction of error is the safe one for the rule built on top:
//! `ledger-coverage` asks "does this fn *reach* `Gf2k` arithmetic?", and
//! an over-approximated reach set can only make the rule fire on extra
//! fns (which a reviewed `allow` pin resolves), never silently miss one
//! that really does touch field math through a helper.

use crate::items::{Item, ItemKind};
use crate::lexer::{Tok, TokKind};
use std::collections::BTreeMap;

/// One file's worth of analysis inputs, borrowed from the caller.
pub struct FlowFile<'a> {
    /// Diagnostic label (repo-relative path).
    pub label: &'a str,
    /// Crate and lib/test/example classification.
    pub class: &'a crate::rules::FileClass,
    /// The file's token stream.
    pub tokens: &'a [Tok],
    /// The file's item model.
    pub items: &'a [Item],
    /// The file's `snapshot-abi` pins (used by [`crate::flow`], carried
    /// here so one borrowed view serves both analyses).
    pub pins: &'a [crate::rules::SnapshotPin],
}

/// A fn node: which file, which item.
#[derive(Debug, Clone, Copy)]
pub struct FnNode {
    /// Index into the `FlowFile` slice the graph was built from.
    pub file: usize,
    /// Index into that file's `items`.
    pub item: usize,
}

/// The workspace call graph.
pub struct Graph {
    /// All fn items in the workspace, in (file, item) order.
    pub nodes: Vec<FnNode>,
    /// Reverse edges: `callers[k]` lists nodes with a call edge *to* `k`.
    pub callers: Vec<Vec<usize>>,
    /// Call sites whose name matched no workspace fn (edges-to-unknown).
    pub unresolved_calls: usize,
}

/// Keywords and binding forms that look like `ident (` but are not calls.
const NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "move", "let", "mut", "ref", "fn", "impl", "where", "pub", "unsafe", "async", "dyn", "union",
];

/// Build the call graph for a set of files.
pub fn build(files: &[FlowFile<'_>]) -> Graph {
    // Nodes: every fn item, with a name index for resolution.
    let mut nodes = Vec::new();
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (ii, it) in f.items.iter().enumerate() {
            if it.kind == ItemKind::Fn {
                let k = nodes.len();
                nodes.push(FnNode { file: fi, item: ii });
                by_name.entry(it.name.as_str()).or_default().push(k);
            }
        }
    }

    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    let mut unresolved_calls = 0usize;
    for (k, node) in nodes.iter().enumerate() {
        let f = &files[node.file];
        let it = &f.items[node.item];
        let body = &f.tokens[it.body_start..it.tok_end.min(f.tokens.len())];
        for (j, tok) in body.iter().enumerate() {
            let TokKind::Ident(name) = &tok.kind else { continue };
            // A call site: `name (` — macros never match (their `!`
            // intervenes), keywords are filtered, and `fn name(` is a
            // definition, not a call.
            if !matches!(body.get(j + 1).map(|t| &t.kind), Some(TokKind::Punct('('))) {
                continue;
            }
            if NOT_CALLS.contains(&name.as_str()) {
                continue;
            }
            if matches!(
                j.checked_sub(1).and_then(|p| body.get(p)).map(|t| &t.kind),
                Some(TokKind::Ident(prev)) if prev == "fn"
            ) {
                continue;
            }
            match by_name.get(name.as_str()) {
                Some(callees) => {
                    for &c in callees {
                        if c != k && !callers[c].contains(&k) {
                            callers[c].push(k);
                        }
                    }
                }
                None => unresolved_calls += 1,
            }
        }
    }

    Graph { nodes, callers, unresolved_calls }
}

impl Graph {
    /// Mark every node that *reaches* a seed node: the seeds themselves
    /// plus, transitively, everything with a call edge into the set.
    /// Returns one flag per node.
    pub fn mark_reaching(&self, seeds: &[bool]) -> Vec<bool> {
        let mut reaching = seeds.to_vec();
        let mut work: Vec<usize> =
            (0..self.nodes.len()).filter(|&k| reaching[k]).collect();
        while let Some(k) = work.pop() {
            for &caller in &self.callers[k] {
                if !reaching[caller] {
                    reaching[caller] = true;
                    work.push(caller);
                }
            }
        }
        reaching
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::lex;
    use crate::rules::{FileClass, FileKind};

    struct Owned {
        label: String,
        class: FileClass,
        tokens: Vec<Tok>,
        items: Vec<Item>,
    }

    fn own(label: &str, src: &str) -> Owned {
        let lx = lex(src);
        let items = parse_items(&lx.tokens);
        Owned {
            label: label.to_string(),
            class: FileClass { crate_name: "dprbg-core".into(), kind: FileKind::Lib },
            tokens: lx.tokens,
            items,
        }
    }

    fn views(files: &[Owned]) -> Vec<FlowFile<'_>> {
        files
            .iter()
            .map(|f| FlowFile {
                label: &f.label,
                class: &f.class,
                tokens: &f.tokens,
                items: &f.items,
                pins: &[],
            })
            .collect()
    }

    fn node_name<'a>(files: &'a [Owned], g: &Graph, k: usize) -> &'a str {
        let n = g.nodes[k];
        &files[n.file].items[n.item].name
    }

    #[test]
    fn cross_file_edges_resolve_by_name() {
        let files = vec![
            own("a.rs", "pub fn outer() { helper(1); }\n"),
            own("b.rs", "pub fn helper(x: u32) -> u32 { std::hint::black_box(x) }\n"),
        ];
        let g = build(&views(&files));
        assert_eq!(g.nodes.len(), 2);
        // helper's callers include outer.
        let helper = (0..2).find(|&k| node_name(&files, &g, k) == "helper").unwrap();
        let outer = (0..2).find(|&k| node_name(&files, &g, k) == "outer").unwrap();
        assert_eq!(g.callers[helper], vec![outer]);
        // black_box resolves to no workspace fn: one edge-to-unknown.
        assert_eq!(g.unresolved_calls, 1);
    }

    #[test]
    fn reaching_propagates_to_transitive_callers() {
        let files = vec![own(
            "a.rs",
            "fn leaf() {}\nfn mid() { leaf(); }\nfn top() { mid(); }\nfn bystander() {}\n",
        )];
        let g = build(&views(&files));
        let seeds: Vec<bool> =
            (0..g.nodes.len()).map(|k| node_name(&files, &g, k) == "leaf").collect();
        let reaching = g.mark_reaching(&seeds);
        let names: Vec<&str> = (0..g.nodes.len())
            .filter(|&k| reaching[k])
            .map(|k| node_name(&files, &g, k))
            .collect();
        assert_eq!(names, vec!["leaf", "mid", "top"]);
    }

    #[test]
    fn keywords_and_macros_are_not_call_sites() {
        let files = vec![own(
            "a.rs",
            "fn f(x: u32) { if (x > 0) { } match (x) { _ => {} } vec![1]; assert!(true); }\n",
        )];
        let g = build(&views(&files));
        // `if (`, `match (` filtered as keywords; `vec![`/`assert!` have
        // `!` between ident and delimiter. Nothing is unresolved.
        assert_eq!(g.unresolved_calls, 0);
    }

    #[test]
    fn method_calls_edge_to_every_same_name_fn() {
        // `.add(` conservatively edges to every workspace `fn add`.
        let files = vec![
            own("a.rs", "fn caller(x: Gf2k, y: Gf2k) { let _ = x.add(y); }\n"),
            own("f.rs", "impl Gf2k { pub fn add(self, o: Self) -> Self { o } }\n"),
        ];
        let g = build(&views(&files));
        let add = (0..g.nodes.len()).find(|&k| node_name(&files, &g, k) == "add").unwrap();
        assert_eq!(g.callers[add].len(), 1);
    }
}
