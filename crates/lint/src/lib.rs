#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # `dprbg-lint` — in-tree determinism & protocol-invariant analyzer
//!
//! The reproduction rests on invariants no compiler checks: both
//! executors must replay byte-identical transcripts (broken the moment
//! protocol code iterates a `HashMap` or reads a clock), the §2
//! cost-model tables are honest only if field arithmetic goes through
//! the counted `dprbg-field` ops, and graceful degradation dies with
//! every stray `unwrap()` in `dprbg-core`. This crate walks the
//! workspace with a comment/string/lifetime-aware tokenizer
//! ([`lexer`]) and enforces those invariants as five rules ([`rules`],
//! [`manifest`]) with `file:line` diagnostics and
//! `// lint: allow(<rule>) — <reason>` suppressions.
//!
//! See `LINTS.md` at the workspace root for the rule catalog, and
//! DESIGN.md §"Static invariants" for how the rules relate to the
//! executor-equivalence tests.
//!
//! Per the hermetic policy it itself enforces, the crate has **zero
//! dependencies** — no `syn`, no `walkdir`; a ~400-line lexer is enough
//! because every rule is a token-level statement.

pub mod lexer;
pub mod manifest;
pub mod rules;

pub use manifest::lint_manifest;
pub use rules::{
    lint_rust_source, transport_allow_count, Diagnostic, FileClass, FileKind, RuleId,
};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lint every manifest and Rust source file under `root` (a workspace
/// checkout). Returns unsuppressed diagnostics sorted by path and line.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = lint_manifests(root)?;
    for (path, class) in rust_sources(root)? {
        let src = fs::read_to_string(&path)?;
        diags.extend(lint_rust_source(&label(root, &path), &src, &class));
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diags)
}

/// Count `allow(transport)` suppressions pinned anywhere in the
/// workspace sources (fixture corpora excluded, as in [`lint_workspace`]).
/// The single-execution-path invariant requires this to be zero; the CLI
/// reports the census explicitly so the invariant is visible.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn count_transport_allows(root: &Path) -> io::Result<usize> {
    let mut count = 0;
    for (path, _class) in rust_sources(root)? {
        count += transport_allow_count(&fs::read_to_string(&path)?);
    }
    Ok(count)
}

/// Lint only the manifests under `root` (the `hermetic` rule — what the
/// `scripts/verify.sh` dependency guard delegates to).
///
/// # Errors
///
/// Propagates I/O errors from reading the manifests.
pub fn lint_manifests(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for m in workspace_manifests(root)? {
        let src = fs::read_to_string(&m)?;
        out.extend(lint_manifest(&label(root, &m), &src));
    }
    Ok(out)
}

/// The workspace manifests: the root `Cargo.toml` plus every
/// `crates/*/Cargo.toml`, sorted.
fn workspace_manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.push(root_manifest);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for dir in sorted_entries(&crates_dir)? {
            let m = dir.join("Cargo.toml");
            if m.is_file() {
                out.push(m);
            }
        }
    }
    Ok(out)
}

/// Every Rust source under `root` with its [`FileClass`], sorted by path.
///
/// Classification mirrors cargo's layout: `src/` is library/binary code,
/// `tests/` is integration-test code, `examples/` and `benches/` are
/// demos. Fixture corpora (`tests/fixtures/**`) are skipped entirely —
/// they contain deliberate violations for the lint's own test suite.
fn rust_sources(root: &Path) -> io::Result<Vec<(PathBuf, FileClass)>> {
    let mut out = Vec::new();
    let add_package = |pkg_root: &Path, crate_name: &str, out: &mut Vec<_>| -> io::Result<()> {
        for (dir, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("examples", FileKind::Example),
            ("benches", FileKind::Example),
        ] {
            let d = pkg_root.join(dir);
            if d.is_dir() {
                collect_rs(&d, &mut |p| {
                    out.push((
                        p,
                        FileClass { crate_name: crate_name.to_string(), kind },
                    ));
                })?;
            }
        }
        Ok(())
    };

    add_package(root, &package_name(root).unwrap_or_else(|| "dprbg".into()), &mut out)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for dir in sorted_entries(&crates_dir)? {
            if !dir.is_dir() {
                continue;
            }
            let name = package_name(&dir).unwrap_or_else(|| {
                format!("dprbg-{}", dir.file_name().unwrap_or_default().to_string_lossy())
            });
            add_package(&dir, &name, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Read `name = "…"` from a package's `Cargo.toml`.
fn package_name(pkg_root: &Path) -> Option<String> {
    let src = fs::read_to_string(pkg_root.join("Cargo.toml")).ok()?;
    let mut in_package = false;
    for line in src.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir` (sorted), skipping
/// fixture corpora.
fn collect_rs(dir: &Path, push: &mut dyn FnMut(PathBuf)) -> io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            if entry.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&entry, push)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            push(entry);
        }
    }
    Ok(())
}

/// Directory entries sorted by name (deterministic diagnostics order).
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

/// A root-relative, forward-slash path label for diagnostics.
fn label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
