#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # `dprbg-lint` — in-tree determinism & protocol-invariant analyzer
//!
//! The reproduction rests on invariants no compiler checks: both
//! executors must replay byte-identical transcripts (broken the moment
//! protocol code iterates a `HashMap` or reads a clock), the §2
//! cost-model tables are honest only if field arithmetic goes through
//! the counted `dprbg-field` ops, and graceful degradation dies with
//! every stray `unwrap()` in `dprbg-core`. This crate analyzes the
//! workspace in three layers, each built on the one below:
//!
//! 1. a comment/string/lifetime-aware tokenizer ([`lexer`]);
//! 2. an **item model** ([`items`]) — fn/struct/trait/impl/mod spans
//!    with attributes and precise `#[cfg(test)]` awareness — plus a
//!    conservative **cross-file call graph** ([`callgraph`]) that
//!    resolves calls by name within the workspace and counts everything
//!    else as an edge-to-unknown;
//! 3. the rules: token-level invariants ([`rules`], [`manifest`]) and
//!    flow-aware ones ([`flow`]) that reason about reachability and
//!    per-`impl` contracts, with `file:line` diagnostics,
//!    `// lint: allow(<rule>) — <reason>` suppressions, and
//!    `// lint: snapshot-abi(v<n>, <hex>)` ABI pins.
//!
//! See `LINTS.md` at the workspace root for the rule catalog, and
//! DESIGN.md §"Static invariants" for how the rules relate to the
//! executor-equivalence tests.
//!
//! Per the hermetic policy it itself enforces, the crate has **zero
//! dependencies** — no `syn`, no `walkdir`; the lexer + item model are
//! enough because every rule is a statement about tokens, items, or
//! name-level reachability.

pub mod baseline;
pub mod callgraph;
pub mod flow;
pub mod items;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use manifest::lint_manifest;
pub use rules::{
    lint_rust_source, transport_allow_count, Diagnostic, FileClass, FileKind, RuleId,
};

use rules::{analyze_rust_source, apply_suppressions, FileAnalysis};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file handed to [`lint_sources`]: a label for diagnostics,
/// the text, and the crate/kind classification.
pub struct SourceSpec {
    /// Repo-relative path used in diagnostics.
    pub label: String,
    /// The file's contents.
    pub text: String,
    /// Which crate it belongs to and how it is classified.
    pub class: FileClass,
}

/// The result of a full workspace scan: the surviving diagnostics plus
/// the census counters the CLI and verify.sh report.
pub struct ScanReport {
    /// Unsuppressed diagnostics, sorted by path, line, rule.
    pub diags: Vec<Diagnostic>,
    /// Rust files scanned.
    pub files: usize,
    /// Valid allow pins seen (any rule).
    pub suppressions: usize,
    /// Allow pins that suppressed zero diagnostics (each also surfaced
    /// as a `stale-allow` diagnostic).
    pub stale_suppressions: usize,
    /// Allow pins naming `transport` (each also a `transport`
    /// diagnostic; the census keeps the zero visible).
    pub transport_suppressions: usize,
    /// `snapshot-abi` pins seen.
    pub snapshot_pins: usize,
    /// Call sites the conservative graph could not resolve to any
    /// workspace fn (edges-to-unknown).
    pub unresolved_calls: usize,
}

/// Run the full analysis — token rules, flow rules, `stale-allow` — over
/// an in-memory set of sources. This is the engine behind
/// [`scan_workspace`]; tests hand it synthetic workspaces directly.
pub fn lint_sources(specs: &[SourceSpec]) -> ScanReport {
    // Layer 1+2: per-file token/item analysis, token-rule diagnostics.
    let mut analyses: Vec<FileAnalysis> = specs
        .iter()
        .map(|s| analyze_rust_source(&s.label, &s.text, &s.class))
        .collect();

    // Layer 2: the cross-file call graph over the item models.
    let views: Vec<callgraph::FlowFile<'_>> = specs
        .iter()
        .zip(&analyses)
        .map(|(s, a)| callgraph::FlowFile {
            label: &s.label,
            class: &s.class,
            tokens: &a.tokens,
            items: &a.items,
            pins: &a.pins,
        })
        .collect();
    let graph = callgraph::build(&views);

    // Layer 3: flow rules, pooled with the token diagnostics so one
    // allow pin can suppress either kind, then per-file suppression with
    // usage accounting.
    let flow_diags = flow::check(&views, &graph);
    let unresolved_calls = graph.unresolved_calls;
    drop(views);

    let mut diags = Vec::new();
    let mut suppressions = 0usize;
    let mut stale_suppressions = 0usize;
    let mut transport_suppressions = 0usize;
    let mut snapshot_pins = 0usize;
    for ((spec, analysis), flow) in specs.iter().zip(&mut analyses).zip(flow_diags) {
        let mut pool = std::mem::take(&mut analysis.diags);
        pool.extend(flow);
        let mut surviving = apply_suppressions(pool, &mut analysis.allows);

        suppressions += analysis.allows.len();
        snapshot_pins += analysis.pins.len();
        for a in &analysis.allows {
            if a.rules.contains(&RuleId::Transport) {
                transport_suppressions += 1;
                // Already a transport diagnostic; "stale" would be noise.
                continue;
            }
            if !a.used {
                stale_suppressions += 1;
                surviving.push(Diagnostic {
                    file: spec.label.clone(),
                    line: a.line,
                    rule: RuleId::StaleAllow,
                    message: format!(
                        "allow pin for `{}` suppresses zero diagnostics: delete it \
                         (a dead pin is a hole waiting for a real violation)",
                        a.rules
                            .iter()
                            .map(|r| r.name())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        diags.append(&mut surviving);
    }

    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    ScanReport {
        diags,
        files: specs.len(),
        suppressions,
        stale_suppressions,
        transport_suppressions,
        snapshot_pins,
        unresolved_calls,
    }
}

/// Scan the workspace under `root`: manifests (the `hermetic` rule) plus
/// the full source analysis of [`lint_sources`].
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn scan_workspace(root: &Path) -> io::Result<ScanReport> {
    let mut specs = Vec::new();
    for (path, class) in rust_sources(root)? {
        specs.push(SourceSpec {
            label: label(root, &path),
            text: fs::read_to_string(&path)?,
            class,
        });
    }
    let mut report = lint_sources(&specs);
    report.diags.extend(lint_manifests(root)?);
    report
        .diags
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(report)
}

/// Lint every manifest and Rust source file under `root` (a workspace
/// checkout). Returns unsuppressed diagnostics sorted by path and line.
/// Thin wrapper over [`scan_workspace`] for callers that only want the
/// diagnostic list.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    scan_workspace(root).map(|r| r.diags)
}

/// Count `allow(transport)` suppressions pinned anywhere in the
/// workspace sources (fixture corpora excluded, as in [`lint_workspace`]).
/// The single-execution-path invariant requires this to be zero; the CLI
/// reports the census explicitly so the invariant is visible.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn count_transport_allows(root: &Path) -> io::Result<usize> {
    let mut count = 0;
    for (path, _class) in rust_sources(root)? {
        count += transport_allow_count(&fs::read_to_string(&path)?);
    }
    Ok(count)
}

/// Lint only the manifests under `root` (the `hermetic` rule — what the
/// `scripts/verify.sh` dependency guard delegates to).
///
/// # Errors
///
/// Propagates I/O errors from reading the manifests.
pub fn lint_manifests(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut out = Vec::new();
    for m in workspace_manifests(root)? {
        let src = fs::read_to_string(&m)?;
        out.extend(lint_manifest(&label(root, &m), &src));
    }
    Ok(out)
}

/// The workspace manifests: the root `Cargo.toml` plus every
/// `crates/*/Cargo.toml`, sorted.
fn workspace_manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let root_manifest = root.join("Cargo.toml");
    if root_manifest.is_file() {
        out.push(root_manifest);
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for dir in sorted_entries(&crates_dir)? {
            let m = dir.join("Cargo.toml");
            if m.is_file() {
                out.push(m);
            }
        }
    }
    Ok(out)
}

/// Every Rust source under `root` with its [`FileClass`], sorted by path.
///
/// Classification mirrors cargo's layout: `src/` is library/binary code,
/// `tests/` is integration-test code, `examples/` and `benches/` are
/// demos. Fixture corpora (`tests/fixtures/**`) are skipped entirely —
/// they contain deliberate violations for the lint's own test suite.
fn rust_sources(root: &Path) -> io::Result<Vec<(PathBuf, FileClass)>> {
    let mut out = Vec::new();
    let add_package = |pkg_root: &Path, crate_name: &str, out: &mut Vec<_>| -> io::Result<()> {
        for (dir, kind) in [
            ("src", FileKind::Lib),
            ("tests", FileKind::Test),
            ("examples", FileKind::Example),
            ("benches", FileKind::Example),
        ] {
            let d = pkg_root.join(dir);
            if d.is_dir() {
                collect_rs(&d, &mut |p| {
                    out.push((
                        p,
                        FileClass { crate_name: crate_name.to_string(), kind },
                    ));
                })?;
            }
        }
        Ok(())
    };

    add_package(root, &package_name(root).unwrap_or_else(|| "dprbg".into()), &mut out)?;
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for dir in sorted_entries(&crates_dir)? {
            if !dir.is_dir() {
                continue;
            }
            let name = package_name(&dir).unwrap_or_else(|| {
                format!("dprbg-{}", dir.file_name().unwrap_or_default().to_string_lossy())
            });
            add_package(&dir, &name, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

/// Read `name = "…"` from a package's `Cargo.toml`.
fn package_name(pkg_root: &Path) -> Option<String> {
    let src = fs::read_to_string(pkg_root.join("Cargo.toml")).ok()?;
    let mut in_package = false;
    for line in src.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    return Some(v.trim().trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

/// Recursively collect `.rs` files under `dir` (sorted), skipping
/// fixture corpora.
fn collect_rs(dir: &Path, push: &mut dyn FnMut(PathBuf)) -> io::Result<()> {
    for entry in sorted_entries(dir)? {
        if entry.is_dir() {
            if entry.file_name().is_some_and(|n| n == "fixtures") {
                continue;
            }
            collect_rs(&entry, push)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            push(entry);
        }
    }
    Ok(())
}

/// Directory entries sorted by name (deterministic diagnostics order).
fn sorted_entries(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    Ok(entries)
}

/// A root-relative, forward-slash path label for diagnostics.
fn label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}
