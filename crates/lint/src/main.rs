//! `dprbg-lint` CLI: `cargo run -p dprbg-lint -- --workspace`.
//!
//! Exit status: 0 clean, 1 diagnostics found, 2 usage or I/O error.
//! `scripts/verify.sh` runs `--manifests` as the dependency-policy guard
//! and `--workspace` as the full invariant pass (see LINTS.md).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dprbg_lint::{count_transport_allows, lint_manifests, lint_workspace};

fn main() -> ExitCode {
    let mut manifests_only = false;
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => manifests_only = false,
            "--manifests" => manifests_only = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("dprbg-lint: --root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: dprbg-lint [--workspace | --manifests] [--root <dir>]\n\
                     \n\
                     --workspace  lint every manifest and Rust source (default)\n\
                     --manifests  hermetic dependency-policy rule only\n\
                     --root       workspace root to scan (default: .)\n\
                     \n\
                     Rules and suppression syntax: see LINTS.md."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dprbg-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let result = if manifests_only { lint_manifests(&root) } else { lint_workspace(&root) };
    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("dprbg-lint: {e}");
            return ExitCode::from(2);
        }
    };
    // The single-execution-path census: `--workspace` always reports how
    // many `allow(transport)` pins exist (the invariant requires zero).
    if !manifests_only {
        match count_transport_allows(&root) {
            Ok(n) => println!(
                "dprbg-lint: {n} transport suppression{} (required: 0)",
                if n == 1 { "" } else { "s" }
            ),
            Err(e) => {
                eprintln!("dprbg-lint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if diags.is_empty() {
        let mode = if manifests_only { "manifests" } else { "workspace" };
        println!("dprbg-lint: {mode} clean");
        return ExitCode::SUCCESS;
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!(
        "dprbg-lint: {} diagnostic{} (suppress with `// lint: allow(<rule>) — <reason>`, see LINTS.md)",
        diags.len(),
        if diags.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
