//! `dprbg-lint` CLI: `cargo run -p dprbg-lint -- --workspace`.
//!
//! Exit status: 0 clean, 1 diagnostics found (or baseline regressions),
//! 2 usage or I/O error. `scripts/verify.sh` runs `--manifests` as the
//! dependency-policy guard, `--workspace` as the full invariant pass,
//! and `--workspace --json --baseline scripts/lint-baseline.json` as the
//! structural no-new-diagnostics gate (see LINTS.md).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use dprbg_lint::baseline;
use dprbg_lint::{lint_manifests, scan_workspace};

struct Options {
    manifests_only: bool,
    root: PathBuf,
    json: bool,
    baseline: Option<PathBuf>,
    update_baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        manifests_only: false,
        root: PathBuf::from("."),
        json: false,
        baseline: None,
        update_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => opts.manifests_only = false,
            "--manifests" => opts.manifests_only = true,
            "--json" => opts.json = true,
            "--root" => match args.next() {
                Some(p) => opts.root = PathBuf::from(p),
                None => return Err("--root needs a path".to_string()),
            },
            "--baseline" => match args.next() {
                Some(p) => opts.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline needs a file".to_string()),
            },
            "--update-baseline" => match args.next() {
                Some(p) => opts.update_baseline = Some(PathBuf::from(p)),
                None => return Err("--update-baseline needs a file".to_string()),
            },
            "--help" | "-h" => {
                println!(
                    "usage: dprbg-lint [--workspace | --manifests] [--root <dir>]\n\
                     \x20                 [--json] [--baseline <file>] [--update-baseline <file>]\n\
                     \n\
                     --workspace        lint every manifest and Rust source (default)\n\
                     --manifests        hermetic dependency-policy rule only\n\
                     --root             workspace root to scan (default: .)\n\
                     --json             machine-readable report on stdout\n\
                     --baseline         fail only on diagnostics NOT in the committed\n\
                     \x20                  baseline (a JSON array of `file: [rule] message`)\n\
                     --update-baseline  write the current diagnostics as the new baseline\n\
                     \n\
                     Rules and suppression syntax: see LINTS.md."
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    if opts.manifests_only && (opts.json || opts.baseline.is_some() || opts.update_baseline.is_some())
    {
        return Err("--json/--baseline modes apply to --workspace, not --manifests".to_string());
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(o)) => o,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dprbg-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if opts.manifests_only {
        let diags = match lint_manifests(&opts.root) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("dprbg-lint: {e}");
                return ExitCode::from(2);
            }
        };
        if diags.is_empty() {
            println!("dprbg-lint: manifests clean");
            return ExitCode::SUCCESS;
        }
        for d in &diags {
            println!("{d}");
        }
        return ExitCode::FAILURE;
    }

    let report = match scan_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dprbg-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.update_baseline {
        let keys = baseline::baseline_keys(&report.diags);
        if let Err(e) = std::fs::write(path, baseline::render_baseline(&keys)) {
            eprintln!("dprbg-lint: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("dprbg-lint: wrote {} baseline entries to {}", keys.len(), path.display());
        return ExitCode::SUCCESS;
    }

    if opts.json {
        print!("{}", baseline::to_json(&report));
    } else {
        for d in &report.diags {
            println!("{d}");
        }
    }

    // The census lines: how many transport pins exist (the invariant
    // requires zero) and how many pins are stale (likewise) — printed
    // even when clean so the zeros stay visible, but kept off stdout in
    // --json mode where they live in the summary object.
    if !opts.json {
        println!(
            "dprbg-lint: {} transport suppression{} (required: 0)",
            report.transport_suppressions,
            if report.transport_suppressions == 1 { "" } else { "s" }
        );
        println!(
            "dprbg-lint: {} stale suppression{} of {} allow pin{} (required: 0)",
            report.stale_suppressions,
            if report.stale_suppressions == 1 { "" } else { "s" },
            report.suppressions,
            if report.suppressions == 1 { "" } else { "s" }
        );
    }

    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("dprbg-lint: reading {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let keys = match baseline::parse_baseline(&text) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("dprbg-lint: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let diff = baseline::diff(&report.diags, &keys);
        for r in &diff.resolved {
            eprintln!("dprbg-lint: baseline entry resolved (tighten the baseline): {r}");
        }
        if diff.new.is_empty() {
            println!(
                "dprbg-lint: no new diagnostics vs baseline ({} accepted)",
                keys.len() - diff.resolved.len()
            );
            return ExitCode::SUCCESS;
        }
        for n in &diff.new {
            eprintln!("dprbg-lint: NEW vs baseline: {n}");
        }
        eprintln!(
            "dprbg-lint: {} new diagnostic{} vs {}",
            diff.new.len(),
            if diff.new.len() == 1 { "" } else { "s" },
            path.display()
        );
        return ExitCode::FAILURE;
    }

    if report.diags.is_empty() {
        if !opts.json {
            println!("dprbg-lint: workspace clean");
        }
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "dprbg-lint: {} diagnostic{} (suppress with `// lint: allow(<rule>) — <reason>`, see LINTS.md)",
        report.diags.len(),
        if report.diags.len() == 1 { "" } else { "s" }
    );
    ExitCode::FAILURE
}
