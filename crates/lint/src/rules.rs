//! The rule engine: repo-specific invariants over the token stream.
//!
//! Each rule is a statement the compiler cannot check but the test suite
//! silently depends on (see `LINTS.md` for the catalog and rationale):
//!
//! | id | invariant |
//! |---|---|
//! | `determinism` | protocol crates never consult iteration-order-unstable types, wall clocks, thread ids, or the environment |
//! | `error-discipline` | `dprbg-core`/`dprbg-protocols` library code never `unwrap`/`expect`/`panic!` |
//! | `cost-model` | field arithmetic outside `dprbg-field` goes through the counted ops, never raw bit-hacks |
//! | `transport` | machines talk only via `Outbox`; threads and channels stay in `dprbg-sim`; the retired blocking entry points exist nowhere, and `allow(transport)` is itself a violation |
//! | `hermetic` | manifests declare only in-tree path/workspace dependencies (see [`crate::manifest`]) |
//! | `trace-determinism` | `dprbg-trace` keeps to logical time (round, party, seq) — no wall clocks, thread ids, or environment |
//! | `registry-determinism` | `dprbg-metrics` keys health data on logical time (epoch, round, party) — no wall clocks, hash iteration order, thread ids, or environment |
//! | `field-ct` | `dprbg-field` multiplication paths stay fixed-iteration — no data-dependent bit-scan loops |
//! | `ledger-coverage` | fns reaching `Gf2k` arithmetic contain no raw shifts (flow rule — [`crate::flow`]) |
//! | `machine-contract` | every `impl RoundMachine` names its phase, can reach `Done`, and does no ambient I/O (flow rule) |
//! | `stale-allow` | an allow pin that suppresses nothing is itself a diagnostic (workspace rule — [`crate::lint_sources`]) |
//! | `snapshot-abi` | pinned snapshot structs' field lists match their fingerprint and `SNAPSHOT_VERSION` (flow rule) |
//!
//! Suppression: `// lint: allow(<rule>) — <reason>` on the offending
//! line or the line above; `// lint: allow-file(<rule>) — <reason>`
//! anywhere for the whole file. A reason is mandatory — an allow without
//! one (or naming an unknown rule) is itself a diagnostic
//! (`allow-syntax`) and suppresses nothing. `stale-allow` and
//! `snapshot-abi` cannot be allowed at all: the fix for a stale pin is
//! deleting it, and the fix for an ABI drift is a version bump — a
//! suppression would just be the hole the rule exists to close.

use crate::items::{parse_items, test_spans};
use crate::lexer::{lex, Comment, Tok, TokKind};

/// Identity of a lint rule (or of the allow-comment syntax check).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Iteration-order / clock / environment nondeterminism.
    Determinism,
    /// `unwrap`/`expect`/`panic!` in library code of the core crates.
    ErrorDiscipline,
    /// Raw bit arithmetic bypassing the counted field ops.
    CostModel,
    /// Threads, channels, or the threaded executor outside `dprbg-sim`.
    Transport,
    /// Non-path dependency in a manifest.
    Hermetic,
    /// Wall-clock / ambient state inside the logical-time trace crate.
    TraceDeterminism,
    /// Wall-clock / ambient state inside the logical-time metrics crate.
    RegistryDeterminism,
    /// Data-dependent bit-scan in `dprbg-field` arithmetic.
    FieldCt,
    /// Raw shift in a fn that reaches `Gf2k` arithmetic (flow rule).
    LedgerCoverage,
    /// `impl RoundMachine` breaking the phase/Done/Outbox contract.
    MachineContract,
    /// An allow pin that suppresses zero diagnostics.
    StaleAllow,
    /// Snapshot struct ABI drift without a `SNAPSHOT_VERSION` bump.
    SnapshotAbi,
    /// Malformed `lint: allow` comment.
    AllowSyntax,
}

impl RuleId {
    /// The rule's name as written in allow comments and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::Determinism => "determinism",
            RuleId::ErrorDiscipline => "error-discipline",
            RuleId::CostModel => "cost-model",
            RuleId::Transport => "transport",
            RuleId::Hermetic => "hermetic",
            RuleId::TraceDeterminism => "trace-determinism",
            RuleId::RegistryDeterminism => "registry-determinism",
            RuleId::FieldCt => "field-ct",
            RuleId::LedgerCoverage => "ledger-coverage",
            RuleId::MachineContract => "machine-contract",
            RuleId::StaleAllow => "stale-allow",
            RuleId::SnapshotAbi => "snapshot-abi",
            RuleId::AllowSyntax => "allow-syntax",
        }
    }

    /// Parse an allow-comment rule name.
    pub fn parse(s: &str) -> Option<RuleId> {
        match s {
            "determinism" => Some(RuleId::Determinism),
            "error-discipline" => Some(RuleId::ErrorDiscipline),
            "cost-model" => Some(RuleId::CostModel),
            "transport" => Some(RuleId::Transport),
            "hermetic" => Some(RuleId::Hermetic),
            "trace-determinism" => Some(RuleId::TraceDeterminism),
            "registry-determinism" => Some(RuleId::RegistryDeterminism),
            "field-ct" => Some(RuleId::FieldCt),
            "ledger-coverage" => Some(RuleId::LedgerCoverage),
            "machine-contract" => Some(RuleId::MachineContract),
            "stale-allow" => Some(RuleId::StaleAllow),
            "snapshot-abi" => Some(RuleId::SnapshotAbi),
            _ => None,
        }
    }

    /// Rules that can never be suppressed by an allow comment: the
    /// comment itself is the bug (`allow-syntax`, `transport`,
    /// `stale-allow`), or the only honest fix is structural
    /// (`snapshot-abi` wants a version bump, not a pin).
    pub fn unsuppressible(self) -> bool {
        matches!(
            self,
            RuleId::AllowSyntax | RuleId::Transport | RuleId::StaleAllow | RuleId::SnapshotAbi
        )
    }
}

/// One finding, formatted as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line of the offending token (or comment).
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// How a source file is treated by the per-crate rule scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary code: all scoped rules apply (minus `#[cfg(test)]`
    /// regions, which are exempt).
    Lib,
    /// Integration-test code: exempt from every token rule (but not from
    /// the `allow(transport)` rejection — that comment is banned anywhere).
    Test,
    /// Example / bench code: exempt from the token rules on the same
    /// terms as tests (asserts and unwraps are fine in demo code).
    Example,
}

/// Which crate a file belongs to and how it is classified.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Package name (`dprbg`, `dprbg-core`, …).
    pub crate_name: String,
    /// Library / test / example classification.
    pub kind: FileKind,
}

/// Crates whose non-test code must be transcript-deterministic: protocol
/// logic, its algebra substrates, both executors, and the beacon service
/// (whose crash-recovery contract is *byte-identical* resumption).
const DETERMINISM_CRATES: &[&str] =
    &["dprbg-core", "dprbg-protocols", "dprbg-poly", "dprbg-field", "dprbg-sim", "dprbg-beacon"];

/// Crates whose library code must surface failures as `ProtocolError`
/// (PR 3's graceful-degradation taxonomy) or their own error enums,
/// never panic. The beacon qualifies: its snapshot decoder feeds on
/// exactly the half-written files a crashed process leaves behind.
const ERROR_CRATES: &[&str] = &["dprbg-core", "dprbg-protocols", "dprbg-beacon"];

/// Crates whose field arithmetic must go through the counted
/// `dprbg-field` ops so the §2 cost-model tables stay honest.
const COST_CRATES: &[&str] = &["dprbg-core", "dprbg-protocols", "dprbg-poly"];

/// The one crate allowed to own threads and channels (the `ParRunner`
/// worker pool). Nobody — including this crate — may name the retired
/// blocking entry points.
const TRANSPORT_HOME: &str = "dprbg-sim";

/// Identifiers that imply iteration-order or ambient nondeterminism.
const NONDET_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is seed-dependent; use BTreeMap"),
    ("HashSet", "iteration order is seed-dependent; use BTreeSet"),
    ("RandomState", "hasher seeding is per-process nondeterministic"),
    ("DefaultHasher", "hasher seeding is per-process nondeterministic"),
    ("SystemTime", "wall-clock reads break transcript replay"),
    ("Instant", "monotonic-clock reads break transcript replay"),
    ("ThreadId", "thread identity is scheduler-dependent"),
];

/// `first::second` path pairs that imply nondeterminism.
const NONDET_PATHS: &[(&str, &str, &str)] = &[
    ("std", "time", "clock reads break transcript replay"),
    ("std", "env", "environment reads break transcript replay"),
    ("env", "var", "environment reads break transcript replay"),
    ("env", "vars", "environment reads break transcript replay"),
    ("env", "var_os", "environment reads break transcript replay"),
    ("thread", "current", "thread identity is scheduler-dependent"),
];

/// Methods that are raw limb bit-hacks when called outside `dprbg-field`.
const BITHACK_METHODS: &[&str] = &[
    "wrapping_mul",
    "wrapping_add",
    "wrapping_sub",
    "rotate_left",
    "rotate_right",
    "count_ones",
    "leading_zeros",
    "trailing_zeros",
    "swap_bytes",
];

/// Entry points of the retired thread-per-party blocking transport. The
/// single execution path is `StepRunner`/`ParRunner`; these names must
/// not reappear anywhere in the workspace, `dprbg-sim` included. (The
/// literals are split so this file passes its own "no references outside
/// fixtures" sweep.)
const THREADED_ENTRYPOINTS: &[&str] = &[
    concat!("run_net", "work"),
    concat!("run_net", "work_with_tap"),
    "run_machines",
    "run_machines_with_tap",
    "run_machines_traced",
];

/// The field crate's multiplication paths must run in data-independent
/// time: a variable-trip bit-scan loop (the `trailing_zeros` popcount-walk
/// idiom) makes one "field mul" cost a data-dependent amount of work,
/// skewing wall-clock experiments against the constant per-op counters.
/// `leading_zeros` is deliberately not listed: the extended-Euclid
/// inversion is inherently iterative and is costed as one `inv` tick.
const FIELD_HOME: &str = "dprbg-field";

/// Bit-scan tells of a data-dependent multiplication loop.
const FIELD_VARTIME_METHODS: &[&str] = &["trailing_zeros"];

/// The crate whose event records must carry *logical* time only: a trace
/// is a protocol artifact compared byte-for-byte across executors and
/// replays, so a wall-clock or ambient read anywhere in it is a bug.
const TRACE_HOME: &str = "dprbg-trace";

/// The crate whose metric registry must merge and export identically
/// across executors and thread counts: health data is keyed on logical
/// time (epoch, round, party) and compared byte-for-byte, so a wall
/// clock, hash iteration order, or ambient read anywhere in it would
/// make two healthy runs disagree about their own health.
const METRICS_HOME: &str = "dprbg-metrics";

/// A parsed `lint: allow` comment.
#[derive(Debug)]
pub struct Allow {
    /// 1-based line the allow comment starts on.
    pub line: u32,
    /// 1-based line it ends on (block comments can span lines).
    pub end_line: u32,
    /// The rules it names.
    pub rules: Vec<RuleId>,
    /// Whether it is an `allow-file(...)` (whole-file scope).
    pub file_scope: bool,
    /// Whether it suppressed at least one diagnostic — set by
    /// [`apply_suppressions`], read by the `stale-allow` rule.
    pub used: bool,
}

/// A parsed `// lint: snapshot-abi(v<version>, <fnv64-hex>)` pin.
#[derive(Debug, Clone)]
pub struct SnapshotPin {
    /// 1-based line the pin comment starts on.
    pub line: u32,
    /// 1-based line it ends on.
    pub end_line: u32,
    /// The `SNAPSHOT_VERSION` the fingerprint was taken at.
    pub version: u64,
    /// FNV-1a 64 of the pinned item's ABI descriptor, 16 hex digits.
    pub fingerprint: String,
}

/// Everything the single-file pass extracts, *before* suppressions are
/// applied. The workspace scan ([`crate::lint_sources`]) holds these so
/// it can add flow diagnostics to the pool first; [`lint_rust_source`]
/// wraps the same pair of steps for token-rules-only callers.
pub struct FileAnalysis {
    /// The file's token stream.
    pub tokens: Vec<Tok>,
    /// The file's item model.
    pub items: Vec<crate::items::Item>,
    /// Valid allow pins (usage flags still false).
    pub allows: Vec<Allow>,
    /// Snapshot-abi pins.
    pub pins: Vec<SnapshotPin>,
    /// Token-rule + allow-syntax diagnostics, unsuppressed.
    pub diags: Vec<Diagnostic>,
}

/// Run the lexer, item model, pin parsing, and token rules over one
/// file. Returns the raw analysis; apply [`apply_suppressions`] to get
/// the surviving diagnostics.
pub fn analyze_rust_source(label: &str, source: &str, class: &FileClass) -> FileAnalysis {
    let lexed = lex(source);
    let items = parse_items(&lexed.tokens);
    let mut diags = Vec::new();
    let (allows, pins, mut comment_diags) = parse_allows(label, &lexed.comments);
    diags.append(&mut comment_diags);

    // `transport` is no longer a suppressible rule: the blocking transport
    // it used to carve out is deleted, so pinning an allow for it can only
    // hide a regression. The allow comment is itself the finding.
    for a in &allows {
        if a.rules.contains(&RuleId::Transport) {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: a.line,
                rule: RuleId::Transport,
                message: "`allow(transport)` is retired along with the blocking transport: \
                          port this code to a machine fleet instead of suppressing"
                    .to_string(),
            });
        }
    }

    if class.kind == FileKind::Lib {
        // Test exemption comes from the item model now: precise
        // `#[cfg(test)]` / `#[test]` spans with inheritance, instead of
        // the old any-attribute-containing-`test` heuristic.
        let regions = test_spans(&items);
        let in_test =
            |line: u32| regions.iter().any(|&(s, e)| line >= s && line <= e);
        let toks = &lexed.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if in_test(tok.line) {
                continue;
            }
            check_token(label, class, toks, i, tok, &mut diags);
        }
    }

    FileAnalysis { tokens: lexed.tokens, items, allows, pins, diags }
}

/// Dedup `diags` and drop the ones a matching allow suppresses, marking
/// those allows used. An allow matches on the same line, the line
/// directly below the comment, or file-wide; the rules in
/// [`RuleId::unsuppressible`] always survive.
pub fn apply_suppressions(mut diags: Vec<Diagnostic>, allows: &mut [Allow]) -> Vec<Diagnostic> {
    // One finding per (line, rule): overlapping patterns (`std::env` and
    // `env::var`, say) should read as a single diagnostic.
    diags.sort_by_key(|d| (d.line, d.rule));
    diags.dedup_by(|a, b| a.line == b.line && a.rule == b.rule);

    diags.retain(|d| {
        if d.rule.unsuppressible() {
            return true;
        }
        let mut suppressed = false;
        for a in allows.iter_mut() {
            if a.rules.contains(&d.rule)
                && (a.file_scope || d.line == a.line || d.line == a.end_line + 1)
            {
                a.used = true;
                suppressed = true;
            }
        }
        !suppressed
    });
    diags
}

/// Lint one Rust source file with the token rules. `label` is the path
/// used in diagnostics; `class` tells the engine which rule scopes
/// apply. The flow rules (`ledger-coverage`, `machine-contract`,
/// `snapshot-abi`) and `stale-allow` need the whole workspace — see
/// [`crate::lint_sources`].
pub fn lint_rust_source(label: &str, source: &str, class: &FileClass) -> Vec<Diagnostic> {
    let mut analysis = analyze_rust_source(label, source, class);
    apply_suppressions(analysis.diags, &mut analysis.allows)
}

/// Count `lint: allow(...)` comments in `source` that name the
/// `transport` rule — the census `dprbg-lint --workspace` reports so the
/// "zero transport suppressions" invariant is visible, not just implied
/// by the scan being clean.
#[must_use]
pub fn transport_allow_count(source: &str) -> usize {
    let lexed = lex(source);
    let (allows, _, _) = parse_allows("census", &lexed.comments);
    allows.iter().filter(|a| a.rules.contains(&RuleId::Transport)).count()
}

/// Run every token rule that applies to `class` against token `i`.
fn check_token(
    label: &str,
    class: &FileClass,
    toks: &[Tok],
    i: usize,
    tok: &Tok,
    diags: &mut Vec<Diagnostic>,
) {
    let crate_name = class.crate_name.as_str();
    let push = |diags: &mut Vec<Diagnostic>, rule: RuleId, line: u32, msg: String| {
        diags.push(Diagnostic { file: label.to_string(), line, rule, message: msg });
    };

    // -- determinism ----------------------------------------------------
    if DETERMINISM_CRATES.contains(&crate_name) {
        if let TokKind::Ident(id) = &tok.kind {
            for (banned, why) in NONDET_IDENTS {
                if id == banned {
                    push(
                        diags,
                        RuleId::Determinism,
                        tok.line,
                        format!("`{banned}` in protocol code: {why}"),
                    );
                }
            }
            for (a, b, why) in NONDET_PATHS {
                if id == a && path_next(toks, i) == Some(*b) {
                    push(
                        diags,
                        RuleId::Determinism,
                        tok.line,
                        format!("`{a}::{b}` in protocol code: {why}"),
                    );
                }
            }
            // env!/option_env! compile-time reads still smuggle ambient
            // state into protocol behavior.
            if (id == "env" || id == "option_env")
                && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('!')))
            {
                push(
                    diags,
                    RuleId::Determinism,
                    tok.line,
                    format!("`{id}!` in protocol code: environment reads break transcript replay"),
                );
            }
        }
    }

    // -- trace-determinism ----------------------------------------------
    if crate_name == TRACE_HOME {
        if let TokKind::Ident(id) = &tok.kind {
            for (banned, why) in NONDET_IDENTS {
                if id == banned {
                    push(
                        diags,
                        RuleId::TraceDeterminism,
                        tok.line,
                        format!(
                            "`{banned}` in `dprbg-trace`: traces carry logical time only \
                             (round, party, seq) — {why}"
                        ),
                    );
                }
            }
            for (a, b, why) in NONDET_PATHS {
                if id == a && path_next(toks, i) == Some(*b) {
                    push(
                        diags,
                        RuleId::TraceDeterminism,
                        tok.line,
                        format!(
                            "`{a}::{b}` in `dprbg-trace`: traces carry logical time only \
                             (round, party, seq) — {why}"
                        ),
                    );
                }
            }
        }
    }

    // -- registry-determinism -------------------------------------------
    if crate_name == METRICS_HOME {
        if let TokKind::Ident(id) = &tok.kind {
            for (banned, why) in NONDET_IDENTS {
                if id == banned {
                    push(
                        diags,
                        RuleId::RegistryDeterminism,
                        tok.line,
                        format!(
                            "`{banned}` in `dprbg-metrics`: health data is keyed on logical \
                             time only (epoch, round, party) — {why}"
                        ),
                    );
                }
            }
            for (a, b, why) in NONDET_PATHS {
                if id == a && path_next(toks, i) == Some(*b) {
                    push(
                        diags,
                        RuleId::RegistryDeterminism,
                        tok.line,
                        format!(
                            "`{a}::{b}` in `dprbg-metrics`: health data is keyed on logical \
                             time only (epoch, round, party) — {why}"
                        ),
                    );
                }
            }
        }
    }

    // -- error-discipline -----------------------------------------------
    if ERROR_CRATES.contains(&crate_name) {
        if let TokKind::Ident(id) = &tok.kind {
            if (id == "unwrap" || id == "expect") && is_method_position(toks, i) {
                push(
                    diags,
                    RuleId::ErrorDiscipline,
                    tok.line,
                    format!("`.{id}()` in library code: surface a `ProtocolError` instead"),
                );
            }
            if (id == "panic" || id == "todo" || id == "unimplemented")
                && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct('!')))
            {
                push(
                    diags,
                    RuleId::ErrorDiscipline,
                    tok.line,
                    format!("`{id}!` in library code: surface a `ProtocolError` instead"),
                );
            }
        }
    }

    // -- cost-model ------------------------------------------------------
    if COST_CRATES.contains(&crate_name) {
        if let TokKind::Punct('^') = tok.kind {
            push(
                diags,
                RuleId::CostModel,
                tok.line,
                "raw XOR on limbs bypasses the counted `dprbg-field` ops (§2 cost model)"
                    .to_string(),
            );
        }
        if let TokKind::Ident(id) = &tok.kind {
            if BITHACK_METHODS.contains(&id.as_str()) && is_method_position(toks, i) {
                push(
                    diags,
                    RuleId::CostModel,
                    tok.line,
                    format!(
                        "`.{id}()` bit-hack bypasses the counted `dprbg-field` ops (§2 cost model)"
                    ),
                );
            }
        }
    }

    // -- field-ct --------------------------------------------------------
    if crate_name == FIELD_HOME {
        if let TokKind::Ident(id) = &tok.kind {
            if FIELD_VARTIME_METHODS.contains(&id.as_str()) && is_method_position(toks, i) {
                push(
                    diags,
                    RuleId::FieldCt,
                    tok.line,
                    format!(
                        "`.{id}()` bit-scan in `dprbg-field`: multiplication must be \
                         fixed-iteration (see the branchless ladder in `clmul`)"
                    ),
                );
            }
        }
    }

    // -- transport -------------------------------------------------------
    if let TokKind::Ident(id) = &tok.kind {
        // The retired blocking entry points are banned in every crate —
        // there is one execution path now, and it is the sans-IO engine.
        if THREADED_ENTRYPOINTS.contains(&id.as_str()) {
            push(
                diags,
                RuleId::Transport,
                tok.line,
                format!(
                    "`{id}` names the retired blocking transport: \
                     run a `StepRunner`/`ParRunner` machine fleet instead"
                ),
            );
        }
        // Raw thread/channel machinery stays in dprbg-sim (the ParRunner
        // worker pool) — everywhere else, machine I/O goes through Outbox.
        if crate_name != TRANSPORT_HOME {
            if id == "mpsc" || id == "JoinHandle" {
                push(
                    diags,
                    RuleId::Transport,
                    tok.line,
                    format!("`{id}` outside `dprbg-sim`: machine I/O must go through `Outbox`"),
                );
            }
            if id == "thread"
                && matches!(
                    path_next(toks, i),
                    Some("spawn") | Some("scope") | Some("sleep") | Some("Builder")
                )
            {
                push(
                    diags,
                    RuleId::Transport,
                    tok.line,
                    "thread use outside `dprbg-sim`: machine I/O must go through `Outbox`"
                        .to_string(),
                );
            }
        }
    }
}

/// If tokens `i+1..` are `::ident`, return that identifier.
pub(crate) fn path_next(toks: &[Tok], i: usize) -> Option<&str> {
    if matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Punct(':')))
        && matches!(toks.get(i + 2).map(|t| &t.kind), Some(TokKind::Punct(':')))
    {
        if let Some(TokKind::Ident(id)) = toks.get(i + 3).map(|t| &t.kind) {
            return Some(id.as_str());
        }
    }
    None
}

/// Whether token `i` is reached as a method or path segment (`.name` or
/// `::name`) — distinguishes `x.unwrap()` from a local named `unwrap`.
fn is_method_position(toks: &[Tok], i: usize) -> bool {
    matches!(
        i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.kind),
        Some(TokKind::Punct('.')) | Some(TokKind::Punct(':'))
    )
}

/// Parse `lint:` comment directives: `allow(...)` / `allow-file(...)`
/// suppressions and `snapshot-abi(v<n>, <hex>)` pins. Returns the valid
/// allows, the valid pins, and diagnostics for malformed ones.
fn parse_allows(
    label: &str,
    comments: &[Comment],
) -> (Vec<Allow>, Vec<SnapshotPin>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut pins = Vec::new();
    let mut diags = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(at) = c.text.find("lint:") else { continue };
        let rest = c.text[at + "lint:".len()..].trim_start();
        if rest.starts_with("snapshot-abi(") {
            match parse_snapshot_pin(rest, c) {
                Ok(pin) => pins.push(pin),
                Err(message) => diags.push(Diagnostic {
                    file: label.to_string(),
                    line: c.line,
                    rule: RuleId::AllowSyntax,
                    message,
                }),
            }
            continue;
        }
        let file_scope = rest.starts_with("allow-file(");
        let line_scope = rest.starts_with("allow(");
        if !file_scope && !line_scope {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: c.line,
                rule: RuleId::AllowSyntax,
                message: "malformed lint comment: expected `lint: allow(<rule>) — <reason>` \
                          or `lint: snapshot-abi(v<n>, <hex>)`"
                    .to_string(),
            });
            continue;
        }
        let open = rest.find('(').expect("checked by starts_with");
        let Some(close) = rest[open..].find(')').map(|k| open + k) else {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: c.line,
                rule: RuleId::AllowSyntax,
                message: "malformed lint comment: missing `)`".to_string(),
            });
            continue;
        };
        let mut rules = Vec::new();
        let mut bad = false;
        for name in rest[open + 1..close].split(',') {
            let name = name.trim();
            match RuleId::parse(name) {
                Some(RuleId::StaleAllow) => {
                    diags.push(Diagnostic {
                        file: label.to_string(),
                        line: c.line,
                        rule: RuleId::AllowSyntax,
                        message: "`stale-allow` cannot be suppressed: delete the stale pin \
                                  it complains about instead"
                            .to_string(),
                    });
                    bad = true;
                }
                Some(RuleId::SnapshotAbi) => {
                    diags.push(Diagnostic {
                        file: label.to_string(),
                        line: c.line,
                        rule: RuleId::AllowSyntax,
                        message: "`snapshot-abi` cannot be suppressed: bump \
                                  `SNAPSHOT_VERSION` and re-take the pin instead"
                            .to_string(),
                    });
                    bad = true;
                }
                Some(r) => rules.push(r),
                None => {
                    diags.push(Diagnostic {
                        file: label.to_string(),
                        line: c.line,
                        rule: RuleId::AllowSyntax,
                        message: format!("unknown lint rule `{name}` in allow comment"),
                    });
                    bad = true;
                }
            }
        }
        // The reason is whatever follows the `)`, minus separator
        // punctuation. It is mandatory: a suppression must say *why*.
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\t', '—', '-', ':', '–'])
            .trim();
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: c.line,
                rule: RuleId::AllowSyntax,
                message: "allow comment without a reason: write `lint: allow(<rule>) — <why>`"
                    .to_string(),
            });
            bad = true;
        }
        if !bad && !rules.is_empty() {
            allows.push(Allow {
                line: c.line,
                end_line: c.end_line,
                rules,
                file_scope,
                used: false,
            });
        }
    }
    (allows, pins, diags)
}

/// Parse the interior of a `snapshot-abi(v<n>, <16-hex>)` directive.
fn parse_snapshot_pin(rest: &str, c: &Comment) -> Result<SnapshotPin, String> {
    const USAGE: &str = "write `lint: snapshot-abi(v<version>, <16-hex-fnv64>)`";
    let open = rest.find('(').expect("checked by starts_with");
    let close = rest[open..]
        .find(')')
        .map(|k| open + k)
        .ok_or_else(|| format!("malformed snapshot-abi pin: missing `)` — {USAGE}"))?;
    let mut parts = rest[open + 1..close].split(',').map(str::trim);
    let v = parts
        .next()
        .and_then(|p| p.strip_prefix('v'))
        .and_then(|p| p.parse::<u64>().ok())
        .ok_or_else(|| format!("malformed snapshot-abi pin: bad version — {USAGE}"))?;
    let fp = parts
        .next()
        .filter(|p| p.len() == 16 && p.chars().all(|ch| ch.is_ascii_hexdigit()))
        .ok_or_else(|| format!("malformed snapshot-abi pin: bad fingerprint — {USAGE}"))?;
    if parts.next().is_some() {
        return Err(format!("malformed snapshot-abi pin: too many fields — {USAGE}"));
    }
    Ok(SnapshotPin {
        line: c.line,
        end_line: c.end_line,
        version: v,
        fingerprint: fp.to_ascii_lowercase(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core_lib() -> FileClass {
        FileClass { crate_name: "dprbg-core".into(), kind: FileKind::Lib }
    }

    fn lint(src: &str) -> Vec<Diagnostic> {
        lint_rust_source("x.rs", src, &core_lib())
    }

    #[test]
    fn hashmap_fires_and_btreemap_does_not() {
        let d = lint("use std::collections::HashMap;\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::Determinism);
        assert!(lint("use std::collections::BTreeMap;\n").is_empty());
    }

    #[test]
    fn comment_mentions_do_not_fire() {
        assert!(lint("// HashMap is banned here\nfn f() {}\n").is_empty());
    }

    #[test]
    fn allow_on_line_above_suppresses() {
        let src = "// lint: allow(determinism) — historical wire format\nuse std::collections::HashMap;\n";
        assert!(lint(src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_rejected_and_reported() {
        let src = "// lint: allow(determinism)\nuse std::collections::HashMap;\n";
        let d = lint(src);
        assert_eq!(d.len(), 2);
        assert!(d.iter().any(|x| x.rule == RuleId::AllowSyntax));
        assert!(d.iter().any(|x| x.rule == RuleId::Determinism));
    }

    #[test]
    fn unknown_rule_in_allow_is_reported() {
        let src = "// lint: allow(speling) — whatever\nfn f() {}\n";
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::AllowSyntax);
    }

    #[test]
    fn unwrap_in_cfg_test_is_exempt(){
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(lint(src).is_empty());
        let d = lint("fn f() { x.unwrap(); }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::ErrorDiscipline);
    }

    #[test]
    fn unwrap_ident_alone_is_fine() {
        assert!(lint("fn f() { let unwrap = 1; let _ = unwrap; }\n").is_empty());
    }

    #[test]
    fn xor_fires_in_cost_scope_only() {
        let d = lint("fn f(a: u64, b: u64) -> u64 { a ^ b }\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::CostModel);
        let field = FileClass { crate_name: "dprbg-field".into(), kind: FileKind::Lib };
        assert!(lint_rust_source("x.rs", "fn f(a: u64, b: u64) -> u64 { a ^ b }\n", &field)
            .is_empty());
    }

    #[test]
    fn retired_entry_points_fire_in_every_crate() {
        // (Split literals keep this file out of the retired-name sweep.)
        let src = concat!("fn f() { run_net", "work(3, 0, v); }\n");
        for crate_name in ["dprbg-bench", "dprbg-sim", "dprbg-core", "dprbg"] {
            let class = FileClass { crate_name: crate_name.into(), kind: FileKind::Lib };
            let d = lint_rust_source("x.rs", src, &class);
            assert_eq!(d.len(), 1, "in {crate_name}: {d:#?}");
            assert_eq!(d[0].rule, RuleId::Transport);
        }
    }

    #[test]
    fn allow_transport_is_itself_a_violation() {
        let bench = FileClass { crate_name: "dprbg-bench".into(), kind: FileKind::Lib };
        let src = concat!(
            "// lint: allow-file(transport) — threaded baseline comparator\n",
            "fn a() { run_net",
            "work(3, 0, v); }\n"
        );
        let d = lint_rust_source("x.rs", src, &bench);
        // The allow comment and the call it fails to suppress both fire.
        assert_eq!(d.len(), 2, "{d:#?}");
        assert!(d.iter().all(|x| x.rule == RuleId::Transport));
        assert!(d.iter().any(|x| x.message.contains("retired along with")), "{d:#?}");
        // Even in an otherwise-exempt test file, the comment alone fires.
        let t = FileClass { crate_name: "dprbg".into(), kind: FileKind::Test };
        let d = lint_rust_source(
            "t.rs",
            "// lint: allow(transport) — legacy pin\nfn f() {}\n",
            &t,
        );
        assert_eq!(d.len(), 1, "{d:#?}");
        assert_eq!(d[0].rule, RuleId::Transport);
    }

    #[test]
    fn allow_file_suppresses_everywhere() {
        let core = FileClass { crate_name: "dprbg-core".into(), kind: FileKind::Lib };
        let src = "// lint: allow-file(determinism) — fixture: order-insensitive cache\n\
                   fn a() { let m = HashMap::new(); }\nfn b() { let s = HashSet::new(); }\n";
        assert!(lint_rust_source("x.rs", src, &core).is_empty());
    }

    #[test]
    fn tests_and_examples_are_exempt_from_token_rules() {
        let t = FileClass { crate_name: "dprbg".into(), kind: FileKind::Test };
        assert!(lint_rust_source("t.rs", "fn f() { x.unwrap(); thread::sleep(d); }", &t)
            .is_empty());
        let e = FileClass { crate_name: "dprbg".into(), kind: FileKind::Example };
        assert!(lint_rust_source("e.rs", "fn f() { x.unwrap(); mpsc::channel(); }", &e)
            .is_empty());
    }

    #[test]
    fn transport_allow_census_counts_comments() {
        assert_eq!(transport_allow_count("fn f() {}\n"), 0);
        let src = "// lint: allow(transport) — pin one\nfn f() {}\n\
                   // lint: allow-file(transport) — pin two\n";
        assert_eq!(transport_allow_count(src), 2);
        // Mixed-rule allows naming transport count; others don't.
        let src = "// lint: allow(determinism) — fine\nfn f() {}\n";
        assert_eq!(transport_allow_count(src), 0);
    }

    #[test]
    fn wall_clock_in_trace_crate_fires_trace_determinism() {
        let trace = FileClass { crate_name: "dprbg-trace".into(), kind: FileKind::Lib };
        for src in [
            "use std::time::Instant;\n",
            "fn f() { let t = SystemTime::now(); }\n",
            "fn f() { let id = thread::current().id(); }\n",
        ] {
            let d = lint_rust_source("x.rs", src, &trace);
            assert!(
                d.iter().any(|x| x.rule == RuleId::TraceDeterminism),
                "expected trace-determinism for {src:?}, got {d:?}"
            );
        }
        // Logical-time code is clean.
        assert!(lint_rust_source(
            "x.rs",
            "fn f(round: u64, seq: u32) -> u64 { round + seq as u64 }\n",
            &trace
        )
        .is_empty());
        // The rule is scoped: the same tokens elsewhere fire `determinism`
        // (protocol crates) or nothing (bench code times things on purpose).
        let bench = FileClass { crate_name: "dprbg-bench".into(), kind: FileKind::Lib };
        assert!(lint_rust_source("x.rs", "use std::time::Instant;\n", &bench).is_empty());
    }

    #[test]
    fn wall_clock_in_metrics_crate_fires_registry_determinism() {
        let metrics = FileClass { crate_name: "dprbg-metrics".into(), kind: FileKind::Lib };
        for src in [
            "use std::time::Instant;\n",
            "fn f() { let m = HashMap::new(); }\n",
            "fn f() { let id = thread::current().id(); }\n",
            "fn f() { let home = env::var(\"HOME\"); }\n",
        ] {
            let d = lint_rust_source("x.rs", src, &metrics);
            assert!(
                d.iter().any(|x| x.rule == RuleId::RegistryDeterminism),
                "expected registry-determinism for {src:?}, got {d:?}"
            );
        }
        // Logical-time registry code is clean.
        assert!(lint_rust_source(
            "x.rs",
            "fn key(epoch: u64, round: u64, party: u32) -> (u64, u64, u32) { (epoch, round, party) }\n",
            &metrics
        )
        .is_empty());
        // Scoped: the same tokens fire `determinism` in protocol crates
        // and nothing in bench code.
        let d = lint("use std::collections::HashMap;\n");
        assert!(d.iter().all(|x| x.rule == RuleId::Determinism));
        let bench = FileClass { crate_name: "dprbg-bench".into(), kind: FileKind::Lib };
        assert!(lint_rust_source("x.rs", "use std::time::Instant;\n", &bench).is_empty());
    }

    #[test]
    fn traced_threaded_entry_point_fires_outside_sim() {
        let bench = FileClass { crate_name: "dprbg-bench".into(), kind: FileKind::Lib };
        let d = lint_rust_source("x.rs", "fn f() { run_machines_traced(7, 1, m, c); }\n", &bench);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::Transport);
    }

    #[test]
    fn trailing_zeros_in_field_crate_fires_field_ct() {
        let field = FileClass { crate_name: "dprbg-field".into(), kind: FileKind::Lib };
        let src = "fn clmul(a: u64, mut b: u64) { while b != 0 { let i = b.trailing_zeros(); } }\n";
        let d = lint_rust_source("x.rs", src, &field);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::FieldCt);
        // The same tokens in a cost-model crate fire cost-model, not
        // field-ct; in bench code they fire nothing.
        let d = lint(src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::CostModel);
        let bench = FileClass { crate_name: "dprbg-bench".into(), kind: FileKind::Lib };
        assert!(lint_rust_source("x.rs", src, &bench).is_empty());
    }

    #[test]
    fn leading_zeros_in_field_crate_is_allowed() {
        // Euclid-style inversion walks degrees via leading_zeros — that is
        // an `inv` tick, not a multiplication path, and stays legal.
        let field = FileClass { crate_name: "dprbg-field".into(), kind: FileKind::Lib };
        assert!(lint_rust_source(
            "x.rs",
            "fn degree(v: u128) -> i32 { 127 - v.leading_zeros() as i32 }\n",
            &field
        )
        .is_empty());
    }

    #[test]
    fn generic_angle_brackets_do_not_false_positive() {
        // `<M as Embeds<ExposeMsg<F>>>::wrap(...)` — shifts/generics are
        // deliberately out of the cost-model rule's reach.
        let src = "fn f() { let x = <M as Embeds<ExposeMsg<F>>>::wrap(m); }\n";
        assert!(lint(src).is_empty());
    }
}
