//! The `hermetic` rule: manifests declare only in-tree dependencies.
//!
//! The workspace's dependency policy (DESIGN.md, "Dependency policy") is
//! that `cargo build --offline` must always succeed: every dependency in
//! every `Cargo.toml` is either `name.workspace = true`,
//! `name = { workspace = true }`, or a `path = "…"` table. Registry
//! sources (`version = …`, bare `name = "1.0"`), `git = …`, and
//! `registry = …` are forbidden.
//!
//! This used to live as an `awk` script in `scripts/verify.sh`; it is
//! re-implemented here (the script now delegates to
//! `dprbg-lint --manifests`) and closes a hole the awk version had:
//! `[dependencies.foo]` subsection headers were not recognized as
//! dependency sections at all.

use crate::rules::{Diagnostic, RuleId};

/// Classify a `[section]` header: `Some(false)` for a dependency table
/// (`[dependencies]`, `[dev-dependencies]`, `[workspace.dependencies]`,
/// `[target.….dependencies]`), `Some(true)` for the single-dependency
/// subsection form (`[dependencies.foo]`), `None` otherwise.
fn dep_header(header: &str) -> Option<bool> {
    let inner = header.trim().trim_start_matches('[').trim_end_matches(']');
    if inner.ends_with("dependencies") {
        return Some(false);
    }
    if let Some(dot) = inner.rfind('.') {
        if inner[..dot].ends_with("dependencies") {
            return Some(true);
        }
    }
    None
}

/// Lint one manifest. `label` is the path used in diagnostics.
pub fn lint_manifest(label: &str, source: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut in_deps = false;
    let mut in_subsection = false;
    let mut subsection_ok = false;
    let mut subsection_line = 0u32;

    let close_subsection = |diags: &mut Vec<Diagnostic>,
                                in_subsection: &mut bool,
                                subsection_ok: bool,
                                subsection_line: u32| {
        if *in_subsection && !subsection_ok {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: subsection_line,
                rule: RuleId::Hermetic,
                message: "dependency subsection without `path`/`workspace` source".to_string(),
            });
        }
        *in_subsection = false;
    };

    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            close_subsection(&mut diags, &mut in_subsection, subsection_ok, subsection_line);
            match dep_header(line) {
                None => in_deps = false,
                Some(subsection) => {
                    in_deps = true;
                    if subsection {
                        in_subsection = true;
                        subsection_ok = false;
                        subsection_line = line_no;
                    }
                }
            }
            continue;
        }
        if !in_deps {
            continue;
        }
        let banned = ["version", "git", "registry"]
            .iter()
            .any(|k| is_key(line, k) || contains_inline_key(line, k));
        let ok = line.contains("workspace = true")
            || line.contains("workspace=true")
            || contains_inline_key(line, "path")
            || is_key(line, "path");
        if in_subsection {
            // Inside `[dependencies.foo]`: `path = …` / `workspace = true`
            // keys legitimize the subsection; banned keys fail it.
            if ok {
                subsection_ok = true;
            }
            if banned {
                diags.push(Diagnostic {
                    file: label.to_string(),
                    line: line_no,
                    rule: RuleId::Hermetic,
                    message: format!("non-path dependency source: `{line}`"),
                });
                subsection_ok = true; // already reported; don't double up
            }
            continue;
        }
        // A table-section entry: `name = …` must carry a path/workspace
        // source and no registry/git key. A bare `name = "1.0"` has
        // neither and is exactly the registry shorthand.
        if banned || !ok {
            diags.push(Diagnostic {
                file: label.to_string(),
                line: line_no,
                rule: RuleId::Hermetic,
                message: format!("non-path dependency: `{line}`"),
            });
        }
    }
    close_subsection(&mut diags, &mut in_subsection, subsection_ok, subsection_line);
    diags
}

/// Whether the line assigns to exactly `key` (e.g. `path = "…"`).
fn is_key(line: &str, key: &str) -> bool {
    line.split('=')
        .next()
        .is_some_and(|lhs| lhs.trim() == key)
}

/// Whether an inline table on the line contains `key =` / `key=`.
fn contains_inline_key(line: &str, key: &str) -> bool {
    line.match_indices(key).any(|(at, _)| {
        // Preceded by a non-ident char (or start) and followed by `=`.
        let before_ok = at == 0
            || !line[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '-');
        let after = line[at + key.len()..].trim_start();
        before_ok && after.starts_with('=')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_and_path_deps_pass() {
        let m = "[dependencies]\ndprbg-core.workspace = true\n\
                 dprbg-rng = { workspace = true }\nlocal = { path = \"../local\" }\n";
        assert!(lint_manifest("Cargo.toml", m).is_empty());
    }

    #[test]
    fn registry_shorthand_fails() {
        let m = "[dependencies]\nserde = \"1.0\"\n";
        let d = lint_manifest("Cargo.toml", m);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::Hermetic);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn git_and_version_keys_fail() {
        let m = "[dev-dependencies]\nfoo = { git = \"https://example.com/foo\" }\n\
                 bar = { version = \"0.3\", features = [\"x\"] }\n";
        assert_eq!(lint_manifest("Cargo.toml", m).len(), 2);
    }

    #[test]
    fn subsection_form_is_checked() {
        // The hole the awk guard had: [dependencies.foo] with a version.
        let m = "[dependencies.foo]\nversion = \"1\"\n";
        let d = lint_manifest("Cargo.toml", m);
        assert_eq!(d.len(), 1);
        // And the legitimate path form passes.
        let ok = "[dependencies.foo]\npath = \"../foo\"\n";
        assert!(lint_manifest("Cargo.toml", ok).is_empty());
        // A subsection with no source at all is also flagged.
        let none = "[dependencies.foo]\nfeatures = [\"x\"]\n";
        assert_eq!(lint_manifest("Cargo.toml", none).len(), 1);
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let m = "[package]\nname = \"x\"\nversion = \"0.1.0\"\n[features]\ndefault = []\n";
        assert!(lint_manifest("Cargo.toml", m).is_empty());
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let m = "[dependencies]\n# serde = \"1.0\"\n\ndprbg-core.workspace = true\n";
        assert!(lint_manifest("Cargo.toml", m).is_empty());
    }
}
