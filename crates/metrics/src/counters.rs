//! Thread-local counters for the paper's cost model.
//!
//! Computation counters ([`ops`]) track field additions, multiplications and
//! inversions plus polynomial interpolations (the paper counts
//! "interpolations per player" separately, e.g. Lemma 2: "2 polynomial
//! interpolations per player"). Communication counters ([`comm`]) track
//! messages, bytes and rounds.

use std::cell::Cell;

thread_local! {
    static FIELD_ADDS: Cell<u64> = const { Cell::new(0) };
    static FIELD_MULS: Cell<u64> = const { Cell::new(0) };
    static FIELD_INVS: Cell<u64> = const { Cell::new(0) };
    static INTERPOLATIONS: Cell<u64> = const { Cell::new(0) };
    static PRG_INVOCATIONS: Cell<u64> = const { Cell::new(0) };
    static MSGS_SENT: Cell<u64> = const { Cell::new(0) };
    static BYTES_SENT: Cell<u64> = const { Cell::new(0) };
    static ROUNDS: Cell<u64> = const { Cell::new(0) };
}

/// Computation-side counters (field operations, interpolations).
pub mod ops {
    use super::*;

    /// Record `n` field additions (the paper's basic computational unit).
    #[inline]
    pub fn count_add(n: u64) {
        FIELD_ADDS.with(|c| c.set(c.get() + n));
    }

    /// Record `n` field multiplications.
    #[inline]
    pub fn count_mul(n: u64) {
        FIELD_MULS.with(|c| c.set(c.get() + n));
    }

    /// Record `n` field inversions.
    #[inline]
    pub fn count_inv(n: u64) {
        FIELD_INVS.with(|c| c.set(c.get() + n));
    }

    /// Record `n` polynomial interpolations (Lagrange or Berlekamp–Welch).
    #[inline]
    pub fn count_interpolation(n: u64) {
        INTERPOLATIONS.with(|c| c.set(c.get() + n));
    }

    /// Record `n` pseudo-random-generator invocations (one per underlying
    /// PRG block, e.g. one ChaCha block function call). Computational
    /// randomness is a different resource from field arithmetic — the
    /// paper's §1.4 comparison needs it counted in its own unit so
    /// computational-stretch baselines report honest figures.
    #[inline]
    pub fn count_prg(n: u64) {
        PRG_INVOCATIONS.with(|c| c.set(c.get() + n));
    }

    /// Reset every computation counter of the current thread to zero.
    pub fn reset() {
        FIELD_ADDS.with(|c| c.set(0));
        FIELD_MULS.with(|c| c.set(0));
        FIELD_INVS.with(|c| c.set(0));
        INTERPOLATIONS.with(|c| c.set(0));
        PRG_INVOCATIONS.with(|c| c.set(0));
    }
}

/// Communication-side counters (messages, bytes, rounds).
pub mod comm {
    use super::*;

    /// Record one sent message of `bytes` payload bytes.
    #[inline]
    pub fn count_message(bytes: u64) {
        MSGS_SENT.with(|c| c.set(c.get() + 1));
        BYTES_SENT.with(|c| c.set(c.get() + bytes));
    }

    /// Record `n` completed communication rounds.
    #[inline]
    pub fn count_rounds(n: u64) {
        ROUNDS.with(|c| c.set(c.get() + n));
    }

    /// Reset every communication counter of the current thread to zero.
    pub fn reset() {
        MSGS_SENT.with(|c| c.set(0));
        BYTES_SENT.with(|c| c.set(0));
        ROUNDS.with(|c| c.set(0));
    }
}

/// A point-in-time reading of every counter of the current thread.
///
/// Capture one before and one after a protocol run and subtract with
/// [`CostSnapshot::since`] to obtain the cost of the enclosed region.
///
/// Serialized inside the beacon snapshot, hence the ABI pin: it versions
/// with `dprbg-beacon`'s `SNAPSHOT_VERSION`.
// lint: snapshot-abi(v2, f05a0c742972543b)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CostSnapshot {
    /// Field additions performed.
    pub field_adds: u64,
    /// Field multiplications performed.
    pub field_muls: u64,
    /// Field inversions performed.
    pub field_invs: u64,
    /// Polynomial interpolations performed.
    pub interpolations: u64,
    /// PRG block invocations performed (computational randomness used).
    pub prg_invocations: u64,
    /// Messages sent.
    pub messages: u64,
    /// Payload bytes sent.
    pub bytes: u64,
    /// Communication rounds completed.
    pub rounds: u64,
}

impl CostSnapshot {
    /// Read the current values of all counters of this thread.
    pub fn capture() -> Self {
        CostSnapshot {
            field_adds: FIELD_ADDS.with(Cell::get),
            field_muls: FIELD_MULS.with(Cell::get),
            field_invs: FIELD_INVS.with(Cell::get),
            interpolations: INTERPOLATIONS.with(Cell::get),
            prg_invocations: PRG_INVOCATIONS.with(Cell::get),
            messages: MSGS_SENT.with(Cell::get),
            bytes: BYTES_SENT.with(Cell::get),
            rounds: ROUNDS.with(Cell::get),
        }
    }

    /// The counter deltas accumulated since `earlier` was captured.
    ///
    /// Saturates at zero if counters were reset in between.
    pub fn since(&self, earlier: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            field_adds: self.field_adds.saturating_sub(earlier.field_adds),
            field_muls: self.field_muls.saturating_sub(earlier.field_muls),
            field_invs: self.field_invs.saturating_sub(earlier.field_invs),
            interpolations: self.interpolations.saturating_sub(earlier.interpolations),
            prg_invocations: self.prg_invocations.saturating_sub(earlier.prg_invocations),
            messages: self.messages.saturating_sub(earlier.messages),
            bytes: self.bytes.saturating_sub(earlier.bytes),
            rounds: self.rounds.saturating_sub(earlier.rounds),
        }
    }

    /// Component-wise sum of two snapshots (for aggregating across parties).
    pub fn plus(&self, other: &CostSnapshot) -> CostSnapshot {
        CostSnapshot {
            field_adds: self.field_adds + other.field_adds,
            field_muls: self.field_muls + other.field_muls,
            field_invs: self.field_invs + other.field_invs,
            interpolations: self.interpolations + other.interpolations,
            prg_invocations: self.prg_invocations + other.prg_invocations,
            messages: self.messages + other.messages,
            bytes: self.bytes + other.bytes,
            rounds: self.rounds + other.rounds,
        }
    }

    /// Total computation in the paper's "additions" unit, charging each
    /// multiplication as `mul_cost_in_adds` additions.
    ///
    /// The paper charges a GF(2^k) multiplication `O(k log k)` additions in
    /// its special field (Section 2); pass the per-field figure from
    /// `dprbg_field`.
    pub fn total_adds(&self, mul_cost_in_adds: u64) -> u64 {
        self.field_adds
            + self.field_muls * mul_cost_in_adds
            // An inversion via extended Euclid / exponentiation costs on the
            // order of k multiplications; callers that care use raw counts.
            + self.field_invs * mul_cost_in_adds
    }
}

/// RAII guard measuring the cost of a scope on the current thread.
///
/// # Examples
///
/// ```
/// use dprbg_metrics::{ops, OpsGuard};
/// let guard = OpsGuard::start();
/// ops::count_add(7);
/// let cost = guard.finish();
/// assert_eq!(cost.field_adds, 7);
/// ```
#[derive(Debug)]
pub struct OpsGuard {
    start: CostSnapshot,
}

impl OpsGuard {
    /// Begin measuring at the current counter values.
    pub fn start() -> Self {
        OpsGuard {
            start: CostSnapshot::capture(),
        }
    }

    /// Stop measuring and return the deltas since [`OpsGuard::start`].
    pub fn finish(self) -> CostSnapshot {
        CostSnapshot::capture().since(&self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_accumulate() {
        let a = CostSnapshot::capture();
        ops::count_add(5);
        ops::count_mul(2);
        ops::count_inv(1);
        ops::count_interpolation(1);
        ops::count_prg(4);
        comm::count_message(16);
        comm::count_message(8);
        comm::count_rounds(3);
        let d = CostSnapshot::capture().since(&a);
        assert_eq!(d.field_adds, 5);
        assert_eq!(d.field_muls, 2);
        assert_eq!(d.field_invs, 1);
        assert_eq!(d.interpolations, 1);
        assert_eq!(d.prg_invocations, 4);
        assert_eq!(d.messages, 2);
        assert_eq!(d.bytes, 24);
        assert_eq!(d.rounds, 3);
    }

    #[test]
    fn guard_measures_scope() {
        let g = OpsGuard::start();
        ops::count_add(3);
        let c = g.finish();
        assert_eq!(c.field_adds, 3);
    }

    #[test]
    fn plus_is_componentwise() {
        let a = CostSnapshot {
            field_adds: 1,
            field_muls: 2,
            field_invs: 3,
            interpolations: 4,
            prg_invocations: 9,
            messages: 5,
            bytes: 6,
            rounds: 7,
        };
        let b = a;
        let s = a.plus(&b);
        assert_eq!(s.field_adds, 2);
        assert_eq!(s.prg_invocations, 18);
        assert_eq!(s.rounds, 14);
    }

    #[test]
    fn total_adds_charges_muls() {
        let c = CostSnapshot {
            field_adds: 10,
            field_muls: 2,
            field_invs: 1,
            ..Default::default()
        };
        assert_eq!(c.total_adds(100), 10 + 200 + 100);
    }

    #[test]
    fn counters_are_thread_local() {
        let before = CostSnapshot::capture();
        std::thread::spawn(|| {
            ops::count_add(1_000_000);
        })
        .join()
        .unwrap();
        let d = CostSnapshot::capture().since(&before);
        assert_eq!(d.field_adds, 0, "other thread's ops must not leak here");
    }

    #[test]
    fn since_saturates_after_reset() {
        ops::count_add(10);
        let high = CostSnapshot::capture();
        ops::reset();
        comm::reset();
        let low = CostSnapshot::capture();
        let d = low.since(&high);
        assert_eq!(d.field_adds, 0);
    }
}
