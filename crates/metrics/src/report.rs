//! Aggregated cost reports and plain-text table rendering.
//!
//! The benchmark harness prints the paper's tables with [`Table`]; protocol
//! runners return [`CostReport`]s aggregating per-party [`PartyCost`]s.

use std::fmt;

use crate::counters::CostSnapshot;

/// The measured cost of one party in one protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PartyCost {
    /// The party's identifier (1-based, matching the paper's `P_1..P_n`).
    pub party: usize,
    /// Counter deltas attributed to this party.
    pub cost: CostSnapshot,
}

/// Communication statistics of a whole protocol execution.
///
/// Serialized inside the beacon snapshot, hence the ABI pin: it versions
/// with `dprbg-beacon`'s `SNAPSHOT_VERSION`.
// lint: snapshot-abi(v2, f56afa6f40fef777)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CommStats {
    /// Total messages sent by all parties.
    pub messages: u64,
    /// Total payload bytes sent by all parties.
    pub bytes: u64,
    /// Number of synchronous rounds the execution took.
    pub rounds: u64,
}

/// The aggregated cost of a protocol execution across all parties.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CostReport {
    /// Per-party costs, ordered by party id.
    pub per_party: Vec<PartyCost>,
    /// Whole-execution communication totals.
    pub comm: CommStats,
}

impl CostReport {
    /// Build a report from per-party snapshots (1-based ids assigned in
    /// order); communication totals are summed from the snapshots, and the
    /// round count is the maximum any party observed.
    pub fn from_snapshots<I: IntoIterator<Item = CostSnapshot>>(snaps: I) -> Self {
        let mut per_party = Vec::new();
        let mut comm = CommStats::default();
        for (i, cost) in snaps.into_iter().enumerate() {
            comm.messages += cost.messages;
            comm.bytes += cost.bytes;
            comm.rounds = comm.rounds.max(cost.rounds);
            per_party.push(PartyCost { party: i + 1, cost });
        }
        CostReport { per_party, comm }
    }

    /// Sum of all parties' computation/communication counters.
    pub fn total(&self) -> CostSnapshot {
        self.per_party
            .iter()
            .fold(CostSnapshot::default(), |acc, p| acc.plus(&p.cost))
    }

    /// The maximum per-party cost (the paper usually states "per player"
    /// bounds, which are worst-case over players).
    pub fn max_party(&self) -> CostSnapshot {
        let mut best = CostSnapshot::default();
        for p in &self.per_party {
            if p.cost.field_adds + p.cost.field_muls > best.field_adds + best.field_muls {
                best = p.cost;
            }
        }
        best
    }

    /// Merge another execution's report into this one (summing party-wise;
    /// both reports must cover the same number of parties).
    ///
    /// # Panics
    ///
    /// Panics if the reports have different party counts.
    pub fn merge(&mut self, other: &CostReport) {
        assert_eq!(
            self.per_party.len(),
            other.per_party.len(),
            "cannot merge reports over different party sets"
        );
        for (a, b) in self.per_party.iter_mut().zip(&other.per_party) {
            a.cost = a.cost.plus(&b.cost);
        }
        self.comm.messages += other.comm.messages;
        self.comm.bytes += other.comm.bytes;
        self.comm.rounds += other.comm.rounds;
    }
}

/// One row of a rendered experiment table: a label plus one value per column.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRow {
    /// Row label (e.g. a parameter setting such as `M=256`).
    pub label: String,
    /// Cell values, one per column of the owning [`Table`].
    pub values: Vec<String>,
}

/// A plain-text table in the style of the paper's stated-cost comparisons.
///
/// # Examples
///
/// ```
/// use dprbg_metrics::Table;
/// let mut t = Table::new("E0: demo", &["adds", "msgs"]);
/// t.row("n=4", &["12".into(), "8".into()]);
/// let s = t.render();
/// assert!(s.contains("n=4"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<TableRow>,
}

impl Table {
    /// Create an empty table with a title and column headers.
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the number of columns.
    pub fn row(&mut self, label: &str, values: &[String]) {
        assert_eq!(values.len(), self.columns.len(), "column count mismatch");
        self.rows.push(TableRow {
            label: label.to_string(),
            values: values.to_vec(),
        });
    }

    /// Render the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = Vec::with_capacity(self.columns.len() + 1);
        let label_w = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(0))
            .max()
            .unwrap_or(0)
            .max(4);
        widths.push(label_w);
        for (i, col) in self.columns.iter().enumerate() {
            let w = self
                .rows
                .iter()
                .map(|r| r.values[i].len())
                .chain(std::iter::once(col.len()))
                .max()
                .unwrap_or(col.len());
            widths.push(w);
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format!("{:<w$}", "", w = widths[0]));
        for (i, col) in self.columns.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", col, w = widths[i + 1]));
        }
        out.push('\n');
        let total_w: usize = widths.iter().sum::<usize>() + 2 * self.columns.len();
        out.push_str(&"-".repeat(total_w));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!("{:<w$}", r.label, w = widths[0]));
            for (i, v) in r.values.iter().enumerate() {
                out.push_str(&format!("  {:>w$}", v, w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(adds: u64, msgs: u64, bytes: u64, rounds: u64) -> CostSnapshot {
        CostSnapshot {
            field_adds: adds,
            messages: msgs,
            bytes,
            rounds,
            ..Default::default()
        }
    }

    #[test]
    fn report_aggregates_comm() {
        let r = CostReport::from_snapshots(vec![snap(5, 2, 20, 3), snap(7, 1, 10, 3)]);
        assert_eq!(r.comm.messages, 3);
        assert_eq!(r.comm.bytes, 30);
        assert_eq!(r.comm.rounds, 3);
        assert_eq!(r.total().field_adds, 12);
        assert_eq!(r.per_party[1].party, 2);
    }

    #[test]
    fn max_party_picks_heaviest() {
        let r = CostReport::from_snapshots(vec![snap(5, 0, 0, 0), snap(9, 0, 0, 0)]);
        assert_eq!(r.max_party().field_adds, 9);
    }

    #[test]
    fn merge_sums_partywise() {
        let mut a = CostReport::from_snapshots(vec![snap(1, 1, 8, 2), snap(2, 0, 0, 2)]);
        let b = CostReport::from_snapshots(vec![snap(10, 1, 8, 1), snap(20, 0, 0, 1)]);
        a.merge(&b);
        assert_eq!(a.per_party[0].cost.field_adds, 11);
        assert_eq!(a.per_party[1].cost.field_adds, 22);
        assert_eq!(a.comm.rounds, 3);
    }

    #[test]
    #[should_panic(expected = "different party sets")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = CostReport::from_snapshots(vec![snap(1, 0, 0, 0)]);
        let b = CostReport::from_snapshots(vec![snap(1, 0, 0, 0), snap(2, 0, 0, 0)]);
        a.merge(&b);
    }

    #[test]
    fn table_renders_all_cells() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row("r1", &["1".into(), "22".into()]);
        t.row("row2", &["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("r1"));
        assert!(s.contains("333"));
        assert!(s.contains("22"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_row() {
        let mut t = Table::new("demo", &["a"]);
        t.row("r", &["1".into(), "2".into()]);
    }
}
